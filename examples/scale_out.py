#!/usr/bin/env python3
"""Scale-out and manageability (paper sections IV-G, VII-I).

Builds the largest configuration the paper placed on the U200 — a UDP
stack plus 22 replicated echo application tiles, 28 tiles total —
drives it with dozens of client flows, and prints the operator's view:
the per-tile telemetry counters the control plane exposes, plus the
timing model's account of *why* 28 tiles is the ceiling.

Run:  python examples/scale_out.py
"""

import itertools

from repro import params
from repro.designs import FrameSink, ScaledEchoDesign
from repro.packet import IPv4Address, MacAddress, build_ipv4_udp_frame
from repro.resources import max_frequency_mhz
from repro.telemetry import design_counters, design_report

CLIENT_MAC = MacAddress("02:00:00:00:00:01")


def main():
    design = ScaledEchoDesign(n_apps=22)
    print(f"built {design.total_tiles}-tile design "
          f"({design.n_apps} echo app tiles + 6-tile UDP stack) on a "
          f"{design.mesh.width}x{design.mesh.height} mesh")
    print(f"all {len(design.chains)} message chains verified "
          "deadlock-free at build time")
    print(f"timing model: fmax({design.total_tiles} tiles) = "
          f"{max_frequency_mhz(design.total_tiles):.1f} MHz; "
          f"fmax({design.total_tiles + 1}) = "
          f"{max_frequency_mhz(design.total_tiles + 1):.1f} MHz — "
          "28 is the paper's placement wall")

    # Drive it with 120 client flows at wire rate.
    ips = [IPv4Address(f"10.0.2.{i}") for i in range(1, 121)]
    for ip in ips:
        design.add_client(ip, CLIENT_MAC)
    frames = [
        build_ipv4_udp_frame(CLIENT_MAC, design.server_mac, ip,
                             design.server_ip, 5000 + j, 7, bytes(64))
        for j, ip in enumerate(ips)
    ]
    cycler = itertools.cycle(frames)

    class Source:
        def __init__(self):
            self._free = 0

        def step(self, cycle):
            if cycle >= self._free:
                design.inject(next(cycler), cycle)
                self._free = cycle + 2

        def commit(self):
            pass

    sink = FrameSink(design.eth_tx, keep_frames=False)
    design.sim.add(Source())
    design.sim.add(sink)
    design.sim.run(20_000)

    elapsed = design.sim.cycle * params.CYCLE_TIME_S
    print(f"\nechoed {sink.count} requests in "
          f"{design.sim.cycle} cycles "
          f"({sink.count / elapsed / 1e6:.1f} MReq/s)")
    served = sorted((app.requests for app in design.apps),
                    reverse=True)
    print(f"per-app flow-hash spread (requests): {served}")

    print("\noperator telemetry (the counters the control plane "
          "exports):")
    print(design_report(design))
    busiest = max(design_counters(design)["router_flits"].items(),
                  key=lambda item: item[1])
    print(f"\nhot spot: router {busiest[0]} forwarded "
          f"{busiest[1]} flits — the udp_rx fan-out point, as the "
          "mesh layout predicts")


if __name__ == "__main__":
    main()
