#!/usr/bin/env python3
"""TCP serving + the logging/replay debugging workflow (section V-F).

Starts the Beehive TCP server design with logging tiles inserted
between the IP and TCP layers, connects an independent software TCP
client, runs an RPC exchange with an injected packet loss, then:

1. dumps the cycle-timestamped TCP header log the tiles captured
   (including the retransmission the loss forced), and
2. replays the recorded ingress trace cycle-accurately into a fresh
   design instance and checks the run reproduces byte-for-byte.

Run:  python examples/tcp_server_debugging.py
"""

from repro.designs.tcp_stack import TcpServerDesign
from repro.packet import IPv4Address, MacAddress
from repro.tcp.peer import SoftTcpPeer
from repro.telemetry import FrameTraceRecorder, TraceReplayer

CLIENT_IP = IPv4Address("10.0.0.1")
CLIENT_MAC = MacAddress("02:00:00:00:00:01")


def build(with_recorder=False):
    design = TcpServerDesign(tcp_port=5000, request_size=32,
                             with_logging=True)
    design.add_client(CLIENT_IP, CLIENT_MAC)
    recorder = None
    if with_recorder:
        recorder = FrameTraceRecorder(design)
        recorder.attach()
    return design, recorder


def main():
    design, recorder = build(with_recorder=True)

    # Drop the client's second data segment once, to exercise recovery.
    state = {"seen_data": 0}
    recorded_inject = design.inject

    def lossy_inject(frame, cycle):
        if len(frame) > 60:
            state["seen_data"] += 1
            if state["seen_data"] == 2:
                print("[loss injected: dropping one client segment]")
                return
        recorded_inject(frame, cycle)

    design.inject = lossy_inject

    peer = SoftTcpPeer(design, CLIENT_IP, CLIENT_MAC, design.server_ip,
                       5000, wire_cycles=50)
    peer.mss = 32  # one segment per RPC, so the loss hits a whole RPC
    peer.rto_cycles = 4000
    design.sim.add(peer)
    peer.connect()
    for i in range(3):
        peer.send(bytes([0x41 + i]) * 32)
    design.sim.run_until(lambda: len(peer.received) >= 96,
                         max_cycles=2_000_000)
    print(f"client echoed 3 RPCs ({len(peer.received)} bytes) despite "
          f"the loss; client retransmits: {peer.retransmits}")

    print("\nTCP RX log (cycle-timestamped, read back from the log "
          "tile):")
    for entry in design.log_rx.entries:
        print(f"  cycle {entry.cycle:>7} {entry.direction} "
              f"{entry.summary:<18} seq={entry.seq} ack={entry.ack} "
              f"[{entry.flags}] len={entry.length}")

    # Cycle-accurate replay into a fresh design.
    replay_design, _ = build()
    replayer = TraceReplayer(replay_design, recorder.events)
    replay_design.sim.add(replayer)
    replay_design.sim.run(design.sim.cycle)
    original = [e.seq for e in design.log_rx.entries]
    replayed = [e.seq for e in replay_design.log_rx.entries]
    assert original == replayed, "replay diverged!"
    print(f"\nreplayed {replayer.replayed} recorded frames "
          "cycle-accurately: log sequences identical")


if __name__ == "__main__":
    main()
