#!/usr/bin/env python3
"""Compile-time deadlock analysis + runtime confirmation (Fig 5).

Runs the design linter (``repro.analysis``) over the paper's Fig 5
tile placements, then *actually deadlocks* the cycle simulator on the
bad one (and streams a packet cleanly through the good one).  Finally
builds a design from XML and shows the generator rejecting a deadlocky
layout at compile time.

Run:  python examples/deadlock_analysis.py
"""

from repro.analysis import analyze
from repro.analysis.deadlock import DeadlockError
from repro.config import build_design, design_from_xml
from repro.config.examples import UDP_ECHO_XML
from repro.deadlock.demo import Fig5Design
from repro.noc import NocMessage


def static_analysis():
    for variant in ("a", "b"):
        design = Fig5Design(variant)
        report = analyze(design, name=f"fig5{variant}")
        layout = ", ".join(f"{name}@{coord}"
                           for name, coord in design.tile_coords.items())
        cycles = report.by_code("BHV201")
        if not cycles:
            print(f"Fig 5{variant} [{layout}]: deadlock-free")
        for finding in cycles:
            print(f"Fig 5{variant} [{layout}]: {finding.render()}")


def runtime_confirmation():
    print("\nruntime (8 KB packet through streaming relay tiles):")
    for variant in ("a", "b"):
        design = Fig5Design(variant)
        tiles, coords = design.tiles, design.tile_coords
        design.ingress.send(NocMessage(dst=coords["ip"],
                                       src=coords["eth"],
                                       data=bytes(8192)))
        try:
            design.sim.run_until(
                lambda: tiles["app"].messages_through >= 1,
                max_cycles=5000)
            print(f"  Fig 5{variant}: delivered in "
                  f"{design.sim.cycle} cycles")
        except TimeoutError:
            print(f"  Fig 5{variant}: WEDGED — app received "
                  f"{tiles['app'].flits_through} flits, NoC deadlocked")


def compile_time_rejection():
    print("\nXML tooling rejects a deadlocky placement at build time:")
    spec = design_from_xml(UDP_ECHO_XML)
    spec.tile("ip_rx").x, spec.tile("udp_rx").x = 2, 1  # Fig 5a swap
    try:
        build_design(spec)
    except DeadlockError as error:
        print(f"  DeadlockError: {error}")


def main():
    static_analysis()
    runtime_confirmation()
    compile_time_rejection()


if __name__ == "__main__":
    main()
