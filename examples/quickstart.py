#!/usr/bin/env python3
"""Quickstart: build the Beehive UDP echo design, push a packet
through it, and measure the stack's latency and small-packet goodput.

This is the paper's Fig 8a configuration: seven tiles (Ethernet, IPv4,
and UDP with separate receive/transmit tiles, plus the echo
application) on a 4x2 mesh, processing real Ethernet/IPv4/UDP bytes.

Run:  python examples/quickstart.py
"""

from repro import params
from repro.designs import (
    FrameSink,
    FrameSource,
    GoodputMeter,
    UdpEchoDesign,
)
from repro.packet import (
    IPv4Address,
    MacAddress,
    build_ipv4_udp_frame,
    parse_frame,
)

CLIENT_IP = IPv4Address("10.0.0.1")
CLIENT_MAC = MacAddress("02:00:00:00:00:01")


def one_packet():
    """Echo a single datagram and report the per-packet latency."""
    design = UdpEchoDesign(udp_port=7, line_rate_bytes_per_cycle=None)
    design.add_client(CLIENT_IP, CLIENT_MAC)
    sink = FrameSink(design.eth_tx)
    design.sim.add(sink)

    frame = build_ipv4_udp_frame(
        CLIENT_MAC, design.server_mac, CLIENT_IP, design.server_ip,
        src_port=5555, dst_port=7, payload=b"hello, beehive",
    )
    design.inject(frame, cycle=0)
    design.sim.run_until(lambda: sink.count >= 1, max_cycles=2000)

    reply = parse_frame(sink.frames[0][0])
    cycles = design.eth_tx.last_transit_cycles
    print(f"echoed {reply.payload!r} back to "
          f"{reply.ip.dst}:{reply.udp.dst_port}")
    print(f"stack transit: {cycles} cycles = {cycles * 4} ns "
          f"(paper: 92 cycles / 368 ns)")


def saturating_goodput(payload_bytes: int = 64,
                       cycles: int = 20_000) -> float:
    """Drive the stack at full rate and measure echo goodput."""
    design = UdpEchoDesign(udp_port=7, line_rate_bytes_per_cycle=None)
    design.add_client(CLIENT_IP, CLIENT_MAC)
    frame = build_ipv4_udp_frame(
        CLIENT_MAC, design.server_mac, CLIENT_IP, design.server_ip,
        5555, 7, bytes(payload_bytes),
    )
    source = FrameSource(design.inject, lambda i: frame, rate=None)
    sink = FrameSink(design.eth_tx, keep_frames=False)
    meter = GoodputMeter(sink, warmup_frames=50)
    design.sim.add(source)
    design.sim.add(sink)
    for _ in range(cycles):
        design.sim.tick()
        meter.maybe_start()
    return meter.goodput_gbps()


def main():
    one_packet()
    print()
    print(f"{'payload':>8}  {'goodput':>10}   (NoC peak "
          f"{params.NOC_PEAK_GBPS:.0f} Gbps)")
    for payload in (64, 256, 1024, 4096):
        gbps = saturating_goodput(payload)
        print(f"{payload:>7}B  {gbps:>7.1f} Gbps")


if __name__ == "__main__":
    main()
