#!/usr/bin/env python3
"""Network virtualization + control plane (paper sections IV-F, V-E).

Demonstrates the managed NAT design: an echo service reached through a
NAT whose virtual-to-physical mapping is reconfigured *at runtime* by
an external controller speaking an RPC over UDP — the paper's
client-migration flow, end to end: RPC in over the data plane, table
update over the separate control NoC, acknowledgement back out.  Also
shows the IP-in-IP tunnel variant with its duplicated IP tiles.

Run:  python examples/network_virtualization.py
"""

import json

from repro.control.controller import encode_control_rpc
from repro.designs import FrameSink, IpInIpEchoDesign
from repro.designs.managed_stack import ManagedNatEchoDesign
from repro.packet import (
    IPv4Address,
    MacAddress,
    build_ipv4_udp_frame,
    parse_frame,
)
from repro.packet.builder import build_ipinip_udp_frame
from repro.packet.vxlan import VxlanHeader, build_vxlan_frame
from repro.designs import VxlanEchoDesign

CLIENT_MAC = MacAddress("02:00:00:00:00:01")
CLIENT_PHYS = IPv4Address("10.0.0.1")
CLIENT_PHYS_NEW = IPv4Address("10.0.0.99")
CLIENT_VIRT = IPv4Address("172.16.0.1")
ADMIN_IP = IPv4Address("10.0.0.200")
ADMIN_MAC = MacAddress("02:00:00:00:00:aa")


def run_until_reply(design, sink, frame):
    before = sink.count
    design.inject(frame, design.sim.cycle)
    design.sim.run_until(lambda: sink.count > before, max_cycles=5000)
    return parse_frame(sink.frames[-1][0])


def nat_migration():
    design = ManagedNatEchoDesign(udp_port=7)
    design.map_client(CLIENT_VIRT, CLIENT_PHYS, CLIENT_MAC)
    design.eth_tx.add_neighbor(ADMIN_IP, ADMIN_MAC)
    design.eth_tx.add_neighbor(CLIENT_PHYS_NEW, CLIENT_MAC)
    sink = FrameSink(design.eth_tx)
    design.sim.add(sink)

    def echo(physical_ip, payload):
        frame = build_ipv4_udp_frame(
            CLIENT_MAC, design.server_mac, physical_ip,
            design.server_ip, 5555, 7, payload,
        )
        return run_until_reply(design, sink, frame)

    reply = echo(CLIENT_PHYS, b"before migration")
    print(f"echo to physical {reply.ip.dst} (virtual {CLIENT_VIRT}): "
          f"{reply.payload!r}")

    # The external controller migrates the client: one RPC over UDP.
    rpc = encode_control_rpc(design.nat_rx.coord, "nat", CLIENT_VIRT,
                             CLIENT_PHYS_NEW, tag=42)
    rpc_frame = build_ipv4_udp_frame(
        ADMIN_MAC, design.server_mac, ADMIN_IP, design.server_ip,
        6000, design.CONTROL_PORT, rpc,
    )
    response = json.loads(run_until_reply(design, sink,
                                          rpc_frame).payload)
    print(f"controller RPC: {response} "
          "(table updated over the control NoC)")

    reply = echo(CLIENT_PHYS_NEW, b"after migration")
    print(f"echo to new physical {reply.ip.dst}: {reply.payload!r}")
    print(f"NAT translations so far: "
          f"{design.nat_rx.translations + design.nat_tx.translations}")


def ipinip_tunnel():
    design = IpInIpEchoDesign(udp_port=7)
    design.add_tunnel_peer(CLIENT_VIRT, CLIENT_PHYS, CLIENT_MAC)
    sink = FrameSink(design.eth_tx)
    design.sim.add(sink)
    frame = build_ipinip_udp_frame(
        CLIENT_MAC, design.server_mac,
        outer_src_ip=CLIENT_PHYS, outer_dst_ip=design.server_phys_ip,
        inner_src_ip=CLIENT_VIRT, inner_dst_ip=design.server_virt_ip,
        src_port=5555, dst_port=7, payload=b"through the tunnel",
    )
    reply = run_until_reply(design, sink, frame)
    print(f"\nIP-in-IP: outer {reply.ip.src} -> {reply.ip.dst}, "
          f"inner {reply.inner_ip.src} -> {reply.inner_ip.dst}: "
          f"{reply.payload!r}")
    print("(duplicated IP RX/TX tiles parse/build outer and inner "
          "headers — the paper's fix for repeated headers breaking "
          "resource ordering)")


def vxlan_overlay():
    design = VxlanEchoDesign(vni=7700, udp_port=7)
    inner_ip = IPv4Address("192.168.0.1")
    inner_mac = MacAddress("02:aa:00:00:00:01")
    design.add_overlay_peer(inner_ip, inner_mac, CLIENT_PHYS,
                            CLIENT_MAC)
    sink = FrameSink(design.eth_tx)
    design.sim.add(sink)
    inner = build_ipv4_udp_frame(
        inner_mac, design.server_inner_mac, inner_ip,
        design.server_inner_ip, 5555, 7, b"tenant traffic",
    )
    frame = build_vxlan_frame(CLIENT_MAC, design.server_vtep_mac,
                              CLIENT_PHYS, design.server_vtep_ip,
                              7700, inner)
    reply = run_until_reply(design, sink, frame)
    header, inner_reply = VxlanHeader.unpack(reply.payload)
    tenant = parse_frame(inner_reply)
    print(f"\nVXLAN (VNI {header.vni}): outer {reply.ip.src} -> "
          f"{reply.ip.dst}, tenant {tenant.ip.src} -> "
          f"{tenant.ip.dst}: {tenant.payload!r}")
    print("(a complete inner Ethernet/IP/UDP pipeline behind the "
          "outer one — 15 tiles, all unmodified protocol tiles plus "
          "two VXLAN tiles)")


def main():
    nat_migration()
    ipinip_tunnel()
    vxlan_overlay()


if __name__ == "__main__":
    main()
