#!/usr/bin/env python3
"""Erasure-coding acceleration (paper section VI-A / Table III).

Builds Beehive with 1-4 Reed-Solomon encoder tiles behind the
round-robin scheduler, streams 4 KB encode requests at it, verifies
the returned parity against the reference codec (and demonstrates a
two-disk-failure recovery), then prints the Table III goodput/energy
comparison against the CPU baseline.

Run:  python examples/erasure_coding.py
"""

import os

from repro import params
from repro.apps.reed_solomon import ReedSolomonCodec
from repro.apps.reed_solomon.cpu import CpuReedSolomonBaseline
from repro.designs import FrameSink, FrameSource, RsDesign
from repro.energy.model import FpgaEnergyModel, TileActivity
from repro.packet import (
    IPv4Address,
    MacAddress,
    build_ipv4_udp_frame,
    parse_frame,
)

CLIENT_IP = IPv4Address("10.0.0.1")
CLIENT_MAC = MacAddress("02:00:00:00:00:01")


def demonstrate_recovery():
    """Encode a block, lose two shards, rebuild the data."""
    codec = ReedSolomonCodec(8, 2)
    data = os.urandom(4096)
    stripe = len(data) // 8
    blocks = [data[i * stripe:(i + 1) * stripe] for i in range(8)]
    parity = codec.encode(blocks)
    shards = {i: b for i, b in enumerate(blocks + parity)}
    del shards[2], shards[6]  # two disks die
    rebuilt = codec.reconstruct(shards, stripe)
    assert b"".join(rebuilt) == data
    print("(8,2) code: lost shards 2 and 6, reconstructed 4 KB "
          "block byte-for-byte")


def accelerator_goodput(instances: int, cycles: int = 60_000):
    """Measured consume-rate of N encoder tiles, plus verification."""
    design = RsDesign(instances=instances,
                      line_rate_bytes_per_cycle=None)
    design.add_client(CLIENT_IP, CLIENT_MAC)
    request = os.urandom(4096)
    frame = build_ipv4_udp_frame(
        CLIENT_MAC, design.server_mac, CLIENT_IP, design.server_ip,
        5555, 7000, request,
    )
    source = FrameSource(design.inject, lambda i: frame, rate=None)
    sink = FrameSink(design.eth_tx)
    design.sim.add(source)
    design.sim.add(sink)
    design.sim.run(cycles)

    reply = parse_frame(sink.frames[0][0])
    expected = ReedSolomonCodec(8, 2).encode_request(request)
    assert reply.payload == expected, "accelerator parity mismatch"

    consumed_bits = design.total_requests * 4096 * 8
    gbps = consumed_bits / (design.sim.cycle
                            * params.CYCLE_TIME_S) / 1e9
    ops = design.total_requests / (design.sim.cycle
                                   * params.CYCLE_TIME_S)
    # FPGA power: stack + scheduler (partially busy) + encoder tiles.
    stack_util = min(1.0, gbps / 100.0)
    tiles = [TileActivity(f"stack{i}", stack_util) for i in range(7)]
    tiles += [TileActivity(f"rs{i}", 1.0) for i in range(instances)]
    energy = FpgaEnergyModel().mj_per_op(tiles, ops)
    return gbps, energy


def main():
    demonstrate_recovery()
    print()
    baseline = CpuReedSolomonBaseline()
    header = (f"{'apps':>4} | {'CPU Gbps':>8} {'FPGA Gbps':>9} "
              f"{'speedup':>7} | {'CPU mJ/op':>9} {'FPGA mJ/op':>10} "
              f"{'efficiency':>10}")
    print(header)
    print("-" * len(header))
    for instances in (1, 2, 3, 4):
        cpu = baseline.measure(instances)
        fpga_gbps, fpga_energy = accelerator_goodput(instances)
        print(f"{instances:>4} | {cpu.goodput_gbps:>8.1f} "
              f"{fpga_gbps:>9.1f} "
              f"{fpga_gbps / cpu.goodput_gbps:>6.1f}x | "
              f"{cpu.energy_mj_per_op:>9.2f} {fpga_energy:>10.3f} "
              f"{cpu.energy_mj_per_op / fpga_energy:>9.1f}x")
    print("\npaper (Table III): speedup 7.5-7.8x, efficiency 16-22x")


if __name__ == "__main__":
    main()
