#!/usr/bin/env python3
"""Consensus-witness acceleration (paper section VI-B / Fig 11).

Runs the sharded VR key-value store with CPU witnesses and with
Beehive witnesses, printing the latency-throughput points behind
Fig 11 and the Table IV comparison at the knee.  Also exercises the
cycle-level witness tile to show the hardware-side determinism the
event model is built on.

Run:  python examples/consensus_witness.py
"""

from repro.apps.vr.cluster import VrExperiment
from repro.apps.vr.tile import MSG_PREPARE, PrepareWire
from repro.designs import FrameSink, VrWitnessDesign
from repro.packet import (
    IPv4Address,
    MacAddress,
    build_ipv4_udp_frame,
    parse_frame,
)

LEADER_IP = IPv4Address("10.0.0.2")
LEADER_MAC = MacAddress("02:00:00:00:00:02")


def hardware_witness_latency():
    """One Prepare through the cycle-level witness tile."""
    design = VrWitnessDesign(shards=1, line_rate_bytes_per_cycle=None)
    design.add_client(LEADER_IP, LEADER_MAC)
    sink = FrameSink(design.eth_tx)
    design.sim.add(sink)
    wire = PrepareWire(msg_type=MSG_PREPARE, view=0, opnum=1, shard=0,
                       digest=b"deadbeef")
    frame = build_ipv4_udp_frame(
        LEADER_MAC, design.server_mac, LEADER_IP, design.server_ip,
        7777, design.shard_port(0), wire.pack(),
    )
    design.inject(frame, 0)
    design.sim.run_until(lambda: sink.count >= 1, max_cycles=2000)
    reply = PrepareWire.unpack(parse_frame(sink.frames[0][0]).payload)
    cycles = design.eth_tx.last_transit_cycles
    print(f"hardware witness: PrepareOK for op {reply.opnum} in "
          f"{cycles} cycles ({cycles * 4} ns) — deterministic, no "
          "scheduler")


def latency_throughput_curve(shards: int, kind: str,
                             client_counts, duration=0.2):
    points = []
    for clients in client_counts:
        result = VrExperiment(shards=shards, witness_kind=kind,
                              n_clients=clients).run(duration_s=duration)
        points.append(result)
    return points


def main():
    hardware_witness_latency()
    print()
    client_counts = (1, 2, 3, 4, 5, 6)
    print("1-shard latency vs throughput (Fig 11's leftmost curves):")
    print(f"{'clients':>7} | {'CPU kops':>8} {'CPU med us':>10} | "
          f"{'FPGA kops':>9} {'FPGA med us':>11}")
    cpu_curve = latency_throughput_curve(1, "cpu", client_counts)
    fpga_curve = latency_throughput_curve(1, "fpga", client_counts)
    for clients, cpu, fpga in zip(client_counts, cpu_curve, fpga_curve):
        print(f"{clients:>7} | {cpu.throughput_kops:>8.1f} "
              f"{cpu.median_latency_us:>10.0f} | "
              f"{fpga.throughput_kops:>9.1f} "
              f"{fpga.median_latency_us:>11.0f}")

    print("\nknee comparison (paper Table IV, 1 shard: CPU 31 kops/"
          "112 us/1.51 mJ; FPGA 35 kops/99 us/0.73 mJ):")
    cpu = VrExperiment(1, "cpu", 4).run(duration_s=0.4)
    fpga = VrExperiment(1, "fpga", 4).run(duration_s=0.4)
    for label, result in (("CPU", cpu), ("FPGA", fpga)):
        print(f"  {label:4s} witness: {result.throughput_kops:.1f} "
              f"kops/s, median {result.median_latency_us:.0f} us, "
              f"p99 {result.p99_latency_us:.0f} us, "
              f"{result.energy_mj_per_op:.2f} mJ/op")
    print(f"  speedup {fpga.throughput_kops / cpu.throughput_kops:.2f}x,"
          f" latency {cpu.median_latency_us / fpga.median_latency_us:.2f}x,"
          f" energy {cpu.energy_mj_per_op / fpga.energy_mj_per_op:.2f}x")


if __name__ == "__main__":
    main()
