"""Section VII-I: hardware-resource scalability.

Two results: (1) the placement/timing wall — echo application tiles
added to a UDP stack until the router-to-router critical path fails
250 MHz at 28 tiles total (22 application tiles), limited by timing,
not LUTs; (2) NoC bandwidth scales with duplicated stacks up to the
load balancer's serialisation limit (the Fig 12 companion numbers).
"""

import pytest

from repro import params
from repro.resources import (
    max_frequency_mhz,
    max_placeable_tiles,
    tile_cost,
)


def run_scalability():
    stack_tiles = 6  # eth/ip/udp rx + tx
    rows = []
    for app_tiles in (1, 8, 16, 22, 23):
        total = stack_tiles + app_tiles
        fmax = max_frequency_mhz(total)
        luts = (sum(tile_cost(k).luts for k in
                    ("eth_rx", "ip_rx", "udp_rx", "udp_tx", "ip_tx",
                     "eth_tx"))
                + app_tiles * tile_cost("echo_app").luts)
        rows.append((app_tiles, total, fmax, luts,
                     100 * luts / params.U200_TOTAL_LUTS))
    return rows, max_placeable_tiles(250.0)


def bench_sec7i_scalability(benchmark, report):
    rows, ceiling = benchmark.pedantic(run_scalability, rounds=1,
                                       iterations=1)

    report.table(
        ["app tiles", "total tiles", "fmax MHz", "LUTs", "% LUTs"],
        [[apps, total, f"{fmax:.1f}", luts, f"{pct:.1f}"]
         for apps, total, fmax, luts, pct in rows],
    )
    report.row()
    report.row(f"placement ceiling at 250 MHz: {ceiling} tiles "
               "(paper: 28 total / 22 application tiles)")
    last_ok = rows[-2]
    report.row(f"at the ceiling the design uses only "
               f"{last_ok[4]:.1f}% of LUTs — limited by timing "
               "(512-bit router fan-out + chiplet crossings), not "
               "resources, as the paper reports")

    assert ceiling == 28
    by_apps = {row[0]: row for row in rows}
    assert by_apps[22][2] >= 250.0   # 22 app tiles close timing
    assert by_apps[23][2] < 250.0    # 23 do not
    assert by_apps[22][4] < 25.0     # LUTs are nowhere near the wall
