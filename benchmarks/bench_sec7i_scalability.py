"""Section VII-I: hardware-resource scalability.

Two results: (1) the placement/timing wall — echo application tiles
added to a UDP stack until the router-to-router critical path fails
250 MHz at 28 tiles total (22 application tiles), limited by timing,
not LUTs; (2) NoC bandwidth scales with duplicated stacks up to the
load balancer's serialisation limit (the Fig 12 companion numbers).

A third, simulation-side sweep rides along: the scaled echo design is
actually *run* at growing mesh sizes under the flat mesh backend
(``repro.noc.flatmesh``), which collapses the whole fabric into one
batch-stepped component.  The object backend is timed only at the
paper's 7x4 floorplan; the 8x8 and 16x16 rows are flat-only — sizes
where per-object stepping stops being CI-friendly — showing the
backend extends the scalability story beyond the U200's 28-tile wall.
"""

import time

import pytest

from repro import params
from repro.designs import FrameSink, FrameSource
from repro.designs.scaled_echo import ScaledEchoDesign
from repro.noc.message import reset_id_counters
from repro.packet import IPv4Address, MacAddress, build_ipv4_udp_frame
from repro.resources import (
    max_frequency_mhz,
    max_placeable_tiles,
    tile_cost,
)

CLIENT_IP = IPv4Address("10.0.0.1")
CLIENT_MAC = MacAddress("02:00:00:00:00:01")
SWEEP_CYCLES = 6_000
# (width, height, app tiles, backends to time): the 7x4 row is the
# paper's U200 floorplan and runs both backends; larger meshes flat
# only.
SWEEP_POINTS = (
    (7, 4, 22, ("object", "flat")),
    (8, 8, 58, ("flat",)),
    (16, 16, 250, ("flat",)),
)


def _run_point(backend: str, width: int, height: int, n_apps: int):
    reset_id_counters()
    design = ScaledEchoDesign(n_apps=n_apps, width=width, height=height,
                              mesh_backend=backend)
    design.add_client(CLIENT_IP, CLIENT_MAC)
    frames = [build_ipv4_udp_frame(CLIENT_MAC, design.server_mac,
                                   CLIENT_IP, design.server_ip,
                                   5000 + i, 7, bytes(1458))
              for i in range(min(n_apps, 32))]
    source = FrameSource(design.inject,
                         lambda i: frames[i % len(frames)], rate=None)
    sink = FrameSink(design.eth_tx)
    design.sim.add(source)
    design.sim.add(sink)
    started = time.perf_counter()
    design.sim.run(SWEEP_CYCLES)
    wall = time.perf_counter() - started
    return wall, len(sink.frames)


def run_simulated_sweep():
    rows = []
    for width, height, n_apps, backends in SWEEP_POINTS:
        walls = {}
        frames = None
        for backend in backends:
            wall, got = _run_point(backend, width, height, n_apps)
            walls[backend] = wall
            assert frames is None or frames == got, \
                "backends disagreed on delivered frames"
            frames = got
        rows.append((width, height, n_apps, frames,
                     walls.get("object"), walls["flat"]))
    return rows


def run_scalability():
    stack_tiles = 6  # eth/ip/udp rx + tx
    rows = []
    for app_tiles in (1, 8, 16, 22, 23):
        total = stack_tiles + app_tiles
        fmax = max_frequency_mhz(total)
        luts = (sum(tile_cost(k).luts for k in
                    ("eth_rx", "ip_rx", "udp_rx", "udp_tx", "ip_tx",
                     "eth_tx"))
                + app_tiles * tile_cost("echo_app").luts)
        rows.append((app_tiles, total, fmax, luts,
                     100 * luts / params.U200_TOTAL_LUTS))
    return rows, max_placeable_tiles(250.0)


def bench_sec7i_scalability(benchmark, report):
    rows, ceiling = benchmark.pedantic(run_scalability, rounds=1,
                                       iterations=1)

    report.table(
        ["app tiles", "total tiles", "fmax MHz", "LUTs", "% LUTs"],
        [[apps, total, f"{fmax:.1f}", luts, f"{pct:.1f}"]
         for apps, total, fmax, luts, pct in rows],
    )
    report.row()
    report.row(f"placement ceiling at 250 MHz: {ceiling} tiles "
               "(paper: 28 total / 22 application tiles)")
    last_ok = rows[-2]
    report.row(f"at the ceiling the design uses only "
               f"{last_ok[4]:.1f}% of LUTs — limited by timing "
               "(512-bit router fan-out + chiplet crossings), not "
               "resources, as the paper reports")

    assert ceiling == 28
    by_apps = {row[0]: row for row in rows}
    assert by_apps[22][2] >= 250.0   # 22 app tiles close timing
    assert by_apps[23][2] < 250.0    # 23 do not
    assert by_apps[22][4] < 25.0     # LUTs are nowhere near the wall

    sweep = run_simulated_sweep()
    report.row()
    report.table(
        ["mesh", "app tiles", "frames", "object s", "flat s"],
        [[f"{w}x{h}", apps, frames,
          "-" if obj is None else f"{obj:.2f}", f"{flat:.2f}"]
         for w, h, apps, frames, obj, flat in sweep],
    )
    report.row("simulated sweep: 6k cycles of saturating MTU echo; "
               "8x8 and 16x16 run under the flat backend only")
    # Every row — including 16x16/250 apps, past the paper's 28-tile
    # wall — must actually move traffic end to end.
    for _w, _h, _apps, frames, _obj, _flat in sweep:
        assert frames and frames > 0
