"""Figure 11: latency vs throughput for the VR key-value store.

Closed-loop clients against 1-4 shards with CPU or Beehive witnesses.
The claim: the FPGA witness consistently gives lower median latency
and more throughput at the same client count, because the ~10 us it
shaves off each operation's witness leg lets the same closed-loop
clients complete more operations — up to 1.14x throughput / 1.13x
latency at the knees.
"""

import pytest

from repro.apps.vr.cluster import VrExperiment

CLIENT_SWEEP = {
    1: (1, 2, 3, 4, 5, 6),
    2: (2, 4, 6, 8, 10),
    4: (4, 8, 12, 16, 20),
}
DURATION_S = 0.2


def run_curves():
    curves = {}
    for shards, client_counts in CLIENT_SWEEP.items():
        for kind in ("cpu", "fpga"):
            points = []
            for clients in client_counts:
                result = VrExperiment(
                    shards=shards, witness_kind=kind,
                    n_clients=clients,
                ).run(duration_s=DURATION_S)
                points.append(result)
            curves[(shards, kind)] = points
    return curves


def bench_fig11_vr_latency_throughput(benchmark, report):
    curves = benchmark.pedantic(run_curves, rounds=1, iterations=1)

    for shards, client_counts in CLIENT_SWEEP.items():
        report.row(f"\n{shards} shard(s):")
        rows = []
        for index, clients in enumerate(client_counts):
            cpu = curves[(shards, "cpu")][index]
            fpga = curves[(shards, "fpga")][index]
            rows.append([
                clients,
                cpu.throughput_kops, cpu.median_latency_us,
                fpga.throughput_kops, fpga.median_latency_us,
                f"{fpga.throughput_kops / cpu.throughput_kops:.2f}x",
                f"{cpu.median_latency_us / fpga.median_latency_us:.2f}x",
            ])
        report.table(
            ["clients", "CPU kops", "CPU med us", "FPGA kops",
             "FPGA med us", "tput gain", "lat gain"],
            rows,
        )

    report.row("\npaper: FPGA witness consistently outperforms at "
               "both latency and throughput; gains up to 1.14x/1.13x "
               "at the knees")

    # Shape: at every below-saturation point the FPGA witness wins.
    wins = 0
    comparisons = 0
    for shards, client_counts in CLIENT_SWEEP.items():
        for index in range(len(client_counts)):
            cpu = curves[(shards, "cpu")][index]
            fpga = curves[(shards, "fpga")][index]
            comparisons += 1
            if fpga.throughput_kops >= cpu.throughput_kops and \
                    fpga.median_latency_us <= cpu.median_latency_us:
                wins += 1
    assert wins / comparisons > 0.85

    # The knee-region gains land in the paper's range.
    cpu = curves[(1, "cpu")][3]    # 4 clients
    fpga = curves[(1, "fpga")][3]
    assert fpga.throughput_kops / cpu.throughput_kops == \
        pytest.approx(1.10, abs=0.06)
    assert cpu.median_latency_us / fpga.median_latency_us == \
        pytest.approx(1.12, abs=0.06)
