"""Telemetry probe overhead: the null path must be free, the attached
path must be cheap and behaviour-preserving.

``attach_probe(design, interval=None)`` attaches nothing — no
component joins the simulator and no state is wrapped, the same
contract as ``attach_faults(design, None)`` and the null tracer.  An
*attached* probe is read-only and purely timer-driven, so the
simulated run is bit-identical to the unprobed one; the only cost is
host wall-clock for the sample walk every interval.  This benchmark
runs the saturated MTU echo three ways and checks:

- the no-probe run reproduces the pre-PR goodput baseline within 2%
  (cycle-deterministic, so it reproduces it exactly);
- ``attach_probe(..., None)`` yields identical goodput *and* frame
  counts — the null fast path touches nothing;
- a probe at the default interval leaves simulated goodput identical
  (read-only sampling cannot perturb the design) and its wall-clock
  cost stays under 10% of the unprobed run.
"""

import time

from repro.designs import (
    FrameSink,
    FrameSource,
    GoodputMeter,
    UdpEchoDesign,
)
from repro.packet import IPv4Address, MacAddress, build_ipv4_udp_frame
from repro.telemetry.probe import DEFAULT_INTERVAL, attach_probe

CLIENT_IP = IPv4Address("10.0.0.1")
CLIENT_MAC = MacAddress("02:00:00:00:00:01")

CYCLES = 20_000

# MTU (1472 B payload) saturation goodput measured at the seed commit
# (pre-PR), same configuration as bench_fig7_udp_goodput at 1472 B.
PRE_PR_GOODPUT_GBPS = 113.230769


def goodput_mtu(interval):
    """(goodput Gbps, wall s, frames, samples) for one 20k-cycle run."""
    design = UdpEchoDesign(line_rate_bytes_per_cycle=None)
    probe = attach_probe(design, interval=interval)
    design.add_client(CLIENT_IP, CLIENT_MAC)
    payload = bytes(range(256)) * 5 + bytes(192)  # 1472 B
    frame = build_ipv4_udp_frame(CLIENT_MAC, design.server_mac,
                                 CLIENT_IP, design.server_ip, 5555,
                                 design.udp_port, payload)
    source = FrameSource(design.inject, lambda i: frame, rate=None)
    sink = FrameSink(design.eth_tx, keep_frames=False)
    meter = GoodputMeter(sink, warmup_frames=20)
    design.sim.add(source)
    design.sim.add(sink)
    started = time.perf_counter()
    for _ in range(CYCLES):
        design.sim.tick()
        meter.maybe_start()
    wall = time.perf_counter() - started
    samples = probe.samples_taken if probe is not None else 0
    return meter.goodput_gbps(), wall, sink.count, samples


def run_probe_overhead() -> dict:
    off_gbps, off_wall, off_frames, _ = goodput_mtu(None)
    on_gbps, on_wall, on_frames, samples = goodput_mtu(DEFAULT_INTERVAL)
    return {
        "off": {"goodput_gbps": off_gbps, "wall_s": off_wall,
                "frames": off_frames},
        "probed": {"goodput_gbps": on_gbps, "wall_s": on_wall,
                   "frames": on_frames, "samples": samples},
        "wall_overhead_pct": 100.0 * (on_wall - off_wall) / off_wall,
    }


def bench_probe_overhead(benchmark, report):
    results = benchmark.pedantic(run_probe_overhead, rounds=1,
                                 iterations=1)
    off = results["off"]
    probed = results["probed"]

    report.table(
        ["config", "goodput Gbps", "frames", "wall s", "cycles/s"],
        [["no probe", off["goodput_gbps"], off["frames"],
          off["wall_s"], CYCLES / off["wall_s"]],
         [f"probe @{DEFAULT_INTERVAL}", probed["goodput_gbps"],
          probed["frames"], probed["wall_s"],
          CYCLES / probed["wall_s"]]],
    )
    report.row()
    report.row(f"pre-PR baseline: {PRE_PR_GOODPUT_GBPS:.3f} Gbps; "
               f"no-probe delta "
               f"{100 * abs(off['goodput_gbps'] - PRE_PR_GOODPUT_GBPS) / PRE_PR_GOODPUT_GBPS:.2f}%")
    report.row(f"probe took {probed['samples']} samples; wall overhead "
               f"{results['wall_overhead_pct']:+.1f}%")

    # The null path (interval=None) attaches nothing, so goodput must
    # sit on the pre-PR pin — any drift means telemetry leaked into an
    # unprobed design's cycle behaviour.
    assert abs(off["goodput_gbps"] - PRE_PR_GOODPUT_GBPS) \
        / PRE_PR_GOODPUT_GBPS < 0.02
    # An attached probe is read-only: identical simulated behaviour.
    assert probed["goodput_gbps"] == off["goodput_gbps"]
    assert probed["frames"] == off["frames"]
    # Ticks cover cycles 0..CYCLES-1, so the sample due exactly at
    # CYCLES never fires.
    assert probed["samples"] == (CYCLES - 1) // DEFAULT_INTERVAL
