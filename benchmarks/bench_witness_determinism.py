"""Witness reply-latency distributions: hardware vs CPU.

The VR case study rests on one property (section VI-B): "the witness
can be designed in hardware to reply with low and reliable latency."
This benchmark measures the cycle-level witness tile's reply latency
over a loaded run — its p99 equals its median to within NoC
arbitration jitter — against the calibrated CPU witness model, whose
scheduling tail is what Fig 11/Table IV ultimately charge for.
"""

import pytest

from repro import params
from repro.apps.vr.tile import MSG_PREPARE, PrepareWire
from repro.designs import FrameSink, VrWitnessDesign
from repro.packet import (
    IPv4Address,
    MacAddress,
    build_ipv4_udp_frame,
    parse_frame,
)
from repro.sim.rng import SeededStreams

LEADER_IP = IPv4Address("10.0.0.2")
LEADER_MAC = MacAddress("02:00:00:00:00:02")

N_PREPARES = 400


def hardware_latencies() -> list[float]:
    """Per-prepare transit (us) through the witness design under a
    steady request stream."""
    design = VrWitnessDesign(shards=1, line_rate_bytes_per_cycle=None)
    design.add_client(LEADER_IP, LEADER_MAC)
    sink = FrameSink(design.eth_tx)
    design.sim.add(sink)
    latencies = []
    opnum = 0

    class Source:
        def __init__(self):
            self._free = 0

        def step(self, cycle):
            nonlocal opnum
            if cycle >= self._free and opnum < N_PREPARES:
                opnum += 1
                wire = PrepareWire(msg_type=MSG_PREPARE, view=0,
                                   opnum=opnum, shard=0,
                                   digest=b"deadbeef")
                frame = build_ipv4_udp_frame(
                    LEADER_MAC, design.server_mac, LEADER_IP,
                    design.server_ip, 7777, design.shard_port(0),
                    wire.pack(),
                )
                design.inject(frame, cycle)
                self._free = cycle + 25  # ~10 Mprepare/s offered

        def commit(self):
            pass

    design.sim.add(Source())
    previous = 0
    while sink.count < N_PREPARES and design.sim.cycle < 200_000:
        design.sim.tick()
        if sink.count > previous:
            previous = sink.count
            latencies.append(design.eth_tx.last_transit_cycles
                             * params.CYCLE_TIME_S * 1e6)
    return latencies


def cpu_latencies() -> list[float]:
    """Samples from the calibrated CPU witness service model."""
    rng = SeededStreams(7).stream("witness-model")
    samples = []
    for _ in range(N_PREPARES):
        cost = params.VR_CPU_WITNESS_SERVICE_S + rng.expovariate(
            1.0 / params.VR_CPU_WITNESS_JITTER_S)
        if rng.random() < params.VR_CPU_WITNESS_TAIL_PROB:
            cost += rng.expovariate(1.0 / params.VR_CPU_WITNESS_TAIL_S)
        samples.append(cost * 1e6)
    return samples


def run_determinism():
    return sorted(hardware_latencies()), sorted(cpu_latencies())


def bench_witness_determinism(benchmark, report):
    hardware, cpu = benchmark.pedantic(run_determinism, rounds=1,
                                       iterations=1)

    def stats(samples):
        n = len(samples)
        return (samples[n // 2], samples[int(n * 0.99)], samples[-1])

    hw_p50, hw_p99, hw_max = stats(hardware)
    cpu_p50, cpu_p99, cpu_max = stats(cpu)
    report.table(
        ["witness", "p50 us", "p99 us", "max us", "p99/p50"],
        [["Beehive tile (measured)", hw_p50, hw_p99, hw_max,
          f"{hw_p99 / hw_p50:.2f}"],
         ["CPU model (calibrated)", cpu_p50, cpu_p99, cpu_max,
          f"{cpu_p99 / cpu_p50:.2f}"]],
    )
    report.row()
    report.row("the hardware witness's p99 equals its median (NoC "
               "arbitration is the only variance); the CPU witness "
               "pays jitter always and a scheduler tail sometimes — "
               "the 'low and reliable latency' claim of section VI-B")

    assert len(hardware) == N_PREPARES
    assert hw_p99 / hw_p50 < 1.1     # deterministic
    assert cpu_p99 / cpu_p50 > 1.4   # jittery
    assert hw_p50 < 1.0              # sub-microsecond
    assert cpu_p50 > 5 * hw_p50