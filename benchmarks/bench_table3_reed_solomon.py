"""Table III: Reed-Solomon encoding — goodput and energy, 1-4 instances.

The Beehive accelerator (measured in the cycle simulator, with parity
verified against the reference codec) versus the CPU BackBlaze-style
baseline.  Paper: 15 -> 62 Gbps for 1 -> 4 tiles vs 2 -> 8 Gbps on
CPU (7.5-7.8x), at 16-22x better energy per operation.
"""

import os

import pytest

from repro import params
from repro.apps.reed_solomon import ReedSolomonCodec
from repro.apps.reed_solomon.cpu import CpuReedSolomonBaseline
from repro.designs import FrameSink, FrameSource, RsDesign
from repro.energy.model import FpgaEnergyModel, TileActivity
from repro.packet import (
    IPv4Address,
    MacAddress,
    build_ipv4_udp_frame,
    parse_frame,
)

CLIENT_IP = IPv4Address("10.0.0.1")
CLIENT_MAC = MacAddress("02:00:00:00:00:01")

PAPER = {
    # apps: (cpu mJ/op, fpga mJ/op, cpu Gbps, fpga Gbps)
    1: (1.1, 0.05, 2.0, 15.0),
    2: (0.59, 0.03, 4.0, 31.0),
    3: (0.41, 0.02, 6.0, 45.0),
    4: (0.32, 0.02, 8.0, 62.0),
}


def fpga_point(instances: int, cycles: int = 60_000):
    design = RsDesign(instances=instances,
                      line_rate_bytes_per_cycle=None)
    design.add_client(CLIENT_IP, CLIENT_MAC)
    request = os.urandom(4096)
    frame = build_ipv4_udp_frame(CLIENT_MAC, design.server_mac,
                                 CLIENT_IP, design.server_ip, 5555,
                                 7000, request)
    source = FrameSource(design.inject, lambda i: frame, rate=None)
    sink = FrameSink(design.eth_tx)
    design.sim.add(source)
    design.sim.add(sink)
    design.sim.run(cycles)

    # Functional check: the accelerator's parity is the codec's parity.
    reply = parse_frame(sink.frames[0][0])
    assert reply.payload == ReedSolomonCodec(8, 2).encode_request(
        request)

    elapsed = design.sim.cycle * params.CYCLE_TIME_S
    gbps = design.total_requests * 4096 * 8 / elapsed / 1e9
    ops = design.total_requests / elapsed
    stack_util = min(1.0, gbps / 100.0)
    tiles = [TileActivity(f"stack{i}", stack_util) for i in range(7)]
    tiles += [TileActivity(f"rs{i}", 1.0) for i in range(instances)]
    energy = FpgaEnergyModel().mj_per_op(tiles, ops)
    return gbps, energy


def run_table3():
    baseline = CpuReedSolomonBaseline()
    rows = []
    for instances in (1, 2, 3, 4):
        cpu = baseline.measure(instances)
        fpga_gbps, fpga_energy = fpga_point(instances)
        rows.append((instances, cpu.energy_mj_per_op, fpga_energy,
                     cpu.goodput_gbps, fpga_gbps))
    return rows


def bench_table3_reed_solomon(benchmark, report):
    rows = benchmark.pedantic(run_table3, rounds=1, iterations=1)

    table_rows = []
    for instances, cpu_energy, fpga_energy, cpu_gbps, fpga_gbps in rows:
        p_cpu_e, p_fpga_e, p_cpu_g, p_fpga_g = PAPER[instances]
        table_rows.append([
            instances,
            f"{cpu_energy:.2f} ({p_cpu_e})",
            f"{fpga_energy:.3f} ({p_fpga_e})",
            f"{cpu_energy / fpga_energy:.0f}x (paper "
            f"{p_cpu_e / p_fpga_e:.0f}x)",
            f"{cpu_gbps:.0f} ({p_cpu_g:.0f})",
            f"{fpga_gbps:.0f} ({p_fpga_g:.0f})",
            f"{fpga_gbps / cpu_gbps:.1f}x (paper "
            f"{p_fpga_g / p_cpu_g:.1f}x)",
        ])
    report.row("measured (paper) per column:")
    report.table(
        ["apps", "CPU mJ/op", "FPGA mJ/op", "efficiency",
         "CPU Gbps", "FPGA Gbps", "speedup"],
        table_rows,
    )

    for instances, cpu_energy, fpga_energy, cpu_gbps, fpga_gbps in rows:
        assert fpga_gbps == pytest.approx(15.0 * instances, rel=0.08)
        assert fpga_gbps / cpu_gbps == pytest.approx(7.5, rel=0.1)
        efficiency = cpu_energy / fpga_energy
        assert 14 <= efficiency <= 26  # paper: 16-22x
