"""Table VI: lines of code to instantiate one more service instance.

The paper's flexibility proxy: the XML lines declaring an extra tile
(plus the lines adding it as a destination elsewhere) and the
generated top-level Verilog lines.  We measure the same three
quantities over our XML schema and generator for the Reed-Solomon and
VR designs.  Our schema is somewhat terser than the paper's, so the
absolute counts run lower; the claim that holds is the *scale* —
adding a replicated service instance costs tens of declarative lines,
not a re-engineering effort.
"""

from repro.config import build_design, design_from_xml, instantiation_loc
from repro.config.examples import RS_DESIGN_XML, VR_DESIGN_XML

PAPER = {
    "rs3": ("25 + 6", 13),
    "witness3": ("18 + 6 x #UDP-tiles", 17),
}


def run_table6():
    results = {}
    for xml, tile in ((RS_DESIGN_XML, "rs3"),
                      (VR_DESIGN_XML, "witness3")):
        spec = design_from_xml(xml)
        build_design(spec)  # the design is genuinely buildable
        results[tile] = (spec.name, instantiation_loc(spec, tile))
    return results


def bench_table6_loc(benchmark, report):
    results = benchmark.pedantic(run_table6, rounds=1, iterations=1)

    rows = []
    for tile, (design_name, loc) in results.items():
        paper_xml, paper_top = PAPER[tile]
        rows.append([
            design_name, tile,
            f"{loc.xml_declaration} + {loc.xml_destination}",
            paper_xml, loc.top_level, paper_top,
        ])
    report.table(
        ["design", "added tile", "XML decl + dest", "paper XML",
         "top-level", "paper top-level"],
        rows,
    )
    report.row()
    report.row("(our XML schema is terser than the paper's; the "
               "order-of-magnitude — tens of lines per instance — is "
               "the reproduced claim)")

    for tile, (_, loc) in results.items():
        assert loc.xml_total < 40
        assert loc.top_level < 30
        assert loc.xml_declaration >= 5
