"""Tracing overhead: the null tracer must be (nearly) free.

Every instrumentation site added for the observability subsystem is
guarded by ``if tracer.enabled:`` against the shared no-op
:data:`NULL_TRACER`, so an untraced run should behave cycle-for-cycle
like the pre-instrumentation code and cost almost nothing in wall
clock.  This benchmark runs the Fig-7 style 64 B UDP goodput experiment
three ways and checks:

- tracing off (the default) reproduces the pre-PR goodput baseline
  within 5% (it is cycle-deterministic, so it actually reproduces it
  exactly);
- tracing on yields the *identical* simulated goodput — recording may
  cost wall-clock time but must never perturb simulated timing;
- the wall-clock cost of the dormant instrumentation is reported
  alongside the active-tracer cost.
"""

import time

from repro.designs import (
    FrameSink,
    FrameSource,
    GoodputMeter,
    UdpEchoDesign,
)
from repro.packet import IPv4Address, MacAddress, build_ipv4_udp_frame
from repro.telemetry.trace import Tracer, attach_tracer

CLIENT_IP = IPv4Address("10.0.0.1")
CLIENT_MAC = MacAddress("02:00:00:00:00:01")

CYCLES = 20_000

# 64 B saturation goodput measured at the seed commit (pre-PR), same
# configuration as bench_fig7_udp_goodput.beehive_goodput(64).
PRE_PR_GOODPUT_GBPS = 9.846154


def goodput_64b(traced: bool) -> tuple[float, float, int]:
    """(goodput Gbps, wall seconds, trace events) for one 20k-cycle run."""
    design = UdpEchoDesign(udp_port=7, line_rate_bytes_per_cycle=None)
    design.add_client(CLIENT_IP, CLIENT_MAC)
    tracer = attach_tracer(design, Tracer()) if traced else None
    frame = build_ipv4_udp_frame(CLIENT_MAC, design.server_mac,
                                 CLIENT_IP, design.server_ip, 5555, 7,
                                 bytes(64))
    source = FrameSource(design.inject, lambda i: frame, rate=None)
    sink = FrameSink(design.eth_tx, keep_frames=False)
    meter = GoodputMeter(sink, warmup_frames=30)
    design.sim.add(source)
    design.sim.add(sink)
    started = time.perf_counter()
    for _ in range(CYCLES):
        design.sim.tick()
        meter.maybe_start()
    wall = time.perf_counter() - started
    events = 0
    if tracer is not None:
        events = (len(tracer.spans) + len(tracer.link_flits)
                  + len(tracer.drops))
    return meter.goodput_gbps(), wall, events


def run_overhead():
    off_gbps, off_wall, _ = goodput_64b(traced=False)
    on_gbps, on_wall, events = goodput_64b(traced=True)
    return off_gbps, off_wall, on_gbps, on_wall, events


def bench_trace_overhead(benchmark, report):
    off_gbps, off_wall, on_gbps, on_wall, events = benchmark.pedantic(
        run_overhead, rounds=1, iterations=1)

    report.table(
        ["config", "goodput Gbps", "wall s", "cycles/s"],
        [["tracing off (null)", off_gbps, off_wall, CYCLES / off_wall],
         ["tracing on", on_gbps, on_wall, CYCLES / on_wall]],
    )
    report.row()
    report.row(f"pre-PR baseline: {PRE_PR_GOODPUT_GBPS:.3f} Gbps; "
               f"null-tracer delta "
               f"{100 * abs(off_gbps - PRE_PR_GOODPUT_GBPS) / PRE_PR_GOODPUT_GBPS:.2f}%")
    report.row(f"active tracer recorded {events} events, "
               f"wall-clock x{on_wall / off_wall:.2f} vs off")

    # The null tracer costs <5% of the pre-PR baseline goodput (the
    # simulation is deterministic, so any drift means the
    # instrumentation changed cycle behaviour).
    assert abs(off_gbps - PRE_PR_GOODPUT_GBPS) / PRE_PR_GOODPUT_GBPS < 0.05
    # Recording must observe, never perturb: identical simulated rate.
    assert on_gbps == off_gbps
    assert events > 0
