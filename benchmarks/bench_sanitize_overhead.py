"""Sanitizer overhead: an unsanitized run must be exactly as fast.

The sanitizer instruments the kernel through a *separate* entry point
(``CycleSimulator.sanitized_tick``): the normal ``tick`` path carries
no observer hooks, no fingerprinting, and no ledger reads.  This
benchmark pins that contract the same way ``bench_fault_overhead``
pins the dormant fault hooks:

- a plain saturated MTU echo run reproduces the pre-PR goodput
  baseline within 2% (cycle-deterministic, so in practice exactly);
- a full ``analyze_dynamic`` sweep over the same design is timed
  alongside for scale — the cost you opt into with ``--sanitize``.
"""

import time

from repro.analysis import analyze_dynamic
from repro.designs import (
    FrameSink,
    FrameSource,
    GoodputMeter,
    UdpEchoDesign,
)
from repro.packet import IPv4Address, MacAddress, build_ipv4_udp_frame

CLIENT_IP = IPv4Address("10.0.0.1")
CLIENT_MAC = MacAddress("02:00:00:00:00:01")

CYCLES = 20_000
SANITIZE_CYCLES = 2_000

# MTU (1472 B payload) saturation goodput measured at the seed commit
# (pre-PR), same configuration as bench_fig7_udp_goodput at 1472 B.
PRE_PR_GOODPUT_GBPS = 113.230769


def goodput_mtu() -> tuple[float, float]:
    """(goodput Gbps, wall seconds) for one plain 20k-cycle run."""
    design = UdpEchoDesign(line_rate_bytes_per_cycle=None)
    design.add_client(CLIENT_IP, CLIENT_MAC)
    payload = bytes(range(256)) * 5 + bytes(192)  # 1472 B
    frame = build_ipv4_udp_frame(CLIENT_MAC, design.server_mac,
                                 CLIENT_IP, design.server_ip, 5555,
                                 design.udp_port, payload)
    source = FrameSource(design.inject, lambda i: frame, rate=None)
    sink = FrameSink(design.eth_tx, keep_frames=False)
    meter = GoodputMeter(sink, warmup_frames=20)
    design.sim.add(source)
    design.sim.add(sink)
    started = time.perf_counter()
    for _ in range(CYCLES):
        design.sim.tick()
        meter.maybe_start()
    wall = time.perf_counter() - started
    return meter.goodput_gbps(), wall


def sanitize_sweep() -> tuple[int, float]:
    """(findings, wall seconds) for a default sanitizer sweep."""
    started = time.perf_counter()
    report = analyze_dynamic(UdpEchoDesign, name="udp_echo",
                             cycles=SANITIZE_CYCLES)
    wall = time.perf_counter() - started
    assert report.findings == [], report.render()
    return len(report.findings), wall


def run_overhead():
    off_gbps, off_wall = goodput_mtu()
    _findings, sweep_wall = sanitize_sweep()
    return off_gbps, off_wall, sweep_wall


def bench_sanitize_overhead(benchmark, report):
    off_gbps, off_wall, sweep_wall = benchmark.pedantic(
        run_overhead, rounds=1, iterations=1)

    report.table(
        ["config", "goodput Gbps", "wall s", "cycles/s"],
        [["plain run (no sanitizer)", off_gbps, off_wall,
          CYCLES / off_wall]],
    )
    report.row()
    report.row(f"pre-PR baseline: {PRE_PR_GOODPUT_GBPS:.3f} Gbps; "
               f"delta "
               f"{100 * abs(off_gbps - PRE_PR_GOODPUT_GBPS) / PRE_PR_GOODPUT_GBPS:.2f}%")
    report.row(f"opt-in sanitizer sweep (4 passes, "
               f"{SANITIZE_CYCLES} cycles x 3 runs): "
               f"{sweep_wall:.2f} s, clean")

    # Strictly opt-in: with no --sanitize there is no observer, no
    # shadow stepping, and no ledger — the plain tick path reproduces
    # the pre-PR goodput within 2% (deterministically, exactly).
    assert abs(off_gbps - PRE_PR_GOODPUT_GBPS) / PRE_PR_GOODPUT_GBPS < 0.02
