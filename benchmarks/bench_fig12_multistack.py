"""Figure 12: UDP echo goodput with duplicated network stacks.

One versus two complete UDP stacks behind the front-end load-balancer
tile.  Expected shape: two stacks roughly double small-packet goodput;
the curves converge to the link maximum at large payloads; and the
load balancer itself serialises at 4 cycles per 64 B packet (3 NoC
flits + 1 recovery), its 32 Gbps ceiling.
"""

import itertools

import pytest

from repro import params
from repro.designs import FrameSink
from repro.designs.multi_stack import MultiStackDesign
from repro.packet import IPv4Address, MacAddress, build_ipv4_udp_frame

CLIENT_MAC = MacAddress("02:00:00:00:00:01")
SIZES = (64, 256, 1024, 4096)


def multistack_goodput(stacks: int, size: int,
                       cycles: int = 25_000) -> float:
    design = MultiStackDesign(stacks=stacks,
                              line_rate_bytes_per_cycle=None)
    ips = [IPv4Address(f"10.0.1.{i}") for i in range(1, 40)]
    for ip in ips:
        design.add_client(ip, CLIENT_MAC)
    frames = [
        build_ipv4_udp_frame(CLIENT_MAC, design.server_mac, ip,
                             design.server_ip, 5000 + j, 7,
                             bytes(size))
        for j, ip in enumerate(ips)
    ]
    cycler = itertools.cycle(frames)

    class Source:
        def __init__(self):
            self._free = 0

        def step(self, cycle):
            if cycle >= self._free:
                frame = next(cycler)
                design.inject(frame, cycle)
                self._free = cycle + max(1, (len(frame) + 24) // 64)

        def commit(self):
            pass

    sinks = [FrameSink(stack.eth_tx, keep_frames=False)
             for stack in design.stacks]
    design.sim.add(Source())
    design.sim.add_all(sinks)
    design.sim.run(cycles)
    payload = sum(sink.payload_bytes for sink in sinks)
    return payload * 8 / (design.sim.cycle
                          * params.CYCLE_TIME_S) / 1e9


def lb_ceiling_gbps(cycles: int = 8_000) -> float:
    """The load balancer alone: 64 B packets straight to a sink."""
    from repro.sim.kernel import CycleSimulator
    from repro.noc.mesh import Mesh
    from repro.tiles.loadbalancer import FlowHashLoadBalancerTile
    from repro.tiles.base import Tile

    class Sink(Tile):
        def __init__(self, *args, **kwargs):
            kwargs.setdefault("occupancy", 1)
            kwargs.setdefault("parse_latency", 1)
            super().__init__(*args, **kwargs)
            self.count = 0

        def handle_message(self, message, cycle):
            self.count += 1
            return []

    sim = CycleSimulator()
    mesh = Mesh(2, 1)
    lb = FlowHashLoadBalancerTile("lb", mesh, (0, 0))
    sink = Sink("sink", mesh, (1, 0))
    lb.add_stack(sink.coord)
    mesh.register(sim)
    sim.add_all([lb, sink])
    frame = build_ipv4_udp_frame(CLIENT_MAC, CLIENT_MAC,
                                 IPv4Address("10.0.0.1"),
                                 IPv4Address("10.0.0.2"), 1, 7,
                                 bytes(64))
    for _ in range(cycles):
        if len(lb._rx_ready) < 4:
            lb.push_frame(frame, sim.cycle)
        sim.tick()
    return sink.count * 64 * 8 / (sim.cycle
                                  * params.CYCLE_TIME_S) / 1e9


def run_fig12():
    rows = []
    for size in SIZES:
        one = multistack_goodput(1, size)
        two = multistack_goodput(2, size)
        rows.append((size, one, two))
    return rows, lb_ceiling_gbps()


def bench_fig12_multistack(benchmark, report):
    rows, ceiling = benchmark.pedantic(run_fig12, rounds=1,
                                       iterations=1)

    report.table(
        ["payload B", "1 stack Gbps", "2 stacks Gbps", "ratio"],
        [[size, one, two, f"{two / one:.2f}x"]
         for size, one, two in rows],
    )
    report.row()
    report.row(f"load-balancer ceiling at 64 B: {ceiling:.1f} Gbps "
               "(paper: 4 cycles/packet -> 32 Gbps)")

    by_size = {size: (one, two) for size, one, two in rows}
    one64, two64 = by_size[64]
    assert two64 / one64 == pytest.approx(2.0, rel=0.15)  # doubles
    one_big, two_big = by_size[4096]
    assert two_big / one_big < 1.15          # converged at large sizes
    assert ceiling == pytest.approx(32.0, rel=0.15)
