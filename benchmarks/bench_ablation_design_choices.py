"""Ablations over the reproduction's design choices.

Not a paper table — sensitivity checks on the knobs DESIGN.md calls
out, so a reader can see *why* the calibrated defaults behave like the
paper:

1. tile buffering: jumbo-frame goodput vs per-tile buffer, showing the
   pipeline bubble when a tile cannot hold two max-size messages (the
   store-and-forward model's one artefact, and why the default is
   sized at ~2 jumbo messages);
2. router input FIFO depth: shallow FIFOs already sustain full
   throughput under credit backpressure (why OpenPiton-style small
   buffers are enough);
3. TCP engine occupancy: single-connection KReq/s tracks 250 MHz /
   occupancy (the Fig 9 calibration is structural, not a fit);
4. control-plane isolation: saturating the *separate* control NoC
   does not perturb data-plane goodput (the section IV-F rationale).
"""

import pytest

from repro import params
from repro.control.messages import CounterRead
from repro.designs import (
    FrameSink,
    FrameSource,
    GoodputMeter,
    UdpEchoDesign,
)
from repro.designs.managed_stack import ManagedNatEchoDesign
from repro.noc import Mesh, NocMessage
from repro.packet import IPv4Address, MacAddress, build_ipv4_udp_frame
from repro.sim.kernel import CycleSimulator
from repro.tiles.base import Tile

CLIENT_IP = IPv4Address("10.0.0.1")
CLIENT_MAC = MacAddress("02:00:00:00:00:01")


def echo_goodput(design, size, cycles):
    design.add_client(CLIENT_IP, CLIENT_MAC)
    frame = build_ipv4_udp_frame(CLIENT_MAC, design.server_mac,
                                 CLIENT_IP, design.server_ip, 5555, 7,
                                 bytes(size))
    source = FrameSource(design.inject, lambda i: frame, rate=None)
    sink = FrameSink(design.eth_tx, keep_frames=False)
    meter = GoodputMeter(sink, warmup_frames=20)
    design.sim.add(source)
    design.sim.add(sink)
    for _ in range(cycles):
        design.sim.tick()
        meter.maybe_start()
    return meter.goodput_gbps()


def buffer_ablation():
    rows = []
    for buffer_flits in (64, 120, 320):
        design = UdpEchoDesign(udp_port=7,
                               line_rate_bytes_per_cycle=None)
        for tile in design.tiles:
            tile.buffer_flits = buffer_flits
        rows.append((buffer_flits,
                     echo_goodput(design, 9000, 60_000)))
    return rows


class _Relay(Tile):
    def __init__(self, *args, dest, **kwargs):
        kwargs.setdefault("occupancy", 1)
        kwargs.setdefault("parse_latency", 1)
        super().__init__(*args, **kwargs)
        self.dest = dest

    def handle_message(self, message, cycle):
        if self.dest is None:
            return []
        return [self.make_message(self.dest, metadata=message.metadata,
                                  data=message.data)]


def fifo_depth_ablation():
    rows = []
    for depth in (1, 2, 4, 8):
        sim = CycleSimulator()
        mesh = Mesh(3, 1, fifo_depth=depth)
        src = mesh.attach((0, 0))
        relay = _Relay("relay", mesh, (1, 0), dest=(2, 0))
        sink = _Relay("sink", mesh, (2, 0), dest=None)
        mesh.register(sim)
        sim.add_all([relay, sink])
        for i in range(60):
            src.send(NocMessage(dst=(1, 0), src=(0, 0), metadata=i,
                                data=bytes(512)))
        cycles = sim.run_until(lambda: sink.messages_in == 60,
                               max_cycles=10_000)
        flits = 60 * 10  # hdr + meta + 8 data each
        rows.append((depth, flits / cycles))
    return rows


def tcp_occupancy_ablation():
    from repro.designs.tcp_stack import TcpServerDesign
    from repro.tcp.app import TcpSourceAppTile
    from repro.tcp.peer import SoftTcpPeer

    rows = []
    for occupancy in (47, 94, 188):
        design = TcpServerDesign(
            tcp_port=5000, app_tile_cls=TcpSourceAppTile,
            request_size=64, mss=64, chunk_size=16384,
            line_rate_bytes_per_cycle=50.0,
        )
        design.tcp_tx.occupancy = occupancy
        design.add_client(CLIENT_IP, CLIENT_MAC)
        peer = SoftTcpPeer(design, CLIENT_IP, CLIENT_MAC,
                           design.server_ip, 5000, wire_cycles=100,
                           service_cycles=2, window=60_000)
        design.sim.add(peer)
        peer.connect()
        design.sim.run(30_000)
        base = len(peer.received)
        start = design.sim.cycle
        design.sim.run(40_000)
        rate = (len(peer.received) - base) / 64 / (
            (design.sim.cycle - start) * params.CYCLE_TIME_S) / 1e3
        rows.append((occupancy, rate, 250e3 / occupancy))
    return rows


def control_plane_isolation():
    def run(with_control_storm: bool) -> float:
        design = ManagedNatEchoDesign(udp_port=7)
        design.map_client(IPv4Address("172.16.0.1"), CLIENT_IP,
                          CLIENT_MAC)
        if with_control_storm:
            # Saturate the control NoC with telemetry reads.
            nat_ep = design.endpoints["nat"]
            controller_ep = design.endpoints["controller"]

            class Storm:
                def step(self, cycle):
                    controller_ep.send(
                        nat_ep.coord,
                        CounterRead(name="translations",
                                    reply_to=controller_ep.coord),
                    )
                    controller_ep.pop_replies()

                def commit(self):
                    pass

            design.sim.add(Storm())
        design.eth_tx.line_rate = None
        return echo_goodput(design, 256, 20_000)

    return run(False), run(True)


def run_ablations():
    return {
        "buffer": buffer_ablation(),
        "fifo": fifo_depth_ablation(),
        "tcp": tcp_occupancy_ablation(),
        "control": control_plane_isolation(),
    }


def bench_ablation_design_choices(benchmark, report):
    results = benchmark.pedantic(run_ablations, rounds=1, iterations=1)

    report.row("1) per-tile buffering vs 9000 B goodput (a cap "
               "below one 143-flit jumbo message forces a "
               "drain-before-next-message bubble):")
    report.table(["buffer flits", "goodput Gbps"], results["buffer"])
    report.row("\n2) router input FIFO depth vs sustained flit rate:")
    report.table(["fifo depth", "flits/cycle"], results["fifo"])
    report.row("\n3) TCP engine occupancy vs measured KReq/s "
               "(model: 250e3/occupancy):")
    report.table(["occupancy cy", "measured KReq/s", "model KReq/s"],
                 results["tcp"])
    quiet, stormy = results["control"]
    report.row(f"\n4) data-plane goodput without/with a control-NoC "
               f"storm: {quiet:.1f} / {stormy:.1f} Gbps "
               "(separate NoC -> no contention, section IV-F)")

    buffers = dict(results["buffer"])
    assert buffers[320] > buffers[64] * 1.05   # the bubble is real
    fifo = dict(results["fifo"])
    assert fifo[4] > 0.9                        # shallow FIFOs suffice
    assert fifo[4] >= fifo[1]
    for occupancy, measured, model in results["tcp"]:
        assert measured == pytest.approx(model, rel=0.06)
    assert stormy == pytest.approx(quiet, rel=0.05)  # isolation holds
