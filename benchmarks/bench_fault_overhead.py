"""Fault-injection overhead: a null FaultPlan must be (nearly) free.

The fault hooks sit on the hottest paths in the simulator — the frame
inject boundary, every LocalPort ejection, every tile step — so each
is a class-attribute default (``fault_stalled``, ``_fault_eject``,
``_fault_frozen``) that costs one attribute load when no plan targets
the component, and ``attach_faults(design, None)`` leaves the design
completely unwrapped.  This benchmark runs the saturated MTU echo
three ways and checks:

- no plan reproduces the pre-PR goodput baseline within 2% (the
  simulation is cycle-deterministic, so it actually reproduces it
  exactly);
- an explicitly attached *null* plan yields the identical goodput —
  the fast path must not wrap the wire or schedule an engine;
- an active wire plan's cost is reported alongside for scale.
"""

import time

from repro.designs import (
    FrameSink,
    FrameSource,
    GoodputMeter,
    UdpEchoDesign,
)
from repro.faults import FaultPlan
from repro.packet import IPv4Address, MacAddress, build_ipv4_udp_frame

CLIENT_IP = IPv4Address("10.0.0.1")
CLIENT_MAC = MacAddress("02:00:00:00:00:01")

CYCLES = 20_000

# MTU (1472 B payload) saturation goodput measured at the seed commit
# (pre-PR), same configuration as bench_fig7_udp_goodput at 1472 B.
PRE_PR_GOODPUT_GBPS = 113.230769


def goodput_mtu(plan) -> tuple[float, float, int]:
    """(goodput Gbps, wall seconds, fault events) for one 20k-cycle run."""
    design = UdpEchoDesign(line_rate_bytes_per_cycle=None,
                           fault_plan=plan)
    design.add_client(CLIENT_IP, CLIENT_MAC)
    payload = bytes(range(256)) * 5 + bytes(192)  # 1472 B
    frame = build_ipv4_udp_frame(CLIENT_MAC, design.server_mac,
                                 CLIENT_IP, design.server_ip, 5555,
                                 design.udp_port, payload)
    source = FrameSource(design.inject, lambda i: frame, rate=None)
    sink = FrameSink(design.eth_tx, keep_frames=False)
    meter = GoodputMeter(sink, warmup_frames=20)
    design.sim.add(source)
    design.sim.add(sink)
    started = time.perf_counter()
    for _ in range(CYCLES):
        design.sim.tick()
        meter.maybe_start()
    wall = time.perf_counter() - started
    engine = design.fault_engine
    events = sum(engine.counters.values()) if engine is not None else 0
    return meter.goodput_gbps(), wall, events


def run_overhead():
    off_gbps, off_wall, _ = goodput_mtu(None)
    null_gbps, null_wall, _ = goodput_mtu(FaultPlan(seed=1))
    active = FaultPlan(seed=1).wire(drop=0.01, corrupt=0.01, delay=0.05)
    act_gbps, act_wall, events = goodput_mtu(active)
    return off_gbps, off_wall, null_gbps, null_wall, act_gbps, act_wall, events


def bench_fault_overhead(benchmark, report):
    (off_gbps, off_wall, null_gbps, null_wall,
     act_gbps, act_wall, events) = benchmark.pedantic(
        run_overhead, rounds=1, iterations=1)

    report.table(
        ["config", "goodput Gbps", "wall s", "cycles/s"],
        [["no plan", off_gbps, off_wall, CYCLES / off_wall],
         ["null plan attached", null_gbps, null_wall, CYCLES / null_wall],
         ["active wire plan", act_gbps, act_wall, CYCLES / act_wall]],
    )
    report.row()
    report.row(f"pre-PR baseline: {PRE_PR_GOODPUT_GBPS:.3f} Gbps; "
               f"no-plan delta "
               f"{100 * abs(off_gbps - PRE_PR_GOODPUT_GBPS) / PRE_PR_GOODPUT_GBPS:.2f}%")
    report.row(f"active plan injected {events} faults, "
               f"goodput {act_gbps:.3f} Gbps")

    # The dormant hooks cost <2% of the pre-PR baseline goodput (the
    # simulation is deterministic, so any drift means a fault hook
    # changed cycle behaviour with no plan present).
    assert abs(off_gbps - PRE_PR_GOODPUT_GBPS) / PRE_PR_GOODPUT_GBPS < 0.02
    # A null plan takes the fast path: identical simulated goodput.
    assert null_gbps == off_gbps
    # The active plan must actually have injected something.
    assert events > 0
