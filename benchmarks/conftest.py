"""Shared reporting helpers for the paper-reproduction benchmarks.

Every benchmark regenerates one of the paper's tables or figures and
prints a paper-vs-measured comparison (bypassing pytest's capture so
the tables are visible in normal runs).  Timing-wise, each benchmark
wraps its experiment in the pytest-benchmark fixture so
``pytest benchmarks/ --benchmark-only`` also reports how long each
reproduction takes.
"""

from __future__ import annotations

import pytest


class Report:
    """Collects and prints one experiment's comparison table."""

    def __init__(self, title: str, capsys):
        self.title = title
        self.capsys = capsys
        self.lines: list[str] = []

    def row(self, text: str = "") -> None:
        self.lines.append(text)

    def table(self, headers: list[str], rows: list[list]) -> None:
        widths = [len(h) for h in headers]
        rendered = [[self._fmt(cell) for cell in row] for row in rows]
        for row in rendered:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))
        header = "  ".join(h.rjust(w) for h, w in zip(headers, widths))
        self.row(header)
        self.row("-" * len(header))
        for row in rendered:
            self.row("  ".join(c.rjust(w) for c, w in zip(row, widths)))

    @staticmethod
    def _fmt(cell) -> str:
        if isinstance(cell, float):
            return f"{cell:.2f}"
        return str(cell)

    def emit(self) -> None:
        with self.capsys.disabled():
            print()
            print("=" * 72)
            print(self.title)
            print("=" * 72)
            for line in self.lines:
                print(line)


@pytest.fixture
def report(request, capsys):
    """A Report named after the benchmark, auto-emitted at teardown."""
    rep = Report(request.node.name, capsys)
    yield rep
    rep.emit()
