"""Flat (array-of-struct) mesh backend speed vs the object mesh.

``repro.noc.flatmesh`` compiles the whole mesh into flat parallel
arrays stepped by one batch loop per cycle, replacing one ``Router``
object and five ``StagedFifo`` objects per router (see the module
docstring for the equivalence argument; the differential suite in
``tests/test_kernel_equivalence.py`` pins bit-identity).  This
benchmark measures what that buys and writes ``BENCH_mesh.json``:

- *idle-heavy*: the 4x2 UDP echo design paced at 10% line rate.  The
  mesh is quiescent most of the time, so both backends ride the
  activity-scheduled kernel's idle skipping and run near parity; the
  row guards against the flat backend taxing the idle path.
- *saturating*: the section VII-I scaled echo design (22 application
  tiles on the paper's 7x4 U200 floorplan) under back-to-back
  MTU-sized requests.  ~115 schedulable components collapse into one
  batch-stepped core, and wormholes stretch across the whole fabric:
  this is where the flat backend pays off (~1.7x measured locally).
- *tiles saturating*: the tile-engine axis — ``tile_backend="flat"``
  vs ``"object"`` with the mesh held flat on both sides.  A 12x10
  scaled echo (114 application tiles) under back-to-back MTU-sized
  requests, on the *naive* kernel so the kernel treats both engines
  identically (step everything, every cycle) and the measured gap is
  the tile engine's alone: the object engine pays one Python
  ``Tile.step`` dispatch per tile per cycle while
  :class:`~repro.tiles.flatcore.FlatTileCore` batch-steps the busy
  subset from one loop.  The advantage grows with tile count, which
  is the point of a batch engine (~1.5-1.6x measured locally at 162
  tiles).
- *16x16 scalability*: the same scaled stack generalised to a 16x16
  mesh (256 routers, 70 tiles) — a size whose object-backend
  construction and stepping costs push past comfortable CI budgets.
  The row runs flat-only and completes in seconds, demonstrating the
  sweep headroom ``bench_sec7i_scalability`` exploits.

All two-backend rows assert bit-identical results (frame bytes and
emit cycles) across backends — speed must never change simulated
behaviour.
"""

import json
import time
from pathlib import Path

from repro.designs import FrameSink, FrameSource, UdpEchoDesign
from repro.designs.scaled_echo import ScaledEchoDesign
from repro.noc.message import reset_id_counters
from repro.packet import IPv4Address, MacAddress, build_ipv4_udp_frame

CLIENT_IP = IPv4Address("10.0.0.1")
CLIENT_MAC = MacAddress("02:00:00:00:00:01")

LINE_RATE = 50.0                 # bytes/cycle, the modelled MAC rate
IDLE_RATE = LINE_RATE / 10.0     # "10% line rate" injection pacing
PAYLOAD = 1458                   # MTU-sized UDP payload
IDLE_CYCLES = 100_000
SAT_CYCLES = 20_000
SWEEP_CYCLES = 8_000
SWEEP_APPS = 64                  # 16x16 hosts up to 250
REPS = 2                         # best-of-N wall clock per config

# Tile-engine axis operating point: big enough that per-tile Python
# dispatch dominates the object engine (the flat engine's win scales
# with tile count), on the naive kernel so scheduling treats both
# engines identically.  Best-of-3 because the ratio floor is tight.
TILE_APPS = 162
TILE_WIDTH = 14
TILE_HEIGHT = 12
TILE_REPS = 3

# Hard regression floors.  The saturating point measures ~1.7x
# locally (best-of-2); the floors leave headroom for noisy CI runners
# while still catching a flat backend that has stopped paying off.
MIN_SAT_SPEEDUP = 1.4
MIN_IDLE_SPEEDUP = 0.8
# Tile axis: ~1.5-1.6x measured locally (best-of-3, 162 tiles).
MIN_TILE_SPEEDUP = 1.4

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_mesh.json"


def _run_udp(backend: str, rate: float | None, cycles: int):
    """Idle-heavy operating point: the 4x2 UDP echo design."""
    reset_id_counters()
    design = UdpEchoDesign(udp_port=7,
                           line_rate_bytes_per_cycle=LINE_RATE,
                           mesh_backend=backend)
    design.add_client(CLIENT_IP, CLIENT_MAC)
    frame = build_ipv4_udp_frame(CLIENT_MAC, design.server_mac,
                                 CLIENT_IP, design.server_ip, 5555, 7,
                                 bytes(PAYLOAD))
    source = FrameSource(design.inject, lambda i: frame, rate=rate)
    sink = FrameSink(design.eth_tx)
    design.sim.add(source)
    design.sim.add(sink)
    started = time.perf_counter()
    design.sim.run(cycles)
    wall = time.perf_counter() - started
    return wall, list(sink.frames)


def _run_scaled(backend: str, cycles: int, n_apps: int = 22,
                width: int | None = None, height: int | None = None,
                tile_backend: str = "object",
                kernel: str = "scheduled"):
    """Saturating operating point: the section VII-I scaled echo."""
    reset_id_counters()
    design = ScaledEchoDesign(n_apps=n_apps, mesh_backend=backend,
                              width=width, height=height,
                              tile_backend=tile_backend, kernel=kernel)
    design.add_client(CLIENT_IP, CLIENT_MAC)
    frames = [build_ipv4_udp_frame(CLIENT_MAC, design.server_mac,
                                   CLIENT_IP, design.server_ip,
                                   5000 + i, 7, bytes(PAYLOAD))
              for i in range(n_apps)]
    source = FrameSource(design.inject,
                         lambda i: frames[i % len(frames)], rate=None)
    sink = FrameSink(design.eth_tx)
    design.sim.add(source)
    design.sim.add(sink)
    started = time.perf_counter()
    design.sim.run(cycles)
    wall = time.perf_counter() - started
    return wall, list(sink.frames)


def _run_tiles(tile_backend: str, cycles: int):
    """Tile-engine axis: mesh held flat, naive kernel on both sides."""
    return _run_scaled("flat", cycles, TILE_APPS, TILE_WIDTH,
                       TILE_HEIGHT, tile_backend=tile_backend,
                       kernel="naive")


def _measure(run, *args, reps: int = REPS) -> dict:
    """Both backends on one workload, best-of-``reps`` wall clock.

    Reps interleave object/flat so slow host drift cancels instead of
    biasing whichever backend ran last.
    """
    object_wall, object_frames = run("object", *args)
    flat_wall, flat_frames = run("flat", *args)
    for _ in range(reps - 1):
        object_wall = min(object_wall, run("object", *args)[0])
        flat_wall = min(flat_wall, run("flat", *args)[0])
    # Bit-identical results: same frame bytes at the same emit cycles.
    assert object_frames == flat_frames, \
        "flat backend diverged from object (frames or emit cycles)"
    return {
        "frames": len(flat_frames),
        "object_wall_s": round(object_wall, 4),
        "flat_wall_s": round(flat_wall, 4),
        "speedup": round(object_wall / flat_wall, 3),
    }


def run_mesh_backend() -> dict:
    idle = _measure(_run_udp, IDLE_RATE, IDLE_CYCLES)
    idle.update(design="UdpEchoDesign 4x2",
                cycles=IDLE_CYCLES, rate_bytes_per_cycle=IDLE_RATE)
    sat = _measure(_run_scaled, SAT_CYCLES)
    sat.update(design="ScaledEchoDesign 7x4 (22 apps)",
               cycles=SAT_CYCLES, rate_bytes_per_cycle=None)
    tiles = _measure(_run_tiles, SAT_CYCLES, reps=TILE_REPS)
    tiles.update(design=(f"ScaledEchoDesign {TILE_WIDTH}x{TILE_HEIGHT} "
                         f"({TILE_APPS} apps), naive kernel"),
                 cycles=SAT_CYCLES, rate_bytes_per_cycle=None,
                 mesh_backend="flat", kernel="naive")

    # 16x16 row: flat-only — the point is that the size is reachable.
    wall, frames = _run_scaled("flat", SWEEP_CYCLES, SWEEP_APPS, 16, 16)
    wall = min(wall,
               _run_scaled("flat", SWEEP_CYCLES, SWEEP_APPS, 16, 16)[0])
    sweep = {
        "design": f"ScaledEchoDesign 16x16 ({SWEEP_APPS} apps)",
        "cycles": SWEEP_CYCLES,
        "frames": len(frames),
        "flat_wall_s": round(wall, 4),
        "backend": "flat",
    }
    return {
        "benchmark": "flat vs object mesh backend (UDP echo designs)",
        "payload_bytes": PAYLOAD,
        "idle_heavy": idle,
        "saturating": sat,
        "tiles_saturating": tiles,
        "scalability_16x16": sweep,
    }


def bench_mesh_backend(benchmark, report):
    results = benchmark.pedantic(run_mesh_backend, rounds=1,
                                 iterations=1)
    RESULTS_PATH.write_text(json.dumps(results, indent=2) + "\n")

    rows = []
    for tag in ("idle_heavy", "saturating", "tiles_saturating"):
        r = results[tag]
        rows.append([tag, r["design"], r["frames"], r["object_wall_s"],
                     r["flat_wall_s"], r["speedup"]])
    sweep = results["scalability_16x16"]
    rows.append(["scalability", sweep["design"], sweep["frames"], "-",
                 sweep["flat_wall_s"], "-"])
    report.table(
        ["load", "design", "frames", "object s", "flat s", "speedup"],
        rows,
    )
    report.row()
    report.row(f"results written to {RESULTS_PATH.name}")

    sat = results["saturating"]
    assert sat["speedup"] >= MIN_SAT_SPEEDUP, (
        f"saturating speedup {sat['speedup']}x below regression floor "
        f"{MIN_SAT_SPEEDUP}x — has the flat backend stopped paying?")
    idle = results["idle_heavy"]
    assert idle["speedup"] >= MIN_IDLE_SPEEDUP, (
        f"idle-heavy speedup {idle['speedup']}x below parity floor "
        f"{MIN_IDLE_SPEEDUP}x — the flat backend is taxing idle skip")
    tiles = results["tiles_saturating"]
    assert tiles["speedup"] >= MIN_TILE_SPEEDUP, (
        f"tile-engine speedup {tiles['speedup']}x below regression "
        f"floor {MIN_TILE_SPEEDUP}x — has the flat tile engine "
        "stopped paying?")
    assert sweep["frames"] > 0, "16x16 sweep row moved no traffic"
