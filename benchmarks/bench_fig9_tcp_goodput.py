"""Figure 9: packet size vs goodput for unidirectional TCP send.

Beehive's TCP engine streaming to a client versus the Linux TCP stack
(Demikernel falls back to Linux TCP here, as the paper notes).  The
claims: Beehive outperforms Linux TCP across all request sizes; the
gap is largest at small payloads (2666 vs 843 KReq/s, 3.2x); Beehive
TCP is slower than Beehive UDP (stateful handling, full bandwidth only
across multiple connections); CPU TCP streams better than CPU UDP
thanks to jumbo-frame batching.
"""

import pytest

from repro import params
from repro.baselines.hoststacks import (
    demikernel_udp_goodput_gbps,
    linux_tcp_goodput_gbps,
    linux_tcp_kreqs,
)
from repro.designs.tcp_stack import TcpServerDesign
from repro.packet import IPv4Address, MacAddress
from repro.tcp.app import TcpSourceAppTile
from repro.tcp.peer import SoftTcpPeer

CLIENT_IP = IPv4Address("10.0.0.1")
CLIENT_MAC = MacAddress("02:00:00:00:00:01")

SIZES = (64, 256, 1024, 4096, 8960)
WARMUP_CYCLES = 80_000
MEASURE_CYCLES = 80_000


def beehive_send_goodput(payload: int) -> tuple[float, float]:
    """(Gbps, KReq/s) of the hardware TCP engine streaming out."""
    design = TcpServerDesign(
        tcp_port=5000, app_tile_cls=TcpSourceAppTile, request_size=64,
        mss=payload, chunk_size=16384,
        line_rate_bytes_per_cycle=50.0,
    )
    design.add_client(CLIENT_IP, CLIENT_MAC)
    peer = SoftTcpPeer(design, CLIENT_IP, CLIENT_MAC, design.server_ip,
                       5000, wire_cycles=100, service_cycles=2,
                       window=60_000)
    design.sim.add(peer)
    peer.connect()
    design.sim.run(WARMUP_CYCLES)
    base = len(peer.received)
    start = design.sim.cycle
    design.sim.run(MEASURE_CYCLES)
    received = len(peer.received) - base
    elapsed = (design.sim.cycle - start) * params.CYCLE_TIME_S
    gbps = received * 8 / elapsed / 1e9
    kreqs = received / payload / elapsed / 1e3
    return gbps, kreqs


def run_fig9():
    rows = []
    for payload in SIZES:
        bee_gbps, bee_kreqs = beehive_send_goodput(payload)
        rows.append((payload, bee_gbps, bee_kreqs,
                     linux_tcp_goodput_gbps(payload),
                     linux_tcp_kreqs(payload)))
    return rows


def bench_fig9_tcp_goodput(benchmark, report):
    rows = benchmark.pedantic(run_fig9, rounds=1, iterations=1)

    report.row("single-connection unidirectional send "
               "(Beehive measured in the cycle simulator; Linux from "
               "the calibrated host model):")
    report.table(
        ["payload B", "Beehive Gbps", "Beehive KReq/s", "Linux Gbps",
         "Linux KReq/s", "speedup"],
        [[size, bee, bee_k, lin, lin_k, f"{bee / lin:.1f}x"]
         for size, bee, bee_k, lin, lin_k in rows],
    )
    by_size = {row[0]: row for row in rows}
    small = by_size[64]
    report.row()
    report.row(f"64 B: {small[2]:.0f} vs {small[4]:.0f} KReq/s = "
               f"{small[2] / small[4]:.1f}x "
               "(paper: 2666 vs 843 KReq/s, 3.2x)")
    report.row("CPU TCP streams better than CPU UDP via batching "
               f"(TCP {linux_tcp_goodput_gbps(8960):.0f} vs UDP "
               f"{demikernel_udp_goodput_gbps(8960):.0f} Gbps at "
               "jumbo) — the paper's Fig 9 note")

    # Shape assertions.
    assert small[2] == pytest.approx(2666, rel=0.05)
    assert small[2] / small[4] == pytest.approx(3.2, rel=0.1)
    for size, bee, _, lin, _ in rows:
        assert bee > lin  # Beehive wins at every size
    # Beehive TCP slower than Beehive UDP at small packets (9.8 Gbps).
    assert by_size[64][1] < 9.0
    assert linux_tcp_goodput_gbps(8960) > \
        demikernel_udp_goodput_gbps(8960)
