"""Open-loop load-harness overhead vs the closed-loop generator.

The open-loop harness (``repro.loadgen``) exists to measure the stack
under a load it does not control — but at a matched sub-knee offered
load it must *deliver* the same goodput the closed-loop
:class:`~repro.designs.harness.FrameSource` does, or the harness
itself is taxing the measurement.  This benchmark pins that contract:

- *matched load*: the 4x2 UDP echo design driven once by a
  closed-loop ``FrameSource`` and once by an open-loop
  :class:`~repro.loadgen.source.OpenLoopSource`, both paced one frame
  per ``MATCHED_INTERVAL`` cycles — the *same deterministic schedule*,
  so any goodput gap is the harness's own (admission boundary, wake
  pattern), not arrival-process variance.  Both goodputs are computed
  over the same post-warmup window; ``matched.goodput_ratio``
  (open / closed) is floored at 0.98 by
  ``baselines/BENCH_loadgen_floor.json`` — the open-loop harness may
  cost at most 2%.
- *poisson at the same mean*: the production ``run_point`` path
  (seeded Poisson arrivals, Zipf keys, latency tags) at the same mean
  rate, reported for context.  Its goodput also tracks the realised
  Poisson draw, so it gets a loose floor, not the 2% gate.
- *sweep*: a short pinned-seed offered-load sweep.  The knee and the
  past-knee p999 blow-up are deterministic (every quantity derives
  from cycles, counts, and seeded draws), so CI gates them with
  ``--threshold 0``.

Run via ``python -m repro.tools.bench benchmarks/bench_loadgen.py
--compare benchmarks/baselines/BENCH_loadgen_floor.json --threshold
0``.
"""

from repro import params
from repro.designs import FrameSink, FrameSource, UdpEchoDesign
from repro.loadgen import run_point, sweep
from repro.loadgen.source import OpenLoopSource, nic_backlog
from repro.packet import IPv4Address, MacAddress, build_ipv4_udp_frame

CLIENT_IP = IPv4Address("10.0.0.1")
CLIENT_MAC = MacAddress("02:00:00:00:00:01")

SEED = 7
PAYLOAD = 256                 # bytes of UDP payload per request
DURATION = 60_000             # injection horizon, cycles
WARMUP = 10_000               # cycles excluded from goodput
#: Pacing interval for the matched-load pair, chosen so the wire time
#: of one frame (payload + headers + Ethernet overhead = 322 bytes)
#: divides it exactly: the FrameSource's ceil() pacing then offers
#: *precisely* one frame per interval, identical to the open-loop
#: schedule.
MATCHED_INTERVAL = 20         # cycles between frames

SWEEP_OFFERED = [20.0, 40.0, 60.0, 80.0]
SWEEP_KWARGS = dict(seed=SEED, payload_bytes=PAYLOAD,
                    duration_cycles=40_000, warmup_cycles=8_000)


class FixedInterval:
    """A metronome arrival process (one arrival per ``gap`` cycles)."""

    def __init__(self, gap: int, start: int = 1):
        self.gap = gap
        self._next = start - gap

    def next_arrival(self) -> int:
        self._next += self.gap
        return self._next


def matched_offered_gbps(frame_len: int) -> float:
    """The offered load both matched generators are paced to."""
    wire_bytes = frame_len + params.ETHERNET_OVERHEAD_BYTES
    return (wire_bytes * 8 /
            (MATCHED_INTERVAL * params.CYCLE_TIME_S) / 1e9)


def _echo_design():
    design = UdpEchoDesign(udp_port=7, kernel="scheduled",
                           mesh_backend="flat", tile_backend="flat")
    design.add_client(CLIENT_IP, CLIENT_MAC)
    frame = build_ipv4_udp_frame(
        CLIENT_MAC, design.server_mac, CLIENT_IP, design.server_ip,
        20_000, 7, bytes(PAYLOAD))
    sink = FrameSink(design.eth_tx)
    design.sim.add(sink)
    return design, frame, sink


def _window_goodput(sink: FrameSink) -> float:
    """Payload Gbps over the shared post-warmup emit window."""
    goodput_bytes = sum(PAYLOAD for _, emit_cycle in sink.frames
                        if WARMUP < emit_cycle <= DURATION)
    window_s = (DURATION - WARMUP) * params.CYCLE_TIME_S
    return goodput_bytes * 8 / window_s / 1e9


def closed_loop_goodput() -> float:
    """Closed-loop FrameSource at the matched rate."""
    design, frame, sink = _echo_design()
    wire_bytes = len(frame) + params.ETHERNET_OVERHEAD_BYTES
    rate = wire_bytes / MATCHED_INTERVAL  # bytes/cycle
    source = FrameSource(design.inject, lambda i: frame, rate=rate,
                         count=DURATION // MATCHED_INTERVAL)
    design.sim.add(source)
    design.sim.run_until(lambda: source.done,
                         max_cycles=DURATION + 10_000)
    design.sim.run_until(lambda: sink.count >= source.sent,
                         max_cycles=120_000)
    return _window_goodput(sink)


def open_loop_goodput() -> float:
    """OpenLoopSource on the identical deterministic schedule."""
    design, frame, sink = _echo_design()
    source = OpenLoopSource(design.inject,
                            lambda seq, cycle: frame,
                            FixedInterval(MATCHED_INTERVAL),
                            horizon_cycles=DURATION,
                            admission=nic_backlog(design))
    design.sim.add(source)
    design.sim.run_until(lambda: source.done,
                         max_cycles=DURATION + 10_000)
    design.sim.run_until(lambda: sink.count >= source.admitted,
                         max_cycles=120_000)
    return _window_goodput(sink)


def run_loadgen():
    probe = build_ipv4_udp_frame(
        CLIENT_MAC, MacAddress("02:00:00:00:00:02"), CLIENT_IP,
        IPv4Address("10.0.0.2"), 20_000, 7, bytes(PAYLOAD))
    offered = matched_offered_gbps(len(probe))

    closed = closed_loop_goodput()
    open_ = open_loop_goodput()
    poisson = run_point(offered, seed=SEED, payload_bytes=PAYLOAD,
                        duration_cycles=DURATION,
                        warmup_cycles=WARMUP)

    curve = sweep(SWEEP_OFFERED, **SWEEP_KWARGS)
    knee = curve["knee_gbps"]
    by_offered = {p["offered_gbps"]: p for p in curve["curve"]}
    at_knee = by_offered.get(knee, curve["curve"][0])
    past = [p for p in curve["curve"] if p["offered_gbps"] > knee]
    past_knee = past[0] if past else at_knee

    result = {
        "matched": {
            "offered_gbps": offered,
            "closed_goodput_gbps": closed,
            "open_goodput_gbps": open_,
            "goodput_ratio": open_ / closed,
            "poisson_goodput_gbps": poisson["goodput_gbps"],
        },
        "sweep": {
            "knee_gbps": knee,
            "goodput_at_knee_gbps": at_knee["goodput_gbps"],
            "p999_at_knee_cycles": at_knee["p999_cycles"],
            "p999_past_knee_cycles": past_knee["p999_cycles"],
            "past_knee_delivery_drops": past_knee["offered_dropped"],
        },
    }
    # The contracts hold on the CLI path too, not only under pytest:
    # the open-loop admission boundary must not tax a sub-knee load
    # (within 2% of the closed-loop generator on the same schedule),
    # and the tail past the knee must actually blow up.
    assert result["matched"]["goodput_ratio"] >= 0.98
    assert result["sweep"]["p999_past_knee_cycles"] > \
        2 * result["sweep"]["p999_at_knee_cycles"]
    return result


def bench_loadgen(benchmark, report):
    result = benchmark.pedantic(run_loadgen, rounds=1, iterations=1)
    matched = result["matched"]
    swept = result["sweep"]

    report.table(
        ["generator", "offered Gbps", "goodput Gbps"],
        [["closed-loop FrameSource", matched["offered_gbps"],
          matched["closed_goodput_gbps"]],
         ["open-loop (matched schedule)", matched["offered_gbps"],
          matched["open_goodput_gbps"]],
         ["open-loop Poisson run_point", matched["offered_gbps"],
          matched["poisson_goodput_gbps"]]],
    )
    report.row()
    report.row(f"matched-load goodput ratio (open/closed): "
               f"{matched['goodput_ratio']:.4f} (floor 0.98)")
    report.row(f"sweep knee {swept['knee_gbps']:g} Gbps, p999 "
               f"{swept['p999_at_knee_cycles']:g} -> "
               f"{swept['p999_past_knee_cycles']:g} cycles past it")
