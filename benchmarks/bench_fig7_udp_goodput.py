"""Figure 7: packet size vs goodput for a UDP echo application.

Four systems at saturation across payload sizes: Beehive (this work),
CALM (the PANIC-crossbar echo), the fixed-pipeline design (Fig 8b),
and single-core Demikernel.  Expected shape: Beehive ~ CALM; the
pipelined design slightly ahead at small sizes, converging as NoC
flit overhead amortises; all three at/near line rate from 1024 B and
scaling toward the 128 Gbps NoC maximum in simulation mode; the CPU
stack far below line rate at every size (31x gap at 64 B).
"""

from repro import params
from repro.baselines import CalmUdpEcho, PipelinedUdpEchoDesign
from repro.baselines.hoststacks import (
    demikernel_udp_goodput_gbps,
    demikernel_udp_kreqs,
)
from repro.designs import (
    FrameSink,
    FrameSource,
    GoodputMeter,
    UdpEchoDesign,
)
from repro.packet import IPv4Address, MacAddress, build_ipv4_udp_frame

CLIENT_IP = IPv4Address("10.0.0.1")
CLIENT_MAC = MacAddress("02:00:00:00:00:01")

SIZES = (64, 256, 1024, 4096, 9000)


def _cycles_for(size: int) -> int:
    return 20_000 if size <= 1024 else 60_000


def beehive_goodput(size: int) -> tuple[float, float]:
    design = UdpEchoDesign(udp_port=7, line_rate_bytes_per_cycle=None)
    design.add_client(CLIENT_IP, CLIENT_MAC)
    frame = build_ipv4_udp_frame(CLIENT_MAC, design.server_mac,
                                 CLIENT_IP, design.server_ip, 5555, 7,
                                 bytes(size))
    source = FrameSource(design.inject, lambda i: frame, rate=None)
    sink = FrameSink(design.eth_tx, keep_frames=False)
    meter = GoodputMeter(sink, warmup_frames=30)
    design.sim.add(source)
    design.sim.add(sink)
    for _ in range(_cycles_for(size)):
        design.sim.tick()
        meter.maybe_start()
    return meter.goodput_gbps(), meter.kreqs()


def saturate_echo(design, size: int) -> float:
    frame = build_ipv4_udp_frame(CLIENT_MAC, design.server_mac,
                                 CLIENT_IP, design.server_ip, 5555, 7,
                                 bytes(size))

    class Source:
        def __init__(self):
            self._free = 0

        def step(self, cycle):
            if cycle >= self._free:
                design.inject(frame, cycle)
                self._free = cycle + max(1, len(frame) // 64)

        def commit(self):
            pass

    design.sim.add(Source())
    design.sim.run(_cycles_for(size))
    return design.goodput_gbps()


def run_fig7():
    rows = []
    for size in SIZES:
        bee_gbps, bee_kreqs = beehive_goodput(size)
        calm = CalmUdpEcho(udp_port=7)
        calm.add_client(CLIENT_IP, CLIENT_MAC)
        calm_gbps = saturate_echo(calm, size)
        pipe = PipelinedUdpEchoDesign(udp_port=7)
        pipe.add_client(CLIENT_IP, CLIENT_MAC)
        pipe_gbps = saturate_echo(pipe, size)
        demi_gbps = demikernel_udp_goodput_gbps(size)
        rows.append((size, bee_gbps, bee_kreqs, calm_gbps, pipe_gbps,
                     demi_gbps))
    return rows


def bench_fig7_udp_goodput(benchmark, report):
    rows = benchmark.pedantic(run_fig7, rounds=1, iterations=1)

    report.row("goodput (Gbps) at saturation, simulation mode "
               "(128 Gbps NoC ceiling, no 100G line cap):")
    report.table(
        ["payload B", "Beehive", "CALM", "Pipelined", "Demikernel"],
        [[size, bee, calm, pipe, demi]
         for size, bee, _, calm, pipe, demi in rows],
    )

    by_size = {row[0]: row for row in rows}
    size, bee, bee_kreqs, calm, pipe, demi = by_size[64]
    speedup = bee_kreqs / demikernel_udp_kreqs(64)
    report.row()
    report.row(f"64 B: Beehive {bee:.1f} Gbps / {bee_kreqs:.0f} KReq/s "
               f"vs Demikernel {demi:.1f} Gbps — {speedup:.0f}x "
               "(paper: 9 Gbps / 18392 KReq/s vs 0.3 Gbps, 31x)")
    report.row(f"9000 B: Beehive {by_size[9000][1]:.1f} Gbps "
               f"(paper: scales toward the {params.NOC_PEAK_GBPS:.0f} "
               "Gbps theoretical max)")

    # Shape assertions.
    assert speedup > 20                      # ~31x at 64 B
    assert abs(bee - calm) / bee < 0.25      # Beehive ~ CALM
    assert pipe > bee                        # pipelined slightly ahead
    assert (pipe - bee) / bee < 0.5          # ... but only slightly
    assert by_size[1024][1] > 100            # line rate from 1024 B
    assert by_size[9000][1] > 115            # approaches 128 in sim
    assert all(row[5] < 15 for row in rows)  # CPU far below line rate
