"""Table I: UDP echo round-trip time across the four configurations.

Direct-attached Beehive versus trampolining through a CPU-attached
accelerator, with Linux and DPDK/F-Stack client stacks.  The claim:
direct attach wins at median and especially at the tail under Linux
(4x p99), and still wins (~1.5x) under kernel-bypass stacks.
"""

from repro.baselines.hoststacks import table1_configs

PAPER = {
    "linux_client/beehive": (11.6, 15.3),
    "linux_client/linux_accel": (17.6, 61.2),
    "dpdk_client/beehive": (4.08, 4.43),
    "dpdk_client/dpdk_accel": (6.22, 6.79),
}

SAMPLES = 100_000


def run_table1():
    results = {}
    for name, model in table1_configs().items():
        results[name] = model.run(n=SAMPLES)
    return results


def bench_table1_udp_echo_rtt(benchmark, report):
    results = benchmark.pedantic(run_table1, rounds=1, iterations=1)

    rows = []
    for name, stats in results.items():
        paper_median, paper_p99 = PAPER[name]
        rows.append([name, paper_median, stats.median_us,
                     paper_p99, stats.p99_us])
    report.row(f"{SAMPLES} request RTTs per configuration "
               "(paper: 1,000,000)")
    report.table(
        ["configuration", "paper med us", "ours med us",
         "paper p99 us", "ours p99 us"],
        rows,
    )

    linux_direct = results["linux_client/beehive"]
    linux_bounce = results["linux_client/linux_accel"]
    dpdk_direct = results["dpdk_client/beehive"]
    dpdk_bounce = results["dpdk_client/dpdk_accel"]
    report.row()
    report.row(f"Linux p99 improvement: "
               f"{linux_bounce.p99_us / linux_direct.p99_us:.1f}x "
               "(paper: 4x)")
    report.row(f"Linux median improvement: "
               f"{linux_bounce.median_us / linux_direct.median_us:.1f}x "
               "(paper: 1.5x)")
    report.row(f"DPDK median improvement: "
               f"{dpdk_bounce.median_us / dpdk_direct.median_us:.1f}x "
               "(paper: 1.5x)")

    # The headline shape must hold.
    assert linux_bounce.p99_us / linux_direct.p99_us > 2.5
    assert dpdk_bounce.median_us / dpdk_direct.median_us > 1.3
