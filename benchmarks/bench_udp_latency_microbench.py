"""Section VII-C latency microbenchmark: one 1-byte UDP echo.

The paper timestamps the packet at the Ethernet parsing layer on entry
and at the Ethernet layer on transmit: 368 ns (92 cycles) through
Beehive, 362 ns through CALM — within a few percent of each other
despite Beehive's per-layer tiles, because NoC hops are cheap.
"""

from repro.baselines import CalmUdpEcho
from repro.designs import FrameSink, UdpEchoDesign
from repro.packet import IPv4Address, MacAddress, build_ipv4_udp_frame

CLIENT_IP = IPv4Address("10.0.0.1")
CLIENT_MAC = MacAddress("02:00:00:00:00:01")


def beehive_latency_cycles() -> int:
    design = UdpEchoDesign(udp_port=7, line_rate_bytes_per_cycle=None)
    design.add_client(CLIENT_IP, CLIENT_MAC)
    sink = FrameSink(design.eth_tx)
    design.sim.add(sink)
    frame = build_ipv4_udp_frame(CLIENT_MAC, design.server_mac,
                                 CLIENT_IP, design.server_ip, 5555, 7,
                                 b"x")
    design.inject(frame, 0)
    design.sim.run_until(lambda: sink.count >= 1, max_cycles=2000)
    return design.eth_tx.last_transit_cycles


def calm_latency_cycles() -> int:
    design = CalmUdpEcho(udp_port=7)
    design.add_client(CLIENT_IP, CLIENT_MAC)
    frame = build_ipv4_udp_frame(CLIENT_MAC, design.server_mac,
                                 CLIENT_IP, design.server_ip, 5555, 7,
                                 b"x")
    design.inject(frame, 0)
    design.sim.run_until(lambda: design.frames_echoed >= 1,
                         max_cycles=2000)
    return design.last_transit_cycles


def run_latency():
    return beehive_latency_cycles(), calm_latency_cycles()


def bench_udp_latency_microbench(benchmark, report):
    beehive, calm = benchmark.pedantic(run_latency, rounds=1,
                                       iterations=1)
    report.table(
        ["system", "cycles", "ns", "paper ns"],
        [["Beehive", beehive, beehive * 4, 368],
         ["CALM", calm, calm * 4, 362]],
    )
    assert abs(beehive - 92) <= 3
    assert abs(calm * 4 - 362) <= 30
    # The paper's point: similar latency, far more flexibility.
    assert abs(beehive - calm) <= 8
