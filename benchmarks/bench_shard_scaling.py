"""Sharded-simulation scaling: one mesh, K column-band shards.

Runs the 32x32 scaled echo design (64 app replicas, MTU-sized
requests, saturated injection) single-process and sharded at K=2 and
K=4, and writes ``BENCH_shard.json``.

The sharded runs use the in-process loopback transport so the bench
can assert bit-identical frames against the K=1 reference on every
run.  Loopback executes the shards serially, so its own wall clock
cannot show parallel speedup; instead the sharded simulator times
each shard's tick work (``shard_busy_s``) and the boundary exchange
(``exchange_s``), and the bench reports the *critical-path* speedup

    T1_wall / (max(shard_busy_s) + exchange_s)

— the wall-clock speedup a K-core host realises with the
multiprocessing transport, where shards tick concurrently and only
the per-cycle boundary exchange is serial.  This keeps the gate
meaningful (and deterministic) on single-core CI runners.

Operating point: the app replicas are pinned to the two far-east
columns (30-31, every row), which spreads horizontal transit across
all bands, and the band widths are hand-balanced (``BOUNDS``) so the
edge bands — which carry the stack tiles, the reply column's vertical
transit, and the app columns' turn — get fewer columns.  Measured
locally: ~2.0-2.2x at K=2 and ~2.5-3.1x at K=4 (best-of-2); the CI
floor gates K=4 at 1.8x via ``benchmarks/baselines/BENCH_shard_floor.json``.
"""

import json
import time
from pathlib import Path

from repro.designs import FrameSink, FrameSource
from repro.designs.scaled_echo import ScaledEchoDesign
from repro.noc.message import reset_id_counters
from repro.packet import IPv4Address, MacAddress, build_ipv4_udp_frame

CLIENT_IP = IPv4Address("10.0.0.1")
CLIENT_MAC = MacAddress("02:00:00:00:00:01")

WIDTH = HEIGHT = 32
N_APPS = 64
# Far-east placement: requests cross every band eastward, replies
# westward, so each band owns a full share of horizontal transit.
APP_COORDS = [(x, y) for x in (30, 31) for y in range(HEIGHT)]
PAYLOAD = 1458            # MTU-sized UDP payload
N_FLOWS = 32              # distinct source ports -> all replicas hit
FRAMES = 400              # saturated: injected back-to-back
CYCLES = 4_000
REPS = 2                  # best-of-N (min T1, min critical path)

# Hand-balanced band widths.  Band 0 hosts the six stack tiles plus
# column 2's vertical reply transit and the last band the app columns'
# southbound turn, so both carry fixed work the even split would stack
# on top of a full column share; narrowing them equalises busy time
# (measured busy ~[0.44, 0.27, 0.26, 0.40] at K=4 vs [0.68, 0.26,
# 0.24, 0.50] for the even split).
BOUNDS = {2: [14, 18], 4: [3, 11, 11, 7]}

# CI regression floor for the K=4 critical-path speedup, enforced both
# here and by the checked-in BENCH_shard_floor.json gate.  Locally
# ~2.5-3.1x; 1.8x leaves headroom for noisy runners while still
# catching a serialised exchange or unbalanced partition.
MIN_K4_SPEEDUP = 1.8

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_shard.json"


def _run(shards: int):
    """One run: (wall s, max shard busy s, exchange s, frames)."""
    reset_id_counters()
    design = ScaledEchoDesign(n_apps=N_APPS, width=WIDTH, height=HEIGHT,
                              kernel="scheduled", mesh_backend="flat",
                              tile_backend="flat", shards=shards,
                              shard_bounds=BOUNDS.get(shards),
                              app_coords=APP_COORDS)
    design.add_client(CLIENT_IP, CLIENT_MAC)
    frames = [build_ipv4_udp_frame(CLIENT_MAC, design.server_mac,
                                   CLIENT_IP, design.server_ip,
                                   5555 + i, 7, bytes(PAYLOAD))
              for i in range(N_FLOWS)]
    source = FrameSource(design.inject, lambda i: frames[i % N_FLOWS],
                         rate=None, count=FRAMES)
    sink = FrameSink(design.eth_tx)
    design.sim.add(source)
    design.sim.add(sink)
    started = time.perf_counter()
    design.sim.run(CYCLES)
    wall = time.perf_counter() - started
    busy = getattr(design.sim, "shard_busy_s", None)
    exchange = getattr(design.sim, "exchange_s", 0.0)
    return wall, (max(busy) if busy else wall), exchange, \
        list(sink.frames)


def run_shard_scaling() -> dict:
    t1_wall = None
    best = {}  # K -> [min wall, min busy, min exchange, min critical]
    reference = None
    for _ in range(REPS):  # interleaved reps: noise hits every K alike
        wall, _, _, frames = _run(1)
        if reference is None:
            reference = frames
        t1_wall = wall if t1_wall is None else min(t1_wall, wall)
        for shards in (2, 4):
            wall, busy, exchange, frames = _run(shards)
            # Bit-identity against the single-process reference: same
            # frame bytes at the same emit cycles, every rep.
            assert frames == reference, \
                f"K={shards} sharded run diverged from the reference"
            critical = busy + exchange
            prev = best.get(shards)
            if prev is None:
                best[shards] = [wall, busy, exchange, critical]
            else:
                best[shards] = [min(a, b) for a, b in
                                zip(prev, [wall, busy, exchange,
                                           critical])]
    results = {
        "benchmark": "sharded mesh scaling (32x32 scaled echo, "
                     "saturated, loopback transport)",
        "speedup_mode": "critical_path",
        "cycles": CYCLES,
        "frames": len(reference),
        "k1": {"wall_s": round(t1_wall, 4)},
    }
    for shards in (2, 4):
        wall, busy, exchange, critical = best[shards]
        results[f"k{shards}"] = {
            "wall_s": round(wall, 4),
            "max_shard_busy_s": round(busy, 4),
            "exchange_s": round(exchange, 4),
            "speedup": round(t1_wall / critical, 3),
        }
    return results


def bench_shard_scaling(benchmark, report):
    results = benchmark.pedantic(run_shard_scaling, rounds=1,
                                 iterations=1)
    RESULTS_PATH.write_text(json.dumps(results, indent=2) + "\n")

    rows = [["1", results["k1"]["wall_s"], "-", "-", "1.0"]]
    for shards in (2, 4):
        r = results[f"k{shards}"]
        rows.append([str(shards), r["wall_s"], r["max_shard_busy_s"],
                     r["exchange_s"], r["speedup"]])
    report.table(
        ["shards", "loopback wall s", "max shard busy s",
         "exchange s", "critical-path speedup"],
        rows,
    )
    report.row()
    report.row(f"{results['frames']} frames echoed, bit-identical "
               f"across K; results written to {RESULTS_PATH.name}")

    k4 = results["k4"]["speedup"]
    assert k4 >= MIN_K4_SPEEDUP, (
        f"K=4 critical-path speedup {k4}x below regression floor "
        f"{MIN_K4_SPEEDUP}x — serialised exchange or unbalanced "
        f"partition? (max busy {results['k4']['max_shard_busy_s']}s, "
        f"exchange {results['k4']['exchange_s']}s)")
    assert results["k2"]["speedup"] > 1.0
