"""Table IV: energy per operation and performance at the Fig 11 knees.

One operating point per shard count (the paper's circled points: the
highest throughput before latency spikes), comparing the CPU witness
server against the Beehive witness appliance on energy (measured at
the witness), throughput, and latency (measured at the clients).
"""

import pytest

from repro.apps.vr.cluster import VrExperiment

# Knee client counts, chosen like the paper chooses circled points:
# the last sweep point before median latency departs its plateau.
KNEE_CLIENTS = {1: 4, 2: 7, 3: 10, 4: 13}
DURATION_S = 0.4

PAPER = {
    # shards: (cpu mJ, fpga mJ, cpu kops, fpga kops,
    #          cpu med us, fpga med us, cpu p99, fpga p99)
    1: (1.51, 0.73, 31, 35, 112, 99, 273, 281),
    2: (1.03, 0.48, 48, 54, 142, 130, 372, 334),
    3: (0.90, 0.39, 58, 66, 115, 102, 339, 304),
    4: (0.70, 0.31, 77, 83, 128, 118, 412, 394),
}


def run_table4():
    results = {}
    for shards, clients in KNEE_CLIENTS.items():
        for kind in ("cpu", "fpga"):
            results[(shards, kind)] = VrExperiment(
                shards=shards, witness_kind=kind, n_clients=clients,
            ).run(duration_s=DURATION_S)
    return results


def bench_table4_vr_energy(benchmark, report):
    results = benchmark.pedantic(run_table4, rounds=1, iterations=1)

    rows = []
    for shards in KNEE_CLIENTS:
        cpu = results[(shards, "cpu")]
        fpga = results[(shards, "fpga")]
        paper = PAPER[shards]
        rows.append([
            shards,
            f"{cpu.energy_mj_per_op:.2f} ({paper[0]})",
            f"{fpga.energy_mj_per_op:.2f} ({paper[1]})",
            f"{cpu.energy_mj_per_op / fpga.energy_mj_per_op:.2f}x "
            f"({paper[0] / paper[1]:.2f}x)",
            f"{cpu.throughput_kops:.0f}/{fpga.throughput_kops:.0f} "
            f"({paper[2]}/{paper[3]})",
            f"{cpu.median_latency_us:.0f}/{fpga.median_latency_us:.0f}"
            f" ({paper[4]}/{paper[5]})",
            f"{cpu.p99_latency_us:.0f}/{fpga.p99_latency_us:.0f} "
            f"({paper[6]}/{paper[7]})",
        ])
    report.row("measured (paper) per column; X/Y = CPU/FPGA:")
    report.table(
        ["shards", "CPU mJ/op", "FPGA mJ/op", "efficiency",
         "kops", "median us", "p99 us"],
        rows,
    )

    for shards in KNEE_CLIENTS:
        cpu = results[(shards, "cpu")]
        fpga = results[(shards, "fpga")]
        efficiency = cpu.energy_mj_per_op / fpga.energy_mj_per_op
        # Paper: 2.07x - 2.32x energy efficiency.
        assert 1.7 <= efficiency <= 2.9
        # FPGA witness wins throughput and median latency everywhere.
        assert fpga.throughput_kops >= cpu.throughput_kops
        assert fpga.median_latency_us <= cpu.median_latency_us
    one_cpu = results[(1, "cpu")]
    one_fpga = results[(1, "fpga")]
    assert one_cpu.energy_mj_per_op == pytest.approx(1.51, rel=0.15)
    assert one_fpga.energy_mj_per_op == pytest.approx(0.73, rel=0.15)
