"""Table V: FPGA resource utilisation of selected modules.

Recomputes the table from the leaf-module cost model aggregated over
design structure (Table V leaf cells use the paper's numbers; the rest
are estimates consistent with the stack totals).  The comparison
against Limago uses the paper's measurements of Limago directly —
Limago is a fixed HLS stack with nothing to re-run here.
"""

import pytest

from repro import params
from repro.designs import UdpEchoDesign
from repro.designs.tcp_stack import TcpServerDesign
from repro.resources import design_utilization, tile_cost

LIMAGO_TCP_UDP = (116_948, 9.9, 155, 7.2)  # paper-reported, for context
PAPER_UDP_FULL = (58_540, 4.95, 41, 1.90)
PAPER_TCP_UDP = (144_491, 12.0, 84.5, 4.0)


def run_table5():
    stack_kinds = ["eth_rx", "ip_rx", "udp_rx", "udp_tx", "ip_tx",
                   "eth_tx"]
    udp_full_luts = sum(tile_cost(kind).luts for kind in stack_kinds)
    udp_full_brams = sum(tile_cost(kind).brams for kind in stack_kinds)
    tcp_design = design_utilization(
        TcpServerDesign(with_logging=True), "tcp_udp_stack")
    echo_design = design_utilization(UdpEchoDesign(), "udp_echo")
    return {
        "udp_full": (udp_full_luts, udp_full_brams),
        "udp_rx_tile": tile_cost("udp_rx"),
        "udp_tx_tile": tile_cost("udp_tx"),
        "tcp_rx_tile": tile_cost("tcp_rx"),
        "tcp_design": tcp_design,
        "echo_design": echo_design,
    }


def bench_table5_resources(benchmark, report):
    results = benchmark.pedantic(run_table5, rounds=1, iterations=1)

    total_luts = params.U200_TOTAL_LUTS
    total_brams = params.U200_TOTAL_BRAMS

    def pct(luts):
        return 100 * luts / total_luts

    udp_luts, udp_brams = results["udp_full"]
    tcp = results["tcp_design"]
    rows = [
        ["Beehive UDP full", udp_luts, f"{pct(udp_luts):.2f}",
         udp_brams, f"{PAPER_UDP_FULL[0]} / {PAPER_UDP_FULL[2]}"],
        ["  UDP RX tile", results["udp_rx_tile"].luts,
         f"{pct(results['udp_rx_tile'].luts):.2f}",
         results["udp_rx_tile"].brams, "10054 / 9.5"],
        ["    router", params.LUT_COSTS["router"],
         f"{pct(params.LUT_COSTS['router']):.2f}", 0, "5946 / 0"],
        ["    NoC msg parse", params.LUT_COSTS["noc_msg_parse_rx"],
         f"{pct(params.LUT_COSTS['noc_msg_parse_rx']):.2f}", 0,
         "897 / 0"],
        ["    UDP RX proc", params.LUT_COSTS["udp_rx_proc"],
         f"{pct(params.LUT_COSTS['udp_rx_proc']):.2f}", 9.5,
         "2912 / 9.5"],
        ["  UDP TX tile", results["udp_tx_tile"].luts,
         f"{pct(results['udp_tx_tile'].luts):.2f}",
         results["udp_tx_tile"].brams, "10128 / 9.5"],
        ["Beehive TCP/UDP stack", tcp.luts, f"{tcp.lut_pct:.1f}",
         tcp.brams, f"{PAPER_TCP_UDP[0]} / {PAPER_TCP_UDP[2]}"],
        ["  TCP RX tile", results["tcp_rx_tile"].luts,
         f"{pct(results['tcp_rx_tile'].luts):.2f}",
         results["tcp_rx_tile"].brams, "19151+ / 9"],
        ["Limago TCP/UDP (paper)", LIMAGO_TCP_UDP[0],
         f"{LIMAGO_TCP_UDP[1]}", LIMAGO_TCP_UDP[2], "(reported)"],
    ]
    report.table(["module", "LUTs", "% LUTs", "BRAM",
                  "paper LUTs / BRAM"], rows)
    report.row()
    report.row("paper's reading, which must hold here too: routers "
               "dominate simple tiles (flexibility tax), Beehive "
               "LUT-heavier / BRAM-lighter than Limago, all small "
               "against the whole U200")

    assert udp_luts == pytest.approx(PAPER_UDP_FULL[0], rel=0.08)
    assert udp_brams == pytest.approx(PAPER_UDP_FULL[2], rel=0.08)
    assert tcp.luts == pytest.approx(PAPER_TCP_UDP[0], rel=0.12)
    assert pct(udp_luts) < 6.0           # small against the U200
    assert tcp.luts > LIMAGO_TCP_UDP[0]  # LUT-heavier than Limago
    assert tcp.brams < LIMAGO_TCP_UDP[2]  # BRAM-lighter than Limago
    router = params.LUT_COSTS["router"]
    assert router > 1.8 * params.LUT_COSTS["udp_rx_proc"]
