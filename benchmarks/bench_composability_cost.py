"""The cost of composing network functions into the stack.

The paper's modularity claim is that functionality is *inserted*, not
engineered in — NAT, IP-in-IP, logging, or a whole VXLAN overlay slot
into the chain as extra tiles.  This benchmark quantifies the price:
per-packet latency grows by roughly one tile transit (~13 cycles /
52 ns) per inserted tile, and small-packet goodput is unchanged
(the added tiles pipeline; the bottleneck stays the slowest engine).
"""

import pytest

from repro.designs import (
    FrameSink,
    FrameSource,
    GoodputMeter,
    IpInIpEchoDesign,
    LoggedUdpEchoDesign,
    NatEchoDesign,
    UdpEchoDesign,
    VxlanEchoDesign,
)
from repro.packet import (
    IPv4Address,
    MacAddress,
    build_ipv4_udp_frame,
    parse_frame,
)
from repro.packet.builder import build_ipinip_udp_frame
from repro.packet.vxlan import build_vxlan_frame

CLIENT_IP = IPv4Address("10.0.0.1")
CLIENT_MAC = MacAddress("02:00:00:00:00:01")
CLIENT_VIRT = IPv4Address("172.16.0.1")
INNER_IP = IPv4Address("192.168.0.1")
INNER_MAC = MacAddress("02:aa:00:00:00:01")


def _measure(design, frame, goodput_frame=None, cycles=15_000):
    """(chain tiles, one-packet latency cycles, 64 B KReq/s)."""
    sink = FrameSink(design.eth_tx, keep_frames=False)
    design.sim.add(sink)
    design.inject(frame, 0)
    design.sim.run_until(lambda: sink.count >= 1, max_cycles=5000)
    latency = design.eth_tx.last_transit_cycles
    source = FrameSource(design.inject,
                         lambda i: goodput_frame or frame, rate=None)
    meter = GoodputMeter(sink, warmup_frames=30)
    design.sim.add(source)
    for _ in range(cycles):
        design.sim.tick()
        meter.maybe_start()
    return len(design.chains[0]), latency, meter.kreqs()


def run_composability():
    rows = {}

    design = UdpEchoDesign(udp_port=7, line_rate_bytes_per_cycle=None)
    design.add_client(CLIENT_IP, CLIENT_MAC)
    frame = build_ipv4_udp_frame(CLIENT_MAC, design.server_mac,
                                 CLIENT_IP, design.server_ip, 5555, 7,
                                 bytes(64))
    rows["plain UDP (7 tiles)"] = _measure(design, frame)

    design = LoggedUdpEchoDesign(udp_port=7,
                                 line_rate_bytes_per_cycle=None)
    design.add_client(CLIENT_IP, CLIENT_MAC)
    frame = build_ipv4_udp_frame(CLIENT_MAC, design.server_mac,
                                 CLIENT_IP, design.server_ip, 5555, 7,
                                 bytes(64))
    rows["+ logging tap (8 tiles)"] = _measure(design, frame)

    design = NatEchoDesign(udp_port=7, line_rate_bytes_per_cycle=None)
    design.map_client(CLIENT_VIRT, CLIENT_IP, CLIENT_MAC)
    frame = build_ipv4_udp_frame(CLIENT_MAC, design.server_mac,
                                 CLIENT_IP, design.server_ip, 5555, 7,
                                 bytes(64))
    rows["+ NAT rx/tx (9 tiles)"] = _measure(design, frame)

    design = IpInIpEchoDesign(udp_port=7,
                              line_rate_bytes_per_cycle=None)
    design.add_tunnel_peer(CLIENT_VIRT, CLIENT_IP, CLIENT_MAC)
    frame = build_ipinip_udp_frame(
        CLIENT_MAC, design.server_mac, CLIENT_IP,
        design.server_phys_ip, CLIENT_VIRT, design.server_virt_ip,
        5555, 7, bytes(64),
    )
    rows["+ IP-in-IP (11 tiles)"] = _measure(design, frame)

    design = VxlanEchoDesign(udp_port=7,
                             line_rate_bytes_per_cycle=None)
    design.add_overlay_peer(INNER_IP, INNER_MAC,
                            CLIENT_IP, CLIENT_MAC)
    inner = build_ipv4_udp_frame(INNER_MAC, design.server_inner_mac,
                                 INNER_IP, design.server_inner_ip,
                                 5555, 7, bytes(64))
    frame = build_vxlan_frame(CLIENT_MAC, design.server_vtep_mac,
                              CLIENT_IP, design.server_vtep_ip,
                              design.vni, inner)
    rows["+ VXLAN overlay (15 tiles)"] = _measure(design, frame)

    return rows


def bench_composability_cost(benchmark, report):
    rows = benchmark.pedantic(run_composability, rounds=1,
                              iterations=1)

    base_tiles, base_latency, base_rate = rows["plain UDP (7 tiles)"]
    table = []
    for name, (tiles, latency, rate) in rows.items():
        per_tile = ((latency - base_latency) / (tiles - base_tiles)
                    if tiles > base_tiles else 0.0)
        table.append([name, tiles, latency, latency * 4,
                      f"{per_tile:.1f}" if per_tile else "-", rate])
    report.table(
        ["configuration", "chain tiles", "latency cy", "latency ns",
         "cy/extra tile", "64B KReq/s"],
        table,
    )
    report.row()
    report.row("insertion cost: ~8-16 cycles (about one tile "
               "transit) per added tile; request rate unchanged — "
               "the chain pipelines and the slowest engine still "
               "sets the rate")

    for name, (tiles, latency, rate) in rows.items():
        if tiles > base_tiles:
            per_tile = (latency - base_latency) / (tiles - base_tiles)
            assert 5 <= per_tile <= 25  # about one tile transit each
        # Inserting functions does not tax small-packet request rate.
        assert rate == pytest.approx(base_rate, rel=0.15)
