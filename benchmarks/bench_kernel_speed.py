"""Activity-scheduled kernel speed: idle-heavy vs saturating load.

The scheduled kernel only spends Python cycles where simulated activity
exists: idle components leave the active set and fully quiescent
stretches are skipped wholesale (see ``repro.sim.kernel``).  This
benchmark runs the UDP echo design under both kernels at two operating
points and writes ``BENCH_kernel.json``:

- *idle-heavy*: MTU-sized requests paced at 10% of the 50 B/cycle line
  rate, so the mesh is quiescent for most of every inter-frame gap.
  This is where activity scheduling pays: ~3.3x wall-clock speedup
  measured locally, with ~40% of cycles skipped outright.
- *saturating*: the same requests injected back-to-back.  Nothing is
  idle, so the scheduled kernel's saturation bypass degenerates to
  naive stepping and the two kernels run at parity.

Both runs assert bit-identical results (frame bytes and emit cycles)
across kernels — speed must never change simulated behaviour.  The
broader differential suite lives in ``tests/test_kernel_equivalence.py``.
"""

import json
import time
from pathlib import Path

from repro.designs import FrameSink, FrameSource, UdpEchoDesign
from repro.noc.message import reset_id_counters
from repro.packet import IPv4Address, MacAddress, build_ipv4_udp_frame

CLIENT_IP = IPv4Address("10.0.0.1")
CLIENT_MAC = MacAddress("02:00:00:00:00:01")

LINE_RATE = 50.0          # bytes/cycle, the design's modelled MAC rate
IDLE_RATE = LINE_RATE / 10.0   # "10% line rate" injection pacing
PAYLOAD = 1458            # MTU-sized UDP payload
IDLE_CYCLES = 100_000
SAT_CYCLES = 30_000
REPS = 2                  # best-of-N wall clock per configuration

# Hard regression floor for the idle-heavy speedup.  Locally measured
# ~3.3x (best-of-3); the assert leaves headroom for noisy CI runners
# while still catching a scheduler that has stopped skipping.
MIN_IDLE_SPEEDUP = 2.0

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_kernel.json"


def _run(kernel: str, rate: float | None, cycles: int):
    """One run: (wall seconds, frames [(bytes, cycle)], cycles skipped)."""
    reset_id_counters()
    # Pinned to the object mesh backend: this benchmark isolates the
    # *kernel* axis (naive vs activity-scheduled), which is starkest
    # when every router/port is its own schedulable component.  The
    # flat backend skips idle routers internally either way and has
    # its own benchmark (bench_mesh_backend.py).
    design = UdpEchoDesign(udp_port=7,
                           line_rate_bytes_per_cycle=LINE_RATE,
                           kernel=kernel,
                           mesh_backend="object")
    design.add_client(CLIENT_IP, CLIENT_MAC)
    frame = build_ipv4_udp_frame(CLIENT_MAC, design.server_mac,
                                 CLIENT_IP, design.server_ip, 5555, 7,
                                 bytes(PAYLOAD))
    source = FrameSource(design.inject, lambda i: frame, rate=rate)
    sink = FrameSink(design.eth_tx)
    design.sim.add(source)
    design.sim.add(sink)
    started = time.perf_counter()
    design.sim.run(cycles)
    wall = time.perf_counter() - started
    return wall, list(sink.frames), design.sim.idle_cycles_skipped


def _measure(rate: float | None, cycles: int) -> dict:
    """Both kernels at one operating point, best-of-REPS wall clock."""
    naive_wall, naive_frames, _ = _run("naive", rate, cycles)
    sched_wall, sched_frames, skipped = _run("scheduled", rate, cycles)
    for _ in range(REPS - 1):
        naive_wall = min(naive_wall, _run("naive", rate, cycles)[0])
        sched_wall = min(sched_wall, _run("scheduled", rate, cycles)[0])
    # Bit-identical results: same frame bytes at the same emit cycles.
    assert naive_frames == sched_frames, \
        "scheduled kernel diverged from naive (frames or emit cycles)"
    return {
        "cycles": cycles,
        "rate_bytes_per_cycle": rate,
        "payload_bytes": PAYLOAD,
        "frames": len(sched_frames),
        "naive_wall_s": round(naive_wall, 4),
        "scheduled_wall_s": round(sched_wall, 4),
        "speedup": round(naive_wall / sched_wall, 3),
        "idle_cycles_skipped": skipped,
    }


def run_kernel_speed() -> dict:
    return {
        "benchmark": "activity-scheduled kernel vs naive (UDP echo)",
        "idle_heavy": _measure(IDLE_RATE, IDLE_CYCLES),
        "saturating": _measure(None, SAT_CYCLES),
    }


def bench_kernel_speed(benchmark, report):
    results = benchmark.pedantic(run_kernel_speed, rounds=1, iterations=1)
    RESULTS_PATH.write_text(json.dumps(results, indent=2) + "\n")

    rows = []
    for tag in ("idle_heavy", "saturating"):
        r = results[tag]
        rows.append([tag, r["frames"], r["naive_wall_s"],
                     r["scheduled_wall_s"], r["speedup"],
                     r["idle_cycles_skipped"]])
    report.table(
        ["load", "frames", "naive s", "scheduled s", "speedup",
         "cycles skipped"],
        rows,
    )
    report.row()
    report.row(f"results written to {RESULTS_PATH.name}")

    idle = results["idle_heavy"]
    assert idle["speedup"] >= MIN_IDLE_SPEEDUP, (
        f"idle-heavy speedup {idle['speedup']}x below regression floor "
        f"{MIN_IDLE_SPEEDUP}x — is the scheduler still skipping? "
        f"(skipped {idle['idle_cycles_skipped']} cycles)")
    assert idle["idle_cycles_skipped"] > 0
    assert results["saturating"]["idle_cycles_skipped"] == 0
