"""Lines-of-code accounting for Table VI.

The paper quantifies flexibility as the LoC needed to instantiate one
more service instance: the XML lines declaring the tile, plus the XML
lines adding it as a destination elsewhere, plus the generated
top-level Verilog lines.  We count the same three quantities over our
schema and generator.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config.generate import tile_block_lines
from repro.config.schema import DesignSpec
from repro.config.xmlio import dest_xml_line_count, tile_xml_line_count


@dataclass(frozen=True)
class InstantiationLoc:
    """LoC to add one instance of a tile to a design."""

    tile: str
    xml_declaration: int
    xml_destination: int
    top_level: int

    @property
    def xml_total(self) -> int:
        return self.xml_declaration + self.xml_destination


def instantiation_loc(design: DesignSpec,
                      tile_name: str) -> InstantiationLoc:
    tile = design.tile(tile_name)
    return InstantiationLoc(
        tile=tile_name,
        xml_declaration=tile_xml_line_count(tile),
        xml_destination=dest_xml_line_count(design, tile_name),
        top_level=len(tile_block_lines(design, tile)),
    )
