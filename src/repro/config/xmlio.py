"""XML reading/writing of design descriptions.

The element shapes follow the paper's description: the file carries the
design dimensions and "an element for each NoC tile endpoint [with] a
name ... as well as its X and Y coordinates", plus optional fields for
generating next-hop tables.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET

from repro.config.schema import ChainSpec, DesignSpec, DestSpec, TileSpec


def design_from_xml(text: str) -> DesignSpec:
    root = ET.fromstring(text)
    if root.tag != "design":
        raise ValueError(f"expected <design>, got <{root.tag}>")
    design = DesignSpec(
        name=root.attrib.get("name", "unnamed"),
        width=int(root.attrib["width"]),
        height=int(root.attrib["height"]),
    )
    for element in root:
        if element.tag == "tile":
            design.tiles.append(_tile_from_xml(element))
        elif element.tag == "chain":
            design.chains.append(
                ChainSpec(tiles=element.attrib["tiles"].split())
            )
        else:
            raise ValueError(f"unknown element <{element.tag}>")
    return design


def _tile_from_xml(element: ET.Element) -> TileSpec:
    def text_of(tag: str, default=None) -> str:
        child = element.find(tag)
        if child is None or child.text is None:
            if default is None:
                raise ValueError(
                    f"tile element missing <{tag}>: "
                    f"{ET.tostring(element, encoding='unicode')[:120]}"
                )
            return default
        return child.text.strip()

    tile = TileSpec(
        name=text_of("name"),
        type=text_of("type"),
        x=int(text_of("x")),
        y=int(text_of("y")),
    )
    for param in element.findall("param"):
        tile.params[param.attrib["name"]] = param.attrib["value"]
    for dest in element.findall("dest"):
        targets = dest.findtext("target", "").split()
        tile.dests.append(DestSpec(
            key=dest.findtext("key", "default").strip(),
            targets=targets,
            policy=dest.findtext("policy", "flow_hash").strip(),
        ))
    return tile


def design_to_xml(design: DesignSpec) -> str:
    """Pretty-print a design; the line counts feed Table VI."""
    lines = [f'<design name="{design.name}" width="{design.width}" '
             f'height="{design.height}">']
    for tile in design.tiles:
        lines.extend(_tile_to_lines(tile))
    for chain in design.chains:
        lines.append(f'  <chain tiles="{" ".join(chain.tiles)}"/>')
    lines.append("</design>")
    return "\n".join(lines) + "\n"


def _tile_to_lines(tile: TileSpec) -> list[str]:
    lines = ["  <tile>",
             f"    <name>{tile.name}</name>",
             f"    <type>{tile.type}</type>",
             f"    <x>{tile.x}</x>",
             f"    <y>{tile.y}</y>"]
    for key, value in tile.params.items():
        lines.append(f'    <param name="{key}" value="{value}"/>')
    for dest in tile.dests:
        lines.append("    <dest>")
        lines.append(f"      <key>{dest.key}</key>")
        lines.append(f"      <target>{' '.join(dest.targets)}</target>")
        lines.append(f"      <policy>{dest.policy}</policy>")
        lines.append("    </dest>")
    lines.append("  </tile>")
    return lines


def tile_xml_line_count(tile: TileSpec) -> int:
    """Lines this tile's element occupies in the pretty-printed XML."""
    return len(_tile_to_lines(tile))


def dest_xml_line_count(design: DesignSpec, target_name: str) -> int:
    """Lines other tiles spend declaring ``target_name`` as a dest."""
    total = 0
    for tile in design.tiles:
        if tile.name == target_name:
            continue
        for dest in tile.dests:
            if target_name in dest.targets:
                total += 5  # the <dest> block is five lines
    return total
