"""Design description objects, mirroring the paper's XML schema."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class DestSpec:
    """A next-hop entry: traffic matching ``key`` goes to ``targets``.

    ``key`` is ``"<kind>:<value>"`` — e.g. ``ethertype:2048``,
    ``proto:17``, ``port:7000`` — or ``"default"``.  Multiple targets
    are load balanced with ``policy`` (``flow_hash`` keeps flows
    sticky, ``round_robin`` sprays).
    """

    key: str
    targets: list[str]
    policy: str = "flow_hash"

    def parsed_key(self):
        if self.key == "default":
            return "default"
        kind, _, value = self.key.partition(":")
        if kind in ("ethertype", "proto", "port"):
            return int(value, 0)
        return self.key


@dataclass
class TileSpec:
    """One NoC tile endpoint: name, type, coordinates, parameters."""

    name: str
    type: str
    x: int
    y: int
    params: dict = field(default_factory=dict)
    dests: list[DestSpec] = field(default_factory=list)

    @property
    def coord(self) -> tuple[int, int]:
        return (self.x, self.y)


@dataclass
class ChainSpec:
    """A declared message chain for the deadlock analysis."""

    tiles: list[str]


@dataclass
class DesignSpec:
    """A whole design: dimensions plus tiles plus chains."""

    name: str
    width: int
    height: int
    tiles: list[TileSpec] = field(default_factory=list)
    chains: list[ChainSpec] = field(default_factory=list)

    def tile(self, name: str) -> TileSpec:
        for tile in self.tiles:
            if tile.name == name:
                return tile
        raise KeyError(f"no tile named {name!r} in design {self.name!r}")

    def tile_names(self) -> list[str]:
        return [tile.name for tile in self.tiles]

    def coords(self) -> dict[str, tuple[int, int]]:
        return {tile.name: tile.coord for tile in self.tiles}

    def occupied(self) -> set[tuple[int, int]]:
        return {tile.coord for tile in self.tiles}

    def empty_coords(self) -> list[tuple[int, int]]:
        """Unoccupied mesh positions — auto-filled with router-only
        (empty) tiles, like the bottom-right tile of Fig 8a."""
        occupied = self.occupied()
        return [(x, y) for y in range(self.height)
                for x in range(self.width) if (x, y) not in occupied]
