"""Design-configuration tooling (paper section V-G).

The paper drives its Verilog generation and deadlock analysis from an
XML design file: dimensions plus an element per NoC tile endpoint with
a name, X/Y coordinates, and optional next-hop information.  This
package is the same tooling for the simulated world:

- :mod:`repro.config.schema` — the design description objects;
- :mod:`repro.config.xmlio` — XML parsing and pretty-printing;
- :mod:`repro.config.validate` — topology soundness checks (duplicate
  or out-of-range coordinates, unknown destinations) and automatic
  empty-tile fill for the mesh rectangle;
- :mod:`repro.config.generate` — "top-level wiring" generation: builds
  the runnable design (mesh + tiles + next-hop tables + deadlock
  check) and emits the equivalent top-level wiring text whose line
  counts Table VI reports;
- :mod:`repro.config.loc` — the lines-of-code accounting for Table VI.
"""

from repro.config.schema import ChainSpec, DesignSpec, DestSpec, TileSpec
from repro.config.xmlio import design_from_xml, design_to_xml
from repro.config.validate import ValidationError, validate
from repro.config.generate import (
    GeneratedDesign,
    build_design,
    generate_top_level,
    register_tile_type,
)
from repro.config.loc import instantiation_loc

__all__ = [
    "ChainSpec",
    "DesignSpec",
    "DestSpec",
    "GeneratedDesign",
    "TileSpec",
    "ValidationError",
    "build_design",
    "design_from_xml",
    "design_to_xml",
    "generate_top_level",
    "instantiation_loc",
    "register_tile_type",
    "validate",
]
