"""Canonical XML design files.

These are the declarative versions of the handwritten designs; the
config tests build them and run traffic through, and the Table VI
benchmark measures instantiation cost against them.
"""

UDP_ECHO_XML = """
<design name="udp_echo" width="4" height="2">
  <tile>
    <name>eth_rx</name>
    <type>eth_rx</type>
    <x>0</x>
    <y>0</y>
    <param name="my_mac" value="02:be:e0:00:00:01"/>
    <dest>
      <key>ethertype:0x0800</key>
      <target>ip_rx</target>
    </dest>
  </tile>
  <tile>
    <name>ip_rx</name>
    <type>ip_rx</type>
    <x>1</x>
    <y>0</y>
    <param name="my_ip" value="10.0.0.10"/>
    <dest>
      <key>proto:17</key>
      <target>udp_rx</target>
    </dest>
  </tile>
  <tile>
    <name>udp_rx</name>
    <type>udp_rx</type>
    <x>2</x>
    <y>0</y>
    <dest>
      <key>port:7</key>
      <target>app</target>
    </dest>
  </tile>
  <tile>
    <name>app</name>
    <type>echo_app</type>
    <x>3</x>
    <y>0</y>
    <dest>
      <key>default</key>
      <target>udp_tx</target>
    </dest>
  </tile>
  <tile>
    <name>udp_tx</name>
    <type>udp_tx</type>
    <x>2</x>
    <y>1</y>
    <dest>
      <key>default</key>
      <target>ip_tx</target>
    </dest>
  </tile>
  <tile>
    <name>ip_tx</name>
    <type>ip_tx</type>
    <x>1</x>
    <y>1</y>
    <dest>
      <key>default</key>
      <target>eth_tx</target>
    </dest>
  </tile>
  <tile>
    <name>eth_tx</name>
    <type>eth_tx</type>
    <x>0</x>
    <y>1</y>
    <param name="my_mac" value="02:be:e0:00:00:01"/>
    <param name="line_rate" value="none"/>
  </tile>
  <chain tiles="eth_rx ip_rx udp_rx app udp_tx ip_tx eth_tx"/>
</design>
"""

RS_DESIGN_XML = """
<design name="rs_accelerator" width="6" height="2">
  <tile>
    <name>eth_rx</name>
    <type>eth_rx</type>
    <x>0</x>
    <y>0</y>
    <param name="my_mac" value="02:be:e0:00:00:01"/>
    <dest>
      <key>ethertype:0x0800</key>
      <target>ip_rx</target>
    </dest>
  </tile>
  <tile>
    <name>ip_rx</name>
    <type>ip_rx</type>
    <x>1</x>
    <y>0</y>
    <param name="my_ip" value="10.0.0.10"/>
    <dest>
      <key>proto:17</key>
      <target>udp_rx</target>
    </dest>
  </tile>
  <tile>
    <name>udp_rx</name>
    <type>udp_rx</type>
    <x>2</x>
    <y>0</y>
    <dest>
      <key>port:7000</key>
      <target>sched</target>
    </dest>
  </tile>
  <tile>
    <name>sched</name>
    <type>rr_scheduler</type>
    <x>3</x>
    <y>0</y>
    <dest>
      <key>default</key>
      <target>rs0 rs1 rs2 rs3</target>
    </dest>
  </tile>
  <tile>
    <name>rs0</name>
    <type>rs_encoder</type>
    <x>4</x>
    <y>0</y>
    <param name="data_shards" value="8"/>
    <param name="parity_shards" value="2"/>
    <param name="gbps" value="15.0"/>
    <dest>
      <key>default</key>
      <target>udp_tx</target>
    </dest>
  </tile>
  <tile>
    <name>rs1</name>
    <type>rs_encoder</type>
    <x>5</x>
    <y>0</y>
    <param name="data_shards" value="8"/>
    <param name="parity_shards" value="2"/>
    <param name="gbps" value="15.0"/>
    <dest>
      <key>default</key>
      <target>udp_tx</target>
    </dest>
  </tile>
  <tile>
    <name>rs2</name>
    <type>rs_encoder</type>
    <x>3</x>
    <y>1</y>
    <param name="data_shards" value="8"/>
    <param name="parity_shards" value="2"/>
    <param name="gbps" value="15.0"/>
    <dest>
      <key>default</key>
      <target>udp_tx</target>
    </dest>
  </tile>
  <tile>
    <name>rs3</name>
    <type>rs_encoder</type>
    <x>4</x>
    <y>1</y>
    <param name="data_shards" value="8"/>
    <param name="parity_shards" value="2"/>
    <param name="gbps" value="15.0"/>
    <dest>
      <key>default</key>
      <target>udp_tx</target>
    </dest>
  </tile>
  <tile>
    <name>udp_tx</name>
    <type>udp_tx</type>
    <x>2</x>
    <y>1</y>
    <dest>
      <key>default</key>
      <target>ip_tx</target>
    </dest>
  </tile>
  <tile>
    <name>ip_tx</name>
    <type>ip_tx</type>
    <x>1</x>
    <y>1</y>
    <dest>
      <key>default</key>
      <target>eth_tx</target>
    </dest>
  </tile>
  <tile>
    <name>eth_tx</name>
    <type>eth_tx</type>
    <x>0</x>
    <y>1</y>
    <param name="my_mac" value="02:be:e0:00:00:01"/>
    <param name="line_rate" value="none"/>
  </tile>
  <chain tiles="eth_rx ip_rx udp_rx sched rs0 udp_tx ip_tx eth_tx"/>
  <chain tiles="eth_rx ip_rx udp_rx sched rs1 udp_tx ip_tx eth_tx"/>
  <chain tiles="eth_rx ip_rx udp_rx sched rs2 udp_tx ip_tx eth_tx"/>
  <chain tiles="eth_rx ip_rx udp_rx sched rs3 udp_tx ip_tx eth_tx"/>
</design>
"""

VR_DESIGN_XML = """
<design name="vr_witness" width="6" height="2">
  <tile>
    <name>eth_rx</name>
    <type>eth_rx</type>
    <x>0</x>
    <y>0</y>
    <param name="my_mac" value="02:be:e0:00:00:01"/>
    <dest>
      <key>ethertype:0x0800</key>
      <target>ip_rx</target>
    </dest>
  </tile>
  <tile>
    <name>ip_rx</name>
    <type>ip_rx</type>
    <x>1</x>
    <y>0</y>
    <param name="my_ip" value="10.0.0.10"/>
    <dest>
      <key>proto:17</key>
      <target>udp_rx</target>
    </dest>
  </tile>
  <tile>
    <name>udp_rx</name>
    <type>udp_rx</type>
    <x>2</x>
    <y>0</y>
    <dest>
      <key>port:9000</key>
      <target>witness0</target>
    </dest>
    <dest>
      <key>port:9001</key>
      <target>witness1</target>
    </dest>
    <dest>
      <key>port:9002</key>
      <target>witness2</target>
    </dest>
    <dest>
      <key>port:9003</key>
      <target>witness3</target>
    </dest>
  </tile>
  <tile>
    <name>witness0</name>
    <type>vr_witness</type>
    <x>3</x>
    <y>0</y>
    <param name="shard" value="0"/>
    <dest>
      <key>default</key>
      <target>udp_tx</target>
    </dest>
  </tile>
  <tile>
    <name>witness1</name>
    <type>vr_witness</type>
    <x>4</x>
    <y>0</y>
    <param name="shard" value="1"/>
    <dest>
      <key>default</key>
      <target>udp_tx</target>
    </dest>
  </tile>
  <tile>
    <name>witness2</name>
    <type>vr_witness</type>
    <x>5</x>
    <y>0</y>
    <param name="shard" value="2"/>
    <dest>
      <key>default</key>
      <target>udp_tx</target>
    </dest>
  </tile>
  <tile>
    <name>witness3</name>
    <type>vr_witness</type>
    <x>3</x>
    <y>1</y>
    <param name="shard" value="3"/>
    <dest>
      <key>default</key>
      <target>udp_tx</target>
    </dest>
  </tile>
  <tile>
    <name>udp_tx</name>
    <type>udp_tx</type>
    <x>2</x>
    <y>1</y>
    <dest>
      <key>default</key>
      <target>ip_tx</target>
    </dest>
  </tile>
  <tile>
    <name>ip_tx</name>
    <type>ip_tx</type>
    <x>1</x>
    <y>1</y>
    <dest>
      <key>default</key>
      <target>eth_tx</target>
    </dest>
  </tile>
  <tile>
    <name>eth_tx</name>
    <type>eth_tx</type>
    <x>0</x>
    <y>1</y>
    <param name="my_mac" value="02:be:e0:00:00:01"/>
    <param name="line_rate" value="none"/>
  </tile>
  <chain tiles="eth_rx ip_rx udp_rx witness0 udp_tx ip_tx eth_tx"/>
  <chain tiles="eth_rx ip_rx udp_rx witness1 udp_tx ip_tx eth_tx"/>
  <chain tiles="eth_rx ip_rx udp_rx witness2 udp_tx ip_tx eth_tx"/>
  <chain tiles="eth_rx ip_rx udp_rx witness3 udp_tx ip_tx eth_tx"/>
</design>
"""
