"""Design generation: from a validated spec to a runnable design,
plus the top-level wiring text (the paper's generated Verilog analog).

"Given the dimensions in the XML file, we generate declarations of all
the top-level wires between tiles [and] the subset of the port
connections for each tile that correspond to wires between NoC
routers" (section V-G).  Here the runnable artifact is the simulated
design; :func:`generate_top_level` emits the equivalent wiring text so
the Table VI lines-of-code accounting has the same meaning.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.config.schema import DesignSpec, TileSpec
from repro.config.validate import validate
from repro.analysis.deadlock import assert_deadlock_free
from repro.noc.flatmesh import build_mesh
from repro.packet.ethernet import MacAddress
from repro.packet.ipv4 import IPv4Address
from repro.sim.kernel import CycleSimulator
from repro.tiles.flatcore import register_tiles
from repro.tiles.buffer import BufferTile
from repro.tiles.ethernet import EthernetRxTile, EthernetTxTile
from repro.tiles.ip import IpRxTile, IpTxTile
from repro.tiles.ipinip import IpInIpDecapTile, IpInIpEncapTile
from repro.tiles.loadbalancer import FlowHashLoadBalancerTile
from repro.tiles.logger import PacketLogTile
from repro.tiles.nat import NatRxTile, NatTable, NatTxTile
from repro.tiles.scheduler import RoundRobinSchedulerTile
from repro.tiles.udp import UdpRxTile, UdpTxTile
from repro.apps.echo import UdpEchoAppTile


class BuildContext:
    """Shared state threaded through tile factories (e.g. the NAT
    table shared by a NAT RX/TX pair)."""

    def __init__(self, mesh):
        self.mesh = mesh
        self.shared_tables: dict[str, NatTable] = {}

    def nat_table(self, name: str) -> NatTable:
        if name not in self.shared_tables:
            self.shared_tables[name] = NatTable()
        return self.shared_tables[name]


def _float_or_none(text: str):
    return None if text.lower() in ("none", "unlimited") else float(text)


def _make_eth_rx(spec, ctx):
    mac = spec.params.get("my_mac")
    return EthernetRxTile(spec.name, ctx.mesh, spec.coord,
                          my_mac=MacAddress(mac) if mac else None)


def _make_eth_tx(spec, ctx):
    return EthernetTxTile(
        spec.name, ctx.mesh, spec.coord,
        my_mac=MacAddress(spec.params["my_mac"]),
        line_rate_bytes_per_cycle=_float_or_none(
            spec.params.get("line_rate", "50.0")),
    )


def _make_ip_rx(spec, ctx):
    ip = spec.params.get("my_ip")
    return IpRxTile(spec.name, ctx.mesh, spec.coord,
                    my_ip=IPv4Address(ip) if ip else None)


def _make_nat(cls):
    def factory(spec, ctx):
        table = ctx.nat_table(spec.params.get("table", "default"))
        return cls(spec.name, ctx.mesh, spec.coord, table=table)
    return factory


TILE_TYPES: dict[str, Callable] = {
    "eth_rx": _make_eth_rx,
    "eth_tx": _make_eth_tx,
    "ip_rx": _make_ip_rx,
    "ip_tx": lambda s, c: IpTxTile(s.name, c.mesh, s.coord),
    "udp_rx": lambda s, c: UdpRxTile(s.name, c.mesh, s.coord),
    "udp_tx": lambda s, c: UdpTxTile(s.name, c.mesh, s.coord),
    "echo_app": lambda s, c: UdpEchoAppTile(s.name, c.mesh, s.coord),
    "buffer": lambda s, c: BufferTile(
        s.name, c.mesh, s.coord,
        size_bytes=int(s.params.get("size_bytes", 262144))),
    "nat_rx": _make_nat(NatRxTile),
    "nat_tx": _make_nat(NatTxTile),
    "ipinip_encap": lambda s, c: IpInIpEncapTile(
        s.name, c.mesh, s.coord,
        tunnel_src=IPv4Address(s.params["tunnel_src"])),
    "ipinip_decap": lambda s, c: IpInIpDecapTile(s.name, c.mesh, s.coord),
    "log": lambda s, c: PacketLogTile(
        s.name, c.mesh, s.coord,
        direction=s.params.get("direction", "rx"),
        capacity=int(s.params.get("capacity", 4096))),
    "load_balancer": lambda s, c: FlowHashLoadBalancerTile(
        s.name, c.mesh, s.coord),
    "rr_scheduler": lambda s, c: RoundRobinSchedulerTile(
        s.name, c.mesh, s.coord),
}


def _make_rs(spec, ctx):
    from repro.apps.reed_solomon.tile import RsEncoderTile
    return RsEncoderTile(
        spec.name, ctx.mesh, spec.coord,
        data_shards=int(spec.params.get("data_shards", 8)),
        parity_shards=int(spec.params.get("parity_shards", 2)),
        gbps=float(spec.params.get("gbps", 15.0)),
    )


def _make_vr_witness(spec, ctx):
    from repro.apps.vr.tile import VrWitnessTile
    return VrWitnessTile(spec.name, ctx.mesh, spec.coord,
                         shard=int(spec.params.get("shard", 0)))


def _make_vxlan_encap(spec, ctx):
    from repro.tiles.vxlan import VxlanEncapTile
    return VxlanEncapTile(spec.name, ctx.mesh, spec.coord,
                          vtep_ip=IPv4Address(spec.params["vtep_ip"]),
                          vni=int(spec.params["vni"]))


def _make_vxlan_decap(spec, ctx):
    from repro.tiles.vxlan import VxlanDecapTile
    tile = VxlanDecapTile(spec.name, ctx.mesh, spec.coord)
    if "vni" in spec.params:
        tile.allow_vni(int(spec.params["vni"]))
    return tile


TILE_TYPES["vxlan_encap"] = _make_vxlan_encap
TILE_TYPES["vxlan_decap"] = _make_vxlan_decap
TILE_TYPES["rs_encoder"] = _make_rs
TILE_TYPES["vr_witness"] = _make_vr_witness


def register_tile_type(type_name: str, factory: Callable) -> None:
    """Extend the registry (applications register their tiles here)."""
    TILE_TYPES[type_name] = factory


class GeneratedDesign:
    """A design built from a :class:`DesignSpec`."""

    def __init__(self, spec: DesignSpec, kernel: str = "scheduled",
                 mesh_backend: str = "flat",
                 tile_backend: str = "flat"):
        self.spec = spec
        self.report = validate(spec)
        self.sim = CycleSimulator(kernel=kernel,
                                  mesh_backend=mesh_backend,
                                  tile_backend=tile_backend)
        self.mesh = build_mesh(spec.width, spec.height,
                               backend=mesh_backend)
        context = BuildContext(self.mesh)
        self.tiles: dict[str, object] = {}
        for tile_spec in spec.tiles:
            factory = TILE_TYPES.get(tile_spec.type)
            if factory is None:
                raise KeyError(
                    f"unknown tile type {tile_spec.type!r} "
                    f"(registered: {sorted(TILE_TYPES)})"
                )
            self.tiles[tile_spec.name] = factory(tile_spec, context)
        self._wire_dests(spec)
        self.mesh.register(self.sim)
        self.tile_backend = tile_backend
        self.tile_core = register_tiles(self.sim, self.tiles,
                                        tile_backend)
        self.chains = [chain.tiles for chain in spec.chains]
        self.tile_coords = spec.coords()
        assert_deadlock_free(self.chains, self.tile_coords)

    def _wire_dests(self, spec: DesignSpec) -> None:
        coords = spec.coords()
        for tile_spec in spec.tiles:
            tile = self.tiles[tile_spec.name]
            for dest in tile_spec.dests:
                targets = [coords[name] for name in dest.targets]
                if isinstance(tile, RoundRobinSchedulerTile):
                    for coord in targets:
                        tile.add_replica(coord)
                elif isinstance(tile, FlowHashLoadBalancerTile):
                    for coord in targets:
                        tile.add_stack(coord)
                elif isinstance(tile, PacketLogTile):
                    tile.next_hop.set_entry(PacketLogTile.FORWARD,
                                            targets)
                elif hasattr(tile, "next_hop"):
                    if len(targets) > 1:
                        tile.next_hop.policy = dest.policy
                    tile.next_hop.set_entry(dest.parsed_key(), targets)
                else:
                    raise ValueError(
                        f"tile {tile_spec.name!r} ({tile_spec.type}) "
                        "cannot take destinations"
                    )

    # -- conveniences ------------------------------------------------------

    def _find(self, cls):
        return [tile for tile in self.tiles.values()
                if isinstance(tile, cls)]

    @property
    def eth_rx(self) -> EthernetRxTile:
        return self._find(EthernetRxTile)[0]

    @property
    def eth_tx(self) -> EthernetTxTile:
        return self._find(EthernetTxTile)[0]

    def inject(self, frame: bytes, cycle: int) -> None:
        self.eth_rx.push_frame(frame, cycle)

    def add_neighbor(self, ip: IPv4Address, mac: MacAddress) -> None:
        for eth_tx in self._find(EthernetTxTile):
            eth_tx.add_neighbor(ip, mac)


def build_design(spec: DesignSpec) -> GeneratedDesign:
    return GeneratedDesign(spec)


# -- top-level wiring text ------------------------------------------------------

_SIDES = (("n", 0, -1), ("s", 0, 1), ("e", 1, 0), ("w", -1, 0))


def _link_name(a, b) -> str:
    return f"noc_{a[0]}_{a[1]}__to__{b[0]}_{b[1]}"


def tile_block_lines(spec: DesignSpec, tile: TileSpec) -> list[str]:
    """The generated instantiation block for one tile.

    A plain tile is 13 lines (matching the per-instance top-level cost
    the paper reports for the Reed-Solomon tile); each next-hop entry
    adds one table-initialisation line.
    """
    lines = [f"// tile {tile.name} ({tile.type}) at "
             f"({tile.x}, {tile.y})",
             f"{tile.type}_tile #(",
             f"    .X_COORD({tile.x}),",
             f"    .Y_COORD({tile.y})",
             f") {tile.name}_inst ("]
    for side, dx, dy in _SIDES:
        neighbor = (tile.x + dx, tile.y + dy)
        if 0 <= neighbor[0] < spec.width and \
                0 <= neighbor[1] < spec.height:
            lines.append(f"    .noc_{side}_in"
                         f"({_link_name(neighbor, tile.coord)}),")
            lines.append(f"    .noc_{side}_out"
                         f"({_link_name(tile.coord, neighbor)}),")
        else:
            lines.append(f"    .noc_{side}_in(512'b0),")
            lines.append(f"    .noc_{side}_out(),")
    for index, dest in enumerate(tile.dests):
        lines.append(f"    .next_hop_init_{index}"
                     f"('{{{dest.key}: {' '.join(dest.targets)}}}),")
    lines[-1] = lines[-1].rstrip(",")
    lines.append(");")
    return lines


def generate_top_level(spec: DesignSpec) -> str:
    """Wire declarations plus one instantiation block per tile (with
    auto-generated empty tiles for unoccupied coordinates)."""
    validate(spec)
    lines = [f"// Auto-generated top level for design "
             f"'{spec.name}' ({spec.width}x{spec.height} mesh)"]
    for y in range(spec.height):
        for x in range(spec.width):
            for side, dx, dy in _SIDES:
                nx, ny = x + dx, y + dy
                if 0 <= nx < spec.width and 0 <= ny < spec.height:
                    lines.append(
                        f"wire [511:0] {_link_name((x, y), (nx, ny))};"
                    )
    for tile in spec.tiles:
        lines.append("")
        lines.extend(tile_block_lines(spec, tile))
    for x, y in spec.empty_coords():
        lines.append("")
        empty = TileSpec(name=f"empty_{x}_{y}", type="empty", x=x, y=y)
        lines.extend(tile_block_lines(spec, empty))
    return "\n".join(lines) + "\n"
