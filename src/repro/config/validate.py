"""Topology soundness checks (paper section V-G).

"We check if two tiles have the same X and Y coordinates, and all NoC
coordinates are within the expected dimensions of the design.  Because
a 2D mesh must be a rectangle, this also gives us the opportunity to
automatically generate empty tiles."

The checks themselves live in :mod:`repro.analysis.structural` (the
unified finding pipeline, codes BHV1xx); this module keeps the
historical exception-based API used by the XML tooling and the design
generator.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.findings import ERROR, Finding
from repro.analysis.structural import lint_spec
from repro.config.schema import DesignSpec


class ValidationError(ValueError):
    def __init__(self, problems: list[str]):
        self.problems = problems
        super().__init__("; ".join(problems))


@dataclass
class ValidationReport:
    empty_coords: list = field(default_factory=list)
    warnings: list = field(default_factory=list)
    findings: list = field(default_factory=list)


def validate(design: DesignSpec) -> ValidationReport:
    """Raise :class:`ValidationError` on a broken design; otherwise
    return the report (including auto-generated empty-tile coords)."""
    findings: list[Finding] = lint_spec(design)
    problems = [f.message for f in findings if f.severity == ERROR]
    if problems:
        raise ValidationError(problems)
    return ValidationReport(
        empty_coords=design.empty_coords(),
        warnings=[f.message for f in findings if f.severity != ERROR],
        findings=findings,
    )
