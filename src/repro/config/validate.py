"""Topology soundness checks (paper section V-G).

"We check if two tiles have the same X and Y coordinates, and all NoC
coordinates are within the expected dimensions of the design.  Because
a 2D mesh must be a rectangle, this also gives us the opportunity to
automatically generate empty tiles."
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config.schema import DesignSpec


class ValidationError(ValueError):
    def __init__(self, problems: list[str]):
        self.problems = problems
        super().__init__("; ".join(problems))


@dataclass
class ValidationReport:
    empty_coords: list = field(default_factory=list)
    warnings: list = field(default_factory=list)


def validate(design: DesignSpec) -> ValidationReport:
    """Raise :class:`ValidationError` on a broken design; otherwise
    return the report (including auto-generated empty-tile coords)."""
    problems: list[str] = []
    if design.width < 1 or design.height < 1:
        problems.append(
            f"bad dimensions {design.width}x{design.height}"
        )
    seen_names: set[str] = set()
    seen_coords: dict = {}
    for tile in design.tiles:
        if tile.name in seen_names:
            problems.append(f"duplicate tile name {tile.name!r}")
        seen_names.add(tile.name)
        if not (0 <= tile.x < design.width
                and 0 <= tile.y < design.height):
            problems.append(
                f"tile {tile.name!r} at {tile.coord} is outside the "
                f"{design.width}x{design.height} mesh"
            )
        elif tile.coord in seen_coords:
            problems.append(
                f"tiles {seen_coords[tile.coord]!r} and {tile.name!r} "
                f"share coordinates {tile.coord}"
            )
        else:
            seen_coords[tile.coord] = tile.name
        for dest in tile.dests:
            for target in dest.targets:
                if target not in {t.name for t in design.tiles}:
                    problems.append(
                        f"tile {tile.name!r} routes to unknown tile "
                        f"{target!r}"
                    )
            if not dest.targets:
                problems.append(
                    f"tile {tile.name!r} has a destination with no "
                    "targets"
                )
    for chain in design.chains:
        for name in chain.tiles:
            if name not in seen_names:
                problems.append(
                    f"chain references unknown tile {name!r}"
                )
    if problems:
        raise ValidationError(problems)
    report = ValidationReport(empty_coords=design.empty_coords())
    if not design.chains:
        report.warnings.append(
            "no chains declared: deadlock analysis has nothing to check"
        )
    return report
