"""The Beehive VR witness tile and its wire format.

Witnesses are UDP applications (VR does not assume reliable delivery).
Each shard gets its own tile — the witness is stateful, so "requests
for a shard must always go to the same tile"; distribution is by
destination port in the UDP RX table, one port per shard.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.apps.vr.witness import WitnessDecision, WitnessState
from repro.noc.mesh import Mesh
from repro.noc.message import NocMessage
from repro.packet.ipv4 import IPPROTO_UDP, IPv4Header
from repro.packet.udp import UdpHeader
from repro.tiles.base import NextHopTable, PacketMeta, Tile

MSG_PREPARE = 1
MSG_PREPARE_OK = 2
MSG_NACK = 3

_WIRE = struct.Struct("!BIQH8s")


@dataclass(frozen=True)
class PrepareWire:
    """The on-the-wire Prepare / PrepareOK encoding (23 bytes)."""

    msg_type: int
    view: int
    opnum: int
    shard: int
    digest: bytes = b"\x00" * 8

    def pack(self) -> bytes:
        return _WIRE.pack(self.msg_type, self.view, self.opnum,
                          self.shard, self.digest)

    @classmethod
    def unpack(cls, data: bytes) -> PrepareWire:
        if len(data) < _WIRE.size:
            raise ValueError(f"short VR message: {len(data)}")
        msg_type, view, opnum, shard, digest = _WIRE.unpack_from(data)
        return cls(msg_type=msg_type, view=view, opnum=opnum,
                   shard=shard, digest=digest)


class VrWitnessTile(Tile):
    """One shard's hardware witness."""

    KIND = "vr_witness"

    DEFAULT = "default"

    def __init__(self, name: str, mesh: Mesh, coord: tuple[int, int],
                 shard: int = 0, **kwargs):
        # The witness state machine is small: a prepare occupies the
        # engine well under the generic protocol-tile occupancy.
        kwargs.setdefault("occupancy", 10)
        super().__init__(name, mesh, coord, **kwargs)
        self.state = WitnessState(shard=shard)
        self.next_hop = NextHopTable(name=f"{name}.nexthop")
        self.malformed = 0

    def handle_message(self, message: NocMessage, cycle: int):
        meta: PacketMeta = message.metadata
        if meta is None or meta.ip is None or meta.udp is None:
            return self.drop(message, "not a UDP request")
        try:
            wire = PrepareWire.unpack(message.data)
        except ValueError:
            self.malformed += 1
            return self.drop(message, "malformed VR message")
        if wire.msg_type != MSG_PREPARE or \
                wire.shard != self.state.shard:
            self.malformed += 1
            return self.drop(message, "unexpected VR message")
        decision = self.state.handle_prepare(wire.view, wire.opnum,
                                             wire.digest)
        if decision in (WitnessDecision.ACCEPT,
                        WitnessDecision.DUPLICATE):
            reply_type = MSG_PREPARE_OK
        else:
            reply_type = MSG_NACK
        reply = PrepareWire(
            msg_type=reply_type,
            view=self.state.view,
            opnum=wire.opnum,
            shard=self.state.shard,
            digest=wire.digest,
        )
        reply_meta = PacketMeta(
            ip=IPv4Header(src=meta.ip.dst, dst=meta.ip.src,
                          protocol=IPPROTO_UDP),
            udp=UdpHeader(src_port=meta.udp.dst_port,
                          dst_port=meta.udp.src_port),
            ingress_cycle=meta.ingress_cycle,
        )
        dest = self.next_hop.lookup(self.DEFAULT)
        if dest is None:
            return self.drop(message, "no transmit path")
        return [self.make_message(dest, metadata=reply_meta,
                                  data=reply.pack())]
