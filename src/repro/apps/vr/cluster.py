"""The event-level VR cluster (Fig 10's experimental setup).

A three-role VR configuration per shard — CPU leader, witness (CPU or
Beehive), CPU replica — driven by closed-loop clients against the
replicated KV store.  Leaders are single-core FIFO servers; the client
measures end-to-end latency; witness-server energy comes from the
calibrated power models.  This is the machinery behind Fig 11 and
Table IV.

The protocol is executed for real: op numbers, witness quorum before
the client reply, in-order commit, replica state machines (their KV
converges to the leader's — asserted by tests).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro import params
from repro.apps.vr.kv import KvOp, KvStore, KvWorkload
from repro.apps.vr.witness import WitnessDecision, WitnessState
from repro.energy.model import (
    CpuEnergyModel,
    FpgaEnergyModel,
    TileActivity,
)
from repro.sim.events import EventSimulator
from repro.sim.rng import SeededStreams


class ServerCore:
    """A single-core FIFO server in the event simulator."""

    def __init__(self, sim: EventSimulator, rng: random.Random,
                 jitter_s: float = 0.0, tail_prob: float = 0.0,
                 tail_s: float = 0.0):
        self.sim = sim
        self.rng = rng
        self.jitter_s = jitter_s
        self.tail_prob = tail_prob
        self.tail_s = tail_s
        self._free_at = 0.0
        self.busy_s = 0.0

    def submit(self, work_s: float, callback, *args) -> None:
        if self.jitter_s:
            work_s += self.rng.expovariate(1.0 / self.jitter_s)
        if self.tail_prob and self.rng.random() < self.tail_prob:
            # A scheduler hiccup stalls the core; everything queued
            # behind this request is delayed too.
            work_s += self.rng.expovariate(1.0 / self.tail_s)
        start = max(self.sim.now, self._free_at)
        self._free_at = start + work_s
        self.busy_s += work_s
        self.sim.schedule_at(self._free_at, callback, *args)

    def freeze_until(self, t: float) -> None:
        """Fault injection: the core does no work before ``t``.

        Everything already queued and everything submitted meanwhile
        completes after the freeze lifts (FIFO order preserved) — the
        process is stalled, not killed, so no state is lost.
        """
        self._free_at = max(self._free_at, t)

    def utilisation(self, elapsed_s: float) -> float:
        return min(1.0, self.busy_s / elapsed_s) if elapsed_s else 0.0


class _Wire:
    """Per-link one-way delay with FIFO (non-reordering) delivery."""

    def __init__(self, sim: EventSimulator, rng: random.Random):
        self.sim = sim
        self.rng = rng
        self._last: dict[tuple, float] = {}

    def send(self, channel: tuple, extra_s: float, callback,
             *args) -> None:
        delay = params.WIRE_SWITCH_ONEWAY_S + extra_s
        arrival = self.sim.now + delay
        arrival = max(arrival, self._last.get(channel, 0.0) + 1e-9)
        self._last[channel] = arrival
        self.sim.schedule_at(arrival, callback, *args)


def _linux_cost(rng: random.Random) -> float:
    cost = params.LINUX_STACK_ONEWAY_S + rng.expovariate(
        1.0 / params.LINUX_STACK_JITTER_S)
    if rng.random() < params.LINUX_SCHED_TAIL_PROB:
        cost += rng.expovariate(1.0 / params.LINUX_SCHED_TAIL_S)
    return cost


def _client_side_cost(rng: random.Random) -> float:
    """A client-side message traversal: Linux stack + thread wakeup."""
    return _linux_cost(rng) + params.VR_CLIENT_SIDE_EXTRA_S


class Witness:
    """One shard's witness: CPU (queued, jittery, occasional scheduler
    tail) or FPGA (deterministic pipeline, no queue at these rates)."""

    def __init__(self, sim: EventSimulator, wire: _Wire,
                 rng: random.Random, shard: int, kind: str):
        if kind not in ("cpu", "fpga"):
            raise ValueError(f"unknown witness kind {kind!r}")
        self.sim = sim
        self.wire = wire
        self.rng = rng
        self.kind = kind
        self.state = WitnessState(shard=shard)
        self.core = ServerCore(sim, rng) if kind == "cpu" else None
        self.prepares = 0

    def _service_s(self) -> float:
        if self.kind == "cpu":
            cost = params.VR_CPU_WITNESS_SERVICE_S + self.rng.expovariate(
                1.0 / params.VR_CPU_WITNESS_JITTER_S)
            if self.rng.random() < params.VR_CPU_WITNESS_TAIL_PROB:
                cost += self.rng.expovariate(
                    1.0 / params.VR_CPU_WITNESS_TAIL_S)
            return cost
        return params.VR_FPGA_WITNESS_SERVICE_S + self.rng.expovariate(
            1.0 / params.VR_FPGA_WITNESS_JITTER_S)

    def on_prepare(self, leader: "Leader", view: int, opnum: int,
                   digest: bytes) -> None:
        self.prepares += 1
        work = self._service_s()

        def done():
            decision = self.state.handle_prepare(view, opnum, digest)
            if decision in (WitnessDecision.ACCEPT,
                            WitnessDecision.DUPLICATE):
                self.wire.send(("w", self.state.shard, "l"), 0.0,
                               leader.on_prepare_ok, opnum,
                               self.state.view)

        if self.core is not None:
            self.core.submit(work, done)
        else:
            self.sim.schedule(work, done)


class Replica:
    """One shard's replica: executes committed ops in order."""

    def __init__(self, sim: EventSimulator, rng: random.Random,
                 shard: int):
        self.sim = sim
        self.core = ServerCore(sim, rng)
        self.shard = shard
        self.kv = KvStore()
        self._committed: dict[int, KvOp] = {}
        self._next_commit = 1

    def on_commit(self, opnum: int, op: KvOp) -> None:
        def done():
            self._committed[opnum] = op
            while self._next_commit in self._committed:
                self.kv.execute(self._committed.pop(self._next_commit))
                self._next_commit += 1

        self.core.submit(2e-6, done)


@dataclass
class _PendingOp:
    opnum: int
    op: KvOp
    client: "Client"
    token: int | None = None
    acks: int = 0
    committed: bool = False


class Leader:
    """One shard's leader: a single core running the VR critical path."""

    def __init__(self, sim: EventSimulator, wire: _Wire,
                 rng: random.Random, shard: int,
                 witnesses: list[Witness], replicas: list[Replica]):
        self.sim = sim
        self.wire = wire
        self.rng = rng
        self.shard = shard
        self.witnesses = witnesses
        self.replicas = replicas
        self.core = ServerCore(sim, rng,
                               jitter_s=params.VR_LEADER_JITTER_S / 3,
                               tail_prob=params.VR_LEADER_TAIL_PROB,
                               tail_s=params.VR_LEADER_TAIL_S)
        self.view = 0
        self.kv = KvStore()
        self._opnum = 0
        self._pending: dict[int, _PendingOp] = {}
        self._next_execute = 1
        self.completed = 0
        self.requests = 0

    @property
    def quorum(self) -> int:
        return len(self.witnesses)  # all witnesses must verify

    def on_request(self, client: "Client", op: KvOp,
                   token: int | None = None) -> None:
        # Counted at NIC arrival, before the core queue: a frozen
        # leader still *receives* requests, which is exactly the signal
        # the view-change monitor keys on (requests > completed with no
        # progress).
        self.requests += 1

        def ingress_done():
            self._opnum += 1
            pending = _PendingOp(opnum=self._opnum, op=op,
                                 client=client, token=token)
            self._pending[pending.opnum] = pending
            digest = str(hash((op.kind, op.key))).encode()[:8]
            for witness in self.witnesses:
                self.wire.send(("l", self.shard, "w"), 0.0,
                               witness.on_prepare, self, self.view,
                               pending.opnum, digest)
            for replica in self.replicas:
                self.wire.send(("l", self.shard, "r"), 0.0,
                               replica.on_commit, pending.opnum, op)

        self.core.submit(params.VR_LEADER_INGRESS_S, ingress_done)

    def on_prepare_ok(self, opnum: int, view: int) -> None:
        def ack_done():
            pending = self._pending.get(opnum)
            if pending is None or view != self.view:
                return
            pending.acks += 1
            if pending.acks >= self.quorum and not pending.committed:
                pending.committed = True
                self._execute_ready()

        self.core.submit(params.VR_LEADER_ACK_S, ack_done)

    def _execute_ready(self) -> None:
        """Commit in op-number order (VR's strict ordering)."""
        while True:
            pending = self._pending.get(self._next_execute)
            if pending is None or not pending.committed:
                return
            del self._pending[self._next_execute]
            self._next_execute += 1
            self._commit(pending)

    def _commit(self, pending: _PendingOp) -> None:
        def commit_done():
            result = self.kv.execute(pending.op)
            self.completed += 1
            self.wire.send(("l", self.shard, "c"), 0.0,
                           pending.client.on_reply, result,
                           pending.token)

        self.core.submit(params.VR_LEADER_COMMIT_S, commit_done)


class Client:
    """A closed-loop client: one outstanding request at a time.

    With ``retry_s`` set, a request unanswered for that long is resent
    to the shard's *current* leader (``leaders`` is read at transmit
    time, so a fail-over redirects retries).  Replies carry the
    request's token: a late answer from a deposed or thawed leader to
    an already-retried request is recognised and dropped instead of
    completing the wrong operation.
    """

    def __init__(self, sim: EventSimulator, wire: _Wire,
                 rng: random.Random, workload: KvWorkload,
                 leaders: list[Leader], retry_s: float | None = None):
        self.sim = sim
        self.wire = wire
        self.rng = rng
        self.workload = workload
        self.leaders = leaders
        self.retry_s = retry_s
        self.latencies: list[float] = []
        self.retries = 0
        self._sent_at = 0.0
        self._token = 0
        self._outstanding: tuple[int, int, KvOp] | None = None

    def start(self) -> None:
        self._send_next()

    def _send_next(self) -> None:
        shard, op = self.workload.next_op()
        self._token += 1
        self._sent_at = self.sim.now
        self._outstanding = (self._token, shard, op)
        self._transmit(shard, op, self._token)

    def _transmit(self, shard: int, op: KvOp, token: int) -> None:
        leader = self.leaders[shard]
        self.wire.send(("c", id(self), shard),
                       _client_side_cost(self.rng),
                       leader.on_request, self, op, token)
        if self.retry_s is not None:
            self.sim.schedule(self.retry_s, self._maybe_retry, token)

    def _maybe_retry(self, token: int) -> None:
        if self._outstanding is None or self._outstanding[0] != token:
            return  # answered in the meantime
        _, shard, op = self._outstanding
        self.retries += 1
        self._transmit(shard, op, token)

    def on_reply(self, result, token: int | None = None) -> None:
        if self._outstanding is None:
            return  # duplicate reply (request was retried and answered)
        if token is not None and token != self._outstanding[0]:
            return  # stale reply to a superseded request
        self._outstanding = None
        # Receive-side client cost lands on the latency too.
        done_at = self.sim.now + _client_side_cost(self.rng)
        self.sim.schedule_at(done_at, self._complete)

    def _complete(self) -> None:
        self.latencies.append(self.sim.now - self._sent_at)
        # Client application work before the next request goes out
        # (not part of the measured operation latency).
        self.sim.schedule(params.VR_CLIENT_APP_S, self._send_next)


@dataclass
class VrResult:
    shards: int
    witness_kind: str
    n_clients: int
    duration_s: float
    throughput_kops: float
    median_latency_us: float
    p99_latency_us: float
    witness_power_w: float
    energy_mj_per_op: float
    latencies_us: list = field(repr=False, default_factory=list)
    cluster: "VrExperiment | None" = field(repr=False, default=None)


class VrExperiment:
    """Builds and runs one (shards, witness kind, clients) point.

    Fault tolerance knobs (both default off, preserving the exact
    Fig 11 behaviour):

    - ``view_change_timeout_s``: a monitor fires at this period; a
      shard whose leader has received requests but completed none
      since the last tick is failed over (:meth:`fail_over`) — the
      replica is promoted with the leader's KV state and the witness's
      op-number high-water mark, at ``view + 1``.
    - ``client_retry_s``: clients resend unanswered requests (to the
      shard's current leader) after this long.

    ``schedule_freeze`` injects the faults themselves;
    :func:`repro.faults.apply_vr_faults` maps a
    :class:`~repro.faults.plan.FaultPlan` onto it.
    """

    def __init__(self, shards: int, witness_kind: str, n_clients: int,
                 seed: int = 0xBEE5,
                 view_change_timeout_s: float | None = None,
                 client_retry_s: float | None = None):
        self.shards = shards
        self.witness_kind = witness_kind
        self.n_clients = n_clients
        self.view_change_timeout_s = view_change_timeout_s
        self.client_retry_s = client_retry_s
        self.view_changes = 0
        #: (time, shard, new view) per completed fail-over.
        self.view_change_log: list[tuple[float, int, int]] = []
        #: (time, role, shard, duration) per injected freeze.
        self.fault_log: list[tuple[float, str, int, float]] = []
        self.sim = EventSimulator()
        streams = SeededStreams(seed)
        self._streams = streams
        self.wire = _Wire(self.sim, streams.stream("wire"))
        self.witnesses = [
            Witness(self.sim, self.wire, streams.stream(f"wit{s}"), s,
                    witness_kind)
            for s in range(shards)
        ]
        self.replicas = [
            Replica(self.sim, streams.stream(f"rep{s}"), s)
            for s in range(shards)
        ]
        self.leaders = [
            Leader(self.sim, self.wire, streams.stream(f"lead{s}"), s,
                   [self.witnesses[s]], [self.replicas[s]])
            for s in range(shards)
        ]
        workload_rng = streams.stream("workload")
        self.clients = [
            Client(self.sim, self.wire,
                   streams.stream(f"client{i}"),
                   KvWorkload(workload_rng, shards=shards),
                   self.leaders, retry_s=client_retry_s)
            for i in range(n_clients)
        ]
        self._progress = [(-1, -1)] * shards  # (leader id, completed)
        if view_change_timeout_s is not None:
            self.sim.schedule(view_change_timeout_s, self._monitor_tick)

    # -- fault injection and recovery ---------------------------------------

    def schedule_freeze(self, role: str, shard: int, at_s: float,
                        duration_s: float) -> None:
        """Freeze a node's core for ``[at_s, at_s + duration_s)``.

        ``role`` is ``leader``/``witness``/``replica``; the node is
        resolved at fire time, so freezing "the leader" after a
        fail-over targets the current one.  Freezing an FPGA witness
        is a no-op (no core — the pipeline has no scheduler to lose).
        """
        if role not in ("leader", "witness", "replica"):
            raise ValueError(f"unknown VR role {role!r}")
        if not 0 <= shard < self.shards:
            raise ValueError(f"no shard {shard} (have {self.shards})")

        def apply() -> None:
            node = {"leader": self.leaders,
                    "witness": self.witnesses,
                    "replica": self.replicas}[role][shard]
            if node.core is None:
                return
            node.core.freeze_until(self.sim.now + duration_s)
            self.fault_log.append((self.sim.now, role, shard,
                                   duration_s))

        self.sim.schedule_at(at_s, apply)

    def fail_over(self, shard: int) -> Leader:
        """Promote the shard's replica state into a view+1 leader.

        The new leader adopts the replica's executed KV state and
        continues the op-number sequence from the witness's high-water
        mark, so its first prepare is in-order at the witness; the
        witness adopts the higher view on sight, after which the old
        leader's late prepares are STALE_VIEWed.  ``self.leaders`` is
        mutated in place — clients resolve leaders per transmit.
        """
        old = self.leaders[shard]
        witness = self.witnesses[shard]
        replica = self.replicas[shard]
        new = Leader(self.sim, self.wire,
                     self._streams.stream(f"lead{shard}v{old.view + 1}"),
                     shard, [witness], [replica])
        new.view = old.view + 1
        new.kv._data.update(replica.kv.snapshot())
        new._opnum = witness.state.last_opnum
        new._next_execute = witness.state.last_opnum + 1
        self.leaders[shard] = new
        self.view_changes += 1
        self.view_change_log.append((self.sim.now, shard, new.view))
        return new

    def _monitor_tick(self) -> None:
        for shard, leader in enumerate(self.leaders):
            progress = (id(leader), leader.completed)
            stalled = (progress == self._progress[shard]
                       and leader.requests > leader.completed)
            self._progress[shard] = progress
            if stalled:
                self.fail_over(shard)
        self.sim.schedule(self.view_change_timeout_s,
                          self._monitor_tick)

    def run(self, duration_s: float = 0.5,
            warmup_s: float = 0.05) -> VrResult:
        for client in self.clients:
            client.start()
        self.sim.run_until(warmup_s)
        baseline = [len(c.latencies) for c in self.clients]
        for client in self.clients:
            client.latencies.clear()
        self.sim.run_until(warmup_s + duration_s)
        latencies = sorted(
            lat for client in self.clients for lat in client.latencies
        )
        completed = len(latencies)
        throughput = completed / duration_s
        median = latencies[completed // 2] if latencies else 0.0
        p99 = latencies[int(completed * 0.99)] if latencies else 0.0
        power = self._witness_power(warmup_s + duration_s)
        energy = power / throughput * 1e3 if throughput else 0.0
        return VrResult(
            shards=self.shards,
            witness_kind=self.witness_kind,
            n_clients=self.n_clients,
            duration_s=duration_s,
            throughput_kops=throughput / 1e3,
            median_latency_us=median * 1e6,
            p99_latency_us=p99 * 1e6,
            witness_power_w=power,
            energy_mj_per_op=energy,
            latencies_us=[lat * 1e6 for lat in latencies],
            cluster=self,
        )

    def _witness_power(self, elapsed_s: float) -> float:
        if self.witness_kind == "cpu":
            model = CpuEnergyModel(params.VR_CPU_IDLE_W,
                                   params.VR_CPU_CORE_W)
            utilisation = sum(
                witness.core.utilisation(elapsed_s)
                for witness in self.witnesses
            )
            return model.power_w(utilisation)
        # FPGA witness appliance: the UDP stack (6 tiles + empties)
        # plus one witness tile per shard.
        model = FpgaEnergyModel()
        stack_util = min(1.0, sum(w.prepares for w in self.witnesses)
                         * 64 * 8 / (elapsed_s * 100e9))
        tiles = [TileActivity(f"stack{i}", stack_util)
                 for i in range(6)]
        per_witness_util = [
            min(1.0, w.prepares * params.VR_FPGA_WITNESS_SERVICE_S
                / elapsed_s)
            for w in self.witnesses
        ]
        tiles.extend(TileActivity(f"witness{s}", util)
                     for s, util in enumerate(per_witness_util))
        tiles.extend(TileActivity(f"empty{i}", 0.0)
                     for i in range(12 - len(tiles)))
        return model.power_w(tiles)
