"""The event-level VR cluster (Fig 10's experimental setup).

A three-role VR configuration per shard — CPU leader, witness (CPU or
Beehive), CPU replica — driven by closed-loop clients against the
replicated KV store.  Leaders are single-core FIFO servers; the client
measures end-to-end latency; witness-server energy comes from the
calibrated power models.  This is the machinery behind Fig 11 and
Table IV.

The protocol is executed for real: op numbers, witness quorum before
the client reply, in-order commit, replica state machines (their KV
converges to the leader's — asserted by tests).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro import params
from repro.apps.vr.kv import KvOp, KvStore, KvWorkload
from repro.apps.vr.witness import WitnessDecision, WitnessState
from repro.energy.model import (
    CpuEnergyModel,
    FpgaEnergyModel,
    TileActivity,
)
from repro.sim.events import EventSimulator
from repro.sim.rng import SeededStreams


class ServerCore:
    """A single-core FIFO server in the event simulator."""

    def __init__(self, sim: EventSimulator, rng: random.Random,
                 jitter_s: float = 0.0, tail_prob: float = 0.0,
                 tail_s: float = 0.0):
        self.sim = sim
        self.rng = rng
        self.jitter_s = jitter_s
        self.tail_prob = tail_prob
        self.tail_s = tail_s
        self._free_at = 0.0
        self.busy_s = 0.0

    def submit(self, work_s: float, callback, *args) -> None:
        if self.jitter_s:
            work_s += self.rng.expovariate(1.0 / self.jitter_s)
        if self.tail_prob and self.rng.random() < self.tail_prob:
            # A scheduler hiccup stalls the core; everything queued
            # behind this request is delayed too.
            work_s += self.rng.expovariate(1.0 / self.tail_s)
        start = max(self.sim.now, self._free_at)
        self._free_at = start + work_s
        self.busy_s += work_s
        self.sim.schedule_at(self._free_at, callback, *args)

    def utilisation(self, elapsed_s: float) -> float:
        return min(1.0, self.busy_s / elapsed_s) if elapsed_s else 0.0


class _Wire:
    """Per-link one-way delay with FIFO (non-reordering) delivery."""

    def __init__(self, sim: EventSimulator, rng: random.Random):
        self.sim = sim
        self.rng = rng
        self._last: dict[tuple, float] = {}

    def send(self, channel: tuple, extra_s: float, callback,
             *args) -> None:
        delay = params.WIRE_SWITCH_ONEWAY_S + extra_s
        arrival = self.sim.now + delay
        arrival = max(arrival, self._last.get(channel, 0.0) + 1e-9)
        self._last[channel] = arrival
        self.sim.schedule_at(arrival, callback, *args)


def _linux_cost(rng: random.Random) -> float:
    cost = params.LINUX_STACK_ONEWAY_S + rng.expovariate(
        1.0 / params.LINUX_STACK_JITTER_S)
    if rng.random() < params.LINUX_SCHED_TAIL_PROB:
        cost += rng.expovariate(1.0 / params.LINUX_SCHED_TAIL_S)
    return cost


def _client_side_cost(rng: random.Random) -> float:
    """A client-side message traversal: Linux stack + thread wakeup."""
    return _linux_cost(rng) + params.VR_CLIENT_SIDE_EXTRA_S


class Witness:
    """One shard's witness: CPU (queued, jittery, occasional scheduler
    tail) or FPGA (deterministic pipeline, no queue at these rates)."""

    def __init__(self, sim: EventSimulator, wire: _Wire,
                 rng: random.Random, shard: int, kind: str):
        if kind not in ("cpu", "fpga"):
            raise ValueError(f"unknown witness kind {kind!r}")
        self.sim = sim
        self.wire = wire
        self.rng = rng
        self.kind = kind
        self.state = WitnessState(shard=shard)
        self.core = ServerCore(sim, rng) if kind == "cpu" else None
        self.prepares = 0

    def _service_s(self) -> float:
        if self.kind == "cpu":
            cost = params.VR_CPU_WITNESS_SERVICE_S + self.rng.expovariate(
                1.0 / params.VR_CPU_WITNESS_JITTER_S)
            if self.rng.random() < params.VR_CPU_WITNESS_TAIL_PROB:
                cost += self.rng.expovariate(
                    1.0 / params.VR_CPU_WITNESS_TAIL_S)
            return cost
        return params.VR_FPGA_WITNESS_SERVICE_S + self.rng.expovariate(
            1.0 / params.VR_FPGA_WITNESS_JITTER_S)

    def on_prepare(self, leader: "Leader", view: int, opnum: int,
                   digest: bytes) -> None:
        self.prepares += 1
        work = self._service_s()

        def done():
            decision = self.state.handle_prepare(view, opnum, digest)
            if decision in (WitnessDecision.ACCEPT,
                            WitnessDecision.DUPLICATE):
                self.wire.send(("w", self.state.shard, "l"), 0.0,
                               leader.on_prepare_ok, opnum,
                               self.state.view)

        if self.core is not None:
            self.core.submit(work, done)
        else:
            self.sim.schedule(work, done)


class Replica:
    """One shard's replica: executes committed ops in order."""

    def __init__(self, sim: EventSimulator, rng: random.Random,
                 shard: int):
        self.sim = sim
        self.core = ServerCore(sim, rng)
        self.shard = shard
        self.kv = KvStore()
        self._committed: dict[int, KvOp] = {}
        self._next_commit = 1

    def on_commit(self, opnum: int, op: KvOp) -> None:
        def done():
            self._committed[opnum] = op
            while self._next_commit in self._committed:
                self.kv.execute(self._committed.pop(self._next_commit))
                self._next_commit += 1

        self.core.submit(2e-6, done)


@dataclass
class _PendingOp:
    opnum: int
    op: KvOp
    client: "Client"
    acks: int = 0
    committed: bool = False


class Leader:
    """One shard's leader: a single core running the VR critical path."""

    def __init__(self, sim: EventSimulator, wire: _Wire,
                 rng: random.Random, shard: int,
                 witnesses: list[Witness], replicas: list[Replica]):
        self.sim = sim
        self.wire = wire
        self.rng = rng
        self.shard = shard
        self.witnesses = witnesses
        self.replicas = replicas
        self.core = ServerCore(sim, rng,
                               jitter_s=params.VR_LEADER_JITTER_S / 3,
                               tail_prob=params.VR_LEADER_TAIL_PROB,
                               tail_s=params.VR_LEADER_TAIL_S)
        self.view = 0
        self.kv = KvStore()
        self._opnum = 0
        self._pending: dict[int, _PendingOp] = {}
        self._next_execute = 1
        self.completed = 0

    @property
    def quorum(self) -> int:
        return len(self.witnesses)  # all witnesses must verify

    def on_request(self, client: "Client", op: KvOp) -> None:
        def ingress_done():
            self._opnum += 1
            pending = _PendingOp(opnum=self._opnum, op=op,
                                 client=client)
            self._pending[pending.opnum] = pending
            digest = str(hash((op.kind, op.key))).encode()[:8]
            for witness in self.witnesses:
                self.wire.send(("l", self.shard, "w"), 0.0,
                               witness.on_prepare, self, self.view,
                               pending.opnum, digest)
            for replica in self.replicas:
                self.wire.send(("l", self.shard, "r"), 0.0,
                               replica.on_commit, pending.opnum, op)

        self.core.submit(params.VR_LEADER_INGRESS_S, ingress_done)

    def on_prepare_ok(self, opnum: int, view: int) -> None:
        def ack_done():
            pending = self._pending.get(opnum)
            if pending is None or view != self.view:
                return
            pending.acks += 1
            if pending.acks >= self.quorum and not pending.committed:
                pending.committed = True
                self._execute_ready()

        self.core.submit(params.VR_LEADER_ACK_S, ack_done)

    def _execute_ready(self) -> None:
        """Commit in op-number order (VR's strict ordering)."""
        while True:
            pending = self._pending.get(self._next_execute)
            if pending is None or not pending.committed:
                return
            del self._pending[self._next_execute]
            self._next_execute += 1
            self._commit(pending)

    def _commit(self, pending: _PendingOp) -> None:
        def commit_done():
            result = self.kv.execute(pending.op)
            self.completed += 1
            self.wire.send(("l", self.shard, "c"), 0.0,
                           pending.client.on_reply, result)

        self.core.submit(params.VR_LEADER_COMMIT_S, commit_done)


class Client:
    """A closed-loop client: one outstanding request at a time."""

    def __init__(self, sim: EventSimulator, wire: _Wire,
                 rng: random.Random, workload: KvWorkload,
                 leaders: list[Leader]):
        self.sim = sim
        self.wire = wire
        self.rng = rng
        self.workload = workload
        self.leaders = leaders
        self.latencies: list[float] = []
        self._sent_at = 0.0

    def start(self) -> None:
        self._send_next()

    def _send_next(self) -> None:
        shard, op = self.workload.next_op()
        leader = self.leaders[shard]
        self._sent_at = self.sim.now
        self.wire.send(("c", id(self), shard),
                       _client_side_cost(self.rng),
                       leader.on_request, self, op)

    def on_reply(self, result) -> None:
        # Receive-side client cost lands on the latency too.
        done_at = self.sim.now + _client_side_cost(self.rng)
        self.sim.schedule_at(done_at, self._complete)

    def _complete(self) -> None:
        self.latencies.append(self.sim.now - self._sent_at)
        # Client application work before the next request goes out
        # (not part of the measured operation latency).
        self.sim.schedule(params.VR_CLIENT_APP_S, self._send_next)


@dataclass
class VrResult:
    shards: int
    witness_kind: str
    n_clients: int
    duration_s: float
    throughput_kops: float
    median_latency_us: float
    p99_latency_us: float
    witness_power_w: float
    energy_mj_per_op: float
    latencies_us: list = field(repr=False, default_factory=list)
    cluster: "VrExperiment | None" = field(repr=False, default=None)


class VrExperiment:
    """Builds and runs one (shards, witness kind, clients) point."""

    def __init__(self, shards: int, witness_kind: str, n_clients: int,
                 seed: int = 0xBEE5):
        self.shards = shards
        self.witness_kind = witness_kind
        self.n_clients = n_clients
        self.sim = EventSimulator()
        streams = SeededStreams(seed)
        self.wire = _Wire(self.sim, streams.stream("wire"))
        self.witnesses = [
            Witness(self.sim, self.wire, streams.stream(f"wit{s}"), s,
                    witness_kind)
            for s in range(shards)
        ]
        self.replicas = [
            Replica(self.sim, streams.stream(f"rep{s}"), s)
            for s in range(shards)
        ]
        self.leaders = [
            Leader(self.sim, self.wire, streams.stream(f"lead{s}"), s,
                   [self.witnesses[s]], [self.replicas[s]])
            for s in range(shards)
        ]
        workload_rng = streams.stream("workload")
        self.clients = [
            Client(self.sim, self.wire,
                   streams.stream(f"client{i}"),
                   KvWorkload(workload_rng, shards=shards),
                   self.leaders)
            for i in range(n_clients)
        ]

    def run(self, duration_s: float = 0.5,
            warmup_s: float = 0.05) -> VrResult:
        for client in self.clients:
            client.start()
        self.sim.run_until(warmup_s)
        baseline = [len(c.latencies) for c in self.clients]
        for client in self.clients:
            client.latencies.clear()
        self.sim.run_until(warmup_s + duration_s)
        latencies = sorted(
            lat for client in self.clients for lat in client.latencies
        )
        completed = len(latencies)
        throughput = completed / duration_s
        median = latencies[completed // 2] if latencies else 0.0
        p99 = latencies[int(completed * 0.99)] if latencies else 0.0
        power = self._witness_power(warmup_s + duration_s)
        energy = power / throughput * 1e3 if throughput else 0.0
        return VrResult(
            shards=self.shards,
            witness_kind=self.witness_kind,
            n_clients=self.n_clients,
            duration_s=duration_s,
            throughput_kops=throughput / 1e3,
            median_latency_us=median * 1e6,
            p99_latency_us=p99 * 1e6,
            witness_power_w=power,
            energy_mj_per_op=energy,
            latencies_us=[lat * 1e6 for lat in latencies],
            cluster=self,
        )

    def _witness_power(self, elapsed_s: float) -> float:
        if self.witness_kind == "cpu":
            model = CpuEnergyModel(params.VR_CPU_IDLE_W,
                                   params.VR_CPU_CORE_W)
            utilisation = sum(
                witness.core.utilisation(elapsed_s)
                for witness in self.witnesses
            )
            return model.power_w(utilisation)
        # FPGA witness appliance: the UDP stack (6 tiles + empties)
        # plus one witness tile per shard.
        model = FpgaEnergyModel()
        stack_util = min(1.0, sum(w.prepares for w in self.witnesses)
                         * 64 * 8 / (elapsed_s * 100e9))
        tiles = [TileActivity(f"stack{i}", stack_util)
                 for i in range(6)]
        per_witness_util = [
            min(1.0, w.prepares * params.VR_FPGA_WITNESS_SERVICE_S
                / elapsed_s)
            for w in self.witnesses
        ]
        tiles.extend(TileActivity(f"witness{s}", util)
                     for s, util in enumerate(per_witness_util))
        tiles.extend(TileActivity(f"empty{i}", 0.0)
                     for i in range(12 - len(tiles)))
        return model.power_w(tiles)
