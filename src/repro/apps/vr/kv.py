"""The replicated key-value store and its workload generator.

Workload per the paper (section VII-F): 64-byte keys and values, 90%
reads / 10% writes, uniform key distribution, key space sharded with a
leader + witness + replica set per slice.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro import params


class KvStore:
    """The application state machine each replica group maintains."""

    def __init__(self):
        self._data: dict[bytes, bytes] = {}
        self.reads = 0
        self.writes = 0

    def execute(self, op: "KvOp") -> bytes | None:
        if op.kind == "get":
            self.reads += 1
            return self._data.get(op.key)
        if op.kind == "put":
            self.writes += 1
            self._data[op.key] = op.value
            return op.value
        raise ValueError(f"unknown op kind {op.kind!r}")

    def snapshot(self) -> dict[bytes, bytes]:
        return dict(self._data)

    def __len__(self) -> int:
        return len(self._data)


@dataclass(frozen=True)
class KvOp:
    kind: str  # "get" | "put"
    key: bytes
    value: bytes | None = None


class KvWorkload:
    """Uniform-key, read-mostly operation generator."""

    def __init__(self, rng: random.Random,
                 n_keys: int = 10_000,
                 key_bytes: int = params.VR_KEY_BYTES,
                 value_bytes: int = params.VR_VALUE_BYTES,
                 read_fraction: float = params.VR_READ_FRACTION,
                 shards: int = 1):
        self.rng = rng
        self.n_keys = n_keys
        self.key_bytes = key_bytes
        self.value_bytes = value_bytes
        self.read_fraction = read_fraction
        self.shards = shards

    def _key(self, index: int) -> bytes:
        return str(index).encode().rjust(self.key_bytes, b"k")

    def shard_of(self, key: bytes) -> int:
        return int(key[-8:].strip(b"k") or b"0") % self.shards

    def next_op(self) -> tuple[int, KvOp]:
        """(shard, operation) for one client request."""
        index = self.rng.randrange(self.n_keys)
        key = self._key(index)
        shard = self.shard_of(key)
        if self.rng.random() < self.read_fraction:
            return shard, KvOp(kind="get", key=key)
        value = self.rng.randbytes(self.value_bytes)
        return shard, KvOp(kind="put", key=key, value=value)
