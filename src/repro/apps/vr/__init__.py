"""Viewstamped-replication witness acceleration (paper section VI-B).

The consensus system the paper evaluates: closed-loop clients, sharded
CPU leaders, CPU replicas, a replicated key-value store, and witnesses
that only validate the leader and record operation order — the piece
that moves to hardware.  Single-node fault tolerance = one leader, one
witness, one replica per shard; the leader replies to the client after
the witness quorum, which is what makes witness latency matter.

- :mod:`repro.apps.vr.witness` — the witness protocol core, shared by
  the CPU node model and the Beehive tile;
- :mod:`repro.apps.vr.tile` — the hardware witness as a Beehive UDP
  application (wire format included);
- :mod:`repro.apps.vr.cluster` — the event-level distributed system
  that regenerates Fig 11 and Table IV;
- :mod:`repro.apps.vr.kv` — the replicated KV store and workload.
"""

from repro.apps.vr.kv import KvStore, KvWorkload
from repro.apps.vr.witness import WitnessDecision, WitnessState
from repro.apps.vr.tile import VrWitnessTile
from repro.apps.vr.cluster import VrExperiment, VrResult

__all__ = [
    "KvStore",
    "KvWorkload",
    "VrExperiment",
    "VrResult",
    "VrWitnessTile",
    "WitnessDecision",
    "WitnessState",
]
