"""The witness protocol core (paper section VI-B).

A witness validates the leader and tracks the operation order; it does
not execute client operations.  The logic is deliberately tiny — that
is the point of the case study: a small, latency-critical state
machine, perfect for hardware.  The same class backs both the CPU
witness node model and the Beehive witness tile, so protocol tests
cover both deployments.

Based on the modified Viewstamped Replication of the paper's reference
[63]: the leader's Prepare carries (view, op-number, digest); the
witness accepts in-order ops for the current view, re-acknowledges
duplicates (retransmissions), rejects stale views (a deposed leader),
and reports gaps so the leader can retransmit.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class WitnessDecision(enum.Enum):
    ACCEPT = "accept"          # logged; PrepareOK
    DUPLICATE = "duplicate"    # already logged; PrepareOK again
    STALE_VIEW = "stale_view"  # leader is deposed; reject
    GAP = "gap"                # missing ops; ask for retransmission


@dataclass
class WitnessState:
    """One shard's witness state."""

    shard: int = 0
    view: int = 0
    last_opnum: int = 0
    log: list = field(default_factory=list)  # (opnum, digest)
    max_log: int = 1 << 20
    accepted: int = 0
    duplicates: int = 0
    rejected: int = 0

    def handle_prepare(self, view: int, opnum: int,
                       digest: bytes) -> WitnessDecision:
        if view < self.view:
            self.rejected += 1
            return WitnessDecision.STALE_VIEW
        if view > self.view:
            # A view change happened; adopt the new view.
            self.view = view
        if opnum == self.last_opnum + 1:
            self.log.append((opnum, digest))
            if len(self.log) > self.max_log:
                self.log.pop(0)
            self.last_opnum = opnum
            self.accepted += 1
            return WitnessDecision.ACCEPT
        if opnum <= self.last_opnum:
            self.duplicates += 1
            return WitnessDecision.DUPLICATE
        self.rejected += 1
        return WitnessDecision.GAP

    @property
    def prepare_ok(self) -> set:
        return {WitnessDecision.ACCEPT, WitnessDecision.DUPLICATE}
