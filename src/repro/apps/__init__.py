"""Applications integrated with Beehive.

- :mod:`repro.apps.echo` — the UDP echo server used by the
  microbenchmarks (Table I, Fig 7, Fig 12).
- :mod:`repro.apps.reed_solomon` — the bandwidth-oriented case study:
  a complete GF(2^8) Reed-Solomon codec plus the accelerator tile and
  the CPU baseline (Table III).
- :mod:`repro.apps.vr` — the latency-oriented case study: a
  viewstamped-replication-derived consensus system with hardware
  witness tiles (Fig 11, Table IV).
"""

from repro.apps.echo import UdpEchoAppTile

__all__ = ["UdpEchoAppTile"]
