"""The UDP echo application tile.

Receives a UDP payload (with the full parsed header metadata from the
protocol chain) and sends it straight back, swapping the source and
destination addresses/ports — the server side of the paper's echo
microbenchmarks.
"""

from __future__ import annotations

from repro.noc.mesh import Mesh
from repro.noc.message import NocMessage
from repro.packet.ipv4 import IPPROTO_UDP, IPv4Header
from repro.packet.udp import UdpHeader
from repro.tiles.base import NextHopTable, PacketMeta, Tile


class UdpEchoAppTile(Tile):
    """Echoes every UDP datagram back to its sender."""

    KIND = "echo_app"

    DEFAULT = "default"

    def __init__(self, name: str, mesh: Mesh, coord: tuple[int, int],
                 **kwargs):
        super().__init__(name, mesh, coord, **kwargs)
        self.next_hop = NextHopTable(name=f"{name}.nexthop")
        self.requests = 0

    def handle_message(self, message: NocMessage, cycle: int):
        meta: PacketMeta = message.metadata
        if meta is None or meta.ip is None or meta.udp is None:
            return self.drop(message, "not a UDP request")
        self.requests += 1
        reply = PacketMeta(
            ip=IPv4Header(src=meta.ip.dst, dst=meta.ip.src,
                          protocol=IPPROTO_UDP),
            udp=UdpHeader(src_port=meta.udp.dst_port,
                          dst_port=meta.udp.src_port),
            ingress_cycle=meta.ingress_cycle,
        )
        dest = self.next_hop.lookup(self.DEFAULT)
        if dest is None:
            return self.drop(message, "no transmit path")
        return [self.make_message(dest, metadata=reply, data=message.data)]
