"""GF(2^8) arithmetic with log/exp tables.

The field is GF(256) with the generator polynomial x^8+x^4+x^3+x^2+1
(0x11D) and generator element 2 — the same construction as the
BackBlaze Java encoder the paper benchmarks against.  Bulk operations
are vectorised with numpy table lookups, which is what makes the CPU
baseline's throughput (a couple of Gbps per core) achievable in Python.
"""

from __future__ import annotations

import numpy as np

_POLY = 0x11D


class GF256:
    """The finite field GF(2^8)."""

    def __init__(self):
        self.exp = np.zeros(512, dtype=np.uint8)
        self.log = np.zeros(256, dtype=np.int32)
        value = 1
        for power in range(255):
            self.exp[power] = value
            self.log[value] = power
            value <<= 1
            if value & 0x100:
                value ^= _POLY
        # Duplicate so exp[a + b] never needs a modulo.
        self.exp[255:510] = self.exp[0:255]
        # A full 256x256 product table: 64 KiB, the fastest mul path.
        logs = self.log[np.arange(256)]
        sums = logs[:, None] + logs[None, :]
        self.mul_table = self.exp[sums].astype(np.uint8)
        self.mul_table[0, :] = 0
        self.mul_table[:, 0] = 0

    # -- scalar ops --------------------------------------------------------

    @staticmethod
    def add(a: int, b: int) -> int:
        """Addition = XOR in characteristic 2."""
        return a ^ b

    sub = add  # subtraction is the same operation

    def mul(self, a: int, b: int) -> int:
        if a == 0 or b == 0:
            return 0
        return int(self.exp[int(self.log[a]) + int(self.log[b])])

    def div(self, a: int, b: int) -> int:
        if b == 0:
            raise ZeroDivisionError("division by zero in GF(256)")
        if a == 0:
            return 0
        return int(self.exp[(int(self.log[a]) - int(self.log[b]))
                            % 255])

    def inverse(self, a: int) -> int:
        if a == 0:
            raise ZeroDivisionError("zero has no inverse in GF(256)")
        return int(self.exp[255 - int(self.log[a])])

    def power(self, a: int, n: int) -> int:
        if a == 0:
            return 0 if n else 1
        return int(self.exp[(int(self.log[a]) * n) % 255])

    # -- bulk ops ----------------------------------------------------------

    def mul_slice(self, coefficient: int,
                  data: np.ndarray) -> np.ndarray:
        """coefficient * data over the field, elementwise."""
        return self.mul_table[coefficient][data]

    def addmul_slice(self, accumulator: np.ndarray, coefficient: int,
                     data: np.ndarray) -> None:
        """accumulator ^= coefficient * data, in place."""
        np.bitwise_xor(accumulator, self.mul_table[coefficient][data],
                       out=accumulator)


GF = GF256()
"""Module-level field instance (the tables are immutable)."""
