"""The Reed-Solomon codec (BackBlaze construction).

The encoding matrix is a Vandermonde matrix normalised so its top
square is the identity: encoding leaves the data shards unchanged and
appends parity rows, and any ``data_shards`` surviving rows suffice to
reconstruct (every square submatrix is invertible).
"""

from __future__ import annotations

import numpy as np

from repro.apps.reed_solomon.gf import GF
from repro.apps.reed_solomon.matrix import GFMatrix


class ReedSolomonCodec:
    """An (data_shards, parity_shards) erasure code over GF(256)."""

    def __init__(self, data_shards: int, parity_shards: int):
        if data_shards < 1 or parity_shards < 0:
            raise ValueError("need >= 1 data and >= 0 parity shards")
        if data_shards + parity_shards > 256:
            raise ValueError("at most 256 total shards in GF(256)")
        self.data_shards = data_shards
        self.parity_shards = parity_shards
        self.total_shards = data_shards + parity_shards
        vandermonde = GFMatrix.vandermonde(self.total_shards,
                                           data_shards)
        top = vandermonde.select_rows(range(data_shards))
        self.matrix = vandermonde.times(top.invert())
        self.parity_rows = self.matrix.select_rows(
            range(data_shards, self.total_shards)
        )

    # -- encode -----------------------------------------------------------

    def encode(self, data_blocks: list[bytes]) -> list[bytes]:
        """Parity shards for ``data_shards`` equal-length blocks."""
        if len(data_blocks) != self.data_shards:
            raise ValueError(
                f"expected {self.data_shards} blocks, got "
                f"{len(data_blocks)}"
            )
        length = len(data_blocks[0])
        if any(len(block) != length for block in data_blocks):
            raise ValueError("data blocks must be equal length")
        data = [np.frombuffer(block, dtype=np.uint8)
                for block in data_blocks]
        parity = []
        for row in self.parity_rows.data:
            acc = np.zeros(length, dtype=np.uint8)
            for coefficient, block in zip(row, data):
                GF.addmul_slice(acc, int(coefficient), block)
            parity.append(acc.tobytes())
        return parity

    def encode_request(self, request: bytes) -> bytes:
        """The accelerator's interface: split a request into
        ``data_shards`` stripes, return the concatenated parity (the
        4 KB -> 1 KB transform of section VII-E)."""
        if len(request) % self.data_shards:
            raise ValueError(
                f"request length {len(request)} not divisible by "
                f"{self.data_shards}"
            )
        stripe = len(request) // self.data_shards
        blocks = [request[i * stripe:(i + 1) * stripe]
                  for i in range(self.data_shards)]
        return b"".join(self.encode(blocks))

    # -- decode -----------------------------------------------------------

    def reconstruct(self, shards: dict[int, bytes],
                    length: int) -> list[bytes]:
        """Rebuild all data shards from any ``data_shards`` survivors.

        ``shards`` maps shard index (0..total-1; parity shards follow
        data shards) to its bytes.
        """
        if len(shards) < self.data_shards:
            raise ValueError(
                f"need {self.data_shards} shards, have {len(shards)}"
            )
        indices = sorted(shards)[: self.data_shards]
        sub = self.matrix.select_rows(indices)
        decode = sub.invert()
        available = [np.frombuffer(shards[i], dtype=np.uint8)
                     for i in indices]
        out = []
        for row in decode.data:
            acc = np.zeros(length, dtype=np.uint8)
            for coefficient, block in zip(row, available):
                GF.addmul_slice(acc, int(coefficient), block)
            out.append(acc.tobytes())
        return out

    def verify(self, data_blocks: list[bytes],
               parity_blocks: list[bytes]) -> bool:
        return self.encode(data_blocks) == list(parity_blocks)
