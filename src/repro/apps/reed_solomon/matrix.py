"""Matrix algebra over GF(2^8): the linear algebra under the codec."""

from __future__ import annotations

import numpy as np

from repro.apps.reed_solomon.gf import GF


class GFMatrix:
    """A matrix over GF(256), stored as a uint8 numpy array."""

    def __init__(self, rows: np.ndarray):
        self.data = np.asarray(rows, dtype=np.uint8)
        if self.data.ndim != 2:
            raise ValueError("GFMatrix needs a 2-D array")

    @property
    def shape(self) -> tuple[int, int]:
        return self.data.shape

    @classmethod
    def identity(cls, n: int) -> GFMatrix:
        return cls(np.eye(n, dtype=np.uint8))

    @classmethod
    def vandermonde(cls, rows: int, cols: int) -> GFMatrix:
        """V[r][c] = r ** c — every square submatrix of the derived
        (BackBlaze-style) encoding matrix is invertible."""
        data = np.zeros((rows, cols), dtype=np.uint8)
        for r in range(rows):
            for c in range(cols):
                data[r][c] = GF.power(r, c)
        return cls(data)

    def times(self, other: GFMatrix) -> GFMatrix:
        rows_a, cols_a = self.shape
        rows_b, cols_b = other.shape
        if cols_a != rows_b:
            raise ValueError(f"shape mismatch {self.shape} x "
                             f"{other.shape}")
        out = np.zeros((rows_a, cols_b), dtype=np.uint8)
        for r in range(rows_a):
            acc = np.zeros(cols_b, dtype=np.uint8)
            for k in range(cols_a):
                GF.addmul_slice(acc, int(self.data[r][k]),
                                other.data[k])
            out[r] = acc
        return GFMatrix(out)

    def augment(self, other: GFMatrix) -> GFMatrix:
        return GFMatrix(np.concatenate([self.data, other.data], axis=1))

    def submatrix(self, rows, cols) -> GFMatrix:
        return GFMatrix(self.data[np.ix_(rows, cols)])

    def select_rows(self, rows) -> GFMatrix:
        return GFMatrix(self.data[list(rows)])

    def invert(self) -> GFMatrix:
        """Gauss-Jordan elimination over the field."""
        n, m = self.shape
        if n != m:
            raise ValueError("only square matrices invert")
        work = self.augment(GFMatrix.identity(n)).data.copy()
        for col in range(n):
            pivot = None
            for row in range(col, n):
                if work[row][col] != 0:
                    pivot = row
                    break
            if pivot is None:
                raise ValueError("matrix is singular")
            if pivot != col:
                work[[col, pivot]] = work[[pivot, col]]
            scale = GF.inverse(int(work[col][col]))
            work[col] = GF.mul_slice(scale, work[col])
            for row in range(n):
                if row != col and work[row][col] != 0:
                    GF.addmul_slice(work[row], int(work[row][col]),
                                    work[col])
        return GFMatrix(work[:, n:])

    def __eq__(self, other) -> bool:
        return isinstance(other, GFMatrix) and \
            np.array_equal(self.data, other.data)

    def __repr__(self) -> str:
        return f"GFMatrix({self.data.tolist()})"
