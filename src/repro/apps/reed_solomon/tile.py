"""The Reed-Solomon accelerator tile.

A UDP application: a 4 KB request arrives, the tile computes the (8,2)
parity and replies with 1 KB of erasure data.  The engine consumes data
at the measured 15 Gbps per instance (7.5 B/cycle at 250 MHz), so a
request occupies it ~546 cycles; four instances behind the round-robin
scheduler tile scale to 62 Gbps (Table III).  Each tile logs per-request
metadata (cycle, bytes) for bandwidth accounting, as the paper notes.
"""

from __future__ import annotations

import math

from repro import params
from repro.apps.reed_solomon.codec import ReedSolomonCodec
from repro.noc.mesh import Mesh
from repro.noc.message import NocMessage
from repro.packet.ipv4 import IPPROTO_UDP, IPv4Header
from repro.packet.udp import UdpHeader
from repro.tiles.base import NextHopTable, PacketMeta, Tile


class RsEncoderTile(Tile):
    """One hardware Reed-Solomon encoder instance."""

    KIND = "rs_encoder"

    DEFAULT = "default"

    def __init__(self, name: str, mesh: Mesh, coord: tuple[int, int],
                 data_shards: int = params.RS_DATA_SHARDS,
                 parity_shards: int = params.RS_PARITY_SHARDS,
                 gbps: float = params.RS_TILE_GBPS,
                 codec: ReedSolomonCodec | None = None,
                 **kwargs):
        bytes_per_cycle = gbps * 1e9 / 8 / params.CLOCK_HZ
        kwargs.setdefault(
            "occupancy",
            math.ceil(params.RS_REQUEST_BYTES / bytes_per_cycle),
        )
        super().__init__(name, mesh, coord, **kwargs)
        self.codec = codec or ReedSolomonCodec(data_shards,
                                               parity_shards)
        self.next_hop = NextHopTable(name=f"{name}.nexthop")
        self.requests = 0
        self.bad_requests = 0
        # Per-request metadata log: (completion cycle, request bytes).
        self.metadata_log: list[tuple[int, int]] = []

    def handle_message(self, message: NocMessage, cycle: int):
        meta: PacketMeta = message.metadata
        if meta is None or meta.ip is None or meta.udp is None:
            return self.drop(message, "not a UDP request")
        request = message.data
        if not request or len(request) % self.codec.data_shards:
            self.bad_requests += 1
            return self.drop(message, "misaligned RS request")
        parity = self.codec.encode_request(request)
        self.requests += 1
        self.metadata_log.append((cycle, len(request)))
        reply_meta = PacketMeta(
            ip=IPv4Header(src=meta.ip.dst, dst=meta.ip.src,
                          protocol=IPPROTO_UDP),
            udp=UdpHeader(src_port=meta.udp.dst_port,
                          dst_port=meta.udp.src_port),
            ingress_cycle=meta.ingress_cycle,
        )
        dest = self.next_hop.lookup(self.DEFAULT)
        if dest is None:
            return self.drop(message, "no transmit path")
        return [self.make_message(dest, metadata=reply_meta,
                                  data=parity)]

    def logged_goodput_gbps(self) -> float:
        """Consumed-data bandwidth from the metadata log (the paper's
        per-tile bandwidth accounting)."""
        if len(self.metadata_log) < 2:
            return 0.0
        first_cycle, _ = self.metadata_log[0]
        last_cycle, _ = self.metadata_log[-1]
        if last_cycle == first_cycle:
            return 0.0
        total = sum(size for _, size in self.metadata_log[1:])
        return total * 8 / ((last_cycle - first_cycle)
                            * params.CYCLE_TIME_S) / 1e9
