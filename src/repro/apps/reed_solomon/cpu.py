"""The CPU Reed-Solomon baseline (Table III's comparison).

The paper runs the open-source BackBlaze encoder on CPU cores and
duplicates it across cores; each core sustains ~2 Gbps.  The baseline
here is the same codec (:class:`ReedSolomonCodec` is that
construction) with a calibrated per-core throughput and a socket
energy model, so Table III's goodput and mJ/op columns can be
regenerated for 1-4 application instances.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import params
from repro.apps.reed_solomon.codec import ReedSolomonCodec


@dataclass(frozen=True)
class CpuRsResult:
    instances: int
    goodput_gbps: float
    ops_per_s: float
    power_w: float
    energy_mj_per_op: float


class CpuReedSolomonBaseline:
    """Models N copies of the BackBlaze encoder pinned to N cores."""

    def __init__(self,
                 core_gbps: float = params.RS_CPU_CORE_GBPS,
                 request_bytes: int = params.RS_REQUEST_BYTES,
                 idle_w: float = params.RS_CPU_IDLE_W,
                 core_w: float = params.RS_CPU_CORE_W):
        self.core_gbps = core_gbps
        self.request_bytes = request_bytes
        self.idle_w = idle_w
        self.core_w = core_w
        self.codec = ReedSolomonCodec(params.RS_DATA_SHARDS,
                                      params.RS_PARITY_SHARDS)

    def encode_request(self, request: bytes) -> bytes:
        """The actual computation (identical output to the tile)."""
        return self.codec.encode_request(request)

    def measure(self, instances: int) -> CpuRsResult:
        """Steady-state goodput and energy for N busy encoder cores."""
        if instances < 1:
            raise ValueError("need at least one instance")
        goodput = self.core_gbps * instances
        ops = goodput * 1e9 / 8 / self.request_bytes
        power = self.idle_w + self.core_w * instances
        return CpuRsResult(
            instances=instances,
            goodput_gbps=goodput,
            ops_per_s=ops,
            power_w=power,
            energy_mj_per_op=power / ops * 1e3,
        )
