"""Reed-Solomon erasure coding (paper section VI-A).

A complete GF(2^8) codec in the style of the BackBlaze encoder the
paper uses as its CPU baseline, plus the Beehive accelerator tile that
serves 4 KB encode requests over UDP at the measured 15 Gbps per
instance, a round-robin front-end scheduler for scale-out, and the CPU
baseline model for Table III.
"""

from repro.apps.reed_solomon.gf import GF256
from repro.apps.reed_solomon.matrix import GFMatrix
from repro.apps.reed_solomon.codec import ReedSolomonCodec
from repro.apps.reed_solomon.tile import RsEncoderTile

__all__ = ["GF256", "GFMatrix", "ReedSolomonCodec", "RsEncoderTile"]
