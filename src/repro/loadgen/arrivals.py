"""Seed-deterministic arrival processes and key popularity.

Each process draws from exactly one named
:class:`~repro.sim.rng.SeededStreams` stream, so adding a process to a
run never perturbs any other randomness and two runs with the same
root seed produce bit-identical arrival schedules regardless of
kernel, mesh backend, or host platform (``random.Random`` is a
portable Mersenne twister).

Times are in *cycles* and continuous (floats); the consumer quantises
to its clock.  All processes share one contract: ``next_arrival()``
returns a strictly later absolute arrival time each call, with
long-run mean interarrival equal to ``mean_interval_cycles``.
"""

from __future__ import annotations

import math
from bisect import bisect_left


class ArrivalProcess:
    """Base: an absolute-time arrival clock over per-gap draws."""

    kind = "base"

    def __init__(self, mean_interval_cycles: float, rng):
        if mean_interval_cycles <= 0:
            raise ValueError("mean_interval_cycles must be > 0, got "
                             f"{mean_interval_cycles!r}")
        self.mean = float(mean_interval_cycles)
        self.rng = rng
        self._t = 0.0

    def _gap(self) -> float:
        raise NotImplementedError

    def next_arrival(self) -> float:
        self._t += self._gap()
        return self._t


class PoissonArrivals(ArrivalProcess):
    """Memoryless arrivals: exponential interarrival gaps — the
    aggregate of many independent low-rate clients."""

    kind = "poisson"

    def _gap(self) -> float:
        return self.rng.expovariate(1.0 / self.mean)


class BurstyArrivals(ArrivalProcess):
    """On/off (interrupted-Poisson) arrivals.

    Bursts of geometrically distributed length (mean ``burst_len``)
    arrive back-to-back at ``duty`` times the mean gap; each burst is
    preceded by an off-gap sized so the *long-run* mean interarrival
    stays exactly ``mean_interval_cycles`` — turning the duty knob
    reshapes variance, not offered load.
    """

    kind = "bursty"

    def __init__(self, mean_interval_cycles: float, rng,
                 burst_len: int = 16, duty: float = 0.25):
        super().__init__(mean_interval_cycles, rng)
        if burst_len < 1:
            raise ValueError(f"burst_len must be >= 1, got {burst_len}")
        if not 0.0 < duty <= 1.0:
            raise ValueError(f"duty must be in (0, 1], got {duty}")
        self.burst_len = int(burst_len)
        self.duty = float(duty)
        self._left = 0  # arrivals left in the current burst

    def _gap(self) -> float:
        if self._left > 0:
            self._left -= 1
            return self.mean * self.duty
        # Draw the next burst's length: geometric with mean burst_len.
        n = 1
        if self.burst_len > 1:
            p = 1.0 / self.burst_len
            while self.rng.random() >= p:
                n += 1
        self._left = n - 1
        # The off-gap carries the budget the burst's tight gaps saved:
        # n arrivals consume n*mean in the long run, the burst itself
        # only (n-1)*mean*duty + this gap.
        return n * self.mean - (n - 1) * self.mean * self.duty


class DiurnalArrivals(ArrivalProcess):
    """Poisson arrivals with a sinusoidally modulated rate.

    The instantaneous rate is ``(1 + amplitude*sin(2*pi*t/period)) /
    mean`` — a compressed diurnal cycle, so a sweep horizon spanning a
    few ``period_cycles`` sees the stack under its daily peak and
    trough.  Long-run mean interarrival approaches ``mean``.
    """

    kind = "diurnal"

    def __init__(self, mean_interval_cycles: float, rng,
                 period_cycles: float = 1_000_000.0,
                 amplitude: float = 0.5):
        super().__init__(mean_interval_cycles, rng)
        if not 0.0 <= amplitude < 1.0:
            raise ValueError(f"amplitude must be in [0, 1), "
                             f"got {amplitude}")
        if period_cycles <= 0:
            raise ValueError("period_cycles must be > 0")
        self.period = float(period_cycles)
        self.amplitude = float(amplitude)

    def _gap(self) -> float:
        scale = 1.0 + self.amplitude * math.sin(
            2.0 * math.pi * self._t / self.period)
        return self.rng.expovariate(scale / self.mean)


class ZipfPopularity:
    """Zipf-skewed key sampling over ``n_keys`` keys.

    ``P(rank k) ~ 1/(k+1)**skew`` via a precomputed CDF and one
    uniform draw per sample — rank 0 is the hottest key.  With
    ``skew=0`` it degenerates to uniform popularity.
    """

    def __init__(self, n_keys: int, skew: float = 1.0, rng=None):
        if n_keys < 1:
            raise ValueError(f"n_keys must be >= 1, got {n_keys}")
        if skew < 0:
            raise ValueError(f"skew must be >= 0, got {skew}")
        self.n_keys = int(n_keys)
        self.skew = float(skew)
        self.rng = rng
        weights = [1.0 / (k + 1) ** skew for k in range(self.n_keys)]
        total = sum(weights)
        cdf = []
        acc = 0.0
        for w in weights:
            acc += w / total
            cdf.append(acc)
        cdf[-1] = 1.0  # guard against float undershoot
        self._cdf = cdf

    def sample(self) -> int:
        return bisect_left(self._cdf, self.rng.random())


ARRIVAL_KINDS = {
    "poisson": PoissonArrivals,
    "bursty": BurstyArrivals,
    "diurnal": DiurnalArrivals,
}


def make_arrivals(kind: str, mean_interval_cycles: float, streams,
                  **kwargs) -> ArrivalProcess:
    """Build an arrival process drawing from its own named substream
    of ``streams`` (a :class:`~repro.sim.rng.SeededStreams`)."""
    try:
        cls = ARRIVAL_KINDS[kind]
    except KeyError:
        raise ValueError(f"unknown arrival kind {kind!r} "
                         f"(choose from {sorted(ARRIVAL_KINDS)})") \
            from None
    rng = streams.stream(f"loadgen.arrivals.{kind}")
    return cls(mean_interval_cycles, rng, **kwargs)
