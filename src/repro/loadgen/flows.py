"""N competing TCP flows through seeded loss (CC shoot-out harness).

One server-side stack (:class:`~repro.designs.tcp_stack.
TcpServerDesign` with a sink app), N :class:`~repro.tcp.peer.
SoftTcpPeer` clients each streaming the same byte count through a
shared lossy wire (:class:`repro.faults.FaultPlan` drop probability,
seed-deterministic), every peer running the same pluggable congestion
control (:mod:`repro.tcp.cc`).  Dropped client segments make the
server re-ACK out of order, the peers' triple-dup-ACK detectors fire
fast retransmits, and the chosen algorithm's loss response shapes the
completion time — Tahoe collapses to one MSS, Reno halves, CUBIC
probes back with its cubic curve.  Jain fairness and retransmission
counters come back in the result (and via
``repro.telemetry.design_report`` on the server's flow table).
"""

from __future__ import annotations

from repro import params
from repro.designs.tcp_stack import TcpServerDesign
from repro.faults import FaultPlan
from repro.packet.ethernet import MacAddress
from repro.packet.ipv4 import IPv4Address
from repro.tcp.app import TcpSinkAppTile
from repro.tcp.peer import PeerNetwork, SoftTcpPeer
from repro.telemetry.stats import jain_index


def build_competing_flows(cc: str = "reno", n_flows: int = 3,
                          loss: float = 0.01, mss: int = 1024,
                          stream_bytes: int = 48 * 1024,
                          request_size: int = 1024,
                          seed: int = 0xBEE,
                          window: int = 60_000,
                          wire_cycles: int = 500,
                          rto_cycles: int = 10_000,
                          kernel: str = "scheduled",
                          mesh_backend: str = "flat",
                          tile_backend: str = "flat"):
    """Construct the design plus its N sending peers (not yet run)."""
    plan = FaultPlan(seed=seed).wire(drop=loss) if loss else None
    design = TcpServerDesign(
        tcp_port=5000, app_tile_cls=TcpSinkAppTile,
        request_size=request_size, mss=mss,
        line_rate_bytes_per_cycle=None, max_flows=n_flows + 2,
        kernel=kernel, mesh_backend=mesh_backend,
        tile_backend=tile_backend, fault_plan=plan)
    network = PeerNetwork(design)
    design.sim.add(network)
    peers = []
    payload = bytes(range(256)) * (stream_bytes // 256 + 1)
    for index in range(n_flows):
        ip = IPv4Address(f"10.0.1.{index + 1}")
        mac = MacAddress(f"02:00:00:00:01:{index + 1:02x}")
        design.add_client(ip, mac)
        peer = SoftTcpPeer(design, ip, mac, design.server_ip, 5000,
                           src_port=42_000 + index, mss=mss,
                           window=window, service_cycles=2,
                           wire_cycles=wire_cycles,
                           rto_cycles=rto_cycles,
                           iss=5_000 + 313 * index,
                           congestion_control=cc)
        network.register(peer)
        design.sim.add(peer)
        peer.connect()
        peer.send(payload[:stream_bytes])
        peers.append(peer)
    return design, peers


def run_competing_flows(cc: str = "reno", n_flows: int = 3,
                        loss: float = 0.01, mss: int = 1024,
                        stream_bytes: int = 48 * 1024,
                        seed: int = 0xBEE,
                        max_cycles: int = 3_000_000,
                        **kwargs) -> dict:
    """Run N competing flows to full-stream delivery; returns the
    completion/fairness/retransmission signature."""
    design, peers = build_competing_flows(
        cc=cc, n_flows=n_flows, loss=loss, mss=mss,
        stream_bytes=stream_bytes, seed=seed, **kwargs)

    flow_done: dict[int, int] = {}

    def all_delivered() -> bool:
        cyc = design.sim.cycle
        for p in peers:
            if p.bytes_acked >= stream_bytes and \
                    p.src_port not in flow_done:
                flow_done[p.src_port] = cyc
        return len(flow_done) == len(peers)

    try:
        design.sim.run_until(all_delivered, max_cycles=max_cycles)
    except TimeoutError:
        pass
    completion = design.sim.cycle
    flows = []
    for peer in peers:
        done_cycle = flow_done.get(peer.src_port)
        elapsed_s = (done_cycle if done_cycle else completion) * \
            params.CYCLE_TIME_S
        flows.append({
            "src_port": peer.src_port,
            "bytes_acked": peer.bytes_acked,
            "complete": peer.bytes_acked >= stream_bytes,
            "completion_cycle": done_cycle,
            "segments_sent": peer.segments_sent,
            "retransmits": peer.retransmits,
            "fast_retransmits": peer.fast_retransmits,
            "goodput_gbps": (peer.bytes_acked * 8 / elapsed_s / 1e9
                             if elapsed_s else 0.0),
            "cwnd": peer.cwnd,
            "ssthresh": peer.ssthresh,
        })
    engine = getattr(design, "fault_engine", None)
    wire_drops = 0 if engine is None else \
        engine.counters.get("wire.drop", 0)
    return {
        "cc": cc,
        "n_flows": n_flows,
        "loss": loss,
        "stream_bytes": stream_bytes,
        "completion_cycle": completion,
        "all_delivered": all_delivered(),
        "flows": flows,
        "jain_fairness": jain_index(f["goodput_gbps"] for f in flows),
        "total_retransmits": sum(f["retransmits"] for f in flows),
        "total_fast_retransmits": sum(f["fast_retransmits"]
                                      for f in flows),
        "wire_drops": wire_drops,
    }
