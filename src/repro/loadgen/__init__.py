"""Open-loop population-scale load generation (capacity planning).

The closed-loop harness in :mod:`repro.designs.harness` answers "how
fast can the stack echo?"; this subsystem answers the ROADMAP's
north-star question — what happens under *offered* load from a large
client population.  Millions of clients collapse, as in any open-loop
model, into aggregate arrival processes:

- :mod:`repro.loadgen.arrivals` — seed-deterministic interarrival
  generators (Poisson, bursty on/off, diurnal-modulated) and
  Zipf-skewed key popularity, all drawn from
  :class:`repro.sim.rng.SeededStreams` substreams;
- :mod:`repro.loadgen.source` — :class:`OpenLoopSource`, which injects
  by arrival *schedule* rather than by completion, with an explicit
  admission boundary (overrun is counted, never silently buffered);
- :mod:`repro.loadgen.sweep` — the offered-load sweep driver: walks a
  load list over the UDP echo design, records p50/p99/p999 latency and
  goodput-vs-offered-load through :mod:`repro.telemetry.metrics`, and
  emits schema-valid ``repro.bench/1`` documents;
- :mod:`repro.loadgen.flows` — N competing TCP flows with pluggable
  congestion control (:mod:`repro.tcp.cc`) through seeded loss, with
  Jain-fairness and retransmission signatures.

CLI: ``python -m repro.tools.load``.
"""

from repro.loadgen.arrivals import (
    ARRIVAL_KINDS,
    ArrivalProcess,
    BurstyArrivals,
    DiurnalArrivals,
    PoissonArrivals,
    ZipfPopularity,
    make_arrivals,
)
from repro.loadgen.flows import run_competing_flows
from repro.loadgen.source import OpenLoopSource, nic_backlog
from repro.loadgen.sweep import run_point, sweep, sweep_document

__all__ = [
    "ARRIVAL_KINDS",
    "ArrivalProcess",
    "BurstyArrivals",
    "DiurnalArrivals",
    "OpenLoopSource",
    "PoissonArrivals",
    "ZipfPopularity",
    "make_arrivals",
    "nic_backlog",
    "run_competing_flows",
    "run_point",
    "sweep",
    "sweep_document",
]
