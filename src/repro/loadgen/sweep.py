"""The offered-load sweep driver (find the knee, characterise the tail).

Each point drives a fresh :class:`~repro.designs.udp_stack.
UdpEchoDesign` with an :class:`~repro.loadgen.source.OpenLoopSource`
whose mean interarrival is set from the offered rate in Gbps; every
injected payload carries a 16-byte tag (magic, Zipf key, sequence
number, injection cycle) so the echoed frame's emit cycle gives the
per-request latency without any side channel.  Latencies go through a
:class:`repro.telemetry.metrics.Histogram`; goodput is measured over
the fixed post-warmup window so curves are comparable across points.

Everything in a result derives from cycles, counts, and seeded draws —
two runs with identical arguments produce byte-identical documents, on
every kernel x mesh x tile backend combination (the differential
suites pin the stack itself; the arrival schedule never touches
backend state).
"""

from __future__ import annotations

import struct

from repro import params
from repro.designs.harness import FrameSink
from repro.designs.udp_stack import UdpEchoDesign
from repro.loadgen.arrivals import ZipfPopularity, make_arrivals
from repro.loadgen.source import OpenLoopSource, nic_backlog
from repro.packet.builder import build_ipv4_udp_frame, parse_frame
from repro.packet.ethernet import MacAddress
from repro.packet.ipv4 import IPv4Address
from repro.sim.rng import SeededStreams
from repro.telemetry.metrics import MetricsRegistry

CLIENT_IP = IPv4Address("10.0.0.1")
CLIENT_MAC = MacAddress("02:00:00:00:00:01")

#: magic, zipf key, sequence, injection cycle.
_TAG = struct.Struct("<HHIQ")
_MAGIC = 0xBEE5


def _mean_interval_cycles(offered_gbps: float,
                          frame_len: int) -> float:
    """Interarrival (cycles) for one frame size at an offered rate."""
    bytes_per_cycle = offered_gbps * 1e9 * params.CYCLE_TIME_S / 8.0
    wire_bytes = frame_len + params.ETHERNET_OVERHEAD_BYTES
    return wire_bytes / bytes_per_cycle


def run_point(offered_gbps: float, *, seed: int = 0xBEE,
              arrival: str = "poisson", payload_bytes: int = 64,
              duration_cycles: int = 120_000,
              warmup_cycles: int = 20_000,
              zipf_keys: int = 64, zipf_skew: float = 1.0,
              max_admission: int = 64,
              kernel: str = "scheduled",
              mesh_backend: str = "flat",
              tile_backend: str = "flat",
              metrics: MetricsRegistry | None = None,
              arrival_kwargs: dict | None = None) -> dict:
    """One offered-load point on the UDP echo design."""
    if payload_bytes < _TAG.size:
        raise ValueError(f"payload_bytes must be >= {_TAG.size} "
                         f"(the latency tag), got {payload_bytes}")
    design = UdpEchoDesign(kernel=kernel, mesh_backend=mesh_backend,
                           tile_backend=tile_backend)
    design.add_client(CLIENT_IP, CLIENT_MAC)
    streams = SeededStreams(seed)
    zipf = ZipfPopularity(zipf_keys, zipf_skew,
                          streams.stream("loadgen.zipf"))
    pad = b"\x00" * (payload_bytes - _TAG.size)

    def frame_for(seq: int, cycle: int) -> bytes:
        key = zipf.sample()
        payload = _TAG.pack(_MAGIC, key, seq & 0xFFFFFFFF, cycle) + pad
        return build_ipv4_udp_frame(
            CLIENT_MAC, design.server_mac, CLIENT_IP, design.server_ip,
            20_000 + key, design.udp_port, payload)

    probe = frame_for(0, 0)
    arrivals = make_arrivals(arrival,
                             _mean_interval_cycles(offered_gbps,
                                                   len(probe)),
                             streams, **(arrival_kwargs or {}))
    source = OpenLoopSource(design.inject, frame_for, arrivals,
                            horizon_cycles=duration_cycles,
                            admission=nic_backlog(design),
                            max_admission=max_admission)
    sink = FrameSink(design.eth_tx, keep_frames=True)
    design.sim.add(source)
    design.sim.add(sink)

    design.sim.run_until(lambda: source.done,
                         max_cycles=duration_cycles + 10_000)
    try:
        design.sim.run_until(lambda: sink.count >= source.admitted,
                             max_cycles=120_000)
    except TimeoutError:
        pass  # stuck frames show up as delivered < admitted

    registry = metrics if metrics is not None else MetricsRegistry()
    hist = registry.histogram(
        f"loadgen.latency.{offered_gbps:g}gbps")
    key_counts: dict[int, int] = {}
    delivered = 0
    goodput_bytes = 0
    max_latency = 0
    for frame, emit_cycle in sink.frames:
        try:
            parsed = parse_frame(frame)
        except ValueError:
            continue
        payload = parsed.payload
        if len(payload) < _TAG.size:
            continue
        magic, key, _seq, inj = _TAG.unpack_from(payload)
        if magic != _MAGIC:
            continue
        delivered += 1
        key_counts[key] = key_counts.get(key, 0) + 1
        if inj < warmup_cycles:
            continue
        latency = emit_cycle - inj
        hist.record(latency)
        if latency > max_latency:
            max_latency = latency
        goodput_bytes += len(payload)

    window_s = (duration_cycles - warmup_cycles) * params.CYCLE_TIME_S

    def pct(q: float) -> float:
        value = hist.percentile(q)
        return 0.0 if value is None else float(value)

    return {
        "offered_gbps": float(offered_gbps),
        "arrival": arrival,
        "offered": source.offered,
        "admitted": source.admitted,
        "offered_dropped": source.offered_dropped,
        "delivered": delivered,
        "delivery_ratio": (source.admitted / source.offered
                           if source.offered else 1.0),
        "goodput_gbps": goodput_bytes * 8 / window_s / 1e9,
        "p50_cycles": pct(50),
        "p99_cycles": pct(99),
        "p999_cycles": pct(99.9),
        "max_latency_cycles": float(max_latency),
        "hot_key_frames": (max(key_counts.values())
                           if key_counts else 0),
    }


def sweep(offered_gbps_list, **kwargs) -> dict:
    """Walk an offered-load list; returns the curve plus the knee.

    The knee is the highest offered load the stack still admits nearly
    everything at (delivery ratio >= 0.95) — past it goodput saturates
    and the tail (p999) blows up.
    """
    curve = [run_point(gbps, **kwargs) for gbps in offered_gbps_list]
    knee = 0.0
    for point in curve:
        if point["delivery_ratio"] >= 0.95 and \
                point["offered_gbps"] > knee:
            knee = point["offered_gbps"]
    return {
        "curve": curve,
        "knee_gbps": knee,
        "n_points": len(curve),
    }


def sweep_document(result: dict) -> dict:
    """Wrap a sweep result as a schema-valid ``repro.bench/1`` doc.

    ``wall_s`` is pinned to 0.0: host timing would break the
    byte-identical-documents contract CI's determinism check relies
    on.
    """
    from repro.tools.bench import flatten_metrics, validate_bench_document

    doc = {
        "schema": "repro.bench/1",
        "results": {
            "loadgen_sweep": {
                "wall_s": 0.0,
                "metrics": flatten_metrics(result),
            },
        },
    }
    return validate_bench_document(doc)
