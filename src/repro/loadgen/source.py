"""The open-loop injector and its admission boundary.

A closed-loop source (:class:`repro.designs.harness.FrameSource`)
slows down when the design does — fine for "how fast can it go",
useless for "what happens at 80 Gbps offered".  The
:class:`OpenLoopSource` injects on its arrival process's schedule no
matter what the design is doing, which forces the question every
open-loop harness must answer explicitly: *what happens to an arrival
the NIC cannot admit?*

Here the answer is the admission boundary: ``admission()`` reports the
NIC's ingress backlog, and an arrival landing while it is at
``max_admission`` is **counted and discarded** — never queued inside
the harness.  Silently buffering would turn the harness back into a
closed-loop source with an infinite queue, hiding exactly the overload
behaviour the sweep exists to measure.
"""

from __future__ import annotations

import math
from collections.abc import Callable

from repro.sim.kernel import Wakeable

OVERRUN_REASON = "offered: admission overrun"


def nic_backlog(design) -> Callable[[], int]:
    """The canonical admission gauge: frames the MAC has accepted but
    the Ethernet RX tile has not yet begun to service."""
    rx_ready = design.eth_rx._rx_ready
    return lambda: len(rx_ready)


class OpenLoopSource(Wakeable):
    """Inject frames on an arrival schedule (a clocked component).

    ``frame_for(seq, cycle)`` builds the ``seq``-th frame (the
    injection cycle is offered so payloads can carry timestamps).
    ``arrivals`` is an :class:`repro.loadgen.arrivals.ArrivalProcess`.
    Exactly one of ``count`` / ``horizon_cycles`` bounds the run (both
    may be given; whichever trips first ends it).
    """

    def __init__(self, push: Callable[[bytes, int], None],
                 frame_for: Callable[[int, int], bytes],
                 arrivals,
                 count: int | None = None,
                 horizon_cycles: int | None = None,
                 admission: Callable[[], int] | None = None,
                 max_admission: int = 64):
        if count is None and horizon_cycles is None:
            raise ValueError(
                "OpenLoopSource needs count or horizon_cycles")
        self.push = push
        self.frame_for = frame_for
        self.arrivals = arrivals
        self.count = count
        self.horizon_cycles = horizon_cycles
        self.admission = admission
        self.max_admission = max_admission
        self.offered = 0
        self.admitted = 0
        self.offered_dropped = 0
        self.bytes_admitted = 0
        self.drop_reasons: dict[str, int] = {}
        self.done = False
        self._next = arrivals.next_arrival()
        self._check_horizon()

    def _check_horizon(self) -> None:
        if self.count is not None and self.offered >= self.count:
            self.done = True
        if self.horizon_cycles is not None and \
                self._next > self.horizon_cycles:
            self.done = True

    def step(self, cycle: int) -> None:
        while not self.done and self._next <= cycle:
            self.offered += 1
            if self.admission is not None and \
                    self.admission() >= self.max_admission:
                # The admission boundary: counted, never buffered.
                self.offered_dropped += 1
                self.drop_reasons[OVERRUN_REASON] = \
                    self.drop_reasons.get(OVERRUN_REASON, 0) + 1
            else:
                frame = self.frame_for(self.admitted, cycle)
                self.push(frame, cycle)
                self.admitted += 1
                self.bytes_admitted += len(frame)
            self._next = self.arrivals.next_arrival()
            self._check_horizon()

    def commit(self) -> None:
        pass

    # -- quiescence contract (see repro.sim.kernel) --------------------------

    def is_idle(self) -> bool:
        """Purely timer-driven: the next arrival time is always known,
        so the source never needs polling."""
        return True

    def next_event_cycle(self) -> int | None:
        return None if self.done else math.ceil(self._next)
