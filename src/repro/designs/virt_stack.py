"""Network-virtualization designs: UDP echo behind NAT or IP-in-IP.

These are the section V-E configurations.  Both network functions keep a
virtual-to-physical mapping that the control plane rewrites when a
client migrates (exercised by :mod:`repro.control` and the
``network_virtualization`` example).

NAT layout (5x2 mesh):

    eth_rx  ip_rx  nat_rx  udp_rx  app
    eth_tx  ip_tx  nat_tx  udp_tx  empty

IP-in-IP layout (6x2 mesh) — note the *duplicated* IP tiles, the
paper's fix for repeated headers breaking resource ordering:

    eth_rx  ip_rx(outer)  decap  ip_rx(inner)  udp_rx  app
    eth_tx  ip_tx(outer)  encap  ip_tx(inner)  udp_tx  empty
"""

from __future__ import annotations

from repro.apps.echo import UdpEchoAppTile
from repro.faults import attach_faults
from repro.noc.flatmesh import build_mesh
from repro.packet.ethernet import ETHERTYPE_IPV4, MacAddress
from repro.packet.ipv4 import IPPROTO_IPIP, IPPROTO_UDP, IPv4Address
from repro.analysis.deadlock import assert_deadlock_free
from repro.sim.kernel import CycleSimulator
from repro.tiles.flatcore import register_tiles
from repro.tiles.ethernet import EthernetRxTile, EthernetTxTile
from repro.tiles.ip import IpRxTile, IpTxTile
from repro.tiles.ipinip import IpInIpDecapTile, IpInIpEncapTile
from repro.tiles.nat import NatRxTile, NatTxTile, NatTable
from repro.tiles.udp import UdpRxTile, UdpTxTile

SERVER_MAC = MacAddress("02:be:e0:00:00:01")
SERVER_PHYS_IP = IPv4Address("10.0.0.10")
SERVER_VIRT_IP = IPv4Address("172.16.0.10")


class NatEchoDesign:
    """UDP echo with an IP NAT translating client addresses."""

    def __init__(self, udp_port: int = 7,
                 line_rate_bytes_per_cycle: float | None = 50.0,
                 kernel: str = "scheduled",
                 mesh_backend: str = "flat",
                 tile_backend: str = "flat",
                 fault_plan=None):
        self.udp_port = udp_port
        self.sim = CycleSimulator(kernel=kernel,
                                  mesh_backend=mesh_backend,
                                  tile_backend=tile_backend)
        self.mesh = build_mesh(5, 2, backend=mesh_backend)
        self.nat_table = NatTable()

        self.eth_rx = EthernetRxTile("eth_rx", self.mesh, (0, 0),
                                     my_mac=SERVER_MAC)
        self.ip_rx = IpRxTile("ip_rx", self.mesh, (1, 0),
                              my_ip=SERVER_PHYS_IP)
        self.nat_rx = NatRxTile("nat_rx", self.mesh, (2, 0),
                                table=self.nat_table)
        self.udp_rx = UdpRxTile("udp_rx", self.mesh, (3, 0))
        self.app = UdpEchoAppTile("app", self.mesh, (4, 0))
        self.udp_tx = UdpTxTile("udp_tx", self.mesh, (3, 1))
        self.nat_tx = NatTxTile("nat_tx", self.mesh, (2, 1),
                                table=self.nat_table)
        self.ip_tx = IpTxTile("ip_tx", self.mesh, (1, 1))
        self.eth_tx = EthernetTxTile(
            "eth_tx", self.mesh, (0, 1), my_mac=SERVER_MAC,
            line_rate_bytes_per_cycle=line_rate_bytes_per_cycle,
        )
        self.tiles = [self.eth_rx, self.ip_rx, self.nat_rx, self.udp_rx,
                      self.app, self.udp_tx, self.nat_tx, self.ip_tx,
                      self.eth_tx]

        self.eth_rx.next_hop.set_entry(ETHERTYPE_IPV4, self.ip_rx.coord)
        self.ip_rx.next_hop.set_entry(IPPROTO_UDP, self.nat_rx.coord)
        self.nat_rx.next_hop.set_entry(self.nat_rx.DEFAULT,
                                       self.udp_rx.coord)
        self.udp_rx.next_hop.set_entry(udp_port, self.app.coord)
        self.app.next_hop.set_entry(self.app.DEFAULT, self.udp_tx.coord)
        self.udp_tx.next_hop.set_entry(self.udp_tx.DEFAULT,
                                       self.nat_tx.coord)
        self.nat_tx.next_hop.set_entry(self.nat_tx.DEFAULT,
                                       self.ip_tx.coord)
        self.ip_tx.next_hop.set_entry(self.ip_tx.DEFAULT,
                                      self.eth_tx.coord)

        self.mesh.register(self.sim)
        self.tile_backend = tile_backend
        self.tile_core = register_tiles(self.sim, self.tiles,
                                        tile_backend)

        self.chains = [
            ["eth_rx", "ip_rx", "nat_rx", "udp_rx", "app",
             "udp_tx", "nat_tx", "ip_tx", "eth_tx"],
        ]
        self.tile_coords = {t.name: t.coord for t in self.tiles}
        assert_deadlock_free(self.chains, self.tile_coords)
        attach_faults(self, fault_plan)

    def map_client(self, virtual_ip: IPv4Address,
                   physical_ip: IPv4Address, mac: MacAddress) -> None:
        self.nat_table.set_mapping(virtual_ip, physical_ip)
        self.eth_tx.add_neighbor(physical_ip, mac)

    def add_client(self, ip: IPv4Address, mac: MacAddress) -> None:
        """Teach the TX path a client's MAC (same interface as the
        other designs; NAT mapping is separate via map_client)."""
        self.eth_tx.add_neighbor(ip, mac)

    def inject(self, frame: bytes, cycle: int) -> None:
        self.eth_rx.push_frame(frame, cycle)

    server_ip = SERVER_PHYS_IP
    server_mac = SERVER_MAC


class IpInIpEchoDesign:
    """UDP echo behind an IP-in-IP tunnel, with duplicated IP tiles."""

    def __init__(self, udp_port: int = 7,
                 line_rate_bytes_per_cycle: float | None = 50.0,
                 kernel: str = "scheduled",
                 mesh_backend: str = "flat",
                 tile_backend: str = "flat",
                 fault_plan=None):
        self.udp_port = udp_port
        self.sim = CycleSimulator(kernel=kernel,
                                  mesh_backend=mesh_backend,
                                  tile_backend=tile_backend)
        self.mesh = build_mesh(6, 2, backend=mesh_backend)

        self.eth_rx = EthernetRxTile("eth_rx", self.mesh, (0, 0),
                                     my_mac=SERVER_MAC)
        self.ip_rx_outer = IpRxTile("ip_rx_outer", self.mesh, (1, 0),
                                    my_ip=SERVER_PHYS_IP)
        self.decap = IpInIpDecapTile("decap", self.mesh, (2, 0))
        self.ip_rx_inner = IpRxTile("ip_rx_inner", self.mesh, (3, 0),
                                    my_ip=SERVER_VIRT_IP)
        self.udp_rx = UdpRxTile("udp_rx", self.mesh, (4, 0))
        self.app = UdpEchoAppTile("app", self.mesh, (5, 0))
        self.udp_tx = UdpTxTile("udp_tx", self.mesh, (4, 1))
        self.ip_tx_inner = IpTxTile("ip_tx_inner", self.mesh, (3, 1))
        self.encap = IpInIpEncapTile("encap", self.mesh, (2, 1),
                                     tunnel_src=SERVER_PHYS_IP)
        self.ip_tx_outer = IpTxTile("ip_tx_outer", self.mesh, (1, 1))
        self.eth_tx = EthernetTxTile(
            "eth_tx", self.mesh, (0, 1), my_mac=SERVER_MAC,
            line_rate_bytes_per_cycle=line_rate_bytes_per_cycle,
        )
        self.tiles = [self.eth_rx, self.ip_rx_outer, self.decap,
                      self.ip_rx_inner, self.udp_rx, self.app,
                      self.udp_tx, self.ip_tx_inner, self.encap,
                      self.ip_tx_outer, self.eth_tx]

        self.eth_rx.next_hop.set_entry(ETHERTYPE_IPV4,
                                       self.ip_rx_outer.coord)
        self.ip_rx_outer.next_hop.set_entry(IPPROTO_IPIP, self.decap.coord)
        self.decap.next_hop.set_entry(self.decap.DEFAULT,
                                      self.ip_rx_inner.coord)
        self.ip_rx_inner.next_hop.set_entry(IPPROTO_UDP, self.udp_rx.coord)
        self.udp_rx.next_hop.set_entry(udp_port, self.app.coord)
        self.app.next_hop.set_entry(self.app.DEFAULT, self.udp_tx.coord)
        self.udp_tx.next_hop.set_entry(self.udp_tx.DEFAULT,
                                       self.ip_tx_inner.coord)
        self.ip_tx_inner.next_hop.set_entry(self.ip_tx_inner.DEFAULT,
                                            self.encap.coord)
        self.encap.next_hop.set_entry(self.encap.DEFAULT,
                                      self.ip_tx_outer.coord)
        self.ip_tx_outer.next_hop.set_entry(self.ip_tx_outer.DEFAULT,
                                            self.eth_tx.coord)

        self.mesh.register(self.sim)
        self.tile_backend = tile_backend
        self.tile_core = register_tiles(self.sim, self.tiles,
                                        tile_backend)

        self.chains = [
            ["eth_rx", "ip_rx_outer", "decap", "ip_rx_inner", "udp_rx",
             "app", "udp_tx", "ip_tx_inner", "encap", "ip_tx_outer",
             "eth_tx"],
        ]
        self.tile_coords = {t.name: t.coord for t in self.tiles}
        assert_deadlock_free(self.chains, self.tile_coords)
        attach_faults(self, fault_plan)

    def add_tunnel_peer(self, virtual_ip: IPv4Address,
                        physical_ip: IPv4Address, mac: MacAddress) -> None:
        """Register a remote tunnel endpoint hosting ``virtual_ip``."""
        self.decap.allow_endpoint(physical_ip)
        self.encap.set_endpoint(virtual_ip, physical_ip)
        self.eth_tx.add_neighbor(physical_ip, mac)

    def inject(self, frame: bytes, cycle: int) -> None:
        self.eth_rx.push_frame(frame, cycle)

    server_phys_ip = SERVER_PHYS_IP
    server_virt_ip = SERVER_VIRT_IP
    server_mac = SERVER_MAC
