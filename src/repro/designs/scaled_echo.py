"""The section VII-I resource-scalability design: a UDP stack plus up
to 22 replicated echo application tiles — 28 tiles total, the largest
configuration that closes timing on the U200.

Layout discipline (a generalisation of Fig 5b's lesson): the receive
tiles sit in row 0 and reach applications east-then-south; replies
travel west-then-north into the transmit tiles in row 1.  Under XY
routing those link sets are disjoint, so any number of application
tiles compose deadlock-free — which the constructor verifies for all
declared chains.
"""

from __future__ import annotations

from repro.apps.echo import UdpEchoAppTile
from repro.analysis.deadlock import assert_deadlock_free
from repro.faults import attach_faults
from repro.noc.flatmesh import build_mesh
from repro.packet.ethernet import ETHERTYPE_IPV4, MacAddress
from repro.packet.ipv4 import IPPROTO_UDP, IPv4Address
from repro.sim.shard import make_simulator
from repro.tiles.flatcore import register_tiles
from repro.tiles.ethernet import EthernetRxTile, EthernetTxTile
from repro.tiles.ip import IpRxTile, IpTxTile
from repro.tiles.udp import UdpRxTile, UdpTxTile

SERVER_MAC = MacAddress("02:be:e0:00:00:01")
SERVER_IP = IPv4Address("10.0.0.10")


class ScaledEchoDesign:
    """A UDP stack with replicated echo tiles, 7x4 / 22 apps default.

    ``width``/``height`` generalise the paper's 7x4 U200 floorplan so
    the flat mesh backend can be swept to sizes (16x16 and beyond) the
    object backend cannot reach in CI time.  The layout rule is
    unchanged: the six stack tiles occupy columns 0-2 of rows 0-1, and
    every remaining coordinate may host an application replica.
    """

    WIDTH = 7
    HEIGHT = 4
    MAX_APPS = 22

    def __init__(self, n_apps: int = 22, udp_port: int = 7,
                 line_rate_bytes_per_cycle: float | None = None,
                 kernel: str = "scheduled",
                 mesh_backend: str = "flat",
                 tile_backend: str = "flat",
                 width: int | None = None,
                 height: int | None = None,
                 fault_plan=None,
                 shards: int = 1,
                 shard_transport: str = "loopback",
                 shard_bounds: list[int] | None = None,
                 app_coords: list[tuple[int, int]] | None = None):
        self.width = self.WIDTH if width is None else width
        self.height = self.HEIGHT if height is None else height
        if self.width < 3 or self.height < 2:
            raise ValueError("the stack needs at least a 3x2 mesh")
        max_apps = self.width * self.height - 6
        if not 1 <= n_apps <= max_apps:
            raise ValueError(
                f"this layout hosts 1-{max_apps} app tiles"
            )
        self.n_apps = n_apps
        self.udp_port = udp_port
        self.sim = make_simulator(kernel=kernel,
                                  mesh_backend=mesh_backend,
                                  tile_backend=tile_backend,
                                  shards=shards,
                                  shard_transport=shard_transport)
        self.mesh = build_mesh(self.width, self.height,
                               backend=mesh_backend, shards=shards,
                               shard_bounds=shard_bounds)

        self.eth_rx = EthernetRxTile("eth_rx", self.mesh, (0, 0),
                                     my_mac=SERVER_MAC)
        self.ip_rx = IpRxTile("ip_rx", self.mesh, (1, 0),
                              my_ip=SERVER_IP)
        self.udp_rx = UdpRxTile("udp_rx", self.mesh, (2, 0))
        self.eth_tx = EthernetTxTile(
            "eth_tx", self.mesh, (0, 1), my_mac=SERVER_MAC,
            line_rate_bytes_per_cycle=line_rate_bytes_per_cycle,
        )
        self.ip_tx = IpTxTile("ip_tx", self.mesh, (1, 1))
        self.udp_tx = UdpTxTile("udp_tx", self.mesh, (2, 1))

        # App placement: the default fills every non-stack coordinate
        # row-major; an explicit ``app_coords`` pins replicas to chosen
        # sites (e.g. the far-east columns, which spreads transit
        # evenly over every column — the shard-scaling benchmark's
        # operating point).  Either way the XY east-then-south /
        # west-then-north discipline is re-verified below.
        stack_coords = {(0, 0), (1, 0), (2, 0), (0, 1), (1, 1), (2, 1)}
        if app_coords is None:
            app_coords = [
                (x, y)
                for y in range(self.height)
                for x in range(self.width)
                if x > 2 or y > 1  # right of / below the stack
            ]
        else:
            app_coords = [tuple(coord) for coord in app_coords]
            if len(set(app_coords)) != len(app_coords):
                raise ValueError("app_coords has duplicates")
            for coord in app_coords:
                if coord in stack_coords:
                    raise ValueError(
                        f"app at {coord} collides with a stack tile")
                if not (0 <= coord[0] < self.width
                        and 0 <= coord[1] < self.height):
                    raise ValueError(f"app at {coord} is off-mesh")
            if len(app_coords) < n_apps:
                raise ValueError(
                    f"{n_apps} apps need {n_apps} app_coords, "
                    f"got {len(app_coords)}")
        self.apps = [
            UdpEchoAppTile(f"app{i}", self.mesh, app_coords[i])
            for i in range(n_apps)
        ]
        self.tiles = [self.eth_rx, self.ip_rx, self.udp_rx,
                      self.eth_tx, self.ip_tx, self.udp_tx,
                      *self.apps]

        self.eth_rx.next_hop.set_entry(ETHERTYPE_IPV4, self.ip_rx.coord)
        self.ip_rx.next_hop.set_entry(IPPROTO_UDP, self.udp_rx.coord)
        # One port, N replicas: the flow-hash table spreads clients.
        self.udp_rx.next_hop.set_entry(
            udp_port, [app.coord for app in self.apps]
        )
        for app in self.apps:
            app.next_hop.set_entry(app.DEFAULT, self.udp_tx.coord)
        self.udp_tx.next_hop.set_entry(self.udp_tx.DEFAULT,
                                       self.ip_tx.coord)
        self.ip_tx.next_hop.set_entry(self.ip_tx.DEFAULT,
                                      self.eth_tx.coord)

        self.mesh.register(self.sim)
        self.tile_backend = tile_backend
        self.tile_core = register_tiles(self.sim, self.tiles,
                                        tile_backend)

        self.chains = [
            ["eth_rx", "ip_rx", "udp_rx", app.name,
             "udp_tx", "ip_tx", "eth_tx"]
            for app in self.apps
        ]
        self.tile_coords = {t.name: t.coord for t in self.tiles}
        assert_deadlock_free(self.chains, self.tile_coords)
        attach_faults(self, fault_plan)

    @property
    def total_tiles(self) -> int:
        return len(self.tiles)

    def add_client(self, ip: IPv4Address, mac: MacAddress) -> None:
        self.eth_tx.add_neighbor(ip, mac)

    def inject(self, frame: bytes, cycle: int) -> None:
        self.eth_rx.push_frame(frame, cycle)

    @property
    def server_ip(self) -> IPv4Address:
        return SERVER_IP

    @property
    def server_mac(self) -> MacAddress:
        return SERVER_MAC
