"""The VXLAN overlay design: two full protocol chains on one mesh.

The paper's Fig 2 stack carries VXLAN alongside IP-in-IP; because
VXLAN tunnels ride UDP, the overlay needs a complete *second*
Ethernet/IP/UDP pipeline after decapsulation — fifteen tiles on an
8x2 mesh, composed entirely from unmodified protocol tiles plus the
two small VXLAN tiles:

  eth_rx ip_rx udp_rx decap  in_eth_rx in_ip_rx in_udp_rx app
  eth_tx ip_tx udp_tx encap  in_eth_tx in_ip_tx in_udp_tx (empty)

Receive: the outer stack terminates the tunnel (UDP port 4789 routes
to the decap tile); the inner stack parses the tenant's frame.
Transmit: the inner stack builds the tenant frame, the inner Ethernet
TX tile hands it to the encap tile over the NoC, and the outer stack
wraps and emits it.
"""

from __future__ import annotations

from repro.apps.echo import UdpEchoAppTile
from repro.analysis.deadlock import assert_deadlock_free
from repro.faults import attach_faults
from repro.noc.flatmesh import build_mesh
from repro.packet.ethernet import ETHERTYPE_IPV4, MacAddress
from repro.packet.ipv4 import IPPROTO_UDP, IPv4Address
from repro.packet.vxlan import VXLAN_UDP_PORT
from repro.sim.kernel import CycleSimulator
from repro.tiles.flatcore import register_tiles
from repro.tiles.ethernet import EthernetRxTile, EthernetTxTile
from repro.tiles.ip import IpRxTile, IpTxTile
from repro.tiles.udp import UdpRxTile, UdpTxTile
from repro.tiles.vxlan import VxlanDecapTile, VxlanEncapTile

VTEP_MAC = MacAddress("02:be:e0:00:00:01")
VTEP_IP = IPv4Address("10.0.0.10")
INNER_MAC = MacAddress("02:aa:00:00:00:10")
INNER_IP = IPv4Address("192.168.0.10")


class VxlanEchoDesign:
    """A UDP echo server living inside a VXLAN overlay."""

    def __init__(self, vni: int = 7700, udp_port: int = 7,
                 line_rate_bytes_per_cycle: float | None = 50.0,
                 kernel: str = "scheduled",
                 mesh_backend: str = "flat",
                 tile_backend: str = "flat",
                 fault_plan=None):
        self.vni = vni
        self.udp_port = udp_port
        self.sim = CycleSimulator(kernel=kernel,
                                  mesh_backend=mesh_backend,
                                  tile_backend=tile_backend)
        self.mesh = build_mesh(8, 2, backend=mesh_backend)

        # Outer (underlay) stack.
        self.eth_rx = EthernetRxTile("eth_rx", self.mesh, (0, 0),
                                     my_mac=VTEP_MAC)
        self.ip_rx = IpRxTile("ip_rx", self.mesh, (1, 0),
                              my_ip=VTEP_IP)
        self.udp_rx = UdpRxTile("udp_rx", self.mesh, (2, 0))
        self.decap = VxlanDecapTile("decap", self.mesh, (3, 0))
        # Inner (overlay/tenant) stack.
        self.in_eth_rx = EthernetRxTile("in_eth_rx", self.mesh,
                                        (4, 0), my_mac=INNER_MAC)
        self.in_ip_rx = IpRxTile("in_ip_rx", self.mesh, (5, 0),
                                 my_ip=INNER_IP)
        self.in_udp_rx = UdpRxTile("in_udp_rx", self.mesh, (6, 0))
        self.app = UdpEchoAppTile("app", self.mesh, (7, 0))
        self.in_udp_tx = UdpTxTile("in_udp_tx", self.mesh, (6, 1))
        self.in_ip_tx = IpTxTile("in_ip_tx", self.mesh, (5, 1))
        self.encap = VxlanEncapTile("encap", self.mesh, (3, 1),
                                    vtep_ip=VTEP_IP, vni=vni)
        self.in_eth_tx = EthernetTxTile(
            "in_eth_tx", self.mesh, (4, 1), my_mac=INNER_MAC,
            line_rate_bytes_per_cycle=None,
            emit_to_noc=self.encap.coord,
        )
        self.udp_tx = UdpTxTile("udp_tx", self.mesh, (2, 1))
        self.ip_tx = IpTxTile("ip_tx", self.mesh, (1, 1))
        self.eth_tx = EthernetTxTile(
            "eth_tx", self.mesh, (0, 1), my_mac=VTEP_MAC,
            line_rate_bytes_per_cycle=line_rate_bytes_per_cycle,
        )
        self.tiles = [self.eth_rx, self.ip_rx, self.udp_rx,
                      self.decap, self.in_eth_rx, self.in_ip_rx,
                      self.in_udp_rx, self.app, self.in_udp_tx,
                      self.in_ip_tx, self.in_eth_tx, self.encap,
                      self.udp_tx, self.ip_tx, self.eth_tx]

        self.decap.allow_vni(vni)

        # Receive wiring: outer stack -> decap -> inner stack -> app.
        self.eth_rx.next_hop.set_entry(ETHERTYPE_IPV4, self.ip_rx.coord)
        self.ip_rx.next_hop.set_entry(IPPROTO_UDP, self.udp_rx.coord)
        self.udp_rx.next_hop.set_entry(VXLAN_UDP_PORT, self.decap.coord)
        self.decap.next_hop.set_entry(self.decap.DEFAULT,
                                      self.in_eth_rx.coord)
        self.in_eth_rx.next_hop.set_entry(ETHERTYPE_IPV4,
                                          self.in_ip_rx.coord)
        self.in_ip_rx.next_hop.set_entry(IPPROTO_UDP,
                                         self.in_udp_rx.coord)
        self.in_udp_rx.next_hop.set_entry(udp_port, self.app.coord)
        # Transmit wiring: app -> inner stack -> encap -> outer stack.
        self.app.next_hop.set_entry(self.app.DEFAULT,
                                    self.in_udp_tx.coord)
        self.in_udp_tx.next_hop.set_entry(self.in_udp_tx.DEFAULT,
                                          self.in_ip_tx.coord)
        self.in_ip_tx.next_hop.set_entry(self.in_ip_tx.DEFAULT,
                                         self.in_eth_tx.coord)
        self.encap.next_hop.set_entry(self.encap.DEFAULT,
                                      self.udp_tx.coord)
        self.udp_tx.next_hop.set_entry(self.udp_tx.DEFAULT,
                                       self.ip_tx.coord)
        self.ip_tx.next_hop.set_entry(self.ip_tx.DEFAULT,
                                      self.eth_tx.coord)

        self.mesh.register(self.sim)
        self.tile_backend = tile_backend
        self.tile_core = register_tiles(self.sim, self.tiles,
                                        tile_backend)

        self.chains = [
            ["eth_rx", "ip_rx", "udp_rx", "decap", "in_eth_rx",
             "in_ip_rx", "in_udp_rx", "app", "in_udp_tx", "in_ip_tx",
             "in_eth_tx", "encap", "udp_tx", "ip_tx", "eth_tx"],
        ]
        self.tile_coords = {t.name: t.coord for t in self.tiles}
        assert_deadlock_free(self.chains, self.tile_coords)
        attach_faults(self, fault_plan)

    def add_overlay_peer(self, inner_ip: IPv4Address,
                         inner_mac: MacAddress,
                         vtep_ip: IPv4Address,
                         vtep_mac: MacAddress) -> None:
        """Register a remote tenant endpoint and its VTEP."""
        self.in_eth_tx.add_neighbor(inner_ip, inner_mac)
        self.encap.set_vtep(inner_mac, vtep_ip)
        self.eth_tx.add_neighbor(vtep_ip, vtep_mac)

    def inject(self, frame: bytes, cycle: int) -> None:
        self.eth_rx.push_frame(frame, cycle)

    server_vtep_ip = VTEP_IP
    server_vtep_mac = VTEP_MAC
    server_inner_ip = INNER_IP
    server_inner_mac = INNER_MAC
