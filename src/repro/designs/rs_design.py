"""The Reed-Solomon accelerator design (paper section VI-A).

A UDP stack feeding a round-robin front-end scheduler that parcels
4 KB encode requests across 1-4 stateless RS encoder tiles:

    eth_rx  ip_rx  udp_rx  sched   rs0    rs1
    eth_tx  ip_tx  udp_tx  rs2     rs3    empty

The scheduler exists because the encoder is stateless — any request
can go to any copy — unlike the VR witness, which is distributed by
destination port instead.
"""

from __future__ import annotations

from repro import params
from repro.apps.reed_solomon.tile import RsEncoderTile
from repro.analysis.deadlock import assert_deadlock_free
from repro.faults import attach_faults
from repro.noc.flatmesh import build_mesh
from repro.packet.ethernet import ETHERTYPE_IPV4, MacAddress
from repro.packet.ipv4 import IPPROTO_UDP, IPv4Address
from repro.sim.kernel import CycleSimulator
from repro.tiles.flatcore import register_tiles
from repro.tiles.ethernet import EthernetRxTile, EthernetTxTile
from repro.tiles.ip import IpRxTile, IpTxTile
from repro.tiles.scheduler import RoundRobinSchedulerTile
from repro.tiles.udp import UdpRxTile, UdpTxTile

SERVER_MAC = MacAddress("02:be:e0:00:00:01")
SERVER_IP = IPv4Address("10.0.0.10")

_RS_COORDS = [(4, 0), (5, 0), (3, 1), (4, 1)]


class RsDesign:
    """Beehive hosting 1-4 Reed-Solomon encoder instances."""

    def __init__(self, instances: int = 4, udp_port: int = 7000,
                 line_rate_bytes_per_cycle: float | None = 50.0,
                 rs_gbps: float = params.RS_TILE_GBPS,
                 kernel: str = "scheduled",
                 mesh_backend: str = "flat",
                 tile_backend: str = "flat",
                 fault_plan=None):
        if not 1 <= instances <= 4:
            raise ValueError("this layout hosts 1-4 RS instances")
        self.instances = instances
        self.udp_port = udp_port
        self.sim = CycleSimulator(kernel=kernel,
                                  mesh_backend=mesh_backend,
                                  tile_backend=tile_backend)
        self.mesh = build_mesh(6, 2, backend=mesh_backend)

        self.eth_rx = EthernetRxTile("eth_rx", self.mesh, (0, 0),
                                     my_mac=SERVER_MAC)
        self.ip_rx = IpRxTile("ip_rx", self.mesh, (1, 0),
                              my_ip=SERVER_IP)
        self.udp_rx = UdpRxTile("udp_rx", self.mesh, (2, 0))
        self.scheduler = RoundRobinSchedulerTile("sched", self.mesh,
                                                 (3, 0))
        self.rs_tiles = [
            RsEncoderTile(f"rs{i}", self.mesh, _RS_COORDS[i],
                          gbps=rs_gbps)
            for i in range(instances)
        ]
        self.udp_tx = UdpTxTile("udp_tx", self.mesh, (2, 1))
        self.ip_tx = IpTxTile("ip_tx", self.mesh, (1, 1))
        self.eth_tx = EthernetTxTile(
            "eth_tx", self.mesh, (0, 1), my_mac=SERVER_MAC,
            line_rate_bytes_per_cycle=line_rate_bytes_per_cycle,
        )
        self.tiles = [self.eth_rx, self.ip_rx, self.udp_rx,
                      self.scheduler, *self.rs_tiles, self.udp_tx,
                      self.ip_tx, self.eth_tx]

        self.eth_rx.next_hop.set_entry(ETHERTYPE_IPV4, self.ip_rx.coord)
        self.ip_rx.next_hop.set_entry(IPPROTO_UDP, self.udp_rx.coord)
        self.udp_rx.next_hop.set_entry(udp_port, self.scheduler.coord)
        for tile in self.rs_tiles:
            self.scheduler.add_replica(tile.coord)
            tile.next_hop.set_entry(tile.DEFAULT, self.udp_tx.coord)
        self.udp_tx.next_hop.set_entry(self.udp_tx.DEFAULT,
                                       self.ip_tx.coord)
        self.ip_tx.next_hop.set_entry(self.ip_tx.DEFAULT,
                                      self.eth_tx.coord)

        self.mesh.register(self.sim)
        self.tile_backend = tile_backend
        self.tile_core = register_tiles(self.sim, self.tiles,
                                        tile_backend)

        self.chains = [
            ["eth_rx", "ip_rx", "udp_rx", "sched", tile.name,
             "udp_tx", "ip_tx", "eth_tx"]
            for tile in self.rs_tiles
        ]
        self.tile_coords = {t.name: t.coord for t in self.tiles}
        assert_deadlock_free(self.chains, self.tile_coords)
        attach_faults(self, fault_plan)

    def add_client(self, ip: IPv4Address, mac: MacAddress) -> None:
        self.eth_tx.add_neighbor(ip, mac)

    def inject(self, frame: bytes, cycle: int) -> None:
        self.eth_rx.push_frame(frame, cycle)

    @property
    def total_requests(self) -> int:
        return sum(tile.requests for tile in self.rs_tiles)

    @property
    def server_ip(self) -> IPv4Address:
        return SERVER_IP

    @property
    def server_mac(self) -> MacAddress:
        return SERVER_MAC
