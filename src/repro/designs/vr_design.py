"""The consensus-witness design (paper Fig 6).

A UDP stack hosting one VR witness tile per shard.  The witness is
stateful, so requests for a shard must always reach the same tile:
distribution is by destination port (one port per shard) in the UDP RX
hash table — contrast with the stateless Reed-Solomon design's
round-robin scheduler.

With ``duplicate_udp=True`` the design also replicates the UDP RX and
TX *protocol* tiles — "we also duplicate protocol tiles to prevent
them from becoming a bottleneck" (section VII-F) — with the IP RX tile
spreading flows across the UDP RX replicas by flow hash.  This is the
differential-scaling feature the framework exists for: protocol
elements scale independently of application elements.
"""

from __future__ import annotations

from repro.apps.vr.tile import VrWitnessTile
from repro.analysis.deadlock import assert_deadlock_free
from repro.faults import attach_faults
from repro.noc.flatmesh import build_mesh
from repro.packet.ethernet import ETHERTYPE_IPV4, MacAddress
from repro.packet.ipv4 import IPPROTO_UDP, IPv4Address
from repro.sim.kernel import CycleSimulator
from repro.tiles.flatcore import register_tiles
from repro.tiles.ethernet import EthernetRxTile, EthernetTxTile
from repro.tiles.ip import IpRxTile, IpTxTile
from repro.tiles.udp import UdpRxTile, UdpTxTile

SERVER_MAC = MacAddress("02:be:e0:00:00:01")
SERVER_IP = IPv4Address("10.0.0.10")

VR_BASE_PORT = 9000

_WITNESS_COORDS = [(3, 0), (4, 0), (5, 0), (3, 1)]


class VrWitnessDesign:
    """Beehive hosting witness tiles for 1-4 shards.

    ``duplicate_udp=True`` instantiates two UDP RX and two UDP TX
    tiles (7x2 mesh) with flow-hash distribution at the IP layer.
    """

    def __init__(self, shards: int = 4,
                 line_rate_bytes_per_cycle: float | None = 50.0,
                 duplicate_udp: bool = False,
                 kernel: str = "scheduled",
                 mesh_backend: str = "flat",
                 tile_backend: str = "flat",
                 fault_plan=None):
        if not 1 <= shards <= 4:
            raise ValueError("this layout hosts 1-4 witness shards")
        self.shards = shards
        self.duplicate_udp = duplicate_udp
        self.sim = CycleSimulator(kernel=kernel,
                                  mesh_backend=mesh_backend,
                                  tile_backend=tile_backend)
        width = 7 if duplicate_udp else 6
        self.mesh = build_mesh(width, 2, backend=mesh_backend)
        witness_coords = ([(4, 0), (5, 0), (6, 0), (4, 1)]
                          if duplicate_udp else _WITNESS_COORDS)

        self.eth_rx = EthernetRxTile("eth_rx", self.mesh, (0, 0),
                                     my_mac=SERVER_MAC)
        self.ip_rx = IpRxTile("ip_rx", self.mesh, (1, 0),
                              my_ip=SERVER_IP)
        if duplicate_udp:
            self.udp_rx_tiles = [
                UdpRxTile("udp_rx0", self.mesh, (2, 0)),
                UdpRxTile("udp_rx1", self.mesh, (3, 0)),
            ]
            self.udp_tx_tiles = [
                UdpTxTile("udp_tx0", self.mesh, (2, 1)),
                UdpTxTile("udp_tx1", self.mesh, (3, 1)),
            ]
        else:
            self.udp_rx_tiles = [UdpRxTile("udp_rx", self.mesh,
                                           (2, 0))]
            self.udp_tx_tiles = [UdpTxTile("udp_tx", self.mesh,
                                           (2, 1))]
        self.udp_rx = self.udp_rx_tiles[0]
        self.udp_tx = self.udp_tx_tiles[0]
        self.witnesses = [
            VrWitnessTile(f"witness{s}", self.mesh,
                          witness_coords[s], shard=s)
            for s in range(shards)
        ]
        self.ip_tx = IpTxTile("ip_tx", self.mesh, (1, 1))
        self.eth_tx = EthernetTxTile(
            "eth_tx", self.mesh, (0, 1), my_mac=SERVER_MAC,
            line_rate_bytes_per_cycle=line_rate_bytes_per_cycle,
        )
        self.tiles = [self.eth_rx, self.ip_rx, *self.udp_rx_tiles,
                      *self.witnesses, *self.udp_tx_tiles, self.ip_tx,
                      self.eth_tx]

        self.eth_rx.next_hop.set_entry(ETHERTYPE_IPV4, self.ip_rx.coord)
        # Replicated UDP RX tiles: flows spread by hash at the IP layer.
        self.ip_rx.next_hop.set_entry(
            IPPROTO_UDP, [tile.coord for tile in self.udp_rx_tiles]
        )
        for shard, witness in enumerate(self.witnesses):
            # One UDP port per shard: stateful tiles need sticky routing.
            for udp_rx in self.udp_rx_tiles:
                udp_rx.next_hop.set_entry(VR_BASE_PORT + shard,
                                          witness.coord)
            # Witnesses spread replies across the UDP TX replicas.
            witness.next_hop.policy = "round_robin"
            witness.next_hop.set_entry(
                witness.DEFAULT,
                [tile.coord for tile in self.udp_tx_tiles],
            )
        for udp_tx in self.udp_tx_tiles:
            udp_tx.next_hop.set_entry(udp_tx.DEFAULT, self.ip_tx.coord)
        self.ip_tx.next_hop.set_entry(self.ip_tx.DEFAULT,
                                      self.eth_tx.coord)

        self.mesh.register(self.sim)
        self.tile_backend = tile_backend
        self.tile_core = register_tiles(self.sim, self.tiles,
                                        tile_backend)

        self.chains = [
            ["eth_rx", "ip_rx", udp_rx.name, witness.name,
             udp_tx.name, "ip_tx", "eth_tx"]
            for witness in self.witnesses
            for udp_rx in self.udp_rx_tiles
            for udp_tx in self.udp_tx_tiles
        ]
        self.tile_coords = {t.name: t.coord for t in self.tiles}
        assert_deadlock_free(self.chains, self.tile_coords)
        attach_faults(self, fault_plan)

    def add_client(self, ip: IPv4Address, mac: MacAddress) -> None:
        self.eth_tx.add_neighbor(ip, mac)

    def inject(self, frame: bytes, cycle: int) -> None:
        self.eth_rx.push_frame(frame, cycle)

    def shard_port(self, shard: int) -> int:
        return VR_BASE_PORT + shard

    @property
    def server_ip(self) -> IPv4Address:
        return SERVER_IP

    @property
    def server_mac(self) -> MacAddress:
        return SERVER_MAC
