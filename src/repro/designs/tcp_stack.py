"""The TCP server design (paper sections V-D, V-F).

Layout on a 6x2 mesh, with optional logging tiles between the IP and
TCP layers exactly where the paper inserted them for debugging:

    eth_rx  ip_rx  [log_rx]  tcp_rx  app  rx_buf
    eth_tx  ip_tx  [log_tx]  tcp_tx  tx_buf  empty

The TCP engines share flow state through the dual-store
:class:`repro.tcp.flow.FlowTable` and dedicated wires, and stage
payload in the two buffer tiles, which the application accesses over
the NoC.
"""

from __future__ import annotations

from repro import params
from repro.faults import attach_faults
from repro.noc.flatmesh import build_mesh
from repro.packet.ethernet import ETHERTYPE_IPV4, MacAddress
from repro.packet.ipv4 import IPPROTO_TCP, IPv4Address
from repro.analysis.deadlock import assert_deadlock_free
from repro.sim.kernel import CycleSimulator
from repro.tiles.flatcore import register_tiles
from repro.tcp.app import TcpEchoAppTile
from repro.tcp.flow import FlowTable
from repro.tcp.rx_engine import TcpRxEngineTile
from repro.tcp.tx_engine import TcpTxEngineTile
from repro.tiles.buffer import BufferTile
from repro.tiles.ethernet import EthernetRxTile, EthernetTxTile
from repro.tiles.ip import IpRxTile, IpTxTile
from repro.tiles.logger import PacketLogTile

SERVER_MAC = MacAddress("02:be:e0:00:00:01")
SERVER_IP = IPv4Address("10.0.0.10")


class TcpServerDesign:
    """Beehive with the server-side TCP engine and one application."""

    def __init__(self, tcp_port: int = 5000,
                 app_tile_cls=TcpEchoAppTile,
                 request_size: int = 64,
                 with_logging: bool = False,
                 line_rate_bytes_per_cycle: float | None = 50.0,
                 max_flows: int = 8,
                 mss: int = params.TCP_MSS_BYTES,
                 congestion_control: bool | str = False,
                 kernel: str = "scheduled",
                 mesh_backend: str = "flat",
                 tile_backend: str = "flat",
                 fault_plan=None,
                 **app_kwargs):
        self.tcp_port = tcp_port
        self.sim = CycleSimulator(kernel=kernel,
                                  mesh_backend=mesh_backend,
                                  tile_backend=tile_backend)
        self.mesh = build_mesh(6, 2, backend=mesh_backend)
        self.flows = FlowTable(max_flows=max_flows)

        self.rx_buf = BufferTile(
            "rx_buf", self.mesh, (5, 0),
            size_bytes=max_flows * params.TCP_RX_BUFFER_BYTES,
        )
        self.tx_buf = BufferTile(
            "tx_buf", self.mesh, (4, 1),
            size_bytes=max_flows * params.TCP_TX_BUFFER_BYTES,
        )

        self.eth_rx = EthernetRxTile("eth_rx", self.mesh, (0, 0),
                                     my_mac=SERVER_MAC)
        self.ip_rx = IpRxTile("ip_rx", self.mesh, (1, 0), my_ip=SERVER_IP)
        self.tcp_rx = TcpRxEngineTile("tcp_rx", self.mesh, (3, 0),
                                      flows=self.flows,
                                      rx_buffer=self.rx_buf)
        self.tcp_tx = TcpTxEngineTile(
            "tcp_tx", self.mesh, (3, 1), flows=self.flows,
            tx_buffer=self.tx_buf, mss=mss,
            congestion_control=congestion_control,
        )
        self.app = app_tile_cls(
            "app", self.mesh, (4, 0),
            tcp_rx_coord=self.tcp_rx.coord,
            tcp_tx_coord=self.tcp_tx.coord,
            rx_buffer_coord=self.rx_buf.coord,
            tx_buffer_coord=self.tx_buf.coord,
            request_size=request_size,
            **app_kwargs,
        )
        self.ip_tx = IpTxTile("ip_tx", self.mesh, (1, 1))
        self.eth_tx = EthernetTxTile(
            "eth_tx", self.mesh, (0, 1), my_mac=SERVER_MAC,
            line_rate_bytes_per_cycle=line_rate_bytes_per_cycle,
        )
        self.tiles = [self.eth_rx, self.ip_rx, self.tcp_rx, self.app,
                      self.tcp_tx, self.ip_tx, self.eth_tx,
                      self.rx_buf, self.tx_buf]

        self.log_rx = self.log_tx = None
        if with_logging:
            self.log_rx = PacketLogTile("log_rx", self.mesh, (2, 0),
                                        direction="rx")
            self.log_tx = PacketLogTile("log_tx", self.mesh, (2, 1),
                                        direction="tx")
            self.tiles.extend([self.log_rx, self.log_tx])

        # Dedicated wires between the engines (section V-D).
        self.tcp_rx.connect_tx(self.tcp_tx)
        self.tcp_rx.listen(tcp_port, self.app.coord)

        # Packet-level routing.
        self.eth_rx.next_hop.set_entry(ETHERTYPE_IPV4, self.ip_rx.coord)
        if with_logging:
            self.ip_rx.next_hop.set_entry(IPPROTO_TCP, self.log_rx.coord)
            self.log_rx.next_hop.set_entry(PacketLogTile.FORWARD,
                                           self.tcp_rx.coord)
            self.tcp_tx.next_hop.set_entry(self.tcp_tx.DEFAULT,
                                           self.log_tx.coord)
            self.log_tx.next_hop.set_entry(PacketLogTile.FORWARD,
                                           self.ip_tx.coord)
        else:
            self.ip_rx.next_hop.set_entry(IPPROTO_TCP, self.tcp_rx.coord)
            self.tcp_tx.next_hop.set_entry(self.tcp_tx.DEFAULT,
                                           self.ip_tx.coord)
        self.ip_tx.next_hop.set_entry(self.ip_tx.DEFAULT,
                                      self.eth_tx.coord)

        self.mesh.register(self.sim)
        self.tile_backend = tile_backend
        self.tile_core = register_tiles(self.sim, self.tiles,
                                        tile_backend)

        rx_chain = ["eth_rx", "ip_rx"]
        if with_logging:
            rx_chain.append("log_rx")
        rx_chain.append("tcp_rx")
        tx_chain = ["tcp_tx"]
        if with_logging:
            tx_chain.append("log_tx")
        tx_chain.extend(["ip_tx", "eth_tx"])
        self.chains = [rx_chain, tx_chain,
                       ["tcp_rx", "app"], ["app", "tcp_rx"],
                       ["app", "rx_buf"], ["rx_buf", "app"],
                       ["app", "tcp_tx"], ["tcp_tx", "app"],
                       ["app", "tx_buf"], ["tx_buf", "app"]]
        self.tile_coords = {t.name: t.coord for t in self.tiles}
        assert_deadlock_free(self.chains, self.tile_coords)
        attach_faults(self, fault_plan)

    def add_client(self, ip: IPv4Address, mac: MacAddress) -> None:
        self.eth_tx.add_neighbor(ip, mac)

    def inject(self, frame: bytes, cycle: int) -> None:
        self.eth_rx.push_frame(frame, cycle)

    @property
    def server_ip(self) -> IPv4Address:
        return SERVER_IP

    @property
    def server_mac(self) -> MacAddress:
        return SERVER_MAC
