"""The managed NAT design: the section V-E reconfiguration scenario.

The NAT echo stack plus the internal controller tile and a separate
control NoC.  An external controller sends an RPC over UDP to the
controller port; the controller tile pushes a :class:`TableUpdate`
across the control NoC to the NAT (or Ethernet neighbour table, or a
protocol tile's next-hop table), collects the ACK, and confirms back
over UDP — the full client-migration flow.
"""

from __future__ import annotations

from repro.control.controller import InternalControllerTile
from repro.control.plane import ControlPlane
from repro.analysis.deadlock import assert_deadlock_free
from repro.designs.virt_stack import NatEchoDesign
from repro.faults import attach_faults
from repro.packet.ethernet import MacAddress
from repro.packet.ipv4 import IPv4Address


class ManagedNatEchoDesign(NatEchoDesign):
    """NAT echo + internal controller + control NoC."""

    CONTROL_PORT = 9000

    def __init__(self, udp_port: int = 7, fault_plan=None, **kwargs):
        # Attach faults only once the controller tile exists, so plans
        # may target it; the base class must not attach first.
        super().__init__(udp_port=udp_port, fault_plan=None, **kwargs)
        self.control = ControlPlane(5, 2)

        controller_ep = self.control.attach((4, 1), "controller")
        self.controller = InternalControllerTile(
            "controller", self.mesh, (4, 1), endpoint=controller_ep,
        )
        self.controller.next_hop.set_entry(self.controller.DEFAULT,
                                           self.udp_tx.coord)
        self.udp_rx.next_hop.set_entry(self.CONTROL_PORT,
                                       self.controller.coord)
        self.tiles.append(self.controller)
        self.tile_coords["controller"] = self.controller.coord

        # NAT endpoint: the control plane rewrites the virtual->physical
        # mapping on client migration.
        nat_ep = self.control.attach(self.nat_rx.coord, "nat")
        nat_ep.on_table(
            "nat",
            lambda key, value: self.nat_table.set_mapping(
                IPv4Address(key), IPv4Address(value)
            ),
        )
        nat_ep.on_counter(
            "translations",
            lambda: self.nat_rx.translations + self.nat_tx.translations,
        )
        nat_ep.on_counter("misses",
                          lambda: self.nat_rx.misses + self.nat_tx.misses)

        # Ethernet TX endpoint: neighbour (IP -> MAC) table updates.
        eth_ep = self.control.attach(self.eth_tx.coord, "eth_tx")
        eth_ep.on_table(
            "neighbor",
            lambda key, value: self.eth_tx.add_neighbor(
                IPv4Address(key), MacAddress(value)
            ),
        )

        # UDP RX endpoint: rewrite the port hash table at runtime
        # ("the hash table can be rewritten during runtime via the
        # control plane", section V-B).
        udp_ep = self.control.attach(self.udp_rx.coord, "udp_rx")
        udp_ep.on_table(
            "udp_nexthop",
            lambda key, value: self.udp_rx.next_hop.set_entry(
                int(key), tuple(int(v) for v in value.split(","))
            ),
        )
        udp_ep.on_counter("drops", lambda: self.udp_rx.drops)

        self.endpoints = {
            "controller": controller_ep,
            "nat": nat_ep,
            "eth_tx": eth_ep,
            "udp_rx": udp_ep,
        }

        # The base design already ran mesh.register(), so the
        # controller's freshly-attached local port must be added too —
        # unless the mesh backend steps its ports itself.
        if not self.mesh.steps_ports:
            self.sim.add(self.controller.port)
        self.sim.add(self.controller)
        self.control.register(self.sim)

        self.chains.append(["eth_rx", "ip_rx", "nat_rx", "udp_rx",
                            "controller", "udp_tx", "nat_tx", "ip_tx",
                            "eth_tx"])
        assert_deadlock_free(self.chains, self.tile_coords)
        attach_faults(self, fault_plan)
