"""The UDP echo design (paper Fig 8a).

Seven tiles on a 4x2 mesh — Ethernet/IP/UDP with separate receive and
transmit tiles plus one application tile — laid out so the echo chain
acquires NoC links in order (the Fig 5b discipline):

    (0,0) eth_rx   (1,0) ip_rx   (2,0) udp_rx   (3,0) app
    (0,1) eth_tx   (1,1) ip_tx   (2,1) udp_tx   (3,1) empty

The design declares its message chains for the static deadlock analyzer
and is the configuration Fig 7, Table I, and the latency microbenchmark
run on.
"""

from __future__ import annotations

from repro.apps.echo import UdpEchoAppTile
from repro.faults import attach_faults
from repro.noc.flatmesh import build_mesh
from repro.packet.ethernet import ETHERTYPE_IPV4, MacAddress
from repro.packet.ipv4 import IPPROTO_UDP, IPv4Address
from repro.analysis.deadlock import assert_deadlock_free
from repro.sim.shard import make_simulator
from repro.tiles.flatcore import register_tiles
from repro.tiles.ethernet import EthernetRxTile, EthernetTxTile
from repro.tiles.ip import IpRxTile, IpTxTile
from repro.tiles.udp import UdpRxTile, UdpTxTile

SERVER_MAC = MacAddress("02:be:e0:00:00:01")
SERVER_IP = IPv4Address("10.0.0.10")


class UdpEchoDesign:
    """Build and run the 7-tile UDP echo stack."""

    def __init__(self, udp_port: int = 7,
                 line_rate_bytes_per_cycle: float | None = 50.0,
                 app_tile_cls=UdpEchoAppTile,
                 kernel: str = "scheduled",
                 mesh_backend: str = "flat",
                 tile_backend: str = "flat",
                 fault_plan=None,
                 shards: int = 1,
                 shard_transport: str = "loopback"):
        self.udp_port = udp_port
        self.sim = make_simulator(kernel=kernel,
                                  mesh_backend=mesh_backend,
                                  tile_backend=tile_backend,
                                  shards=shards,
                                  shard_transport=shard_transport)
        self.mesh = build_mesh(4, 2, backend=mesh_backend,
                               shards=shards)

        self.eth_rx = EthernetRxTile("eth_rx", self.mesh, (0, 0),
                                     my_mac=SERVER_MAC)
        self.ip_rx = IpRxTile("ip_rx", self.mesh, (1, 0), my_ip=SERVER_IP)
        self.udp_rx = UdpRxTile("udp_rx", self.mesh, (2, 0))
        self.app = app_tile_cls("app", self.mesh, (3, 0))
        self.udp_tx = UdpTxTile("udp_tx", self.mesh, (2, 1))
        self.ip_tx = IpTxTile("ip_tx", self.mesh, (1, 1))
        self.eth_tx = EthernetTxTile(
            "eth_tx", self.mesh, (0, 1), my_mac=SERVER_MAC,
            line_rate_bytes_per_cycle=line_rate_bytes_per_cycle,
        )
        self.tiles = [self.eth_rx, self.ip_rx, self.udp_rx, self.app,
                      self.udp_tx, self.ip_tx, self.eth_tx]

        self.eth_rx.next_hop.set_entry(ETHERTYPE_IPV4, self.ip_rx.coord)
        self.ip_rx.next_hop.set_entry(IPPROTO_UDP, self.udp_rx.coord)
        self.udp_rx.next_hop.set_entry(udp_port, self.app.coord)
        self.app.next_hop.set_entry(self.app.DEFAULT, self.udp_tx.coord)
        self.udp_tx.next_hop.set_entry(self.udp_tx.DEFAULT,
                                       self.ip_tx.coord)
        self.ip_tx.next_hop.set_entry(self.ip_tx.DEFAULT,
                                      self.eth_tx.coord)

        self.mesh.register(self.sim)
        self.tile_backend = tile_backend
        self.tile_core = register_tiles(self.sim, self.tiles, tile_backend)

        # Message chains (tile-name sequences) for deadlock analysis.
        self.chains = [
            ["eth_rx", "ip_rx", "udp_rx", "app",
             "udp_tx", "ip_tx", "eth_tx"],
        ]
        self.tile_coords = {t.name: t.coord for t in self.tiles}
        assert_deadlock_free(self.chains, self.tile_coords)
        attach_faults(self, fault_plan)

    # -- host-facing conveniences -------------------------------------------

    def add_client(self, ip: IPv4Address, mac: MacAddress) -> None:
        """Teach the TX path a client's MAC (static neighbour table)."""
        self.eth_tx.add_neighbor(ip, mac)

    def inject(self, frame: bytes, cycle: int) -> None:
        self.eth_rx.push_frame(frame, cycle)

    @property
    def server_ip(self) -> IPv4Address:
        return SERVER_IP

    @property
    def server_mac(self) -> MacAddress:
        return SERVER_MAC


class LoggedUdpEchoDesign(UdpEchoDesign):
    """UDP echo with a logging tile and network log readback (V-F).

    Layout (5x2 mesh):

        eth_rx  ip_rx  log    udp_rx  app
        eth_tx  ip_tx  empty  empty   udp_tx

    The log tile taps the receive path between IP and UDP.  Reading the
    log back is itself UDP traffic: the UDP RX tile routes the log port
    to the log tile, which answers one entry per request through the
    transmit path.  The readback path revisits the log tile, which
    would break chain resource ordering — the log tile's *bounded,
    dropping* request buffer is what decouples it (the paper's stated
    design for the log read interface), so the chains are declared
    segmented at that boundary.
    """

    LOG_PORT = 5100

    def __init__(self, udp_port: int = 7,
                 line_rate_bytes_per_cycle: float | None = 50.0,
                 kernel: str = "scheduled",
                 mesh_backend: str = "flat",
                 tile_backend: str = "flat",
                 fault_plan=None,
                 shards: int = 1,
                 shard_transport: str = "loopback"):
        # Build from scratch (different geometry than the base class).
        from repro.tiles.logger import PacketLogTile

        self.udp_port = udp_port
        self.sim = make_simulator(kernel=kernel,
                                  mesh_backend=mesh_backend,
                                  tile_backend=tile_backend,
                                  shards=shards,
                                  shard_transport=shard_transport)
        self.mesh = build_mesh(5, 2, backend=mesh_backend,
                               shards=shards)

        self.eth_rx = EthernetRxTile("eth_rx", self.mesh, (0, 0),
                                     my_mac=SERVER_MAC)
        self.ip_rx = IpRxTile("ip_rx", self.mesh, (1, 0),
                              my_ip=SERVER_IP)
        self.log = PacketLogTile("log", self.mesh, (2, 0),
                                 direction="rx",
                                 readback_port=self.LOG_PORT)
        self.udp_rx = UdpRxTile("udp_rx", self.mesh, (3, 0))
        self.app = UdpEchoAppTile("app", self.mesh, (4, 0))
        self.udp_tx = UdpTxTile("udp_tx", self.mesh, (4, 1))
        self.ip_tx = IpTxTile("ip_tx", self.mesh, (1, 1))
        self.eth_tx = EthernetTxTile(
            "eth_tx", self.mesh, (0, 1), my_mac=SERVER_MAC,
            line_rate_bytes_per_cycle=line_rate_bytes_per_cycle,
        )
        self.tiles = [self.eth_rx, self.ip_rx, self.log, self.udp_rx,
                      self.app, self.udp_tx, self.ip_tx, self.eth_tx]

        self.eth_rx.next_hop.set_entry(ETHERTYPE_IPV4, self.ip_rx.coord)
        self.ip_rx.next_hop.set_entry(IPPROTO_UDP, self.log.coord)
        self.log.next_hop.set_entry(PacketLogTile.FORWARD,
                                    self.udp_rx.coord)
        self.log.next_hop.set_entry(PacketLogTile.READBACK,
                                    self.udp_tx.coord)
        self.udp_rx.next_hop.set_entry(udp_port, self.app.coord)
        self.udp_rx.next_hop.set_entry(self.LOG_PORT, self.log.coord)
        self.app.next_hop.set_entry(self.app.DEFAULT, self.udp_tx.coord)
        self.udp_tx.next_hop.set_entry(self.udp_tx.DEFAULT,
                                       self.ip_tx.coord)
        self.ip_tx.next_hop.set_entry(self.ip_tx.DEFAULT,
                                      self.eth_tx.coord)

        self.mesh.register(self.sim)
        self.tile_backend = tile_backend
        self.tile_core = register_tiles(self.sim, self.tiles, tile_backend)

        # Chains segmented at the log tile's dropping request buffer.
        self.chains = [
            ["eth_rx", "ip_rx", "log", "udp_rx", "app",
             "udp_tx", "ip_tx", "eth_tx"],
            ["udp_rx", "log"],
            ["log", "udp_tx", "ip_tx", "eth_tx"],
        ]
        self.tile_coords = {t.name: t.coord for t in self.tiles}
        assert_deadlock_free(self.chains, self.tile_coords)
        attach_faults(self, fault_plan)
