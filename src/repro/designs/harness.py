"""Traffic harness for cycle-level experiments.

``FrameSource`` plays the role of the paper's FPGA packet generator
(section VII-C: "we run a packet generator on another U200, because the
client machines cannot generate enough traffic to saturate the FPGA"):
it injects frames into a design's ingress at a configurable byte rate.
``FrameSink``/``GoodputMeter`` collect egress frames and compute
goodput the way the paper plots it (UDP payload bytes per second).
"""

from __future__ import annotations

import math
from collections.abc import Callable

from repro import params
from repro.packet.builder import parse_frame
from repro.sim.kernel import Wakeable


class FrameSource(Wakeable):
    """Paced frame injection (a clocked component).

    ``frame_factory(i)`` returns the i-th frame to send.  ``rate`` is
    the injection rate in bytes/cycle: 50.0 models the 100 GbE wire at
    250 MHz; ``None`` saturates (injects a new frame the moment the
    ingress can conceptually accept one, modelling the paper's
    in-simulation 128 Gbps mode).  Injection pacing includes per-frame
    Ethernet wire overhead, like a real generator.

    ``overrun`` decides what happens when the NIC's admission backlog
    is full at an injection instant: ``"block"`` (default, the
    closed-loop behaviour) polls until the backlog drains, stretching
    the effective rate; ``"drop"`` keeps the offered clock honest —
    the frame is *counted* in ``offered_dropped``/``drop_reasons`` and
    discarded, never buffered, so memory stays flat however far
    arrivals outrun admission.
    """

    def __init__(self, push: Callable[[bytes, int], None],
                 frame_factory: Callable[[int], bytes],
                 rate: float | None = 50.0,
                 count: int | None = None,
                 backlog: Callable[[], int] | None = None,
                 max_backlog: int = 8,
                 overrun: str = "block"):
        if overrun not in ("block", "drop"):
            raise ValueError(
                f"overrun must be 'block' or 'drop', not {overrun!r}")
        self.push = push
        self.frame_factory = frame_factory
        self.rate = rate
        self.count = count
        self.backlog = backlog
        self.max_backlog = max_backlog
        self.overrun = overrun
        self.sent = 0
        self.bytes_sent = 0
        self.offered = 0
        self.offered_dropped = 0
        self.drop_reasons: dict[str, int] = {}
        self._next_free = 0
        self._blocked = False

    @property
    def done(self) -> bool:
        return self.count is not None and self.offered >= self.count

    def step(self, cycle: int) -> None:
        if self.done or cycle < self._next_free:
            return
        blocked = (self.backlog is not None
                   and self.backlog() >= self.max_backlog)
        if blocked and self.overrun == "block":
            # Polled until the backlog drains: nothing wakes a source.
            self._blocked = True
            return
        self._blocked = False
        frame = self.frame_factory(self.offered)
        wire_bytes = len(frame) + params.ETHERNET_OVERHEAD_BYTES
        if self.rate is not None:
            arrival = cycle + math.ceil(len(frame) / self.rate)
            self._next_free = cycle + math.ceil(wire_bytes / self.rate)
        else:
            arrival = cycle + 1
            self._next_free = cycle + 1
        self.offered += 1
        if blocked:
            # Open-loop admission boundary: the arrival happened, the
            # NIC had no room, the frame is lost — count it, never
            # queue it.
            self.offered_dropped += 1
            reason = "offered: admission overrun"
            self.drop_reasons[reason] = \
                self.drop_reasons.get(reason, 0) + 1
            return
        self.push(frame, arrival)
        self.sent += 1
        self.bytes_sent += len(frame)

    def commit(self) -> None:
        pass

    # -- quiescence contract (see repro.sim.kernel) --------------------------

    def is_idle(self) -> bool:
        """Pacing is timer-driven; only a backlog-blocked source needs
        to poll (the backlog callable is opaque, so no wake exists)."""
        return self.done or not self._blocked

    def next_event_cycle(self) -> int | None:
        return None if self.done else self._next_free


class FrameSink(Wakeable):
    """Drains an Ethernet TX tile's MAC output (a clocked component)."""

    def __init__(self, eth_tx, keep_frames: bool = True):
        self.eth_tx = eth_tx
        self.keep_frames = keep_frames
        self.frames: list[tuple[bytes, int]] = []
        self.count = 0
        self.frame_bytes = 0
        self.payload_bytes = 0
        self.malformed = 0
        self.first_cycle: int | None = None
        self.last_cycle: int | None = None
        listeners = getattr(eth_tx, "frame_listeners", None)
        if listeners is not None:
            listeners.append(self._wake)

    def step(self, cycle: int) -> None:
        while self.eth_tx.frames_out:
            frame, emit_cycle = self.eth_tx.frames_out.popleft()
            if emit_cycle > cycle:
                self.eth_tx.frames_out.appendleft((frame, emit_cycle))
                break
            self.count += 1
            self.frame_bytes += len(frame)
            try:
                parsed = parse_frame(frame)
                self.payload_bytes += len(parsed.payload)
            except ValueError:
                # Garbage egress — the chaos invariant a healthy design
                # must never produce, however hostile the ingress.
                self.malformed += 1
            if self.first_cycle is None:
                self.first_cycle = emit_cycle
            self.last_cycle = emit_cycle
            if self.keep_frames:
                self.frames.append((frame, emit_cycle))

    def commit(self) -> None:
        pass

    # -- quiescence contract (see repro.sim.kernel) --------------------------

    def is_idle(self) -> bool:
        """Always idle between events: every recorded value derives
        from a frame's emit cycle, so draining on the emit cycle (via
        the timer) or on a wake from the TX tile loses nothing."""
        return True

    def next_event_cycle(self) -> int | None:
        queue = self.eth_tx.frames_out
        return queue[0][1] if queue else None


class GoodputMeter:
    """Computes goodput the way Fig 7 plots it."""

    def __init__(self, sink: FrameSink, warmup_frames: int = 0):
        self.sink = sink
        self.warmup_frames = warmup_frames
        self._base_count = 0
        self._base_payload = 0
        self._base_cycle = None

    def maybe_start(self) -> None:
        """Begin measuring once the warmup frames have egressed."""
        if self._base_cycle is None and \
                self.sink.count >= self.warmup_frames:
            self._base_count = self.sink.count
            self._base_payload = self.sink.payload_bytes
            self._base_cycle = self.sink.last_cycle

    @property
    def frames(self) -> int:
        return self.sink.count - self._base_count

    def goodput_gbps(self) -> float:
        """Payload goodput over the measured window."""
        if self._base_cycle is None or self.sink.last_cycle is None:
            return 0.0
        cycles = self.sink.last_cycle - self._base_cycle
        if cycles <= 0:
            return 0.0
        payload = self.sink.payload_bytes - self._base_payload
        return payload * 8 / (cycles * params.CYCLE_TIME_S) / 1e9

    def kreqs(self) -> float:
        """Thousands of requests (frames) per second over the window."""
        if self._base_cycle is None or self.sink.last_cycle is None:
            return 0.0
        cycles = self.sink.last_cycle - self._base_cycle
        if cycles <= 0:
            return 0.0
        return self.frames / (cycles * params.CYCLE_TIME_S) / 1e3
