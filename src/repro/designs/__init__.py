"""Prebuilt Beehive designs used by the evaluation.

Each design couples a mesh, a set of tiles, the packet-level next-hop
tables, and the declared message chains that the static deadlock
analyzer checks at construction time.
"""

from repro.designs.harness import FrameSink, FrameSource, GoodputMeter
from repro.designs.udp_stack import LoggedUdpEchoDesign, UdpEchoDesign
from repro.designs.virt_stack import IpInIpEchoDesign, NatEchoDesign
from repro.designs.managed_stack import ManagedNatEchoDesign
from repro.designs.multi_stack import MultiStackDesign
from repro.designs.rs_design import RsDesign
from repro.designs.scaled_echo import ScaledEchoDesign
from repro.designs.tcp_stack import TcpServerDesign
from repro.designs.vr_design import VrWitnessDesign
from repro.designs.vxlan_stack import VxlanEchoDesign

__all__ = [
    "FrameSink",
    "FrameSource",
    "GoodputMeter",
    "IpInIpEchoDesign",
    "LoggedUdpEchoDesign",
    "ManagedNatEchoDesign",
    "MultiStackDesign",
    "NatEchoDesign",
    "RsDesign",
    "ScaledEchoDesign",
    "TcpServerDesign",
    "UdpEchoDesign",
    "VrWitnessDesign",
    "VxlanEchoDesign",
]
