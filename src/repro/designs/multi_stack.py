"""The multi-stack scalability design (paper Fig 12 / section VII-I).

A front-end load-balancer tile splits flows across N duplicated UDP
echo stacks on one mesh.  The load balancer itself tops out at 32 Gbps
for 64 B packets (4 cycles each: 3 NoC flits + 1 recovery), and two
stacks roughly double small-packet goodput versus one, converging to
the link maximum at large payloads — the Fig 12 curves.

Layout (5 x 2N mesh), rows r = 2k, 2k+1 per stack k:

    lb(0,0)  eth_rx_k(1,2k)  ip_rx_k(2,2k)  udp_rx_k(3,2k)  app_k(4,2k)
             eth_tx_k(1,2k+1) ip_tx_k(2,2k+1) udp_tx_k(3,2k+1)
"""

from __future__ import annotations

from repro.apps.echo import UdpEchoAppTile
from repro.analysis.deadlock import assert_deadlock_free
from repro.faults import attach_faults
from repro.noc.flatmesh import build_mesh
from repro.noc.mesh import Mesh
from repro.packet.ethernet import ETHERTYPE_IPV4, MacAddress
from repro.packet.ipv4 import IPPROTO_UDP, IPv4Address
from repro.sim.kernel import CycleSimulator
from repro.tiles.flatcore import register_tiles
from repro.tiles.ethernet import EthernetRxTile, EthernetTxTile
from repro.tiles.ip import IpRxTile, IpTxTile
from repro.tiles.loadbalancer import FlowHashLoadBalancerTile
from repro.tiles.udp import UdpRxTile, UdpTxTile

SERVER_MAC = MacAddress("02:be:e0:00:00:01")
SERVER_IP = IPv4Address("10.0.0.10")


class _Stack:
    """One replicated UDP echo stack instance."""

    def __init__(self, index: int, mesh: Mesh, udp_port: int,
                 line_rate):
        top = 2 * index
        bottom = top + 1
        suffix = f"_{index}"
        self.eth_rx = EthernetRxTile(f"eth_rx{suffix}", mesh, (1, top),
                                     my_mac=SERVER_MAC)
        self.ip_rx = IpRxTile(f"ip_rx{suffix}", mesh, (2, top),
                              my_ip=SERVER_IP)
        self.udp_rx = UdpRxTile(f"udp_rx{suffix}", mesh, (3, top))
        self.app = UdpEchoAppTile(f"app{suffix}", mesh, (4, top))
        self.eth_tx = EthernetTxTile(
            f"eth_tx{suffix}", mesh, (1, bottom), my_mac=SERVER_MAC,
            line_rate_bytes_per_cycle=line_rate,
        )
        self.ip_tx = IpTxTile(f"ip_tx{suffix}", mesh, (2, bottom))
        self.udp_tx = UdpTxTile(f"udp_tx{suffix}", mesh, (3, bottom))
        self.tiles = [self.eth_rx, self.ip_rx, self.udp_rx, self.app,
                      self.udp_tx, self.ip_tx, self.eth_tx]

        self.eth_rx.next_hop.set_entry(ETHERTYPE_IPV4, self.ip_rx.coord)
        self.ip_rx.next_hop.set_entry(IPPROTO_UDP, self.udp_rx.coord)
        self.udp_rx.next_hop.set_entry(udp_port, self.app.coord)
        self.app.next_hop.set_entry(self.app.DEFAULT, self.udp_tx.coord)
        self.udp_tx.next_hop.set_entry(self.udp_tx.DEFAULT,
                                       self.ip_tx.coord)
        self.ip_tx.next_hop.set_entry(self.ip_tx.DEFAULT,
                                      self.eth_tx.coord)

        self.chain = [tile.name for tile in
                      (self.eth_rx, self.ip_rx, self.udp_rx, self.app,
                       self.udp_tx, self.ip_tx, self.eth_tx)]


class MultiStackDesign:
    """N duplicated UDP stacks behind a flow-hash load balancer."""

    def __init__(self, stacks: int = 2, udp_port: int = 7,
                 line_rate_bytes_per_cycle: float | None = None,
                 kernel: str = "scheduled",
                 mesh_backend: str = "flat",
                 tile_backend: str = "flat",
                 fault_plan=None):
        if stacks < 1:
            raise ValueError("need at least one stack")
        self.sim = CycleSimulator(kernel=kernel,
                                  mesh_backend=mesh_backend,
                                  tile_backend=tile_backend)
        self.mesh = build_mesh(5, 2 * stacks, backend=mesh_backend)
        self.lb = FlowHashLoadBalancerTile("lb", self.mesh, (0, 0))
        self.stacks = [
            _Stack(index, self.mesh, udp_port,
                   line_rate_bytes_per_cycle)
            for index in range(stacks)
        ]
        self.tiles = [self.lb]
        self.chains = []
        for stack in self.stacks:
            self.lb.add_stack(stack.eth_rx.coord)
            self.tiles.extend(stack.tiles)
            self.chains.append(["lb"] + stack.chain)

        self.mesh.register(self.sim)
        self.tile_backend = tile_backend
        self.tile_core = register_tiles(self.sim, self.tiles,
                                        tile_backend)
        self.tile_coords = {t.name: t.coord for t in self.tiles}
        assert_deadlock_free(self.chains, self.tile_coords)
        attach_faults(self, fault_plan)

    def add_client(self, ip: IPv4Address, mac: MacAddress) -> None:
        for stack in self.stacks:
            stack.eth_tx.add_neighbor(ip, mac)

    def inject(self, frame: bytes, cycle: int) -> None:
        self.lb.push_frame(frame, cycle)

    def total_echoed(self) -> int:
        return sum(stack.app.requests for stack in self.stacks)

    @property
    def server_ip(self) -> IPv4Address:
        return SERVER_IP

    @property
    def server_mac(self) -> MacAddress:
        return SERVER_MAC
