"""A PANIC-style crossbar framework and the CALM UDP echo (section VII-C).

PANIC connects processing elements through a central crossbar +
scheduler rather than a mesh.  The paper found its crossbar "unable to
support more than 8 endpoints, 4 of which are always used by its
infrastructure" — enforced here — and built CALM, a UDP echo, in the 4
user slots: a fixed UDP receive path, the application, and a fixed UDP
send path.  Performance is nearly identical to Beehive's (Fig 7: both
~line rate at 1024 B, CALM 362 ns vs Beehive 368 ns echo latency);
the cost is flexibility, since the fused RX/TX paths leave no seam to
insert network functions or alternate protocols into.
"""

from __future__ import annotations

import math

from repro import params
from repro.packet.builder import parse_frame
from repro.packet.ethernet import ETHERTYPE_IPV4, EthernetHeader, MacAddress
from repro.packet.ipv4 import IPPROTO_UDP, IPv4Address, IPv4Header
from repro.packet.udp import UdpHeader
from repro.packet import udp as udp_mod
from repro.sim.kernel import CycleSimulator

MAX_ENDPOINTS = 8
INFRASTRUCTURE_ENDPOINTS = 4  # scheduler, MAC in/out, buffer manager

SERVER_MAC = MacAddress("02:be:e0:00:00:03")
SERVER_IP = IPv4Address("10.0.0.12")


class CrossbarEndpoint:
    """A processing element attached to the crossbar."""

    def __init__(self, name: str, handler,
                 occupancy: int = params.TILE_MSG_OCCUPANCY_CYCLES,
                 parse_latency: int = 29):
        self.name = name
        self.handler = handler
        self.occupancy = occupancy
        self.parse_latency = parse_latency
        self.crossbar: "Crossbar | None" = None
        self._queue: list = []
        # CALM's fused-path elements are deeply pipelined: each packet
        # emerges parse_latency cycles after pickup, but the engine is
        # free to pick up the next one after its occupancy — latency
        # and throughput decouple, unlike the simpler Beehive tiles.
        self._in_flight: list[tuple[int, object]] = []
        self._engine_free = 0
        self.packets = 0

    def push(self, item) -> None:
        self._queue.append(item)

    def step(self, cycle: int) -> None:
        while self._in_flight and self._in_flight[0][0] <= cycle:
            _, item = self._in_flight.pop(0)
            result = self.handler(item, cycle)
            if result is not None:
                target, out = result
                self.packets += 1
                self.crossbar.send(self.name, target, out, cycle)
        if self._queue and cycle >= self._engine_free:
            item = self._queue.pop(0)
            self._in_flight.append(
                (cycle + max(1, self.parse_latency), item)
            )
            size = len(item[0]) if isinstance(item, tuple) else 64
            flits = max(1, math.ceil(size / params.FLIT_BYTES))
            self._engine_free = cycle + max(flits, self.occupancy)

    def commit(self) -> None:
        pass


class Crossbar:
    """The central interconnect + scheduler.

    Every transfer crosses the scheduler, which has finite buffering
    and — unlike Beehive's backpressured NoC — *drops* packets when it
    runs out (PANIC's deadlock-avoidance strategy, which is also why
    TCP semantics are hard to host on it).
    """

    def __init__(self, sim: CycleSimulator, buffer_packets: int = 64,
                 hop_cycles: int = 2):
        self.sim = sim
        self.buffer_packets = buffer_packets
        self.hop_cycles = hop_cycles
        self.endpoints: dict[str, CrossbarEndpoint] = {}
        self._in_flight: list[tuple[int, str, object]] = []
        self.scheduler_drops = 0
        sim.add(self)

    def attach(self, endpoint: CrossbarEndpoint) -> CrossbarEndpoint:
        if len(self.endpoints) + INFRASTRUCTURE_ENDPOINTS >= \
                MAX_ENDPOINTS:
            raise ValueError(
                f"PANIC crossbar supports {MAX_ENDPOINTS} endpoints "
                f"and {INFRASTRUCTURE_ENDPOINTS} are infrastructure; "
                f"cannot attach {endpoint.name!r}"
            )
        endpoint.crossbar = self
        self.endpoints[endpoint.name] = endpoint
        self.sim.add(endpoint)
        return endpoint

    def send(self, src: str, target: str, item, cycle: int) -> None:
        if len(self._in_flight) >= self.buffer_packets:
            self.scheduler_drops += 1
            return
        self._in_flight.append((cycle + self.hop_cycles, target, item))

    def step(self, cycle: int) -> None:
        remaining = []
        for deliver_at, target, item in self._in_flight:
            if deliver_at <= cycle:
                self.endpoints[target].push(item)
            else:
                remaining.append((deliver_at, target, item))
        self._in_flight = remaining

    def commit(self) -> None:
        pass


class CalmUdpEcho:
    """The CALM UDP echo server: rx-path, app, tx-path endpoints."""

    def __init__(self, udp_port: int = 7,
                 line_rate_bytes_per_cycle: float | None = None):
        self.udp_port = udp_port
        self.sim = CycleSimulator()
        self.crossbar = Crossbar(self.sim)
        self.line_rate = line_rate_bytes_per_cycle
        self.neighbor_macs: dict[IPv4Address, MacAddress] = {}
        self.frames_echoed = 0
        self.payload_bytes = 0
        self.first_cycle: int | None = None
        self.last_cycle: int | None = None
        self.last_transit_cycles: int | None = None
        self.drops = 0
        self._line_free = 0

        self.rx_path = self.crossbar.attach(
            CrossbarEndpoint("rx_path", self._rx_path))
        self.app = self.crossbar.attach(
            CrossbarEndpoint("app", self._app))
        self.tx_path = self.crossbar.attach(
            CrossbarEndpoint("tx_path", self._tx_path))

    def add_client(self, ip: IPv4Address, mac: MacAddress) -> None:
        self.neighbor_macs[IPv4Address(ip)] = MacAddress(mac)

    def inject(self, frame: bytes, cycle: int) -> None:
        self.rx_path.push((frame, cycle))

    @property
    def server_ip(self) -> IPv4Address:
        return SERVER_IP

    @property
    def server_mac(self) -> MacAddress:
        return SERVER_MAC

    def goodput_gbps(self) -> float:
        if self.first_cycle is None or \
                self.last_cycle == self.first_cycle:
            return 0.0
        cycles = self.last_cycle - self.first_cycle
        return self.payload_bytes * 8 / (cycles
                                         * params.CYCLE_TIME_S) / 1e9

    # -- endpoint handlers: whole fixed paths, not per-layer tiles ---------------

    def _rx_path(self, item, cycle):
        """Fixed Ethernet+IP+UDP receive processing in one element."""
        frame, ingress = item
        try:
            parsed = parse_frame(frame)
        except ValueError:
            self.drops += 1
            return None
        if parsed.udp is None or parsed.ip.dst != SERVER_IP or \
                parsed.udp.dst_port != self.udp_port:
            self.drops += 1
            return None
        return ("app", (parsed.payload, ingress, parsed.ip, parsed.udp))

    def _app(self, item, cycle):
        payload, ingress, ip, udp = item
        return ("tx_path", (payload, ingress, ip, udp))

    def _tx_path(self, item, cycle):
        """Fixed UDP+IP+Ethernet send processing in one element."""
        payload, ingress, ip, udp = item
        mac = self.neighbor_macs.get(ip.src)
        if mac is None:
            self.drops += 1
            return None
        reply_ip = IPv4Header(src=ip.dst, dst=ip.src,
                              protocol=IPPROTO_UDP,
                              total_length=20 + udp_mod.HEADER_LEN
                              + len(payload))
        reply_udp = UdpHeader(src_port=udp.dst_port,
                              dst_port=udp.src_port,
                              length=udp_mod.HEADER_LEN + len(payload))
        udp_bytes = reply_udp.pack_with_checksum(
            reply_ip.pseudo_header(reply_udp.length), payload)
        eth = EthernetHeader(dst=mac, src=SERVER_MAC,
                             ethertype=ETHERTYPE_IPV4)
        frame = eth.pack() + reply_ip.pack() + udp_bytes + payload
        emit = cycle
        if self.line_rate is not None:
            wire = len(frame) + params.ETHERNET_OVERHEAD_BYTES
            emit = max(cycle, self._line_free)
            self._line_free = emit + math.ceil(wire / self.line_rate)
        self.frames_echoed += 1
        self.payload_bytes += len(payload)
        if self.first_cycle is None:
            self.first_cycle = emit
        self.last_cycle = emit
        self.last_transit_cycles = emit - ingress
        return None
