"""The fixed-pipeline UDP stack (paper Fig 8b).

The same protocol engines as the Beehive UDP echo design, but wired
directly stage to stage — no NoC routers, no NoC message construction
or deconstruction.  Packets therefore carry no header/metadata flit
overhead and the engines recover slightly faster per packet, which is
the small advantage Fig 7 shows at small packet sizes, amortising away
as payload grows.  The price is inflexibility: inserting a network
function means new top-level wires and re-engineering — the contrast
that motivates Beehive.
"""

from __future__ import annotations

import math

from repro import params
from repro.packet.builder import parse_frame
from repro.packet.ethernet import ETHERTYPE_IPV4, EthernetHeader, MacAddress
from repro.packet.ipv4 import IPPROTO_UDP, IPv4Address, IPv4Header
from repro.packet.udp import UdpHeader
from repro.packet import udp as udp_mod
from repro.sim.kernel import CycleSimulator

SERVER_MAC = MacAddress("02:be:e0:00:00:02")
SERVER_IP = IPv4Address("10.0.0.11")


class _Stage:
    """One directly-wired pipeline stage.

    Same serialised-engine timing as a Beehive tile, minus the NoC
    flit overhead: a packet occupies the stage for
    ``max(ceil(bytes/64), occupancy)`` cycles and emerges
    ``parse_latency`` cycles after pickup.
    """

    def __init__(self, name: str, transform,
                 occupancy: int = params.PIPELINED_MSG_OCCUPANCY_CYCLES,
                 parse_latency: int = params.TILE_PARSE_LATENCY_CYCLES,
                 queue_packets: int = 4):
        self.name = name
        self.transform = transform
        self.occupancy = occupancy
        self.parse_latency = parse_latency
        self.queue_packets = queue_packets
        self.downstream: "_Stage | None" = None
        self._queue: list[tuple[int, object]] = []
        self._in_service = None
        self._emit_at = 0
        self._engine_free = 0
        self.packets = 0
        self.drops = 0

    def can_accept(self) -> bool:
        return len(self._queue) < self.queue_packets

    def push(self, item, cycle: int) -> None:
        self._queue.append((cycle, item))

    def step(self, cycle: int) -> None:
        if self._in_service is not None and cycle >= self._emit_at:
            item = self.transform(self._in_service, cycle)
            self._in_service = None
            if item is not None:
                self.packets += 1
                if self.downstream is not None:
                    self.downstream.push(item, cycle)
            else:
                self.drops += 1
        if (self._in_service is None and self._queue
                and cycle >= self._engine_free
                and (self.downstream is None
                     or self.downstream.can_accept())):
            arrival, item = self._queue.pop(0)
            self._in_service = item
            self._emit_at = cycle + max(1, self.parse_latency)
            size = self._item_bytes(item)
            flits = max(1, math.ceil(size / params.FLIT_BYTES))
            self._engine_free = cycle + max(flits, self.occupancy)

    @staticmethod
    def _item_bytes(item) -> int:
        data = item[0] if isinstance(item, tuple) else item
        return len(data)

    def commit(self) -> None:
        pass


class PipelinedUdpEchoDesign:
    """Ethernet/IP/UDP echo with directly-wired engines (Fig 8b)."""

    def __init__(self, udp_port: int = 7,
                 line_rate_bytes_per_cycle: float | None = None):
        self.udp_port = udp_port
        self.sim = CycleSimulator()
        self.line_rate = line_rate_bytes_per_cycle
        self.frames_echoed = 0
        self.payload_bytes = 0
        self.first_cycle: int | None = None
        self.last_cycle: int | None = None
        self.last_transit_cycles: int | None = None
        self.neighbor_macs: dict[IPv4Address, MacAddress] = {}
        self.drops = 0
        self._line_free = 0

        self.stages = [
            _Stage("eth_rx", self._eth_rx),
            _Stage("ip_rx", self._ip_rx),
            _Stage("udp_rx", self._udp_rx),
            _Stage("app", self._app),
            _Stage("udp_tx", self._udp_tx),
            _Stage("ip_tx", self._ip_tx),
            _Stage("eth_tx", self._eth_tx),
        ]
        for stage, downstream in zip(self.stages, self.stages[1:]):
            stage.downstream = downstream
        self.sim.add_all(self.stages)

    # -- host interface --------------------------------------------------------

    def add_client(self, ip: IPv4Address, mac: MacAddress) -> None:
        self.neighbor_macs[IPv4Address(ip)] = MacAddress(mac)

    def inject(self, frame: bytes, cycle: int) -> None:
        self.stages[0].push((frame, cycle), cycle)

    @property
    def server_ip(self) -> IPv4Address:
        return SERVER_IP

    @property
    def server_mac(self) -> MacAddress:
        return SERVER_MAC

    def goodput_gbps(self) -> float:
        if self.first_cycle is None or \
                self.last_cycle == self.first_cycle:
            return 0.0
        cycles = self.last_cycle - self.first_cycle
        return self.payload_bytes * 8 / (cycles
                                         * params.CYCLE_TIME_S) / 1e9

    # -- stage transforms (each strips or adds one layer) -------------------------

    def _eth_rx(self, item, cycle):
        frame, ingress = item
        try:
            eth, rest = EthernetHeader.unpack(frame)
        except ValueError:
            return None
        if eth.ethertype != ETHERTYPE_IPV4:
            return None
        return (rest, ingress)

    def _ip_rx(self, item, cycle):
        data, ingress = item
        try:
            ip, payload = IPv4Header.unpack(data)
        except ValueError:
            return None
        if ip.protocol != IPPROTO_UDP or ip.dst != SERVER_IP:
            return None
        return (payload, ingress, ip)

    def _udp_rx(self, item, cycle):
        data, ingress, ip = item
        try:
            udp, payload = UdpHeader.unpack(data)
        except ValueError:
            return None
        if not udp.verify(ip.pseudo_header(udp.length), payload):
            return None
        if udp.dst_port != self.udp_port:
            return None
        return (payload, ingress, ip, udp)

    def _app(self, item, cycle):
        payload, ingress, ip, udp = item
        return (payload, ingress, ip, udp)

    def _udp_tx(self, item, cycle):
        payload, ingress, ip, udp = item
        reply_ip = IPv4Header(src=ip.dst, dst=ip.src,
                              protocol=IPPROTO_UDP,
                              total_length=20 + udp_mod.HEADER_LEN
                              + len(payload))
        reply_udp = UdpHeader(src_port=udp.dst_port,
                              dst_port=udp.src_port,
                              length=udp_mod.HEADER_LEN + len(payload))
        udp_bytes = reply_udp.pack_with_checksum(
            reply_ip.pseudo_header(reply_udp.length), payload)
        return (udp_bytes + payload, ingress, reply_ip)

    def _ip_tx(self, item, cycle):
        data, ingress, ip = item
        header = IPv4Header(src=ip.src, dst=ip.dst,
                            protocol=IPPROTO_UDP,
                            total_length=20 + len(data))
        return (header.pack() + data, ingress, header)

    def _eth_tx(self, item, cycle):
        data, ingress, ip = item
        mac = self.neighbor_macs.get(ip.dst)
        if mac is None:
            self.drops += 1
            return None
        eth = EthernetHeader(dst=mac, src=SERVER_MAC,
                             ethertype=ETHERTYPE_IPV4)
        frame = eth.pack() + data
        emit = cycle
        if self.line_rate is not None:
            wire = len(frame) + params.ETHERNET_OVERHEAD_BYTES
            emit = max(cycle, self._line_free)
            self._line_free = emit + math.ceil(wire / self.line_rate)
        self.frames_echoed += 1
        try:
            self.payload_bytes += len(parse_frame(frame).payload)
        except ValueError:
            pass
        if self.first_cycle is None:
            self.first_cycle = emit
        self.last_cycle = emit
        self.last_transit_cycles = emit - ingress
        return None
