"""Baselines the paper compares against.

- :mod:`repro.baselines.pipelined` — the fixed-pipeline UDP stack of
  Fig 8b: protocol engines wired directly, no NoC messages;
- :mod:`repro.baselines.calm` — the PANIC-style crossbar framework and
  the CALM UDP echo built in it (with PANIC's 8-endpoint limit);
- :mod:`repro.baselines.hoststacks` — analytic models of the software
  stacks (Linux, F-Stack/DPDK, Demikernel) and the CPU-attached
  accelerator (Enso PCIe trampoline) for Table I / Fig 7 / Fig 9.

(The CPU Reed-Solomon and CPU witness baselines live with their
applications in :mod:`repro.apps`.)
"""

from repro.baselines.pipelined import PipelinedUdpEchoDesign
from repro.baselines.calm import CalmUdpEcho, Crossbar, CrossbarEndpoint
from repro.baselines.hoststacks import (
    RttModel,
    demikernel_udp_goodput_gbps,
    linux_tcp_goodput_gbps,
    table1_configs,
)

__all__ = [
    "CalmUdpEcho",
    "Crossbar",
    "CrossbarEndpoint",
    "PipelinedUdpEchoDesign",
    "RttModel",
    "demikernel_udp_goodput_gbps",
    "linux_tcp_goodput_gbps",
    "table1_configs",
]
