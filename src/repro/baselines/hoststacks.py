"""Analytic models of the software network stacks and the CPU-attached
accelerator path.

These regenerate the host-side rows/curves of Table I, Fig 7, and
Fig 9:

- RTT models for the four Table I configurations, built from per-side
  traversal costs (Linux client threads, hot Linux server loops, DPDK
  busy-polling, the Beehive datapath, the Enso PCIe trampoline);
- the Demikernel single-core UDP echo goodput curve (Fig 7's CPU line);
- the Linux single-connection TCP streaming curve (Fig 9's CPU lines).

Constants live in :mod:`repro.params` with their Table I back-fits.
"""

from __future__ import annotations

import random
import statistics
from dataclasses import dataclass

from repro import params
from repro.sim.rng import SeededStreams


@dataclass(frozen=True)
class RttStats:
    median_us: float
    p99_us: float
    mean_us: float


class RttModel:
    """One Table I configuration: a sum of per-side cost samplers."""

    def __init__(self, name: str, components: list):
        self.name = name
        self.components = components  # callables rng -> seconds

    def sample(self, rng: random.Random) -> float:
        return sum(component(rng) for component in self.components)

    def run(self, n: int = 100_000, seed: int = 0xEC50) -> RttStats:
        rng = SeededStreams(seed).stream(self.name)
        samples = sorted(self.sample(rng) for _ in range(n))
        return RttStats(
            median_us=samples[n // 2] * 1e6,
            p99_us=samples[int(n * 0.99)] * 1e6,
            mean_us=statistics.fmean(samples) * 1e6,
        )


# -- per-side cost samplers ---------------------------------------------------


def wire(rng: random.Random) -> float:
    return params.WIRE_SWITCH_ONEWAY_S


def linux_client_side(rng: random.Random) -> float:
    """One traversal of the client's Linux stack (timing harness
    thread: syscall + skb + wakeup)."""
    return params.LINUX_CLIENT_ONEWAY_S + rng.expovariate(
        1.0 / params.LINUX_STACK_JITTER_S)


def linux_server_side(rng: random.Random) -> float:
    """One traversal of the hot server loop's Linux stack — cheaper at
    the median but exposed to scheduler contention (the paper's tail
    explanation for the Linux rows of Table I)."""
    cost = params.LINUX_SERVER_ONEWAY_S + rng.expovariate(
        1.0 / params.LINUX_STACK_JITTER_S)
    if rng.random() < params.LINUX_SERVER_TAIL_PROB:
        cost += rng.expovariate(1.0 / params.LINUX_SERVER_TAIL_S)
    return cost


def dpdk_side(rng: random.Random) -> float:
    """One traversal of a busy-polling DPDK/F-Stack path."""
    return params.DPDK_STACK_ONEWAY_S + rng.expovariate(
        1.0 / params.DPDK_STACK_JITTER_S)


def beehive_server(rng: random.Random) -> float:
    """The full hardware datapath: MAC + 92-cycle stack + MAC."""
    return params.BEEHIVE_SERVER_S


def pcie_trampoline(rng: random.Random) -> float:
    """One direction of the Enso PCIe bounce (doorbell/DMA/notify)."""
    return params.PCIE_TRAMPOLINE_ONEWAY_S


def table1_configs() -> dict[str, RttModel]:
    """The four measured configurations of Table I."""
    return {
        "linux_client/beehive": RttModel(
            "linux_client/beehive",
            [linux_client_side, wire, beehive_server, wire,
             linux_client_side],
        ),
        "linux_client/linux_accel": RttModel(
            "linux_client/linux_accel",
            [linux_client_side, wire, linux_server_side,
             pcie_trampoline, pcie_trampoline, linux_server_side,
             wire, linux_client_side],
        ),
        "dpdk_client/beehive": RttModel(
            "dpdk_client/beehive",
            [dpdk_side, wire, beehive_server, wire, dpdk_side],
        ),
        "dpdk_client/dpdk_accel": RttModel(
            "dpdk_client/dpdk_accel",
            [dpdk_side, wire, dpdk_side, pcie_trampoline,
             pcie_trampoline, dpdk_side, wire, dpdk_side],
        ),
    }


# -- throughput curves ----------------------------------------------------------


def demikernel_udp_goodput_gbps(payload_bytes: int) -> float:
    """Single-core Demikernel UDP echo goodput (Fig 7's CPU curve).

    Per-packet fixed cost anchored at the paper's 584 KReq/s for 64 B,
    plus a per-byte copy/checksum cost; far below line rate even with
    jumbo frames, as Fig 7 shows.
    """
    if payload_bytes < 1:
        raise ValueError("payload must be positive")
    fixed_s = 1.0 / (params.DEMIKERNEL_UDP_SMALL_KREQS * 1e3)
    per_byte_s = params.DEMIKERNEL_PER_BYTE_NS * 1e-9
    period = fixed_s + max(0, payload_bytes - 64) * per_byte_s
    return payload_bytes * 8 / period / 1e9


def demikernel_udp_kreqs(payload_bytes: int) -> float:
    gbps = demikernel_udp_goodput_gbps(payload_bytes)
    return gbps * 1e9 / 8 / payload_bytes / 1e3


def linux_tcp_goodput_gbps(payload_bytes: int) -> float:
    """Linux single-connection TCP send goodput (Fig 9's CPU curve).

    Anchored at 843 KReq/s for the smallest payload and at the jumbo-
    frame streaming peak (batching makes CPU TCP stream better than
    CPU UDP, as the paper notes).
    """
    if payload_bytes < 1:
        raise ValueError("payload must be positive")
    fixed_s = 1.0 / (params.LINUX_TCP_SMALL_KREQS * 1e3) - \
        64 * 8 / (params.LINUX_TCP_PEAK_GBPS * 1e9)
    per_byte_s = 8 / (params.LINUX_TCP_PEAK_GBPS * 1e9)
    period = fixed_s + payload_bytes * per_byte_s
    return payload_bytes * 8 / period / 1e9


def linux_tcp_kreqs(payload_bytes: int) -> float:
    gbps = linux_tcp_goodput_gbps(payload_bytes)
    return gbps * 1e9 / 8 / payload_bytes / 1e3
