"""FPGA resource and timing models (Table V, section VII-I)."""

from repro.resources.model import (
    DesignUtilization,
    ModuleCost,
    design_utilization,
    max_frequency_mhz,
    max_placeable_tiles,
    tile_cost,
)

__all__ = [
    "DesignUtilization",
    "ModuleCost",
    "design_utilization",
    "max_frequency_mhz",
    "max_placeable_tiles",
    "tile_cost",
]
