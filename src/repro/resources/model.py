"""LUT/BRAM cost model and the placement/timing model.

Tile costs compose the way Table V decomposes them: a tile = its
router + NoC message parsing + processing logic (+ a small glue
allowance).  Leaf costs that appear in Table V use the paper's numbers
(router 5946 LUTs, UDP RX processing 2912, NoC message parsing
897/658, ...); the rest are estimates consistent with the stack totals
the paper reports.  The timing model reproduces section VII-I: 512-bit
router fan-out plus SLR (chiplet) crossings cap the design at 28 tiles
before the router-to-router critical path fails 250 MHz.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import params

GLUE_LUTS = 300
"""Per-tile misc logic (resets, counters) — the gap between Table V's
tile totals and the sum of their listed submodules."""


@dataclass(frozen=True)
class ModuleCost:
    name: str
    luts: int
    brams: float

    @property
    def lut_pct(self) -> float:
        return 100.0 * self.luts / params.U200_TOTAL_LUTS

    @property
    def bram_pct(self) -> float:
        return 100.0 * self.brams / params.U200_TOTAL_BRAMS


# Which NoC-message-parsing flavour each tile kind uses, and whether
# the kind has a dedicated (larger) router entry.
_PARSE_FLAVOUR = {
    "eth_rx": "noc_msg_parse_rx", "ip_rx": "noc_msg_parse_rx",
    "udp_rx": "noc_msg_parse_rx", "tcp_rx": "noc_msg_parse_rx",
    "nat": "noc_msg_parse_rx", "ipinip": "noc_msg_parse_rx",
    "log_tile": "noc_msg_parse_rx", "load_balancer": "noc_msg_parse_rx",
    "eth_tx": "noc_msg_parse_tx", "ip_tx": "noc_msg_parse_tx",
    "udp_tx": "noc_msg_parse_tx", "tcp_tx": "noc_msg_parse_tx",
    "echo_app": "noc_msg_parse_rx", "rs_encoder": "noc_msg_parse_rx",
    "vr_witness": "noc_msg_parse_rx", "buffer_tile": "noc_msg_parse_rx",
    "controller": "noc_msg_parse_rx", "empty": None,
}

_PROC_KEY = {
    "eth_rx": "eth_rx_proc", "eth_tx": "eth_tx_proc",
    "ip_rx": "ip_rx_proc", "ip_tx": "ip_tx_proc",
    "udp_rx": "udp_rx_proc", "udp_tx": "udp_tx_proc",
    "tcp_rx": "tcp_rx_proc", "tcp_tx": "tcp_tx_proc",
    "echo_app": "echo_app", "rs_encoder": "rs_encoder",
    "vr_witness": "vr_witness", "nat": "nat", "ipinip": "ipinip",
    "load_balancer": "load_balancer", "log_tile": "log_tile",
    "buffer_tile": "buffer_tile", "controller": "controller",
    "empty": "empty",
}

_ROUTER_KEY = {
    # The TCP engines carry the wider, higher-radix routers Table V
    # lists separately.
    "tcp_rx": "tcp_rx_router",
    "tcp_tx": "tcp_tx_router",
}


def tile_cost(kind: str) -> ModuleCost:
    """LUT/BRAM cost of a whole tile of ``kind``."""
    if kind not in _PROC_KEY:
        raise KeyError(f"unknown tile kind {kind!r} "
                       f"(known: {sorted(_PROC_KEY)})")
    router_key = _ROUTER_KEY.get(kind, "router")
    luts = params.LUT_COSTS[router_key]
    brams = params.BRAM_COSTS[router_key]
    parse = _PARSE_FLAVOUR[kind]
    if parse is not None:
        luts += params.LUT_COSTS[parse]
        brams += params.BRAM_COSTS[parse]
    luts += params.LUT_COSTS[_PROC_KEY[kind]]
    brams += params.BRAM_COSTS[_PROC_KEY[kind]]
    if kind != "empty":
        luts += GLUE_LUTS
    return ModuleCost(name=kind, luts=luts, brams=brams)


@dataclass(frozen=True)
class DesignUtilization:
    name: str
    tiles: list
    luts: int
    brams: float

    @property
    def lut_pct(self) -> float:
        return 100.0 * self.luts / params.U200_TOTAL_LUTS

    @property
    def bram_pct(self) -> float:
        return 100.0 * self.brams / params.U200_TOTAL_BRAMS


def design_utilization(design, name: str | None = None,
                       include_empty: bool = True) -> DesignUtilization:
    """Aggregate cost of a built design (its tiles' KINDs plus the
    auto-generated empty-tile routers filling the mesh rectangle)."""
    kinds = [tile.KIND for tile in design.tiles]
    if include_empty:
        occupied = {tile.coord for tile in design.tiles}
        mesh = design.mesh
        empties = mesh.width * mesh.height - len(occupied)
        kinds.extend(["empty"] * empties)
    luts = sum(tile_cost(kind).luts for kind in kinds)
    brams = sum(tile_cost(kind).brams for kind in kinds)
    return DesignUtilization(
        name=name or type(design).__name__,
        tiles=kinds, luts=luts, brams=brams,
    )


# -- timing / placement (section VII-I) ------------------------------------------


def max_frequency_mhz(n_tiles: int) -> float:
    """Achievable clock for an n-tile design.

    The critical path is router-to-router: a base path through the
    512-bit crossbar plus congestion/fan-out pressure that grows with
    tile count (and with the SLR crossings a taller mesh needs).
    Calibrated so 28 tiles is the last configuration that makes the
    paper's 250 MHz.
    """
    if n_tiles < 1:
        raise ValueError("need at least one tile")
    path_ns = params.TIMING_BASE_NS + params.TIMING_PER_TILE_NS * n_tiles
    return 1e3 / path_ns


def max_placeable_tiles(target_mhz: float = 250.0) -> int:
    """Largest tile count meeting ``target_mhz`` under the model."""
    n = 1
    while max_frequency_mhz(n + 1) >= target_mhz:
        n += 1
    return n
