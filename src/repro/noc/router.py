"""A wormhole, dimension-order-routed NoC router.

Each router has five ports (N/S/E/W/local), a shallow FIFO per input
port, and per-output wormhole allocation: once a header flit wins an
output port, the port stays locked to that input until the tail flit
passes.  Backpressure is credit-like — a flit moves only if the
downstream input FIFO has space — so a blocked message holds its chain
of links, which is exactly the behaviour the deadlock analysis reasons
about (Fig. 5).

Transfers are staged through :class:`repro.sim.kernel.StagedFifo`, so a
flit moved this cycle is visible downstream next cycle: one cycle per
hop, one flit per link per cycle.  Credit return is symmetric: a pop
from a router input FIFO becomes visible to the upstream router only at
the next cycle boundary (``StagedFifo._visible``), so *every*
inter-router link — flits forward, credits backward — carries exactly
one cycle of lookahead.  That is what lets :mod:`repro.sim.shard` cut
the mesh between any two routers and synchronise shards once per cycle.
"""

from __future__ import annotations

from repro.noc.flit import Flit
from repro.noc.routing import Port, xy_route
from repro.params import ROUTER_INPUT_FIFO_FLITS
from repro.sim.kernel import StagedFifo
from repro.telemetry.trace import NULL_TRACER

_DIRECTIONS = [Port.EAST, Port.WEST, Port.NORTH, Port.SOUTH]
_ALL_PORTS = [Port.LOCAL] + _DIRECTIONS
_N_PORTS = len(_ALL_PORTS)
# The step loop works in integer port indices: enum dict lookups (each
# a Python-level __hash__ call) dominated router cost in profiles.
_PORT_INDEX = {port: index for index, port in enumerate(_ALL_PORTS)}
_PORT_VALUES = [port.value for port in _ALL_PORTS]


#: Deflection preference per output-port index: only X-phase routes
#: (east/west) deflect, and only sideways into a Y port.  Anything
#: else re-converges on the faulted router and wedges the wormhole
#: mesh: a 180-degree reversal is an immediate head-on deadlock (two
#: packets each holding the link the other needs), and deflecting a
#: Y-phase route into X lets the neighbour's XY re-route bounce the
#: packet straight back for the same head-on pair.  A sideways X
#: deflection instead drops the packet into the adjacent row, where XY
#: routing resumes in the same direction and never returns — one
#: forbidden turn at one corner, which cannot close a channel-
#: dependency cycle on its own (two simultaneously misrouting routers
#: could; a plan that wants that is asking for the deadlock).
_DEFLECTIONS = {1: (4, 3), 2: (3, 4)}


def misroute_index(orig_index: int, connected_mask: int) -> int:
    """The misroute-one-hop fault's deflection function.

    Maps a requested output-port *index* to a connected perpendicular
    port for X-phase (east/west) decisions, so a misrouting router
    deterministically deflects traffic one legal wrong turn sideways;
    the next hop re-routes.  Ejection (LOCAL, index 0) and Y-phase
    (north/south) decisions are never deflected, and a router with no
    connected Y port keeps the clean route (see ``_DEFLECTIONS`` for
    why).  Shared by the object and flat mesh backends so both compute
    bit-identical wrong turns.
    """
    for cand in _DEFLECTIONS.get(orig_index, ()):
        if (connected_mask >> cand) & 1:
            return cand
    return orig_index


class Router:
    """One mesh router.  Wired up by :class:`repro.noc.mesh.Mesh`."""

    # Tracing sink (shared no-op unless attach_tracer replaces it).
    tracer = NULL_TRACER

    # Router-internal fault state (class-level defaults keep the
    # no-fault hot path free of per-instance dict lookups).
    #: Bitmask of output-port indices whose grants are stuck (the
    #: output behaves as if it never has downstream credits).
    fault_blocked_outputs = 0
    #: The pre-misroute routing function, saved while a misroute
    #: window is active.
    _clean_route_fn = None

    def __init__(self, coord: tuple[int, int],
                 fifo_depth: int = ROUTER_INPUT_FIFO_FLITS,
                 name: str | None = None,
                 route_fn=xy_route):
        self.coord = coord
        self.name = name or f"router{coord}"
        self.route_fn = route_fn
        self.inputs: dict[Port, StagedFifo] = {
            port: StagedFifo(fifo_depth, name=f"{self.name}.in.{port.value}")
            for port in _ALL_PORTS
        }
        # Downstream FIFO per output port: a neighbour router's input
        # FIFO for mesh ports, the attached tile's ejection FIFO for
        # LOCAL.  Filled in by the mesh / attachment.
        self.outputs: dict[Port, StagedFifo | None] = {
            port: None for port in _ALL_PORTS
        }
        # Hot-path mirrors of inputs/outputs, indexed by port number.
        self._in_fifos: list[StagedFifo] = [
            self.inputs[port] for port in _ALL_PORTS
        ]
        self._out_fifos: list[StagedFifo | None] = [None] * _N_PORTS
        # Wormhole state: input index currently owning each output port
        # (-1 = free), and the round-robin arbitration pointer.
        self._grant: list[int] = [-1] * _N_PORTS
        self._rr: list[int] = [0] * _N_PORTS
        # Statistics.
        self.flits_forwarded = 0
        self._flits_per_output: list[int] = [0] * _N_PORTS

    @property
    def flits_per_output(self) -> dict[Port, int]:
        """Per-output flit counts, keyed by :class:`Port`."""
        return {port: self._flits_per_output[index]
                for index, port in enumerate(_ALL_PORTS)}

    # -- wiring -----------------------------------------------------------

    def connect_output(self, port: Port, downstream: StagedFifo) -> None:
        self.outputs[port] = downstream
        self._out_fifos[_PORT_INDEX[port]] = downstream

    # -- router-internal faults (see repro.faults) ------------------------

    def _connected_mask(self) -> int:
        mask = 0
        for index in range(_N_PORTS):
            if self._out_fifos[index] is not None:
                mask |= 1 << index
        return mask

    def fault_misroute(self, enabled: bool) -> None:
        """Enter/leave a misroute-one-hop window: every routing
        decision deflects to the next connected directional port."""
        if enabled:
            if self._clean_route_fn is not None:
                return  # already misrouting
            clean = self.route_fn
            self._clean_route_fn = clean
            mask = self._connected_mask()

            def deflected(coord, dst, _clean=clean, _mask=mask):
                index = _PORT_INDEX[_clean(coord, dst)]
                return _ALL_PORTS[misroute_index(index, _mask)]

            self.route_fn = deflected
        elif self._clean_route_fn is not None:
            self.route_fn = self._clean_route_fn
            self._clean_route_fn = None

    def fault_block_output(self, out_index: int, blocked: bool) -> None:
        """Stick (or release) the output port at ``out_index``: while
        stuck it reports no downstream room, so the owning wormhole —
        and everything arbitrating for the port — stalls in place."""
        if blocked:
            self.fault_blocked_outputs |= 1 << out_index
        else:
            self.fault_blocked_outputs &= ~(1 << out_index)
            if not self.fault_blocked_outputs:
                # Back to the class-level default (hot-path friendly).
                try:
                    del self.fault_blocked_outputs
                except AttributeError:
                    pass

    # -- quiescence contract (see repro.sim.kernel) -----------------------

    def wake_sources(self):
        """Pushes into any input FIFO re-activate the router."""
        return self.inputs.values()

    def is_idle(self) -> bool:
        """A router with empty input FIFOs has nothing to move or
        commit; wormhole grants and arbitration pointers are static
        until the next flit arrives, so it can sleep until a wake."""
        for fifo in self._in_fifos:
            if fifo._items or fifo._staged:
                return False
        return True

    # -- per-cycle behaviour ------------------------------------------------

    def _route(self, flit: Flit) -> Port:
        return self.route_fn(self.coord, flit.dst)

    def step(self, cycle: int) -> None:
        """One cycle of wormhole switching.

        Per output (fixed port order): a granted output advances its
        owner's next flit; a free output round-robin arbitrates among
        the inputs whose head flit routes to it.  At most one flit
        leaves each input per cycle (``moved`` bitmask), so an input's
        head is stable for the whole step and each head's requested
        output can be resolved once up front.
        """
        in_fifos = self._in_fifos
        route_fn = self.route_fn
        coord = self.coord
        # wants[i]: output index input i's head flit requests, else -1.
        wants = [-1] * _N_PORTS
        for index in range(_N_PORTS):
            items = in_fifos[index]._items
            if items:
                flit = items[0]
                if flit.is_head:
                    wants[index] = _PORT_INDEX[route_fn(coord, flit.dst)]
        grant = self._grant
        traced = self.tracer.enabled
        fault_blocked = self.fault_blocked_outputs
        moved = 0
        for out_index in range(_N_PORTS):
            downstream = self._out_fifos[out_index]
            if downstream is None:
                continue
            cap = downstream.capacity
            if out_index:
                # Directional link: credit release is lagged one cycle
                # (a pop becomes visible upstream at the next cycle
                # boundary, like a hardware credit return crossing the
                # link) — the sender sees last cycle's committed
                # occupancy plus its own staged pushes.
                room = (cap is None or
                        downstream._visible + len(downstream._staged) < cap)
            else:
                # Ejection to the attached tile stays same-cycle: port
                # and router live in the same clock domain (and always
                # in the same shard).
                room = (cap is None or
                        len(downstream._items) + len(downstream._staged)
                        < cap)
            if fault_blocked and (fault_blocked >> out_index) & 1:
                # Stuck-grant fault: the output advances nothing while
                # the window is open, exactly as if credits never
                # returned.
                room = False
            owner = grant[out_index]
            if owner >= 0:
                # Locked wormhole: move the owner's next body flit.
                if moved & (1 << owner):
                    continue
                items = in_fifos[owner]._items
                if not items:
                    continue
                if not room:
                    # Out of downstream credits: the whole chain of
                    # links behind this wormhole stalls.
                    if traced:
                        self.tracer.link_stall(cycle, coord,
                                               _PORT_VALUES[out_index],
                                               "wormhole_stall")
                    continue
                flit = in_fifos[owner].pop()
                downstream.push_unchecked(flit)
                moved |= 1 << owner
                self.flits_forwarded += 1
                self._flits_per_output[out_index] += 1
                if traced:
                    self.tracer.flit_forwarded(cycle, coord,
                                               _PORT_VALUES[out_index],
                                               flit)
                if flit.is_tail:
                    grant[out_index] = -1
                continue
            # Free output: round-robin among requesting head flits.
            start = self._rr[out_index]
            for k in range(_N_PORTS):
                in_index = start + k
                if in_index >= _N_PORTS:
                    in_index -= _N_PORTS
                if wants[in_index] != out_index or moved & (1 << in_index):
                    continue
                if not room:
                    # A head flit lost to downstream credit exhaustion;
                    # the output stays free this cycle.
                    if traced:
                        self.tracer.link_stall(cycle, coord,
                                               _PORT_VALUES[out_index],
                                               "credit_exhausted")
                    break
                flit = in_fifos[in_index].pop()
                downstream.push_unchecked(flit)
                moved |= 1 << in_index
                self.flits_forwarded += 1
                self._flits_per_output[out_index] += 1
                if traced:
                    self.tracer.flit_forwarded(cycle, coord,
                                               _PORT_VALUES[out_index],
                                               flit)
                if not flit.is_tail:
                    grant[out_index] = in_index
                self._rr[out_index] = (in_index + 1) % _N_PORTS
                break

    def commit(self) -> None:
        for fifo in self._in_fifos:
            if fifo._staged:
                fifo.commit()
            elif fifo._visible != len(fifo._items):
                # Pop-only cycle: publish the credit release at the
                # cycle boundary so the upstream router sees it next
                # cycle (the lagged credit-return contract).
                fifo._visible = len(fifo._items)
