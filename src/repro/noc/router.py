"""A wormhole, dimension-order-routed NoC router.

Each router has five ports (N/S/E/W/local), a shallow FIFO per input
port, and per-output wormhole allocation: once a header flit wins an
output port, the port stays locked to that input until the tail flit
passes.  Backpressure is credit-like — a flit moves only if the
downstream input FIFO has space — so a blocked message holds its chain
of links, which is exactly the behaviour the deadlock analysis reasons
about (Fig. 5).

Transfers are staged through :class:`repro.sim.kernel.StagedFifo`, so a
flit moved this cycle is visible downstream next cycle: one cycle per
hop, one flit per link per cycle.
"""

from __future__ import annotations

from repro.noc.flit import Flit
from repro.noc.routing import Port, xy_route
from repro.params import ROUTER_INPUT_FIFO_FLITS
from repro.sim.kernel import StagedFifo
from repro.telemetry.trace import NULL_TRACER

_DIRECTIONS = [Port.EAST, Port.WEST, Port.NORTH, Port.SOUTH]
_ALL_PORTS = [Port.LOCAL] + _DIRECTIONS


class Router:
    """One mesh router.  Wired up by :class:`repro.noc.mesh.Mesh`."""

    # Tracing sink (shared no-op unless attach_tracer replaces it).
    tracer = NULL_TRACER

    def __init__(self, coord: tuple[int, int],
                 fifo_depth: int = ROUTER_INPUT_FIFO_FLITS,
                 name: str | None = None,
                 route_fn=xy_route):
        self.coord = coord
        self.name = name or f"router{coord}"
        self.route_fn = route_fn
        self.inputs: dict[Port, StagedFifo] = {
            port: StagedFifo(fifo_depth, name=f"{self.name}.in.{port.value}")
            for port in _ALL_PORTS
        }
        # Downstream FIFO per output port: a neighbour router's input
        # FIFO for mesh ports, the attached tile's ejection FIFO for
        # LOCAL.  Filled in by the mesh / attachment.
        self.outputs: dict[Port, StagedFifo | None] = {
            port: None for port in _ALL_PORTS
        }
        # Wormhole state: which input currently owns each output port.
        self._grant: dict[Port, Port | None] = {
            port: None for port in _ALL_PORTS
        }
        # Round-robin arbitration pointer per output port.
        self._rr: dict[Port, int] = {port: 0 for port in _ALL_PORTS}
        # Statistics.
        self.flits_forwarded = 0
        self.flits_per_output: dict[Port, int] = {
            port: 0 for port in _ALL_PORTS
        }

    # -- wiring -----------------------------------------------------------

    def connect_output(self, port: Port, downstream: StagedFifo) -> None:
        self.outputs[port] = downstream

    # -- per-cycle behaviour ------------------------------------------------

    def _route(self, flit: Flit) -> Port:
        return self.route_fn(self.coord, flit.dst)

    def step(self, cycle: int) -> None:
        moved_inputs: set[Port] = set()
        for out_port in _ALL_PORTS:
            downstream = self.outputs[out_port]
            if downstream is None:
                continue
            owner = self._grant[out_port]
            if owner is not None:
                self._advance_locked(cycle, out_port, owner, downstream,
                                     moved_inputs)
            else:
                self._arbitrate(cycle, out_port, downstream, moved_inputs)

    def _advance_locked(self, cycle: int, out_port: Port, owner: Port,
                        downstream: StagedFifo,
                        moved_inputs: set[Port]) -> None:
        """Move the next body flit of the message holding ``out_port``."""
        if owner in moved_inputs:
            return
        fifo = self.inputs[owner]
        flit = fifo.peek()
        if flit is None:
            return
        if not downstream.can_accept():
            # A locked wormhole that cannot advance: the downstream FIFO
            # is out of credits, so the whole chain behind it stalls.
            if self.tracer.enabled:
                self.tracer.link_stall(cycle, self.coord, out_port.value,
                                       "wormhole_stall")
            return
        fifo.pop()
        downstream.push(flit)
        moved_inputs.add(owner)
        self.flits_forwarded += 1
        self.flits_per_output[out_port] += 1
        if self.tracer.enabled:
            self.tracer.flit_forwarded(cycle, self.coord, out_port.value,
                                       flit)
        if flit.is_tail:
            self._grant[out_port] = None

    def _arbitrate(self, cycle: int, out_port: Port,
                   downstream: StagedFifo,
                   moved_inputs: set[Port]) -> None:
        """Round-robin among inputs whose head flit wants ``out_port``."""
        n = len(_ALL_PORTS)
        start = self._rr[out_port]
        for k in range(n):
            in_port = _ALL_PORTS[(start + k) % n]
            if in_port in moved_inputs:
                continue
            flit = self.inputs[in_port].peek()
            if flit is None or not flit.is_head:
                continue
            if self._route(flit) != out_port:
                continue
            if not downstream.can_accept():
                # A head flit lost to downstream credit exhaustion.
                if self.tracer.enabled:
                    self.tracer.link_stall(cycle, self.coord,
                                           out_port.value,
                                           "credit_exhausted")
                return  # head is blocked; output stays free this cycle
            self.inputs[in_port].pop()
            downstream.push(flit)
            moved_inputs.add(in_port)
            self.flits_forwarded += 1
            self.flits_per_output[out_port] += 1
            if self.tracer.enabled:
                self.tracer.flit_forwarded(cycle, self.coord,
                                           out_port.value, flit)
            if not flit.is_tail:
                self._grant[out_port] = in_port
            self._rr[out_port] = (_ALL_PORTS.index(in_port) + 1) % n
            return

    def commit(self) -> None:
        for fifo in self.inputs.values():
            fifo.commit()
