"""Dimension-ordered (XY) routing.

Beehive prevents routing-level deadlock with dimension-ordered routing
(section IV-E): a flit first travels along X to the destination column,
then along Y, so the channel dependency graph of the *routing function*
is acyclic.  (Message-level deadlock across chained tiles is the job of
:mod:`repro.deadlock`.)
"""

from __future__ import annotations

import enum


class Port(enum.Enum):
    LOCAL = "local"
    EAST = "east"
    WEST = "west"
    NORTH = "north"
    SOUTH = "south"

    @property
    def opposite(self) -> Port:
        return _OPPOSITE[self]


_OPPOSITE = {
    Port.EAST: Port.WEST,
    Port.WEST: Port.EAST,
    Port.NORTH: Port.SOUTH,
    Port.SOUTH: Port.NORTH,
    Port.LOCAL: Port.LOCAL,
}

# Coordinate convention: x grows EAST, y grows SOUTH (row-major screen
# order, matching the paper's layout figures).


def xy_route(here: tuple[int, int], dst: tuple[int, int]) -> Port:
    """The output port a flit at ``here`` takes toward ``dst``."""
    hx, hy = here
    dx, dy = dst
    if hx < dx:
        return Port.EAST
    if hx > dx:
        return Port.WEST
    if hy < dy:
        return Port.SOUTH
    if hy > dy:
        return Port.NORTH
    return Port.LOCAL


def yx_route(here: tuple[int, int], dst: tuple[int, int]) -> Port:
    """Y-before-X dimension-ordered routing.

    Equally deadlock-free at the routing level; the paper's framework
    does not mandate a particular routing function, only that it be
    deterministic and deadlock-free.  A different dimension order
    changes which *tile placements* are message-level safe, which the
    deadlock analyzer accounts for when given this route function.
    """
    hx, hy = here
    dx, dy = dst
    if hy < dy:
        return Port.SOUTH
    if hy > dy:
        return Port.NORTH
    if hx < dx:
        return Port.EAST
    if hx > dx:
        return Port.WEST
    return Port.LOCAL


def _step(here: tuple[int, int], port: Port) -> tuple[int, int]:
    hx, hy = here
    if port == Port.EAST:
        return (hx + 1, hy)
    if port == Port.WEST:
        return (hx - 1, hy)
    if port == Port.SOUTH:
        return (hx, hy + 1)
    if port == Port.NORTH:
        return (hx, hy - 1)
    return here


def route_path(src: tuple[int, int], dst: tuple[int, int],
               route_fn=xy_route) -> list:
    """The full (router-coordinate, output-port) sequence from src to
    dst under ``route_fn``, ending with ``(dst, Port.LOCAL)``.  Used by
    the static deadlock analyzer to enumerate the links a wormhole
    message can hold."""
    path = []
    here = src
    while True:
        port = route_fn(here, dst)
        path.append((here, port))
        if port == Port.LOCAL:
            return path
        here = _step(here, port)


def xy_route_path(src: tuple[int, int],
                  dst: tuple[int, int]) -> list:
    return route_path(src, dst, xy_route)


def yx_route_path(src: tuple[int, int],
                  dst: tuple[int, int]) -> list:
    return route_path(src, dst, yx_route)
