"""Array-of-struct ("flat") mesh backend — the compiled fast path.

:class:`repro.noc.mesh.Mesh` builds one Python object per router and
five :class:`~repro.sim.kernel.StagedFifo` objects per router; stepping
a saturated mesh is then a cascade of method calls and attribute loads.
:class:`FlatMesh` keeps the same construction API and the same
*observable* behaviour but compiles the mesh into flat parallel arrays:

- the four *directional* input FIFOs of every router become ring
  buffers in preallocated lists (``q``/``head``/``count``/``staged``),
  indexed ``fid = router_index * 5 + port_index``;
- routing decisions come from a lazily built per-router
  ``dst -> out_port`` table instead of a route-function call per head
  flit per cycle;
- wormhole grants and round-robin pointers are flat integer lists;
- the whole mesh steps in one batch loop per cycle inside a single
  :class:`FlatMeshCore` component instead of one ``Router.step()``
  call per router.

The *adapter boundary* sits exactly at injection/ejection: every
router's LOCAL input FIFO and every attached port's ejection FIFO stay
real ``StagedFifo`` objects, and tiles talk to an unmodified
:class:`~repro.noc.mesh.LocalPort`.  That keeps tiles, the tracer, the
linter's wake-contract checks, and ``design_counters`` working
unchanged.

Bit-identity: the core replicates ``Router.step`` exactly — same port
order, same wants-resolution, same wormhole grant/round-robin updates,
same credit checks, and the same trace events in the same order
(routers row-major, then ports in attachment order, matching the object
backend's registration order) — and the differential suite in
``tests/test_kernel_equivalence.py`` pins it against the object
backend on every shipped design.

Scheduling: the core is one schedulable component.  It reports
``kernel_weight`` (routers + ports) so the kernel's saturation bypass
weighs it correctly, and ``kernel_substeps()`` (the attached ports) so
the linter knows who really steps inside it.  ``is_idle`` is true only
when every ring, LOCAL input, injection queue, and staged ejection is
empty — the conjunction of the object backend's per-component
contracts.
"""

from __future__ import annotations

from repro.noc.mesh import LocalPort
from repro.noc.router import (
    _ALL_PORTS,
    _N_PORTS,
    _PORT_VALUES,
    misroute_index,
)
from repro.noc.routing import Port, xy_route, yx_route
from repro.params import ROUTER_INPUT_FIFO_FLITS
from repro.sim.kernel import CycleSimulator, StagedFifo, Wakeable
from repro.telemetry.trace import NULL_TRACER

# Port indices, identical to repro.noc.router's hot-path encoding.
_LOCAL = 0
_EAST = 1
_WEST = 2
_NORTH = 3
_SOUTH = 4


class _RingView:
    """Read-only stand-in for a directional input FIFO.

    Exposes the slice of the ``StagedFifo`` surface the linter and
    telemetry read (``capacity``, ``name``, occupancy); pushes go
    through the core's arrays, never through this view.
    """

    __slots__ = ("_core", "_fid", "capacity", "name")

    def __init__(self, core: FlatMeshCore, fid: int, name: str):
        self._core = core
        self._fid = fid
        self.capacity = core.depth
        self.name = name

    def __len__(self) -> int:
        return self._core._counts[self._fid]

    @property
    def occupancy(self) -> int:
        core = self._core
        return core._counts[self._fid] + core._stageds[self._fid]

    @property
    def high_water(self) -> int:
        return self._core._hw[self._fid]

    def peek(self):
        core = self._core
        if not core._counts[self._fid]:
            return None
        return core._queues[self._fid][core._heads[self._fid]]

    def __repr__(self) -> str:
        return f"_RingView({self.name!r}, occ={self.occupancy})"


class FlatRouterView:
    """Per-router facade over :class:`FlatMeshCore`'s arrays.

    Quacks like :class:`repro.noc.router.Router` for everything outside
    the hot loop: ``coord``/``name``, the ``inputs`` dict (LOCAL is the
    real adapter FIFO, directions are :class:`_RingView`\\ s),
    ``connect_output`` for the LOCAL ejection hookup, the forwarding
    counters, and a ``tracer`` property that forwards to the core so
    ``attach_tracer`` works untouched.
    """

    __slots__ = ("_core", "_index", "coord", "name", "inputs")

    def __init__(self, core: FlatMeshCore, index: int,
                 coord: tuple[int, int]):
        self._core = core
        self._index = index
        self.coord = coord
        self.name = f"router{coord}"
        base = index * _N_PORTS
        self.inputs: dict[Port, object] = {Port.LOCAL: core._local_in[index]}
        for port_index, port in enumerate(_ALL_PORTS):
            if port is Port.LOCAL:
                continue
            self.inputs[port] = _RingView(
                core, base + port_index,
                f"{self.name}.in.{port.value}")

    @property
    def route_fn(self):
        return self._core.route_fn

    def fault_misroute(self, enabled: bool) -> None:
        """Enter/leave a misroute-one-hop window (see
        :meth:`repro.noc.router.Router.fault_misroute`)."""
        self._core.set_misroute(self._index, enabled)

    def fault_block_output(self, out_index: int, blocked: bool) -> None:
        """Stick/release this router's output ``out_index`` (see
        :meth:`repro.noc.router.Router.fault_block_output`)."""
        self._core.set_fault_block(self._index, out_index, blocked)

    def connect_output(self, port: Port, downstream: StagedFifo) -> None:
        if port is not Port.LOCAL:
            raise ValueError(
                "flat routers wire directional links internally; only "
                "the LOCAL ejection FIFO is connectable")
        self._core.set_eject(self._index, downstream)

    @property
    def flits_forwarded(self) -> int:
        return self._core._fwd[self._index]

    @property
    def flits_per_output(self) -> dict[Port, int]:
        base = self._index * _N_PORTS
        fwd_out = self._core._fwd_out
        return {port: fwd_out[base + port_index]
                for port_index, port in enumerate(_ALL_PORTS)}

    @property
    def tracer(self):
        return self._core.tracer

    @tracer.setter
    def tracer(self, value) -> None:
        self._core.tracer = value

    def __repr__(self) -> str:
        return f"FlatRouterView({self.coord})"


class _FlatEgress:
    """Sender-side stub for a cut output of a band core.

    Mirrors the downstream ring the output *would* have: ``staged``
    accumulates this cycle's pushes and ``visible`` tracks the credit
    count — last exchange's committed occupancy of the peer shard's
    ingress ring.  The shard boundary exchange drains ``staged`` and
    applies the peer's pops each cycle (see repro.noc.shardmesh), so
    the sender's room check ``visible + len(staged) < depth`` is
    bit-identical to the unsharded lagged-credit check.
    """

    __slots__ = ("staged", "visible")

    def __init__(self):
        self.staged: list = []
        self.visible = 0


class FlatMeshCore(Wakeable):
    """The entire mesh as one clocked component.

    ``step`` runs the exact ``Router.step`` algorithm for every router
    in row-major order over flat arrays, then steps the attached local
    ports in attachment order; ``commit`` publishes the cycle's ring
    writes through a dirty list plus the adapter FIFOs.  See the module
    docstring for the equivalence argument.
    """

    name = "flatmesh.core"
    tracer = NULL_TRACER

    def __init__(self, width: int, height: int, depth: int, route_fn,
                 x_offset: int = 0, full_width: int | None = None):
        self.width = width
        self.height = height
        self.depth = depth
        self.route_fn = route_fn
        # Band geometry (repro.sim.shard): ``width`` columns of a
        # ``full_width``-wide design, starting at global column
        # ``x_offset``.  Coordinates are global; an unsharded core has
        # x_offset == 0 and full_width == width, and behaves exactly
        # as before.
        self.x_offset = x_offset
        self.full_width = width if full_width is None else full_width
        n = width * height
        self.n_routers = n
        n5 = n * _N_PORTS
        self.coords: list[tuple[int, int]] = [
            (x, y) for y in range(height)
            for x in range(x_offset, x_offset + width)
        ]
        # Adapter boundary: LOCAL inputs are real StagedFifos so
        # LocalPort (and the linter's wake checks) see ordinary queues.
        self._local_in: list[StagedFifo] = [
            StagedFifo(depth, name=f"router{coord}.in.local")
            for coord in self.coords
        ]
        # Directional input rings, fid = r * 5 + port_index.  LOCAL
        # slots exist but stay unused, keeping the indexing branchless.
        self._queues: list[list] = [[None] * depth for _ in range(n5)]
        self._heads: list[int] = [0] * n5
        self._counts: list[int] = [0] * n5      # committed items
        self._stageds: list[int] = [0] * n5     # staged (this cycle)
        self._dirty: list[int] = []             # fids staged this cycle
        # Committed occupancy as of the last cycle boundary — the
        # credit count the upstream router sees (StagedFifo._visible
        # flattened).  Refreshed at commit from the dirty and popped
        # lists, giving inter-router credit return its one cycle of
        # lag (see repro.noc.router's module docstring).
        self._vis: list[int] = [0] * n5
        self._popped: list[int] = []            # fids popped this cycle
        # Wormhole allocation state, mirroring Router._grant/_rr.
        self._grant: list[int] = [-1] * n5
        self._rr: list[int] = [0] * n5
        # Per-router bitmask of granted outputs (bit o set iff
        # grant[r*5+o] >= 0), so the arbitration loop visits only
        # outputs that are locked or freshly requested.
        self._gmask: list[int] = [0] * n
        # Output wiring: fid of the downstream ring per (router, out
        # port), -1 where the mesh edge leaves the output unconnected.
        # LOCAL outputs resolve through _ejects instead.
        self._down: list[int] = [-1] * n5
        for r in range(n):
            # Band-local column (coords are global, wiring is in-band).
            bx = r % width
            y = r // width
            base = r * _N_PORTS
            if bx + 1 < width:
                self._down[base + _EAST] = (r + 1) * _N_PORTS + _WEST
            if bx > 0:
                self._down[base + _WEST] = (r - 1) * _N_PORTS + _EAST
            if y > 0:
                self._down[base + _NORTH] = (r - width) * _N_PORTS + _SOUTH
            if y + 1 < height:
                self._down[base + _SOUTH] = (r + width) * _N_PORTS + _NORTH
        # Boundary egress stubs (repro.sim.shard): a cut east/west
        # output gets a _FlatEgress here instead of a downstream ring.
        # None for an unsharded core — the step loop then never looks
        # past the ``dfid < 0`` edge test, keeping the hot path intact.
        self._egress: list | None = None
        # Downstream router index per output fid (saves a division in
        # the per-flit push path).
        self._down_router: list[int] = [
            fid // _N_PORTS if fid >= 0 else -1 for fid in self._down
        ]
        # Cached output request of each input's current head flit:
        # the out-port index for a head flit, -1 for a body flit, -2
        # for "recompute" (head changed or unknown).  fid base+LOCAL
        # caches the local input FIFO's head (the ring slot is unused).
        # A head flit is immutable and stays at the head until popped,
        # so the cache is invalidated only at pops and at commits into
        # an empty queue.
        self._req: list[int] = [-2] * n5
        self._ejects: list[StagedFifo | None] = [None] * n
        # Lazily built per-router routing tables: rt[r][dst_index] is
        # the output port index for a head flit at router r bound for
        # dst_index = dst_y * width + dst_x.
        self._route_rows: list[list[int] | None] = [None] * n
        # Occupancy: per-router ring total (committed + staged) for the
        # per-router skip, and the mesh-wide total for is_idle.
        self._ring_occ: list[int] = [0] * n
        self._ring_total = 0
        # Busy bitmasks: bit r set iff router r may have work (ring
        # occupancy or committed local flits); bit i of ``_inj_mask``
        # set iff port i (attachment order) may have injection work.
        # Iterating set bits LSB-first preserves the row-major router
        # order and attachment port order the trace contract requires.
        self._busy_mask = 0
        self._inj_mask = 0
        # Attached ports, in attachment order (= object-backend
        # registration order), batch-stepped after the router phase.
        self._ports_list: list[LocalPort] = []
        # Injection-phase companion: (port, local fid, local FIFO,
        # router busy bit) so the hot loops never re-derive the wiring.
        self._inj: list[tuple[LocalPort, int, StagedFifo, int]] = []
        # Adapter FIFOs staged into this cycle; commit touches only
        # these instead of scanning every local/eject FIFO.  All
        # staging flows through the core (router pushes, inlined port
        # injection), which is what makes the dirty lists exhaustive.
        self._dirty_local: list[tuple[int, StagedFifo, int]] = []
        self._dirty_eject: list[StagedFifo] = []
        # Router-internal fault state: routers currently misrouting
        # (their _route_rows entry holds the *deflected* table), and a
        # router-index -> blocked-output bitmask dict (None when no
        # stuck-grant window is open, keeping the hot path one load).
        self._misrouted: set[int] = set()
        self._fault_blocked: dict[int, int] | None = None
        # Statistics (the object backend's Router counters, flattened).
        self._fwd: list[int] = [0] * n
        self._fwd_out: list[int] = [0] * n5
        # Ring high-water marks, mirroring StagedFifo.high_water: the
        # deepest committed depth per directional input, updated in the
        # commit dirty loop so only rings written this cycle pay.
        self._hw: list[int] = [0] * n5

    # -- wiring -----------------------------------------------------------

    def set_eject(self, index: int, downstream: StagedFifo) -> None:
        self._ejects[index] = downstream

    def add_port(self, port: LocalPort) -> None:
        self._ports_list.append(port)
        r = port.router._index
        index = len(self._inj)
        # The new port starts "possibly busy" so its first step is
        # never skipped; the injection loop prunes it if it idles.
        self._inj_mask |= 1 << index
        self._inj.append((port, r * _N_PORTS, port._local_in,
                          1 << r))
        # ``LocalPort.send`` wakes via ``_kernel_wake``; under the flat
        # backend that hook must both flag the port for the injection
        # loop and wake the core (when a scheduled kernel attached one).
        bit = 1 << index

        def hook(core=self, bit=bit):
            core._inj_mask |= bit
            waker = core._kernel_wake
            if waker is not None:
                waker()

        port._kernel_wake = hook

    def _route_row(self, r: int) -> list[int]:
        """Build (once) the dst -> out-port table for router ``r``.

        The table spans the *full* grid (``full_width`` columns), not
        just this band: a band core routes flits bound for other
        shards toward its cut edge, where the boundary egress takes
        over.
        """
        full_width = self.full_width
        route_fn = self.route_fn
        here = self.coords[r]
        row = [0] * (full_width * self.height)
        d = 0
        for y in range(self.height):
            for x in range(full_width):
                row[d] = _ALL_PORTS.index(route_fn(here, (x, y)))
                d += 1
        if r in self._misrouted:
            # Misroute-one-hop window: bake the deflection into the
            # table so the hot loop pays nothing extra.
            mask = self._fault_connected_mask(r)
            row = [misroute_index(p, mask) for p in row]
        self._route_rows[r] = row
        return row

    # -- router-internal faults (see repro.faults) ------------------------

    def _fault_connected_mask(self, r: int) -> int:
        """Connected-output bitmask for router ``r``, matching the
        object backend's ``Router._connected_mask``."""
        base = r * _N_PORTS
        mask = 1 if self._ejects[r] is not None else 0
        egress = self._egress
        for i in range(1, _N_PORTS):
            fid = base + i
            if self._down[fid] >= 0 or \
                    (egress is not None and egress[fid] is not None):
                mask |= 1 << i
        return mask

    def set_misroute(self, r: int, enabled: bool) -> None:
        if enabled:
            if r in self._misrouted:
                return
            self._misrouted.add(r)
        else:
            if r not in self._misrouted:
                return
            self._misrouted.discard(r)
        # Rebuild the routing table lazily and re-resolve any cached
        # head requests: decisions made before the toggle stand (the
        # flit already claimed its output), decisions not yet made use
        # the new table — the same boundary the object backend gets
        # from swapping route_fn between steps.
        self._route_rows[r] = None
        base = r * _N_PORTS
        for fid in range(base, base + _N_PORTS):
            self._req[fid] = -2
        self._busy_mask |= 1 << r

    def set_fault_block(self, r: int, out_index: int,
                        blocked: bool) -> None:
        masks = self._fault_blocked
        if blocked:
            if masks is None:
                masks = self._fault_blocked = {}
            masks[r] = masks.get(r, 0) | (1 << out_index)
        elif masks is not None:
            remaining = masks.get(r, 0) & ~(1 << out_index)
            if remaining:
                masks[r] = remaining
            else:
                masks.pop(r, None)
                if not masks:
                    self._fault_blocked = None
        self._busy_mask |= 1 << r

    # -- scheduling contract ----------------------------------------------

    @property
    def kernel_weight(self) -> int:
        """Scheduling weight: the component count this core replaces."""
        return self.n_routers + len(self._ports_list)

    def kernel_substeps(self):
        """Components batch-stepped inside this one (for the linter)."""
        return list(self._ports_list)

    def wake_sources(self):
        """Pushes into any adapter FIFO re-activate the whole mesh."""
        fifos: list[StagedFifo] = list(self._local_in)
        fifos.extend(port.eject_fifo for port in self._ports_list)
        return fifos

    def lint_consumed_fifos(self):
        """The FIFOs the router phase itself pops from."""
        return list(self._local_in)

    def is_idle(self) -> bool:
        """Idle iff every object-backend mesh component would be."""
        if self._ring_total:
            return False
        for fifo in self._local_in:
            if fifo._items or fifo._staged:
                return False
        for port in self._ports_list:
            if (port._pending_flits or port._send_queue
                    or port.eject_fifo._staged):
                return False
        return True

    # -- per-cycle behaviour ----------------------------------------------

    def step(self, cycle: int) -> None:
        # Local aliases: this loop is the simulator's hottest path.
        queues = self._queues
        heads = self._heads
        counts = self._counts
        stageds = self._stageds
        vis = self._vis
        popped = self._popped
        dirty = self._dirty
        dirty_eject = self._dirty_eject
        grant = self._grant
        gmask = self._gmask
        rr = self._rr
        down = self._down
        down_router = self._down_router
        ejects = self._ejects
        local_in = self._local_in
        ring_occ = self._ring_occ
        route_rows = self._route_rows
        req = self._req
        coords = self.coords
        fwd = self._fwd
        fwd_out = self._fwd_out
        depth = self.depth
        # Routing bounds/stride use the FULL grid — a band core's
        # tables cover every global destination (see _route_row).
        width = self.full_width
        height = self.height
        egress = self._egress
        tracer = self.tracer
        traced = tracer.enabled
        fblocked = self._fault_blocked
        misrouted = self._misrouted
        n_ports = _N_PORTS
        wants = [-1] * n_ports
        ring_total = self._ring_total

        # Busy routers only, LSB-first (= row-major, the trace order).
        busy = self._busy_mask
        m = busy
        while m:
            low = m & -m
            m ^= low
            r = low.bit_length() - 1
            local = local_in[r]
            local_items = local._items
            if not ring_occ[r] and not local_items:
                busy ^= low
                continue
            base = r * n_ports
            coord = coords[r]
            # wants[i]: output index input i's head flit requests, from
            # the per-head cache (-2 = head changed, resolve afresh).
            reqmask = 0
            for i in range(n_ports):
                fid = base + i
                if i:
                    if not counts[fid]:
                        wants[i] = -1
                        continue
                    want = req[fid]
                    if want != -2:
                        wants[i] = want
                        if want >= 0:
                            reqmask |= 1 << want
                        continue
                    flit = queues[fid][heads[fid]]
                elif local_items:
                    want = req[fid]
                    if want != -2:
                        wants[0] = want
                        if want >= 0:
                            reqmask |= 1 << want
                        continue
                    flit = local_items[0]
                else:
                    wants[0] = -1
                    continue
                if flit.is_head:
                    dx, dy = flit.dst
                    if 0 <= dx < width and 0 <= dy < height:
                        row = route_rows[r]
                        if row is None:
                            row = self._route_row(r)
                        want = row[dy * width + dx]
                    else:
                        want = _ALL_PORTS.index(
                            self.route_fn(coord, flit.dst))
                        if misrouted and r in misrouted:
                            want = misroute_index(
                                want, self._fault_connected_mask(r))
                    reqmask |= 1 << want
                else:
                    want = -1
                req[fid] = want
                wants[i] = want
            moved = 0
            rb = fblocked.get(r, 0) if fblocked is not None else 0
            # Visit only locked-or-requested outputs, ascending index
            # (LSB-first == the object backend's port iteration order).
            om = reqmask | gmask[r]
            while om:
                lowo = om & -om
                om ^= lowo
                out_index = lowo.bit_length() - 1
                ofid = base + out_index
                owner = grant[ofid]
                if out_index:
                    dfid = down[ofid]
                    if dfid < 0:
                        eg = None if egress is None else egress[ofid]
                        if eg is None:
                            continue
                        # Cut link (repro.sim.shard): credits live in
                        # the boundary egress — the same lagged
                        # contract, maintained by the shard exchange.
                        room = eg.visible + len(eg.staged) < depth
                    else:
                        # Lagged credit return: last cycle's committed
                        # occupancy plus this router's own staged
                        # pushes.
                        room = vis[dfid] + stageds[dfid] < depth
                else:
                    eject = ejects[r]
                    if eject is None:
                        continue
                    # eject.can_accept() inlined (hot at saturation).
                    cap = eject.capacity
                    room = (cap is None or
                            len(eject._items) + len(eject._staged) < cap)
                if rb and (rb >> out_index) & 1:
                    # Stuck-grant fault (see Router.fault_block_output).
                    room = False
                if owner >= 0:
                    # Locked wormhole: move the owner's next body flit.
                    if moved & (1 << owner):
                        continue
                    if owner:
                        sfid = base + owner
                        if not counts[sfid]:
                            continue
                    elif not local_items:
                        continue
                    if not room:
                        if traced:
                            tracer.link_stall(cycle, coord,
                                              _PORT_VALUES[out_index],
                                              "wormhole_stall")
                        continue
                    if owner:
                        head = heads[sfid]
                        flit = queues[sfid][head]
                        queues[sfid][head] = None
                        head += 1
                        heads[sfid] = 0 if head == depth else head
                        counts[sfid] -= 1
                        req[sfid] = -2
                        ring_occ[r] -= 1
                        ring_total -= 1
                        popped.append(sfid)
                    else:
                        flit = local_items.popleft()
                        req[base] = -2
                    if out_index:
                        if dfid < 0:
                            # Cut link: accumulate in the boundary
                            # egress; the shard exchange ships it.
                            eg.staged.append(flit)
                        else:
                            slot = (heads[dfid] + counts[dfid]
                                    + stageds[dfid])
                            if slot >= depth:
                                slot -= depth
                            queues[dfid][slot] = flit
                            if not stageds[dfid]:
                                dirty.append(dfid)
                            stageds[dfid] += 1
                            dr = down_router[ofid]
                            ring_occ[dr] += 1
                            busy |= 1 << dr
                            ring_total += 1
                    else:
                        # eject.push_unchecked(flit) inlined: stage the
                        # flit, then fire the consumer wake hooks.
                        staged = eject._staged
                        if not staged:
                            dirty_eject.append(eject)
                        staged.append(flit)
                        for waker in eject._wakers:
                            waker()
                    moved |= 1 << owner
                    fwd[r] += 1
                    fwd_out[ofid] += 1
                    if traced:
                        tracer.flit_forwarded(cycle, coord,
                                              _PORT_VALUES[out_index],
                                              flit)
                    if flit.is_tail:
                        grant[ofid] = -1
                        gmask[r] &= ~lowo
                    continue
                # Free output: round-robin among requesting heads.
                start = rr[ofid]
                for k in range(n_ports):
                    in_index = start + k
                    if in_index >= n_ports:
                        in_index -= n_ports
                    if wants[in_index] != out_index or \
                            moved & (1 << in_index):
                        continue
                    if not room:
                        if traced:
                            tracer.link_stall(cycle, coord,
                                              _PORT_VALUES[out_index],
                                              "credit_exhausted")
                        break
                    if in_index:
                        sfid = base + in_index
                        head = heads[sfid]
                        flit = queues[sfid][head]
                        queues[sfid][head] = None
                        head += 1
                        heads[sfid] = 0 if head == depth else head
                        counts[sfid] -= 1
                        req[sfid] = -2
                        ring_occ[r] -= 1
                        ring_total -= 1
                        popped.append(sfid)
                    else:
                        flit = local_items.popleft()
                        req[base] = -2
                    if out_index:
                        if dfid < 0:
                            # Cut link: accumulate in the boundary
                            # egress; the shard exchange ships it.
                            eg.staged.append(flit)
                        else:
                            slot = (heads[dfid] + counts[dfid]
                                    + stageds[dfid])
                            if slot >= depth:
                                slot -= depth
                            queues[dfid][slot] = flit
                            if not stageds[dfid]:
                                dirty.append(dfid)
                            stageds[dfid] += 1
                            dr = down_router[ofid]
                            ring_occ[dr] += 1
                            busy |= 1 << dr
                            ring_total += 1
                    else:
                        # eject.push_unchecked(flit) inlined: stage the
                        # flit, then fire the consumer wake hooks.
                        staged = eject._staged
                        if not staged:
                            dirty_eject.append(eject)
                        staged.append(flit)
                        for waker in eject._wakers:
                            waker()
                    moved |= 1 << in_index
                    fwd[r] += 1
                    fwd_out[ofid] += 1
                    if traced:
                        tracer.flit_forwarded(cycle, coord,
                                              _PORT_VALUES[out_index],
                                              flit)
                    if not flit.is_tail:
                        grant[ofid] = in_index
                        gmask[r] |= lowo
                    next_rr = in_index + 1
                    rr[ofid] = 0 if next_rr == n_ports else next_rr
                    break
        self._ring_total = ring_total
        self._busy_mask = busy
        # Injection phase: busy ports only, LSB-first (= attachment
        # order, exactly where the object backend's registration order
        # puts them).  The body is ``LocalPort.step`` inlined (same
        # observable effects: counters, trace events, one flit per
        # cycle into the local input) minus the local FIFO's waker fire
        # — its only waker re-activates this core, which a staged local
        # push keeps active via ``is_idle``.  ``send`` sets the port's
        # mask bit through its wake hook; the loop prunes idle ports.
        m = self._inj_mask
        if m:
            inj = self._inj
            dirty_local = self._dirty_local
            while m:
                low = m & -m
                m ^= low
                port, lfid, fifo, rbit = inj[low.bit_length() - 1]
                pending = port._pending_flits
                if not pending:
                    send_queue = port._send_queue
                    if not send_queue:
                        self._inj_mask &= ~low
                        continue
                    message = send_queue.popleft()
                    pending.extend(message.to_flits())
                    port._injecting = message
                    port.messages_sent += 1
                    if port.tracer.enabled:
                        port.tracer.inject_start(cycle, port.coord,
                                                 message)
                staged = fifo._staged
                if len(fifo._items) + len(staged) < fifo.capacity:
                    if not staged:
                        dirty_local.append((lfid, fifo, rbit))
                    staged.append(pending.popleft())
                    port.flits_injected += 1
                    if not pending:
                        if port.tracer.enabled and \
                                port._injecting is not None:
                            port.tracer.inject_end(cycle, port.coord,
                                                   port._injecting)
                        port._injecting = None
                        if not port._send_queue:
                            self._inj_mask &= ~low

    def commit(self) -> None:
        counts = self._counts
        stageds = self._stageds
        vis = self._vis
        dirty = self._dirty
        req = self._req
        if dirty:
            hw = self._hw
            for fid in dirty:
                if not counts[fid]:
                    req[fid] = -2  # first committed flit becomes head
                depth = counts[fid] + stageds[fid]
                counts[fid] = depth
                stageds[fid] = 0
                vis[fid] = depth
                if depth > hw[fid]:
                    hw[fid] = depth
            dirty.clear()
        popped = self._popped
        if popped:
            # Publish this cycle's credit releases at the boundary; a
            # fid both popped and pushed was already refreshed above
            # (re-assigning the merged count is idempotent).
            for fid in popped:
                vis[fid] = counts[fid]
            popped.clear()
        dirty_local = self._dirty_local
        if dirty_local:
            busy = self._busy_mask
            for lfid, fifo, rbit in dirty_local:
                if not fifo._items:
                    req[lfid] = -2
                fifo._items.extend(fifo._staged)
                fifo._staged.clear()
                if len(fifo._items) > fifo.high_water:
                    fifo.high_water = len(fifo._items)
                busy |= rbit
            dirty_local.clear()
            self._busy_mask = busy
        # LocalPort.commit == eject_fifo.commit, inlined; only FIFOs
        # the router phase actually ejected into this cycle.
        dirty_eject = self._dirty_eject
        if dirty_eject:
            for eject in dirty_eject:
                eject._items.extend(eject._staged)
                eject._staged.clear()
                if len(eject._items) > eject.high_water:
                    eject.high_water = len(eject._items)
            dirty_eject.clear()

    # -- shard boundary hooks (repro.sim.shard) ---------------------------

    def set_boundary_egress(self, fid: int, eg: _FlatEgress) -> None:
        """Route the cut output ``fid`` into a boundary egress stub."""
        if self._egress is None:
            self._egress = [None] * (self.n_routers * _N_PORTS)
        self._egress[fid] = eg

    def boundary_ingest(self, fid: int, flits) -> None:
        """Apply boundary flits into ingress ring ``fid``.

        Called by the shard exchange after this core's tick; the body
        is ``commit``'s dirty-ring publication for a ring no in-band
        router pushes to — same head-cache invalidation, occupancy,
        high-water and wake effects, so the receiving router sees the
        flits exactly as if an in-band upstream had staged them this
        cycle.
        """
        if not flits:
            return
        q = self._queues[fid]
        depth = self.depth
        count = self._counts[fid]
        if count == 0:
            self._req[fid] = -2  # first flit becomes the new head
        head = self._heads[fid]
        for flit in flits:
            slot = head + count
            if slot >= depth:
                slot -= depth
            q[slot] = flit
            count += 1
        n = count - self._counts[fid]
        self._counts[fid] = count
        self._vis[fid] = count
        if count > self._hw[fid]:
            self._hw[fid] = count
        r = fid // _N_PORTS
        self._ring_occ[r] += n
        self._ring_total += n
        self._busy_mask |= 1 << r
        wake = self._kernel_wake
        if wake is not None:
            wake()

    # -- statistics -------------------------------------------------------

    @property
    def total_flits_forwarded(self) -> int:
        return sum(self._fwd)

    @property
    def busy_routers(self) -> int:
        """Population of the busy-router bitmask — how many routers
        the next step will even look at (the probe's fabric-activity
        gauge)."""
        return self._busy_mask.bit_count()


class FlatMesh:
    """Drop-in :class:`~repro.noc.mesh.Mesh` replacement over a
    :class:`FlatMeshCore`.

    Construction, ``attach``, ``ports``, ``register``, ``routers`` and
    the counters all match the object mesh; ``register`` adds the
    single core component instead of per-router/per-port objects and
    routes the ports' external wake hook at it.
    """

    #: The core steps every attached port itself (they are kernel
    #: substeps, not simulator components) — designs that attach a
    #: port after ``register`` must NOT add it to the simulator.
    steps_ports = True

    def __init__(self, width: int, height: int,
                 fifo_depth: int = ROUTER_INPUT_FIFO_FLITS,
                 routing: str = "xy", x_offset: int = 0,
                 full_width: int | None = None):
        if width < 1 or height < 1:
            raise ValueError(f"bad mesh dimensions {width}x{height}")
        try:
            route_fn = {"xy": xy_route, "yx": yx_route}[routing]
        except KeyError:
            raise ValueError(f"unknown routing {routing!r} "
                             "(choose 'xy' or 'yx')") from None
        self.width = width
        self.height = height
        self.routing = routing
        self.x_offset = x_offset
        self.core = FlatMeshCore(width, height, fifo_depth, route_fn,
                                 x_offset=x_offset,
                                 full_width=full_width)
        self.routers: dict[tuple[int, int], FlatRouterView] = {
            coord: FlatRouterView(self.core, index, coord)
            for index, coord in enumerate(self.core.coords)
        }
        self._ports: dict[tuple[int, int], LocalPort] = {}
        self._sim: CycleSimulator | None = None

    def attach(self, coord: tuple[int, int],
               eject_depth: int = 4) -> LocalPort:
        """Create (or return) the local port at ``coord``."""
        if coord not in self.routers:
            raise KeyError(f"no router at {coord} in "
                           f"{self.width}x{self.height} mesh")
        if coord in self._ports:
            return self._ports[coord]
        port = LocalPort(self.routers[coord], eject_depth)
        self._ports[coord] = port
        self.core.add_port(port)
        if self._sim is not None:
            # Late attach: the kernel's wake_sources snapshot predates
            # this port, so hook its ejection FIFO here as well.
            self._wire_port(port, wire_fifo=True)
        return port

    @property
    def ports(self) -> dict[tuple[int, int], LocalPort]:
        """All attached local ports, keyed by coordinate."""
        return self._ports

    def _wire_port(self, port: LocalPort, wire_fifo: bool = False) -> None:
        """Hook a late-attached port's ejection FIFO into the kernel.

        The send-side wake hook is installed by ``add_port`` (it must
        exist even without a simulator); only the ejection FIFO's waker
        — which the kernel snapshots from ``wake_sources`` at ``add``
        time for earlier ports — needs wiring here.
        """
        waker = self.core._kernel_wake
        if waker is not None and wire_fifo:
            port.eject_fifo.add_waker(waker)

    def register(self, simulator: CycleSimulator) -> None:
        """Add the mesh to a simulator as one batch-stepped component.

        Each port's ``_kernel_wake`` hook (installed at attach) flags
        the port for the core's injection loop and wakes the core.
        Ports attached *after* registration additionally get their
        ejection FIFO's waker wired on attach (the object backend
        leaves late-attached ports unregistered, which the linter
        flags; the flat backend has no such hole because the core
        steps every attached port).
        """
        self._sim = simulator
        simulator.add(self.core)

    @property
    def total_flits_forwarded(self) -> int:
        return self.core.total_flits_forwarded


def build_mesh(width: int, height: int,
               fifo_depth: int = ROUTER_INPUT_FIFO_FLITS,
               routing: str = "xy", backend: str = "object",
               shards: int = 1,
               shard_bounds: list[int] | None = None):
    """Construct a mesh with the selected backend.

    ``backend="object"`` returns the classic per-object
    :class:`~repro.noc.mesh.Mesh`; ``backend="flat"`` returns a
    :class:`FlatMesh`.  Both expose the same construction/attachment
    API and are proven cycle- and trace-identical by the differential
    equivalence suite.

    ``shards > 1`` returns a :class:`~repro.noc.shardmesh.ShardedMesh`
    — ``shards`` contiguous column-band meshes of the requested
    backend stitched by boundary links — for use with a sharded
    simulator (:func:`repro.sim.shard.make_simulator`).
    ``shard_bounds`` optionally pins the per-shard band widths (they
    must sum to ``width``) instead of the default even split.
    """
    if shards > 1:
        from repro.noc.shardmesh import ShardedMesh
        return ShardedMesh(width, height, fifo_depth=fifo_depth,
                           routing=routing, backend=backend,
                           shards=shards, shard_bounds=shard_bounds)
    if backend == "flat":
        return FlatMesh(width, height, fifo_depth=fifo_depth,
                        routing=routing)
    if backend == "object":
        from repro.noc.mesh import Mesh
        return Mesh(width, height, fifo_depth=fifo_depth,
                    routing=routing)
    raise ValueError(f"unknown mesh backend {backend!r} "
                     "(choose 'object' or 'flat')")
