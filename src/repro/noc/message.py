"""NoC messages and their flit-level encoding/decoding.

``NocMessage.to_flits`` performs what the paper calls NoC message
construction (one header flit, metadata flit(s) with parsed packet-header
fields, data flits with 64 B payload slices); ``MessageAssembler``
performs deconstruction at the receiving tile.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field

from repro.noc.flit import Flit, FlitKind
from repro.params import FLIT_BYTES, NOC_MAX_PAYLOAD_BYTES

_msg_counter = itertools.count(1)
_packet_counter = itertools.count(1)


def reset_id_counters() -> None:
    """Restart the global message/packet id counters from 1.

    Ids are design-wide but allocated from module globals, so two runs
    built in the same process see different ids.  Differential tests
    (naive vs scheduled kernel) call this before each run so that id
    streams — and everything derived from them, like trace spans —
    compare equal.
    """
    global _msg_counter, _packet_counter
    _msg_counter = itertools.count(1)
    _packet_counter = itertools.count(1)


def next_packet_id() -> int:
    """Allocate a design-wide monotonically increasing packet id.

    Assigned when a packet first enters a design (MAC-side ingress or a
    source tile's first send) and propagated through every NoC message
    derived from it, so tracing can stitch per-tile spans into one
    end-to-end latency span.
    """
    return next(_packet_counter)


@dataclass
class NocMessage:
    """A message between two tiles.

    ``metadata`` is the parsed-header / control portion (an arbitrary
    object: protocol tiles pass header dataclasses, the control plane
    passes command objects).  ``data`` is the raw payload carried in
    64-byte data flits.
    """

    dst: tuple[int, int]
    src: tuple[int, int]
    metadata: object = None
    data: bytes = b""
    n_meta_flits: int = 1
    msg_id: int = field(default_factory=lambda: next(_msg_counter))
    # Which wire packet this message descends from (see next_packet_id).
    # None until the packet enters a design; the tile framework assigns
    # and propagates it.
    packet_id: int | None = None

    def __post_init__(self):
        if len(self.data) > NOC_MAX_PAYLOAD_BYTES:
            raise ValueError(
                f"payload {len(self.data)} exceeds NoC max "
                f"{NOC_MAX_PAYLOAD_BYTES}"
            )
        if self.n_meta_flits < 0:
            raise ValueError("n_meta_flits must be >= 0")

    @property
    def n_data_flits(self) -> int:
        return math.ceil(len(self.data) / FLIT_BYTES)

    @property
    def n_flits(self) -> int:
        """Total flits on the wire: header + metadata + data."""
        return 1 + self.n_meta_flits + self.n_data_flits

    def to_flits(self) -> list[Flit]:
        """Encode as a wormhole-ready flit sequence."""
        flits: list[Flit] = []
        total = self.n_flits
        flits.append(Flit(
            kind=FlitKind.HEADER,
            is_head=True,
            is_tail=(total == 1),
            dst=self.dst,
            src=self.src,
            msg_id=self.msg_id,
            payload=None,
            packet_id=self.packet_id,
        ))
        for i in range(self.n_meta_flits):
            is_last = (i == self.n_meta_flits - 1) and self.n_data_flits == 0
            flits.append(Flit(
                kind=FlitKind.METADATA,
                is_head=False,
                is_tail=is_last,
                dst=self.dst,
                src=self.src,
                msg_id=self.msg_id,
                payload=self.metadata if i == 0 else None,
            ))
        n_data = self.n_data_flits
        for i in range(n_data):
            chunk = self.data[i * FLIT_BYTES:(i + 1) * FLIT_BYTES]
            flits.append(Flit(
                kind=FlitKind.DATA,
                is_head=False,
                is_tail=(i == n_data - 1),
                dst=self.dst,
                src=self.src,
                msg_id=self.msg_id,
                payload=chunk,
            ))
        return flits


class MessageAssembler:
    """Rebuilds :class:`NocMessage` objects from an in-order flit stream.

    Wormhole switching guarantees a tile's local ejection port delivers
    each message's flits contiguously, so a single in-flight assembly
    suffices per port.
    """

    def __init__(self):
        self._current: dict | None = None

    @property
    def mid_message(self) -> bool:
        return self._current is not None

    def push(self, flit: Flit) -> NocMessage | None:
        """Feed one flit; returns a completed message on the tail flit."""
        if flit.is_head:
            if self._current is not None:
                raise ValueError(
                    f"header flit {flit!r} arrived mid-message"
                )
            self._current = {
                "dst": flit.dst,
                "src": flit.src,
                "msg_id": flit.msg_id,
                "packet_id": flit.packet_id,
                "metadata": None,
                "meta_count": 0,
                "chunks": [],
            }
        else:
            if self._current is None:
                raise ValueError(f"body flit {flit!r} without a header")
            if flit.msg_id != self._current["msg_id"]:
                raise ValueError(
                    f"interleaved flit {flit!r} inside msg "
                    f"{self._current['msg_id']}"
                )
            if flit.kind == FlitKind.METADATA:
                if self._current["meta_count"] == 0:
                    self._current["metadata"] = flit.payload
                self._current["meta_count"] += 1
            elif flit.kind == FlitKind.DATA:
                self._current["chunks"].append(bytes(flit.payload or b""))
        if flit.is_tail:
            state = self._current
            self._current = None
            message = NocMessage(
                dst=state["dst"],
                src=state["src"],
                metadata=state["metadata"],
                data=b"".join(state["chunks"]),
                n_meta_flits=state["meta_count"],
                packet_id=state["packet_id"],
            )
            message.msg_id = state["msg_id"]
            return message
        return None
