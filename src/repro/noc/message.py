"""NoC messages and their flit-level encoding/decoding.

``NocMessage.to_flits`` performs what the paper calls NoC message
construction (one header flit, metadata flit(s) with parsed packet-header
fields, data flits with 64 B payload slices); ``MessageAssembler``
performs deconstruction at the receiving tile.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field

from repro.noc.flit import Flit, FlitKind
from repro.params import FLIT_BYTES, NOC_MAX_PAYLOAD_BYTES

_msg_counter = itertools.count(1)
_packet_counter = itertools.count(1)

#: Bit position of the shard id inside a namespaced id: shard ``k``
#: allocates ids in ``[k << 48 + 1, (k + 1) << 48)``, so id spaces from
#: different shards can never collide and shard 0's space is exactly
#: the unsharded one.  2^48 ids per shard is unreachable in practice
#: (a saturated 32x32 mesh allocates ~2e6 ids per simulated second).
SHARD_ID_SHIFT = 48


def reset_id_counters() -> None:
    """Restart the global message/packet id counters from 1.

    Ids are design-wide but allocated from module globals, so two runs
    built in the same process see different ids.  Differential tests
    (naive vs scheduled kernel) call this before each run so that id
    streams — and everything derived from them, like trace spans —
    compare equal.
    """
    global _msg_counter, _packet_counter
    _msg_counter = itertools.count(1)
    _packet_counter = itertools.count(1)


class IdNamespace:
    """A shard-private message/packet id namespace.

    The module-global counters are process-wide mutable state — exactly
    what breaks determinism once a design is partitioned across shards
    (allocation order would depend on shard interleaving, and two shards
    would hand out colliding ids).  A sharded run gives every shard its
    own :class:`IdNamespace`; the engine installs the namespace around
    each shard's tick (in-process transport) or once per worker process
    (multiprocessing transport).  Ids carry the shard id in the high
    bits (:data:`SHARD_ID_SHIFT`), so the per-shard sequences are
    disjoint and shard 0 — where a design's ingress lives — allocates
    the same packet ids an unsharded run would.
    """

    __slots__ = ("shard_id", "_msg", "_packet")

    def __init__(self, shard_id: int = 0):
        if shard_id < 0:
            raise ValueError("shard_id must be >= 0")
        self.shard_id = shard_id
        base = shard_id << SHARD_ID_SHIFT
        self._msg = itertools.count(base + 1)
        self._packet = itertools.count(base + 1)

    def install(self) -> None:
        """Make this namespace the allocation source for new ids."""
        global _msg_counter, _packet_counter
        _msg_counter = self._msg
        _packet_counter = self._packet


def next_packet_id() -> int:
    """Allocate a design-wide monotonically increasing packet id.

    Assigned when a packet first enters a design (MAC-side ingress or a
    source tile's first send) and propagated through every NoC message
    derived from it, so tracing can stitch per-tile spans into one
    end-to-end latency span.
    """
    return next(_packet_counter)


@dataclass
class NocMessage:
    """A message between two tiles.

    ``metadata`` is the parsed-header / control portion (an arbitrary
    object: protocol tiles pass header dataclasses, the control plane
    passes command objects).  ``data`` is the raw payload carried in
    64-byte data flits.
    """

    dst: tuple[int, int]
    src: tuple[int, int]
    metadata: object = None
    data: bytes = b""
    n_meta_flits: int = 1
    msg_id: int = field(default_factory=lambda: next(_msg_counter))
    # Which wire packet this message descends from (see next_packet_id).
    # None until the packet enters a design; the tile framework assigns
    # and propagates it.
    packet_id: int | None = None

    def __post_init__(self):
        if len(self.data) > NOC_MAX_PAYLOAD_BYTES:
            raise ValueError(
                f"payload {len(self.data)} exceeds NoC max "
                f"{NOC_MAX_PAYLOAD_BYTES}"
            )
        if self.n_meta_flits < 0:
            raise ValueError("n_meta_flits must be >= 0")

    @property
    def n_data_flits(self) -> int:
        return math.ceil(len(self.data) / FLIT_BYTES)

    @property
    def n_flits(self) -> int:
        """Total flits on the wire: header + metadata + data."""
        return 1 + self.n_meta_flits + self.n_data_flits

    def to_flits(self) -> list[Flit]:
        """Encode as a wormhole-ready flit sequence.

        Saturated-path note: one call per message send, ~24 Flit
        constructions at MTU — hence the hoisted locals and positional
        construction (`Flit.__init__`'s exact field order).
        """
        dst = self.dst
        src = self.src
        msg_id = self.msg_id
        data = self.data
        n_meta = self.n_meta_flits
        n_data = (len(data) + FLIT_BYTES - 1) // FLIT_BYTES
        flits = [Flit(FlitKind.HEADER, True, not (n_meta or n_data),
                      dst, src, msg_id, None, self.packet_id)]
        append = flits.append
        if n_meta:
            meta_kind = FlitKind.METADATA
            last_meta = n_meta - 1
            for i in range(n_meta):
                append(Flit(meta_kind, False,
                            i == last_meta and not n_data,
                            dst, src, msg_id,
                            self.metadata if i == 0 else None))
        if n_data:
            data_kind = FlitKind.DATA
            last = n_data - 1
            for i in range(n_data):
                append(Flit(data_kind, False, i == last, dst, src,
                            msg_id,
                            data[i * FLIT_BYTES:(i + 1) * FLIT_BYTES]))
        return flits


class MessageAssembler:
    """Rebuilds :class:`NocMessage` objects from an in-order flit stream.

    Wormhole switching guarantees a tile's local ejection port delivers
    each message's flits contiguously, so a single in-flight assembly
    suffices per port.
    """

    __slots__ = ("_active", "_dst", "_src", "_msg_id", "_packet_id",
                 "_metadata", "_meta_count", "_chunks")

    def __init__(self):
        self._active = False
        self._dst = self._src = None
        self._msg_id = self._packet_id = None
        self._metadata = None
        self._meta_count = 0
        self._chunks: list[bytes] = []

    @property
    def mid_message(self) -> bool:
        return self._active

    def push(self, flit: Flit) -> NocMessage | None:
        """Feed one flit; returns a completed message on the tail flit."""
        if flit.is_head:
            if self._active:
                raise ValueError(
                    f"header flit {flit!r} arrived mid-message"
                )
            self._active = True
            self._dst = flit.dst
            self._src = flit.src
            self._msg_id = flit.msg_id
            self._packet_id = flit.packet_id
            self._metadata = None
            self._meta_count = 0
            self._chunks = []
        else:
            if not self._active:
                raise ValueError(f"body flit {flit!r} without a header")
            if flit.msg_id != self._msg_id:
                raise ValueError(
                    f"interleaved flit {flit!r} inside msg "
                    f"{self._msg_id}"
                )
            kind = flit.kind
            if kind is FlitKind.DATA:
                self._chunks.append(bytes(flit.payload or b""))
            elif kind is FlitKind.METADATA:
                if self._meta_count == 0:
                    self._metadata = flit.payload
                self._meta_count += 1
        if flit.is_tail:
            self._active = False
            message = NocMessage(
                dst=self._dst,
                src=self._src,
                metadata=self._metadata,
                data=b"".join(self._chunks),
                n_meta_flits=self._meta_count,
                packet_id=self._packet_id,
            )
            message.msg_id = self._msg_id
            return message
        return None
