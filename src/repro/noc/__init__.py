"""The network-on-chip substrate.

A flit-accurate functional model of the NoC Beehive builds on (OpenPiton's
2D mesh, widened to 512 bits): wormhole switching, dimension-ordered (XY)
routing, per-input-port FIFOs with backpressure, one flit per link per
cycle.  At the paper's 250 MHz / 64 B flits this gives the 128 Gbps
theoretical peak the evaluation cites.
"""

from repro.noc.flit import Flit, FlitKind
from repro.noc.message import MessageAssembler, NocMessage
from repro.noc.routing import Port, xy_route, xy_route_path
from repro.noc.router import Router
from repro.noc.mesh import LocalPort, Mesh
from repro.noc.flatmesh import FlatMesh, build_mesh

__all__ = [
    "FlatMesh",
    "Flit",
    "FlitKind",
    "LocalPort",
    "Mesh",
    "build_mesh",
    "MessageAssembler",
    "NocMessage",
    "Port",
    "Router",
    "xy_route",
    "xy_route_path",
]
