"""2D-mesh construction and tile attachment points.

``Mesh`` instantiates a width x height grid of routers and wires
neighbouring ports together.  ``LocalPort`` is the tile-side attachment:
an injection queue into the router's local input and an ejection FIFO
the router drains into, plus helpers that enforce wormhole contiguity
(a tile must finish injecting one message before starting another).
"""

from __future__ import annotations

from collections import deque

from repro.noc.flit import Flit
from repro.noc.message import MessageAssembler, NocMessage
from repro.noc.router import Router
from repro.noc.routing import Port
from repro.params import ROUTER_INPUT_FIFO_FLITS
from repro.sim.kernel import CycleSimulator, StagedFifo, Wakeable
from repro.telemetry.trace import NULL_TRACER


class LocalPort(Wakeable):
    """A tile's window onto its router.

    Injection: ``send(message)`` queues a whole message; each cycle the
    port streams one flit into the router's local input FIFO (the same
    one-flit-per-cycle discipline as a hardware injection port).

    Ejection: the router pushes flits into ``eject_fifo``; ``receive()``
    pops one flit per call and returns a completed message on its tail.

    ``LocalPort`` is a clocked component — add it to the simulator (the
    tile framework does this automatically).
    """

    tracer = NULL_TRACER

    # Fault-injection hooks (repro.faults).  Class-level defaults keep
    # the un-faulted hot path to one attribute test each; attaching a
    # plan shadows them with instance state on the targeted ports only.
    fault_stalled = False
    _fault_eject = None

    def __init__(self, router: Router, eject_depth: int = 4):
        self.router = router
        self.coord = router.coord
        self.eject_fifo = StagedFifo(
            eject_depth, name=f"{router.name}.eject"
        )
        router.connect_output(Port.LOCAL, self.eject_fifo)
        self._local_in = router.inputs[Port.LOCAL]
        self._assembler = MessageAssembler()
        self._pending_flits: deque[Flit] = deque()
        self._send_queue: deque[NocMessage] = deque()
        self._injecting: NocMessage | None = None
        self.messages_sent = 0
        self.messages_received = 0
        self.flits_injected = 0
        #: Flits popped off the ejection FIFO — the other side of the
        #: ``flits_injected`` ledger the conservation sanitizer
        #: (repro.analysis.sanitize, BHV403) balances.  Anything that
        #: pops ``eject_fifo`` without going through :meth:`receive`
        #: must bump this itself.
        self.flits_ejected = 0
        #: Deepest the unbounded tile-side injection queue has ever
        #: been (messages queued plus one mid-injection) — the telemetry
        #: plane's back-pressure indicator for this attachment point.
        self.tx_backlog_high_water = 0

    # -- transmit side ------------------------------------------------------

    def send(self, message: NocMessage) -> None:
        """Queue a message for injection (unbounded tile-side queue)."""
        if message.src != self.coord:
            message.src = self.coord
        self._send_queue.append(message)
        backlog = len(self._send_queue) + (1 if self._pending_flits else 0)
        if backlog > self.tx_backlog_high_water:
            self.tx_backlog_high_water = backlog
        self._wake()

    @property
    def tx_backlog(self) -> int:
        """Messages queued or in flight on the injection side."""
        return len(self._send_queue) + (1 if self._pending_flits else 0)

    def step(self, cycle: int) -> None:
        if not self._pending_flits and self._send_queue:
            message = self._send_queue.popleft()
            self._pending_flits.extend(message.to_flits())
            self._injecting = message
            self.messages_sent += 1
            if self.tracer.enabled:
                self.tracer.inject_start(cycle, self.coord, message)
        if self._pending_flits:
            local_in = self._local_in
            if local_in.can_accept():
                local_in.push_unchecked(self._pending_flits.popleft())
                self.flits_injected += 1
                if not self._pending_flits:
                    if self.tracer.enabled and self._injecting is not None:
                        self.tracer.inject_end(cycle, self.coord,
                                               self._injecting)
                    self._injecting = None

    def commit(self) -> None:
        self.eject_fifo.commit()

    # -- quiescence contract (see repro.sim.kernel) -------------------------

    def wake_sources(self):
        """Router ejections must re-activate the port: it owns the
        ejection FIFO's commit, so a staged flit needs it scheduled."""
        return (self.eject_fifo,)

    def is_idle(self) -> bool:
        """Nothing queued or mid-injection, and no staged ejections to
        commit.  ``send`` wakes the port for new injections."""
        return (not self._pending_flits and not self._send_queue
                and not self.eject_fifo._staged)

    # -- receive side -------------------------------------------------------

    @property
    def mid_message(self) -> bool:
        """True while the ejection side is partway through a message."""
        return self._assembler.mid_message

    def receive(self) -> NocMessage | None:
        """Consume at most one ejected flit; a completed message or None.

        A tile that calls this once per cycle drains at one flit/cycle,
        matching the single router ejection port.

        Fault injection taps here — the staging both mesh backends
        share: a stalled port (``fault_stalled``) ejects nothing, so
        the FIFO fills and back-pressures the fabric, and an ejection
        fault filter may corrupt a popped DATA flit's payload.
        """
        if self.fault_stalled:
            return None
        flit = self.eject_fifo.peek()
        if flit is None:
            return None
        self.eject_fifo.pop()
        self.flits_ejected += 1
        if self._fault_eject is not None:
            flit = self._fault_eject.filter(flit)
        message = self._assembler.push(flit)
        if message is not None:
            self.messages_received += 1
        return message


class Mesh:
    """A width x height 2D mesh of wormhole routers.

    ``x_offset`` shifts the router coordinates east without changing
    the geometry: a band mesh built with ``x_offset=2, width=3`` hosts
    the global columns 2..4 of a wider design, keyed by their *global*
    coordinates.  The sharded engine (:mod:`repro.sim.shard`) builds
    one band per shard and stitches the cut east/west links with
    boundary stubs; an unsharded mesh keeps ``x_offset=0`` and is
    wired exactly as before.
    """

    #: Ports are standalone simulator components here — one attached
    #: after ``register`` must be added to the simulator by the
    #: caller.  The flat backend overrides this.
    steps_ports = False

    def __init__(self, width: int, height: int,
                 fifo_depth: int = ROUTER_INPUT_FIFO_FLITS,
                 routing: str = "xy", x_offset: int = 0):
        if width < 1 or height < 1:
            raise ValueError(f"bad mesh dimensions {width}x{height}")
        from repro.noc.routing import xy_route, yx_route
        try:
            route_fn = {"xy": xy_route, "yx": yx_route}[routing]
        except KeyError:
            raise ValueError(f"unknown routing {routing!r} "
                             "(choose 'xy' or 'yx')") from None
        self.width = width
        self.height = height
        self.routing = routing
        self.x_offset = x_offset
        self.routers: dict[tuple[int, int], Router] = {}
        for y in range(height):
            for x in range(x_offset, x_offset + width):
                self.routers[(x, y)] = Router((x, y), fifo_depth,
                                              route_fn=route_fn)
        self._wire()
        self._ports: dict[tuple[int, int], LocalPort] = {}

    def _wire(self) -> None:
        # Neighbour-presence wiring (rather than arithmetic bounds) so
        # a band mesh leaves its cut east/west outputs unconnected for
        # the shard engine's boundary stubs.
        for (x, y), router in self.routers.items():
            east = self.routers.get((x + 1, y))
            if east is not None:
                router.connect_output(Port.EAST, east.inputs[Port.WEST])
                east.connect_output(Port.WEST, router.inputs[Port.EAST])
            south = self.routers.get((x, y + 1))
            if south is not None:
                router.connect_output(Port.SOUTH, south.inputs[Port.NORTH])
                south.connect_output(Port.NORTH, router.inputs[Port.SOUTH])

    def attach(self, coord: tuple[int, int],
               eject_depth: int = 4) -> LocalPort:
        """Create (or return) the local port at ``coord``."""
        if coord not in self.routers:
            raise KeyError(f"no router at {coord} in "
                           f"{self.width}x{self.height} mesh")
        if coord in self._ports:
            return self._ports[coord]
        port = LocalPort(self.routers[coord], eject_depth)
        self._ports[coord] = port
        return port

    @property
    def ports(self) -> dict[tuple[int, int], LocalPort]:
        """All attached local ports, keyed by coordinate."""
        return self._ports

    def register(self, simulator: CycleSimulator) -> None:
        """Add all routers and attached ports to a simulator."""
        for router in self.routers.values():
            simulator.add(router)
        for port in self._ports.values():
            simulator.add(port)

    @property
    def total_flits_forwarded(self) -> int:
        return sum(r.flits_forwarded for r in self.routers.values())
