"""Column-band partitioning of a mesh for sharded execution.

:class:`ShardedMesh` splits a ``width x height`` mesh into ``shards``
contiguous column bands, builds one ordinary band mesh per shard
(object or flat backend — the same code paths an unsharded run uses),
and stitches every cut east/west link with a *boundary link*: an
egress stub on the sender side and an ingress applicator on the
receiver side.

The cut exploits the link contract :mod:`repro.noc.router` documents:
every inter-router link carries exactly one cycle of lookahead in both
directions — flits staged this cycle become visible downstream next
cycle, and credits (pops) released this cycle become visible upstream
next cycle.  So a conservative exchange that runs once per cycle,
after every shard has ticked, preserves bit-identical behaviour:

1. ``collect`` — for every link, measure the receiver-side pops since
   the last exchange (committed occupancy is monotone during a tick:
   no in-band router pushes into a cut-edge ring) and drain the
   sender's staged flits;
2. ``apply`` — extend the receiver's edge FIFO with the flits (the
   exact effect an in-band commit would have had: items, high-water,
   visible occupancy, consumer wakes) and return the pops to the
   sender's egress as credits.

The sender's room check reads ``egress.visible + len(egress.staged)``,
which this protocol keeps equal, cycle for cycle, to the
``_visible + len(_staged)`` an unsharded downstream FIFO would show.
The equivalence suite (``tests/test_shard.py``) pins this against the
single-process reference on every kernel x mesh x tile combination.
"""

from __future__ import annotations

from repro.noc.flatmesh import FlatMesh, _FlatEgress
from repro.noc.mesh import LocalPort, Mesh
from repro.noc.router import _N_PORTS
from repro.noc.routing import Port
from repro.params import ROUTER_INPUT_FIFO_FLITS
from repro.sim.kernel import StagedFifo

_EAST = 1
_WEST = 2


def band_bounds(width: int, shards: int,
                widths: list[int] | None = None) -> list[tuple[int, int]]:
    """Partition ``width`` columns into ``shards`` contiguous bands.

    Returns ``(x_offset, band_width)`` per shard; remainders go to the
    leftmost bands, so e.g. 10 columns over 4 shards yields widths
    3, 3, 2, 2.

    ``widths`` overrides the even split with explicit per-shard column
    counts (summing to ``width``) — useful when the workload loads the
    bands unevenly and a narrower band should absorb a hotspot.
    """
    if shards < 1:
        raise ValueError("shards must be >= 1")
    if shards > width:
        raise ValueError(
            f"cannot cut a {width}-column mesh into {shards} column "
            "bands (at most one shard per column)")
    if widths is not None:
        if len(widths) != shards:
            raise ValueError(
                f"shard_bounds lists {len(widths)} band widths "
                f"for {shards} shards")
        if any(bw < 1 for bw in widths):
            raise ValueError("every shard band needs >= 1 column")
        if sum(widths) != width:
            raise ValueError(
                f"shard_bounds widths sum to {sum(widths)}, "
                f"not the mesh width {width}")
    else:
        base, rem = divmod(width, shards)
        widths = [base + (1 if k < rem else 0) for k in range(shards)]
    bounds = []
    x0 = 0
    for bw in widths:
        bounds.append((x0, bw))
        x0 += bw
    return bounds


class _ObjectEgress:
    """Sender half of a cut link, object backend.

    Wraps a plain :class:`StagedFifo` wired as the sender router's
    directional output.  The router's lagged-credit room check reads
    ``_visible + len(_staged)`` — exactly the unsharded check — and
    nobody commits the stub: the exchange drains ``_staged`` and
    maintains ``_visible`` as the credit count.
    """

    __slots__ = ("stub",)

    def __init__(self, stub: StagedFifo):
        self.stub = stub

    def drain(self) -> list:
        stub = self.stub
        staged = stub._staged
        if not staged:
            return ()
        flits = list(staged)
        staged.clear()
        stub._visible += len(flits)
        return flits

    def credit(self, pops: int) -> None:
        if pops:
            self.stub._visible -= pops


class _ObjectIngress:
    """Receiver half of a cut link, object backend.

    ``apply`` replays what the receiver router's own commit would have
    done had an in-band upstream staged these flits: extend the items,
    bump the high-water mark, publish the committed occupancy, fire
    the consumer wake hooks.
    """

    __slots__ = ("fifo", "_prev")

    def __init__(self, fifo: StagedFifo):
        self.fifo = fifo
        self._prev = len(fifo._items)

    def take_pops(self) -> int:
        fifo = self.fifo
        cur = len(fifo._items)
        pops = self._prev - cur
        self._prev = cur
        return pops

    def apply(self, flits) -> None:
        if not flits:
            return
        fifo = self.fifo
        items = fifo._items
        items.extend(flits)
        n = len(items)
        self._prev = n
        if n > fifo.high_water:
            fifo.high_water = n
        fifo._visible = n
        for waker in fifo._wakers:
            waker()


class _FlatEgressRef:
    """Sender half of a cut link, flat backend."""

    __slots__ = ("eg",)

    def __init__(self, eg: _FlatEgress):
        self.eg = eg

    def drain(self) -> list:
        eg = self.eg
        staged = eg.staged
        if not staged:
            return ()
        flits = list(staged)
        staged.clear()
        eg.visible += len(flits)
        return flits

    def credit(self, pops: int) -> None:
        if pops:
            self.eg.visible -= pops


class _FlatIngress:
    """Receiver half of a cut link, flat backend."""

    __slots__ = ("core", "fid", "_prev")

    def __init__(self, core, fid: int):
        self.core = core
        self.fid = fid
        self._prev = core._counts[fid]

    def take_pops(self) -> int:
        cur = self.core._counts[self.fid]
        pops = self._prev - cur
        self._prev = cur
        return pops

    def apply(self, flits) -> None:
        if not flits:
            return
        self.core.boundary_ingest(self.fid, flits)
        self._prev = self.core._counts[self.fid]


class BoundaryLink:
    """One cut directional link between two adjacent shards."""

    __slots__ = ("egress", "ingress", "sender", "receiver",
                 "_flits", "_pops", "flits_exchanged")

    def __init__(self, egress, ingress, sender: int, receiver: int):
        self.egress = egress
        self.ingress = ingress
        self.sender = sender
        self.receiver = receiver
        self._flits = ()
        self._pops = 0
        self.flits_exchanged = 0

    def collect(self) -> None:
        """Phase 1: measure pops, drain staged flits.  Must run for
        every link before any ``apply`` — applying extends the very
        item counts pops are measured against."""
        self._pops = self.ingress.take_pops()
        self._flits = self.egress.drain()

    def apply(self) -> None:
        """Phase 2: deliver flits to the receiver, credits to the
        sender."""
        flits = self._flits
        if flits:
            self.ingress.apply(flits)
            self.flits_exchanged += len(flits)
            self._flits = ()
        self.egress.credit(self._pops)
        self._pops = 0

    def exchange(self) -> None:
        """Fused collect+apply for the in-process transport.

        Boundary links share no state — each owns its egress stub and
        its ingress FIFO — so sequencing the two phases per link is
        equivalent to the global two-phase exchange, at half the loop
        overhead.  Pops are still measured before apply extends the
        very item counts they are measured against.  The mp workers
        keep the explicit phases: the pipe is their barrier.
        """
        pops = self.ingress.take_pops()
        flits = self.egress.drain()
        if flits:
            self.ingress.apply(flits)
            self.flits_exchanged += len(flits)
        if pops:
            self.egress.credit(pops)


class _ObjectBoundaryLink(BoundaryLink):
    """Object-backend link with an inlined, call-free idle check.

    A cut crosses every row, but most rows are quiet most cycles; the
    exchange loop's cost is dominated by Python call overhead on idle
    links.  This subclass caches the identity-stable containers (the
    egress stub's ``_staged`` list, the ingress FIFO's ``_items``
    deque) so the per-cycle idle check is two attribute loads — and
    the busy path is the same drain/credit/apply algebra, inlined.
    The loopback fill counter (``_prev_fill``) is the link's own; the
    mp workers keep using the two-phase halves and their counters.
    """

    __slots__ = ("_stub", "_fifo", "_items", "_prev_fill")

    def __init__(self, egress, ingress, sender: int, receiver: int):
        super().__init__(egress, ingress, sender, receiver)
        self._stub = egress.stub
        self._fifo = ingress.fifo
        self._items = ingress.fifo._items
        self._prev_fill = len(self._items)

    def exchange(self) -> None:
        items = self._items
        cur = len(items)
        stub = self._stub
        staged = stub._staged
        prev = self._prev_fill
        if cur == prev and not staged:
            return
        if cur != prev:
            # Receiver pops since last cycle: lagged credit return.
            stub._visible -= prev - cur
        if staged:
            flits = list(staged)
            staged.clear()
            n_new = len(flits)
            stub._visible += n_new
            items.extend(flits)
            cur = len(items)
            fifo = self._fifo
            if cur > fifo.high_water:
                fifo.high_water = cur
            fifo._visible = cur
            for waker in fifo._wakers:
                waker()
            self.flits_exchanged += n_new
        self._prev_fill = cur


class _FlatBoundaryLink(BoundaryLink):
    """Flat-backend link with an inlined, call-free idle check.

    Same shape as :class:`_ObjectBoundaryLink`: the receiver fill is
    ``core._counts[fid]`` (the list is mutated in place, never
    reassigned), the egress staging list lives on the ``_FlatEgress``.
    """

    __slots__ = ("_eg", "_core", "_counts", "_fid", "_prev_fill")

    def __init__(self, egress, ingress, sender: int, receiver: int):
        super().__init__(egress, ingress, sender, receiver)
        self._eg = egress.eg
        self._core = ingress.core
        self._counts = ingress.core._counts
        self._fid = ingress.fid
        self._prev_fill = self._counts[self._fid]

    def exchange(self) -> None:
        counts = self._counts
        fid = self._fid
        cur = counts[fid]
        eg = self._eg
        staged = eg.staged
        prev = self._prev_fill
        if cur == prev and not staged:
            return
        if cur != prev:
            eg.visible -= prev - cur
        if staged:
            flits = list(staged)
            staged.clear()
            eg.visible += len(flits)
            self._core.boundary_ingest(fid, flits)
            self.flits_exchanged += len(flits)
            cur = counts[fid]
        self._prev_fill = cur


class _ShardCoreFacade:
    """Flat-backend core facade: the probe's fabric-activity gauge."""

    __slots__ = ("_bands",)

    def __init__(self, bands):
        self._bands = bands

    @property
    def busy_routers(self) -> int:
        return sum(band.core.busy_routers for band in self._bands)


class ShardedMesh:
    """``shards`` band meshes presenting the single-mesh surface.

    ``routers``/``ports``/``attach``/``total_flits_forwarded`` behave
    exactly like the unsharded mesh (routers merged in full row-major
    order), so designs and telemetry code need no changes;
    ``register`` expects a sharded simulator and distributes each band
    into its shard's inner simulator.
    """

    def __init__(self, width: int, height: int,
                 fifo_depth: int = ROUTER_INPUT_FIFO_FLITS,
                 routing: str = "xy", backend: str = "object",
                 shards: int = 2,
                 shard_bounds: list[int] | None = None):
        if backend not in ("object", "flat"):
            raise ValueError(f"unknown mesh backend {backend!r} "
                             "(choose 'object' or 'flat')")
        self.width = width
        self.height = height
        self.routing = routing
        self.backend = backend
        self.shards = shards
        self.fifo_depth = fifo_depth
        self.bounds = band_bounds(width, shards, shard_bounds)
        #: Column -> owning shard lookup.
        self.col_shard: list[int] = []
        for k, (_, bw) in enumerate(self.bounds):
            self.col_shard.extend([k] * bw)
        self.bands: list[Mesh | FlatMesh] = []
        for k, (x0, bw) in enumerate(self.bounds):
            if backend == "flat":
                band = FlatMesh(bw, height, fifo_depth=fifo_depth,
                                routing=routing, x_offset=x0,
                                full_width=width)
            else:
                band = Mesh(bw, height, fifo_depth=fifo_depth,
                            routing=routing, x_offset=x0)
            self.bands.append(band)
        #: Merged router map in full row-major order — identical
        #: iteration order to the unsharded mesh, which telemetry and
        #: the trace contract rely on.
        self.routers: dict[tuple[int, int], object] = {}
        for y in range(height):
            for x in range(width):
                coord = (x, y)
                self.routers[coord] = \
                    self.bands[self.col_shard[x]].routers[coord]
        self.links: list[BoundaryLink] = []
        self._wire_boundaries()
        if backend == "flat":
            self.core = _ShardCoreFacade(self.bands)

    @property
    def steps_ports(self) -> bool:
        return self.bands[0].steps_ports

    def shard_of(self, coord: tuple[int, int]) -> int:
        """The shard owning the component anchored at ``coord``."""
        x = coord[0]
        if not 0 <= x < self.width:
            raise KeyError(f"coordinate {coord} outside "
                           f"{self.width}x{self.height} mesh")
        return self.col_shard[x]

    def _wire_boundaries(self) -> None:
        depth = self.fifo_depth
        link_cls = (_ObjectBoundaryLink if self.backend == "object"
                    else _FlatBoundaryLink)
        for k in range(self.shards - 1):
            x0, bw = self.bounds[k]
            cut = x0 + bw  # first column of shard k + 1
            for y in range(self.height):
                west_r = self.routers[(cut - 1, y)]  # shard k side
                east_r = self.routers[(cut, y)]      # shard k+1 side
                # Eastward: shard k sends, shard k+1 receives.
                self.links.append(link_cls(
                    self._make_egress(k, west_r, Port.EAST, _EAST,
                                      depth),
                    self._make_ingress(k + 1, east_r, Port.WEST,
                                       _WEST),
                    sender=k, receiver=k + 1))
                # Westward: shard k+1 sends, shard k receives.
                self.links.append(link_cls(
                    self._make_egress(k + 1, east_r, Port.WEST, _WEST,
                                      depth),
                    self._make_ingress(k, west_r, Port.EAST, _EAST),
                    sender=k + 1, receiver=k))

    def _make_egress(self, shard: int, router, port: Port,
                     port_index: int, depth: int):
        if self.backend == "object":
            stub = StagedFifo(
                depth, name=f"shardcut.{router.coord}.{port.value}")
            router.connect_output(port, stub)
            return _ObjectEgress(stub)
        core = self.bands[shard].core
        ofid = router._index * _N_PORTS + port_index
        eg = _FlatEgress()
        core.set_boundary_egress(ofid, eg)
        return _FlatEgressRef(eg)

    def _make_ingress(self, shard: int, router, port: Port,
                      port_index: int):
        if self.backend == "object":
            return _ObjectIngress(router.inputs[port])
        core = self.bands[shard].core
        fid = router._index * _N_PORTS + port_index
        return _FlatIngress(core, fid)

    # -- attachment / registration ----------------------------------------

    def attach(self, coord: tuple[int, int],
               eject_depth: int = 4) -> LocalPort:
        """Create (or return) the local port at ``coord``."""
        if coord not in self.routers:
            raise KeyError(f"no router at {coord} in "
                           f"{self.width}x{self.height} mesh")
        return self.bands[self.shard_of(coord)].attach(
            coord, eject_depth)

    @property
    def ports(self) -> dict[tuple[int, int], LocalPort]:
        """All attached local ports, keyed by coordinate."""
        merged: dict[tuple[int, int], LocalPort] = {}
        for band in self.bands:
            merged.update(band.ports)
        return merged

    def register(self, simulator) -> None:
        """Distribute the bands into a sharded simulator.

        Each band registers with its shard's inner simulator exactly
        as an unsharded mesh would (routers in row-major order, then
        ports) — the per-shard registration order is the unsharded
        order restricted to that shard, which is what keeps per-shard
        stepping order reference-identical.
        """
        if getattr(simulator, "shards", 1) != self.shards:
            raise ValueError(
                f"mesh with {self.shards} shards registered with a "
                f"simulator of {getattr(simulator, 'shards', 1)} "
                "(build both through the same shards= setting)")
        simulator.bind_mesh(self)
        for k, band in enumerate(self.bands):
            band.register(simulator.sims[k])

    @property
    def total_flits_forwarded(self) -> int:
        return sum(band.total_flits_forwarded for band in self.bands)

    @property
    def boundary_flits_exchanged(self) -> int:
        """Flits shipped across shard cuts (telemetry)."""
        return sum(link.flits_exchanged for link in self.links)
