"""Flits — the unit the NoC moves.

A NoC message is one header flit followed by body flits (metadata flits
carrying parsed packet-header fields, then data flits carrying payload).
Only the header flit carries routing information; body flits follow the
wormhole path their header opened.  Flits are 512 bits (64 bytes) wide,
and the top 64 bits of the header flit are the original OpenPiton header
(destination, source, length), which is why the paper could reuse the
OpenPiton routers unmodified.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field

from repro.params import FLIT_BYTES

_flit_counter = itertools.count()


class FlitKind(enum.Enum):
    HEADER = "header"
    METADATA = "metadata"
    DATA = "data"


@dataclass(slots=True)
class Flit:
    """One flit.  ``payload`` is bytes for DATA flits, an arbitrary
    metadata object for METADATA flits, and routing info for HEADER
    flits (already held in the dedicated fields)."""

    kind: FlitKind
    is_head: bool
    is_tail: bool
    dst: tuple[int, int]
    src: tuple[int, int]
    msg_id: int
    payload: object = None
    # End-to-end packet correlation id, carried on the header flit so
    # reassembled messages keep the identity tracing assigned upstream.
    packet_id: int | None = None
    seq: int = field(default_factory=lambda: next(_flit_counter))

    def __post_init__(self):
        if self.kind == FlitKind.DATA and self.payload is not None:
            if not isinstance(self.payload, (bytes, bytearray, memoryview)):
                raise TypeError("DATA flit payload must be bytes-like")
            if len(self.payload) > FLIT_BYTES:
                raise ValueError(
                    f"DATA flit payload exceeds {FLIT_BYTES} bytes"
                )

    def __repr__(self) -> str:
        marks = ("H" if self.is_head else "") + ("T" if self.is_tail else "")
        return (f"Flit({self.kind.value}{marks} msg={self.msg_id} "
                f"{self.src}->{self.dst})")
