"""Flits — the unit the NoC moves.

A NoC message is one header flit followed by body flits (metadata flits
carrying parsed packet-header fields, then data flits carrying payload).
Only the header flit carries routing information; body flits follow the
wormhole path their header opened.  Flits are 512 bits (64 bytes) wide,
and the top 64 bits of the header flit are the original OpenPiton header
(destination, source, length), which is why the paper could reuse the
OpenPiton routers unmodified.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.params import FLIT_BYTES


class FlitKind(enum.Enum):
    HEADER = "header"
    METADATA = "metadata"
    DATA = "data"


@dataclass(slots=True, init=False)
class Flit:
    """One flit.  ``payload`` is bytes for DATA flits, an arbitrary
    metadata object for METADATA flits, and routing info for HEADER
    flits (already held in the dedicated fields)."""

    kind: FlitKind
    is_head: bool
    is_tail: bool
    dst: tuple[int, int]
    src: tuple[int, int]
    msg_id: int
    payload: object = None
    # End-to-end packet correlation id, carried on the header flit so
    # reassembled messages keep the identity tracing assigned upstream.
    packet_id: int | None = None

    # Hand-written so the saturated path (one construction per flit per
    # message encode) skips generated-init overhead and validates only
    # the one kind that needs it.
    def __init__(self, kind, is_head, is_tail, dst, src, msg_id,
                 payload=None, packet_id=None):
        if kind is FlitKind.DATA and payload is not None:
            if not isinstance(payload, (bytes, bytearray, memoryview)):
                raise TypeError("DATA flit payload must be bytes-like")
            if len(payload) > FLIT_BYTES:
                raise ValueError(
                    f"DATA flit payload exceeds {FLIT_BYTES} bytes"
                )
        self.kind = kind
        self.is_head = is_head
        self.is_tail = is_tail
        self.dst = dst
        self.src = src
        self.msg_id = msg_id
        self.payload = payload
        self.packet_id = packet_id

    def __repr__(self) -> str:
        marks = ("H" if self.is_head else "") + ("T" if self.is_tail else "")
        return (f"Flit({self.kind.value}{marks} msg={self.msg_id} "
                f"{self.src}->{self.dst})")
