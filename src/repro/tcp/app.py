"""Application tiles speaking the TCP engine's NoC interface.

:class:`TcpAppTile` implements the full client side of the section V-D
interface — connection notifications, receive request/notify/complete
with buffer-tile reads, and transmit reserve/grant/copy/ready with
buffer-tile writes (waiting for the write ACK before signalling
``TxReady``, since the buffer tile and the TX engine are different NoC
destinations and only point-to-point ordering is guaranteed).

Concrete apps override :meth:`on_request` (echo: return the payload) or
:meth:`on_connected` (streaming source).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.noc.mesh import Mesh
from repro.noc.message import NocMessage
from repro.tcp.messages import (
    ConnectionClosed,
    ConnectionNotify,
    RxComplete,
    RxNotify,
    RxRequest,
    TxGrant,
    TxReady,
    TxReserve,
)
from repro.tiles.base import DestDomain, Tile
from repro.tiles.buffer import (
    BufferReadReq,
    BufferReadResp,
    BufferWriteAck,
    BufferWriteReq,
)


@dataclass
class _FlowCtx:
    """Per-connection application context."""

    flow_id: int
    request_size: int
    rx_accumulated: bytearray = field(default_factory=bytearray)
    tx_queue: deque = field(default_factory=deque)  # bytes chunks to send
    tx_inflight: bytes | None = None  # chunk waiting for grant/ack
    tx_granted: TxGrant | None = None
    requests_served: int = 0
    bytes_received: int = 0
    bytes_submitted: int = 0
    closed: bool = False


class TcpAppTile(Tile):
    """Base class for TCP applications at request granularity."""

    KIND = "echo_app"

    def __init__(self, name: str, mesh: Mesh, coord: tuple[int, int],
                 tcp_rx_coord: tuple[int, int],
                 tcp_tx_coord: tuple[int, int],
                 rx_buffer_coord: tuple[int, int],
                 tx_buffer_coord: tuple[int, int],
                 request_size: int = 64,
                 **kwargs):
        super().__init__(name, mesh, coord, **kwargs)
        self.tcp_rx_coord = tcp_rx_coord
        self.tcp_tx_coord = tcp_tx_coord
        self.rx_buffer_coord = rx_buffer_coord
        self.tx_buffer_coord = tx_buffer_coord
        self.request_size = request_size
        self.flows: dict[int, _FlowCtx] = {}
        self.connections = 0

    def dest_domain(self) -> DestDomain:
        """Fixed wiring: the app only ever addresses its two engines
        and its two buffers."""
        return DestDomain.of((self.tcp_rx_coord, self.tcp_tx_coord,
                              self.rx_buffer_coord,
                              self.tx_buffer_coord))

    # -- overridables -----------------------------------------------------------

    def on_connected(self, ctx: _FlowCtx, cycle: int) -> None:
        """Called when a connection completes its handshake."""

    def on_request(self, ctx: _FlowCtx, data: bytes,
                   cycle: int) -> bytes | None:
        """Called with each complete ``request_size`` request; the
        returned bytes (if any) are transmitted back on the flow."""
        return None

    # -- engine interface -------------------------------------------------------

    def submit(self, ctx: _FlowCtx, data: bytes) -> list[NocMessage]:
        """Queue ``data`` for transmission on the flow."""
        ctx.tx_queue.append(bytes(data))
        ctx.bytes_submitted += len(data)
        return self._pump_tx(ctx)

    def _request_more(self, ctx: _FlowCtx) -> NocMessage:
        want = self.request_size - len(ctx.rx_accumulated)
        return self.make_message(
            self.tcp_rx_coord,
            metadata=RxRequest(flow_id=ctx.flow_id, size=want,
                               reply_to=self.coord),
        )

    def _pump_tx(self, ctx: _FlowCtx) -> list[NocMessage]:
        """Reserve space for the next queued chunk, if idle."""
        if ctx.tx_inflight is not None or not ctx.tx_queue:
            return []
        ctx.tx_inflight = ctx.tx_queue.popleft()
        reserve = TxReserve(flow_id=ctx.flow_id,
                            size=len(ctx.tx_inflight),
                            reply_to=self.coord)
        return [self.make_message(self.tcp_tx_coord, metadata=reserve)]

    def handle_message(self, message: NocMessage, cycle: int):
        meta = message.metadata
        if isinstance(meta, ConnectionNotify):
            ctx = _FlowCtx(flow_id=meta.flow_id,
                           request_size=self.request_size)
            self.flows[meta.flow_id] = ctx
            self.connections += 1
            outputs = [self._request_more(ctx)]
            self.on_connected(ctx, cycle)
            outputs.extend(self._pump_tx(ctx))
            return outputs
        if isinstance(meta, ConnectionClosed):
            ctx = self.flows.get(meta.flow_id)
            if ctx is not None:
                ctx.closed = True
            return []
        if isinstance(meta, RxNotify):
            read = BufferReadReq(addr=meta.addr, length=meta.size,
                                 reply_to=self.coord,
                                 tag=("rx", meta.flow_id, meta.size))
            return [self.make_message(self.rx_buffer_coord,
                                      metadata=read)]
        if isinstance(meta, BufferReadResp):
            return self._handle_rx_data(meta, message.data, cycle)
        if isinstance(meta, TxGrant):
            return self._handle_grant(meta)
        if isinstance(meta, BufferWriteAck):
            return self._handle_write_ack(meta)
        return self.drop(message, "unexpected message at TCP app")

    def _handle_rx_data(self, resp, data: bytes, cycle: int):
        _tag, flow_id, size = resp.tag
        ctx = self.flows.get(flow_id)
        if ctx is None:
            return []
        ctx.rx_accumulated.extend(data)
        ctx.bytes_received += len(data)
        outputs = [self.make_message(
            self.tcp_rx_coord,
            metadata=RxComplete(flow_id=flow_id, size=len(data)),
        )]
        if len(ctx.rx_accumulated) >= ctx.request_size:
            request = bytes(ctx.rx_accumulated[:ctx.request_size])
            del ctx.rx_accumulated[:ctx.request_size]
            ctx.requests_served += 1
            reply = self.on_request(ctx, request, cycle)
            if reply:
                outputs.extend(self.submit(ctx, reply))
        outputs.append(self._request_more(ctx))
        return outputs

    def _handle_grant(self, grant: TxGrant):
        ctx = self.flows.get(grant.flow_id)
        if ctx is None or ctx.tx_inflight is None:
            return []
        ctx.tx_granted = grant
        chunk = ctx.tx_inflight[:grant.size]
        write = BufferWriteReq(addr=grant.addr, reply_to=self.coord,
                               tag=("tx", grant.flow_id, grant.size))
        return [self.make_message(self.tx_buffer_coord, metadata=write,
                                  data=chunk)]

    def _handle_write_ack(self, ack):
        _tag, flow_id, size = ack.tag
        ctx = self.flows.get(flow_id)
        if ctx is None or ctx.tx_inflight is None:
            return []
        outputs = [self.make_message(
            self.tcp_tx_coord,
            metadata=TxReady(flow_id=flow_id, size=size),
        )]
        remainder = ctx.tx_inflight[size:]
        if remainder:
            # The grant was split at the ring boundary: reserve the rest.
            ctx.tx_inflight = remainder
            reserve = TxReserve(flow_id=flow_id, size=len(remainder),
                                reply_to=self.coord)
            outputs.append(self.make_message(self.tcp_tx_coord,
                                             metadata=reserve))
        else:
            ctx.tx_inflight = None
            outputs.extend(self._pump_tx(ctx))
        return outputs


class TcpEchoAppTile(TcpAppTile):
    """Echoes each ``request_size`` request back — the paper's TCP RPC
    microbenchmark server."""

    def on_request(self, ctx, data, cycle):
        return data


class TcpSinkAppTile(TcpAppTile):
    """Consumes the stream without further processing — the receive
    side of the Fig 9 unidirectional throughput experiment."""

    def on_request(self, ctx, data, cycle):
        return None


class TcpSourceAppTile(TcpAppTile):
    """Submits data into the stack as fast as possible — the send side
    of the Fig 9 experiment ("the sending application sits in a tight
    loop, submitting data into the network stack")."""

    def __init__(self, *args, chunk_size: int = 8192,
                 total_bytes: int | None = None, **kwargs):
        super().__init__(*args, **kwargs)
        self.chunk_size = chunk_size
        self.total_bytes = total_bytes

    def _refill(self, ctx) -> list:
        """Keep a couple of chunks in flight; submit() counts them."""
        outputs = []
        while len(ctx.tx_queue) < 2:
            if self.total_bytes is not None and \
                    ctx.bytes_submitted >= self.total_bytes:
                break
            outputs.extend(self.submit(ctx, bytes(self.chunk_size)))
        return outputs

    def handle_message(self, message, cycle):
        outputs = list(super().handle_message(message, cycle) or [])
        for ctx in self.flows.values():
            outputs.extend(self._refill(ctx))
        return outputs
