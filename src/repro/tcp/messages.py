"""NoC message types of the TCP application interface (section V-D).

The paper's interface, message for message:

- on handshake completion the engine notifies the application tile
  registered for the destination port (:class:`ConnectionNotify`);
- the application asks to be notified when ``size`` bytes of a flow
  have arrived (:class:`RxRequest`); the engine answers with the buffer
  address where the data sits (:class:`RxNotify`); the application
  reads the buffer tile and frees the window (:class:`RxComplete`);
- for transmit, the application reserves buffer space
  (:class:`TxReserve`), the engine grants an address when there is room
  (:class:`TxGrant`), and the application signals the copied data ready
  to go on the wire (:class:`TxReady`).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ConnectionNotify:
    """3-way handshake completed for ``flow_id`` on ``dst_port``."""

    flow_id: int
    four_tuple: tuple
    dst_port: int


@dataclass(frozen=True)
class RxRequest:
    """App asks: notify me when ``size`` bytes of ``flow_id`` arrived."""

    flow_id: int
    size: int
    reply_to: tuple


@dataclass(frozen=True)
class RxNotify:
    """``size`` bytes are available at ``addr`` in the RX buffer tile.

    May cover less than requested when the ring wraps; the engine sends
    a follow-up for the remainder after the app re-requests.
    """

    flow_id: int
    addr: int
    size: int
    stream_offset: int


@dataclass(frozen=True)
class RxComplete:
    """App has finished with ``size`` bytes; free the receive window."""

    flow_id: int
    size: int


@dataclass(frozen=True)
class TxReserve:
    """App asks for ``size`` bytes of space in the transmit buffer."""

    flow_id: int
    size: int
    reply_to: tuple


@dataclass(frozen=True)
class TxGrant:
    """``size`` bytes granted at ``addr`` in the TX buffer tile."""

    flow_id: int
    addr: int
    size: int
    stream_offset: int


@dataclass(frozen=True)
class TxReady:
    """App has copied ``size`` bytes into the granted space; transmit."""

    flow_id: int
    size: int


@dataclass(frozen=True)
class ConnectionClosed:
    """Peer closed its half of ``flow_id`` (FIN received and ACKed)."""

    flow_id: int
