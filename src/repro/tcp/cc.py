"""Pluggable congestion-control strategies for the TCP models.

One :class:`CongestionControl` interface serves both sides of the
reproduction's TCP world: the accelerator-side
:class:`~repro.tcp.tx_engine.TcpTxEngineTile` and the host-side
:class:`~repro.tcp.peer.SoftTcpPeer`.  A strategy mutates a *flow
object* — anything exposing ``cwnd`` and ``ssthresh`` attributes (the
engine's :class:`~repro.tcp.flow.TxFlowState`, or the peer itself) —
in response to four events:

``on_connect``
    handshake completed; install the initial window.
``on_ack``
    new data acknowledged; grow the window (slow start below
    ``ssthresh``, the algorithm's avoidance law above it).
``on_loss``
    loss inferred from triple duplicate ACKs (fast retransmit).
``on_timeout``
    retransmission timer fired; the heavy hammer.

Windows are in bytes; rates are derived by callers.  All arithmetic is
integer (or rounds to integer) so identically seeded runs are
bit-reproducible regardless of platform.

CUBIC's window growth is a function of *time* since the last loss
event.  Real CUBIC measures seconds; at the simulation's 4 ns cycle a
literal translation puts the concave/convex inflection ~700M cycles
out, far beyond any practical run.  ``cycles_per_unit`` scales
simulated cycles to CUBIC time units so the characteristic concave →
plateau → convex shape plays out within ordinary sweep horizons while
the closed form stays exactly :func:`cubic_window`.
"""

from __future__ import annotations

CUBIC_BETA = 0.7
CUBIC_C = 0.4


def cubic_window(t: float, w_max: float,
                 beta: float = CUBIC_BETA, c: float = CUBIC_C) -> float:
    """CUBIC's closed-form window at time ``t`` units after a loss.

    ``W(t) = C*(t - K)^3 + W_max`` with ``K = cbrt(W_max*(1-beta)/C)``,
    all in MSS units — the textbook RFC 8312 curve.  ``W(0)`` equals
    ``W_max * beta`` (the post-loss window) and the curve re-reaches
    ``W_max`` at ``t == K``.
    """
    k = (w_max * (1.0 - beta) / c) ** (1.0 / 3.0)
    return c * (t - k) ** 3 + w_max


class CongestionControl:
    """Base strategy: initial-window installation plus shared helpers.

    Subclasses implement ``on_ack`` / ``on_loss`` / ``on_timeout``.
    ``cycle`` arguments default to 0 so callers without a clock (unit
    tests poking flows directly) still work; only CUBIC reads them.
    """

    name = "none"

    def __init__(self, initial_window_mss: int = 2):
        self.initial_window_mss = initial_window_mss

    def on_connect(self, flow, mss: int, cycle: int = 0) -> None:
        flow.cwnd = self.initial_window_mss * mss
        flow.ssthresh = 65535

    def on_ack(self, flow, acked: int, mss: int, cycle: int = 0) -> None:
        raise NotImplementedError

    def on_loss(self, flow, in_flight: int, mss: int,
                cycle: int = 0) -> None:
        raise NotImplementedError

    def on_timeout(self, flow, in_flight: int, mss: int,
                   cycle: int = 0) -> None:
        raise NotImplementedError

    def _slow_start_or_avoid(self, flow, acked: int, mss: int) -> None:
        """The classic AIMD growth law shared by Tahoe and Reno."""
        if flow.cwnd < flow.ssthresh:
            # Slow start: one MSS per MSS acked (doubles per RTT).
            flow.cwnd += min(acked, mss)
        else:
            # Congestion avoidance: ~one MSS per RTT.
            flow.cwnd += max(1, mss * mss // flow.cwnd)


class RenoCC(CongestionControl):
    """NewReno-style: halve into fast recovery on triple-dup-ACK."""

    name = "reno"

    def on_ack(self, flow, acked: int, mss: int, cycle: int = 0) -> None:
        if not flow.cwnd:
            return
        self._slow_start_or_avoid(flow, acked, mss)

    def on_loss(self, flow, in_flight: int, mss: int,
                cycle: int = 0) -> None:
        flow.ssthresh = max(in_flight // 2, 2 * mss)
        flow.cwnd = flow.ssthresh

    def on_timeout(self, flow, in_flight: int, mss: int,
                   cycle: int = 0) -> None:
        flow.ssthresh = max(in_flight // 2, 2 * mss)
        flow.cwnd = mss


class TahoeCC(RenoCC):
    """Original Tahoe: every loss signal collapses to one MSS."""

    name = "tahoe"

    def on_loss(self, flow, in_flight: int, mss: int,
                cycle: int = 0) -> None:
        flow.ssthresh = max(in_flight // 2, 2 * mss)
        flow.cwnd = mss


class CubicCC(CongestionControl):
    """RFC 8312 CUBIC with simulation-time scaling.

    Epoch state lives on the flow object itself (``cc_epoch``,
    ``cc_wmax``) so one strategy instance serves many flows, mirroring
    how a kernel shares one CC module across sockets.
    """

    name = "cubic"

    def __init__(self, initial_window_mss: int = 2,
                 beta: float = CUBIC_BETA, c: float = CUBIC_C,
                 cycles_per_unit: int = 25_000):
        super().__init__(initial_window_mss)
        self.beta = beta
        self.c = c
        self.cycles_per_unit = cycles_per_unit

    def on_ack(self, flow, acked: int, mss: int, cycle: int = 0) -> None:
        if not flow.cwnd:
            return
        if flow.cwnd < flow.ssthresh:
            flow.cwnd += min(acked, mss)
            return
        epoch = getattr(flow, "cc_epoch", None)
        if epoch is None:
            # First avoidance ACK after a loss (or ever): anchor the
            # cubic epoch here, with W_max at least the current window
            # so growth starts from the plateau, never below it.
            epoch = cycle
            flow.cc_epoch = epoch
            flow.cc_wmax = max(getattr(flow, "cc_wmax", 0.0),
                               flow.cwnd / mss)
        t = (cycle - epoch) / self.cycles_per_unit
        target = int(cubic_window(t, flow.cc_wmax, self.beta, self.c)
                     * mss)
        # Monotone guard: the closed form dips below cwnd right after
        # the epoch anchors mid-plateau; never shrink on an ACK.
        flow.cwnd = max(flow.cwnd, target)

    def on_loss(self, flow, in_flight: int, mss: int,
                cycle: int = 0) -> None:
        flow.cc_wmax = flow.cwnd / mss
        flow.cwnd = max(int(flow.cwnd * self.beta), 2 * mss)
        flow.ssthresh = flow.cwnd
        flow.cc_epoch = None

    def on_timeout(self, flow, in_flight: int, mss: int,
                   cycle: int = 0) -> None:
        flow.cc_wmax = flow.cwnd / mss
        flow.ssthresh = max(int(flow.cwnd * self.beta), 2 * mss)
        flow.cwnd = mss
        flow.cc_epoch = None


_CC_REGISTRY = {
    "tahoe": TahoeCC,
    "reno": RenoCC,
    "cubic": CubicCC,
}


def make_cc(spec, initial_window_mss: int = 2) -> CongestionControl | None:
    """Resolve a congestion-control spec to a strategy (or ``None``).

    ``None``/``False``/``""``/``"none"``/``"off"`` disable congestion
    control entirely (the pre-CC blast-at-will behaviour).  ``True``
    keeps the historical meaning — Reno, byte-for-byte what the inline
    engine code did before strategies existed.  A string picks an
    algorithm by name; an existing :class:`CongestionControl` instance
    passes through untouched.
    """
    if spec is None or spec is False:
        return None
    if isinstance(spec, CongestionControl):
        return spec
    if spec is True:
        return RenoCC(initial_window_mss)
    if isinstance(spec, str):
        key = spec.strip().lower()
        if key in ("", "none", "off"):
            return None
        try:
            cls = _CC_REGISTRY[key]
        except KeyError:
            raise ValueError(
                f"unknown congestion control {spec!r} "
                f"(choose from {sorted(_CC_REGISTRY)})") from None
        return cls(initial_window_mss)
    raise TypeError(
        f"congestion_control must be None, bool, str, or a "
        f"CongestionControl instance, not {type(spec).__name__}")
