"""The Beehive TCP engine (paper section V-D).

Server-side TCP split into a receive engine and a transmit engine in
separate tiles, exactly as the paper describes:

- the RX engine accepts connection-setup requests, checks received data
  for in-orderness, calculates the next ACK, and processes ACKs for
  transmitted data (driving fast retransmit on duplicate ACKs);
- the TX engine owns the send window, sequence numbers, segmentation,
  and retransmission;
- flow state is divided into two stores by *which engine writes it* (the
  paper's dual-BRAM trick), and the engines exchange events over
  dedicated wires rather than the NoC;
- applications interact at request granularity through NoC messages
  (connection notifications, receive request/notify, transmit
  reserve/grant/ready), with payload staged in buffer tiles.

Not implemented, mirroring the paper's scoping: selective
acknowledgements and active open.  Congestion control — which the
paper names as integration work — is grown here behind the pluggable
:mod:`repro.tcp.cc` strategy interface (Tahoe, Reno, CUBIC).
"""

from repro.tcp.cc import (
    CongestionControl,
    CubicCC,
    RenoCC,
    TahoeCC,
    cubic_window,
    make_cc,
)
from repro.tcp.flow import FlowTable, RxFlowState, TcpState, TxFlowState
from repro.tcp.messages import (
    ConnectionNotify,
    RxComplete,
    RxNotify,
    RxRequest,
    TxGrant,
    TxReady,
    TxReserve,
)
from repro.tcp.rx_engine import TcpRxEngineTile
from repro.tcp.tx_engine import TcpTxEngineTile
from repro.tcp.app import (
    TcpAppTile,
    TcpEchoAppTile,
    TcpSinkAppTile,
    TcpSourceAppTile,
)

__all__ = [
    "CongestionControl",
    "ConnectionNotify",
    "CubicCC",
    "FlowTable",
    "RenoCC",
    "TahoeCC",
    "cubic_window",
    "make_cc",
    "RxComplete",
    "RxFlowState",
    "RxNotify",
    "RxRequest",
    "TcpAppTile",
    "TcpEchoAppTile",
    "TcpRxEngineTile",
    "TcpSinkAppTile",
    "TcpSourceAppTile",
    "TcpState",
    "TcpTxEngineTile",
    "TxFlowState",
    "TxGrant",
    "TxReady",
    "TxReserve",
]
