"""A software TCP peer for the cycle-level simulations.

Plays the role of the unmodified Linux/kernel-bypass client the paper
interoperates with: an independent, frame-level TCP implementation that
actively opens connections, streams or echo-pings data, ACKs received
segments, and retransmits on timeout.  Being independently written, it
doubles as the interop check — the Beehive engine is exercised against
TCP logic that shares none of its code.
"""

from __future__ import annotations

from collections import deque

from repro import params
from repro.packet.builder import build_tcp_frame, parse_frame
from repro.packet.ethernet import MacAddress
from repro.packet.ipv4 import IPv4Address
from repro.packet.tcp import TCP_ACK, TCP_FIN, TCP_PSH, TCP_SYN, TcpHeader
from repro.tcp.cc import CongestionControl, make_cc
from repro.tcp.flow import seq_add, seq_diff


class PeerNetwork:
    """Demultiplexes a design's egress frames to multiple peers.

    A single peer may drain ``design.eth_tx.frames_out`` directly, but
    with several clients each frame must reach the right one; this
    clocked component routes by (destination IP, destination port).
    Register it with the simulator *before* the peers it feeds.
    """

    def __init__(self, design):
        self.design = design
        self._inboxes: dict[tuple[int, int], deque] = {}
        self.unrouted = 0

    def register(self, peer: SoftTcpPeer) -> None:
        inbox: deque = deque()
        self._inboxes[(int(peer.my_ip), peer.src_port)] = inbox
        peer._inbox = inbox

    def step(self, cycle: int) -> None:
        frames_out = self.design.eth_tx.frames_out
        while frames_out:
            frame, emit_cycle = frames_out.popleft()
            if emit_cycle > cycle:
                frames_out.appendleft((frame, emit_cycle))
                break
            try:
                parsed = parse_frame(frame)
            except ValueError:
                self.unrouted += 1
                continue
            l4 = parsed.tcp or parsed.udp
            if parsed.ip is None or l4 is None:
                self.unrouted += 1
                continue
            inbox = self._inboxes.get((int(parsed.ip.dst), l4.dst_port))
            if inbox is None:
                self.unrouted += 1
                continue
            inbox.append((frame, emit_cycle))

    def commit(self) -> None:
        pass


class SoftTcpPeer:
    """A clocked client endpoint wired frame-to-frame to a design.

    ``service_cycles`` is the per-frame processing cost of the host
    (model knob); ``wire_cycles`` is the one-way link+switch latency.
    """

    def __init__(self, design, my_ip: IPv4Address, my_mac: MacAddress,
                 server_ip: IPv4Address, server_port: int,
                 src_port: int = 40000,
                 mss: int = params.TCP_MSS_BYTES,
                 window: int = 65535,
                 service_cycles: int = 8,
                 wire_cycles: int = 250,
                 rto_cycles: int = params.TCP_RTO_CYCLES,
                 iss: int = 7_000,
                 congestion_control: bool | str |
                 CongestionControl | None = None):
        self.design = design
        self.my_ip = IPv4Address(my_ip)
        self.my_mac = MacAddress(my_mac)
        self.server_ip = IPv4Address(server_ip)
        self.server_port = server_port
        self.src_port = src_port
        self.mss = mss
        self.window = window
        self.service_cycles = service_cycles
        self.wire_cycles = wire_cycles
        self.rto_cycles = rto_cycles

        # Optional sender-side congestion control (see repro.tcp.cc).
        # The peer itself is the flow object: the strategy reads and
        # writes ``self.cwnd`` / ``self.ssthresh``.
        self.cc = make_cc(congestion_control)
        self.cwnd = 0  # 0 = no congestion window (legacy behaviour)
        self.ssthresh = 65535
        self.dup_acks = 0
        self.fast_retransmits = 0

        self.iss = iss
        self.snd_nxt = iss
        self.snd_una = iss
        self.rcv_nxt = 0
        self.peer_window = 65535
        self.established = False
        self.fin_sent = False

        self.send_stream = bytearray()  # bytes waiting to go out
        self.sent_unacked = bytearray()  # retransmission window
        self.received = bytearray()
        self.on_data = None  # optional callback(bytes, cycle)

        self._inbox: deque | None = None  # set by PeerNetwork.register
        self._tx_free = 0
        self._ack_pending = False
        self._syn_sent = False
        self._last_tx_cycle = 0
        self.segments_sent = 0
        self.retransmits = 0

    # -- public API --------------------------------------------------------------

    def connect(self) -> None:
        """Start the active open on the next step."""
        self._connect_requested = True

    _connect_requested = False

    def send(self, data: bytes) -> None:
        self.send_stream.extend(data)

    def close(self) -> None:
        self._close_requested = True

    _close_requested = False

    @property
    def bytes_acked(self) -> int:
        return seq_diff(self.snd_una, seq_add(self.iss, 1))

    def _roll_back(self) -> None:
        """Go-back-N on a detected loss: the server discards
        out-of-order segments, so every byte past the hole is gone and
        must be re-sent.  Re-queue the retransmission window at the
        head of the stream and rewind ``snd_nxt``; the normal data
        path then resends it under the post-loss congestion window."""
        if self.sent_unacked:
            self.send_stream[:0] = self.sent_unacked
            self.sent_unacked.clear()
        self.snd_nxt = self.snd_una

    # -- clocked behaviour --------------------------------------------------------

    def step(self, cycle: int) -> None:
        self._drain_server_frames(cycle)
        self._transmit(cycle)

    def commit(self) -> None:
        pass

    def _drain_server_frames(self, cycle: int) -> None:
        if self._inbox is not None:
            while self._inbox:
                frame, _emit_cycle = self._inbox.popleft()
                self._handle_frame(frame, cycle)
            return
        frames_out = self.design.eth_tx.frames_out
        while frames_out:
            frame, emit_cycle = frames_out.popleft()
            if emit_cycle > cycle:
                frames_out.appendleft((frame, emit_cycle))
                break
            self._handle_frame(frame, cycle)

    def _handle_frame(self, frame: bytes, cycle: int) -> None:
        parsed = parse_frame(frame)
        if parsed.tcp is None or parsed.ip.dst != self.my_ip:
            return
        tcp = parsed.tcp
        if tcp.flag(TCP_SYN) and tcp.flag(TCP_ACK):
            if tcp.ack == seq_add(self.iss, 1):
                self.rcv_nxt = seq_add(tcp.seq, 1)
                self.snd_una = tcp.ack
                self.snd_nxt = tcp.ack
                self.peer_window = tcp.window
                self.established = True
                self._ack_pending = True
                if self.cc is not None:
                    self.cc.on_connect(self, self.mss, cycle)
            return
        payload = parsed.payload
        if tcp.flag(TCP_ACK):
            advance = seq_diff(tcp.ack, self.snd_una)
            if advance > 0:
                del self.sent_unacked[:advance]
                self.snd_una = tcp.ack
                self.dup_acks = 0
                if self.cc is not None:
                    self.cc.on_ack(self, advance, self.mss, cycle)
            elif advance == 0 and not payload and self.sent_unacked \
                    and self.cc is not None:
                # Pure duplicate ACK with data outstanding: the
                # server re-ACKed an out-of-order segment, i.e. a
                # packet of ours was lost on the wire.
                self.dup_acks += 1
                if self.dup_acks == 3:
                    self.fast_retransmits += 1
                    self.cc.on_loss(self, len(self.sent_unacked),
                                    self.mss, cycle)
                    self._roll_back()
            self.peer_window = tcp.window
        if payload:
            if tcp.seq == self.rcv_nxt:
                self.received.extend(payload)
                self.rcv_nxt = seq_add(self.rcv_nxt, len(payload))
                if self.on_data is not None:
                    self.on_data(payload, cycle)
            self._ack_pending = True

    def _transmit(self, cycle: int) -> None:
        if cycle < self._tx_free:
            return
        frame = self._next_frame(cycle)
        if frame is None:
            return
        self.design.inject(frame, cycle + self.wire_cycles)
        self.segments_sent += 1
        self._tx_free = cycle + self.service_cycles

    def _next_frame(self, cycle: int) -> bytes | None:
        if self._connect_requested and not self._syn_sent:
            self._syn_sent = True
            self._last_tx_cycle = cycle
            return self._frame(TcpHeader(
                src_port=self.src_port, dst_port=self.server_port,
                seq=self.iss, flags=TCP_SYN, window=self.window,
            ))
        if self._syn_sent and not self.established and \
                cycle - self._last_tx_cycle > self.rto_cycles:
            self._last_tx_cycle = cycle
            self.retransmits += 1
            return self._frame(TcpHeader(
                src_port=self.src_port, dst_port=self.server_port,
                seq=self.iss, flags=TCP_SYN, window=self.window,
            ))
        if not self.established:
            return None
        # Data, window permitting (flow control, and congestion
        # control when a strategy installed a window).
        in_flight = len(self.sent_unacked)
        send_window = self.peer_window
        if self.cc is not None and self.cwnd:
            send_window = min(send_window, self.cwnd)
        room = min(send_window - in_flight, self.mss)
        if self.send_stream and room > 0:
            chunk = bytes(self.send_stream[:room])
            del self.send_stream[:len(chunk)]
            header = TcpHeader(
                src_port=self.src_port, dst_port=self.server_port,
                seq=self.snd_nxt, ack=self.rcv_nxt,
                flags=TCP_ACK | TCP_PSH, window=self.window,
            )
            self.snd_nxt = seq_add(self.snd_nxt, len(chunk))
            self.sent_unacked.extend(chunk)
            self._ack_pending = False
            self._last_tx_cycle = cycle
            return self._frame(header, chunk)
        # Retransmission.
        if self.sent_unacked and \
                cycle - self._last_tx_cycle > self.rto_cycles:
            self.retransmits += 1
            self._last_tx_cycle = cycle
            if self.cc is not None:
                self.cc.on_timeout(self, len(self.sent_unacked),
                                   self.mss, cycle)
                self._roll_back()
                chunk = bytes(self.send_stream[:self.mss])
                del self.send_stream[:len(chunk)]
                header = TcpHeader(
                    src_port=self.src_port, dst_port=self.server_port,
                    seq=self.snd_nxt, ack=self.rcv_nxt,
                    flags=TCP_ACK | TCP_PSH, window=self.window,
                )
                self.snd_nxt = seq_add(self.snd_nxt, len(chunk))
                self.sent_unacked.extend(chunk)
                return self._frame(header, chunk)
            chunk = bytes(self.sent_unacked[:self.mss])
            header = TcpHeader(
                src_port=self.src_port, dst_port=self.server_port,
                seq=self.snd_una, ack=self.rcv_nxt,
                flags=TCP_ACK | TCP_PSH, window=self.window,
            )
            return self._frame(header, chunk)
        if self._close_requested and not self.fin_sent and \
                not self.send_stream and not self.sent_unacked:
            self.fin_sent = True
            header = TcpHeader(
                src_port=self.src_port, dst_port=self.server_port,
                seq=self.snd_nxt, ack=self.rcv_nxt,
                flags=TCP_ACK | TCP_FIN, window=self.window,
            )
            self.snd_nxt = seq_add(self.snd_nxt, 1)
            return self._frame(header)
        if self._ack_pending:
            self._ack_pending = False
            return self._frame(TcpHeader(
                src_port=self.src_port, dst_port=self.server_port,
                seq=self.snd_nxt, ack=self.rcv_nxt,
                flags=TCP_ACK, window=self.window,
            ))
        return None

    def _frame(self, header: TcpHeader, payload: bytes = b"") -> bytes:
        return build_tcp_frame(
            self.my_mac, self.design.server_mac, self.my_ip,
            self.server_ip, header, payload,
        )
