"""The TCP transmit engine tile.

Responsibilities (paper section V-D): separate out buffers for sending,
update the sequence number of the transmitted stream, segmentation
within the peer's flow-control window, and retransmission (timer-driven
go-back-N plus fast retransmit triggered by the receive engine over the
dedicated wires).

The engine writes only the TX half of the flow state.  When building a
segment it reads the receive engine's ``rcv_nxt`` for the ACK field —
the value may be a cycle stale, which the paper shows is equivalent to
the packet having been received slightly later (the asynchrony
argument in section V-D).
"""

from __future__ import annotations

from collections import deque

from repro import params
from repro.noc.mesh import Mesh
from repro.noc.message import NocMessage
from repro.packet.ipv4 import IPPROTO_TCP, IPv4Address, IPv4Header
from repro.packet.tcp import TCP_ACK, TCP_PSH, TCP_SYN, TcpHeader
from repro.tcp.cc import CongestionControl, make_cc
from repro.tcp.flow import FlowTable, seq_add, seq_diff
from repro.tcp.messages import TxGrant, TxReady, TxReserve
from repro.tiles.base import NextHopTable, PacketMeta, Tile
from repro.tiles.buffer import BufferTile


class TcpTxEngineTile(Tile):
    """Server-side TCP transmit processing."""

    KIND = "tcp_tx"

    DEFAULT = "default"

    def __init__(self, name: str, mesh: Mesh, coord: tuple[int, int],
                 flows: FlowTable, tx_buffer: BufferTile,
                 tx_buf_bytes: int = params.TCP_TX_BUFFER_BYTES,
                 mss: int = params.TCP_MSS_BYTES,
                 rto_cycles: int = params.TCP_RTO_CYCLES,
                 congestion_control: bool | str |
                 CongestionControl | None = False,
                 initial_window_mss: int = 2,
                 pipeline_ii: int = params.TCP_ENGINE_PIPELINE_II_CYCLES,
                 **kwargs):
        kwargs.setdefault("occupancy", params.TCP_ENGINE_PER_PACKET_CYCLES)
        super().__init__(name, mesh, coord, **kwargs)
        self.flows = flows
        self.tx_buffer = tx_buffer
        self.tx_buf_bytes = tx_buf_bytes
        self.mss = mss
        self.rto_cycles = rto_cycles
        # Optional congestion control — the paper's engine ships
        # without it ("it does not support ... congestion control")
        # and names it as integration work.  ``congestion_control``
        # resolves through repro.tcp.cc.make_cc: True keeps the
        # historical Reno behaviour; "tahoe"/"reno"/"cubic" pick an
        # algorithm; a CongestionControl instance is used as-is.
        self.cc = make_cc(congestion_control, initial_window_mss)
        self.congestion_control = self.cc is not None
        self.initial_window_mss = initial_window_mss
        # Dedicated-wire calls from the RX engine arrive mid-step
        # without a cycle argument in older call sites; remember the
        # last on_cycle clock so CC time (CUBIC) stays monotone.
        self._last_cycle = 0
        # The engine is pipelined: different flows issue pipeline_ii
        # cycles apart; the same flow waits the full occupancy (its
        # flow-state read-modify-write round-trip).  Section VII-D's
        # multi-connection bandwidth behaviour falls out of this.
        self.pipeline_ii = pipeline_ii
        self._flow_pace: dict[int, int] = {}
        self.next_hop = NextHopTable(name=f"{name}.nexthop")
        self._next_buf_base = 0
        self._iss_counter = 0x1000_0000
        # Control work queued by the RX engine over the dedicated wires.
        self._control: deque[tuple[str, int]] = deque()
        # Flows with a pending (unsatisfiable-yet) reservation.
        self._pending_reserve: dict[int, deque] = {}
        self._rr_flows: deque[int] = deque()
        self._pace_free = 0
        # Statistics
        self.segments_out = 0
        self.pure_acks_out = 0
        self.payload_bytes_out = 0

    # -- dedicated wires from the RX engine ------------------------------------

    def request_synack(self, flow_id: int) -> None:
        tx = self.flows.tx[flow_id]
        if tx.iss == 0:
            self._iss_counter += 0x10000
            tx.iss = self._iss_counter
            tx.snd_nxt = seq_add(tx.iss, 1)
            tx.tx_buf_base = self._next_buf_base
            tx.tx_buf_size = self.tx_buf_bytes
            self._next_buf_base += self.tx_buf_bytes
            self._pending_reserve.setdefault(flow_id, deque())
            self._rr_flows.append(flow_id)
            if self.cc is not None:
                self.cc.on_connect(tx, self.mss, self._last_cycle)
        self._control.append(("synack", flow_id))

    def request_ack(self, flow_id: int) -> None:
        self._control.append(("ack", flow_id))

    def fast_retransmit(self, flow_id: int,
                        cycle: int | None = None) -> None:
        if self.cc is not None:
            tx = self.flows.tx.get(flow_id)
            rx = self.flows.rx.get(flow_id)
            if tx is not None and rx is not None:
                in_flight = max(self.mss, seq_diff(tx.snd_nxt,
                                                   rx.snd_una))
                self.cc.on_loss(tx, in_flight, self.mss,
                                self._now(cycle))
        self._control.append(("fast_rtx", flow_id))

    def on_ack_advance(self, flow_id: int, acked_bytes: int,
                       cycle: int | None = None) -> None:
        """Dedicated-wire notification from the RX engine: new data
        was acknowledged.  Acked bytes free transmit-ring space, so
        any reservation waiting on that space can be granted now (an
        idle engine would otherwise never re-evaluate it); with
        congestion control enabled the window also grows (RFC 5681).
        """
        if flow_id in self._pending_reserve and \
                self._pending_reserve[flow_id]:
            for out in self._grant_reservations(flow_id):
                self.send(out)
        if self.cc is None:
            return
        tx = self.flows.tx.get(flow_id)
        if tx is None:
            return
        self.cc.on_ack(tx, acked_bytes, self.mss, self._now(cycle))

    def _now(self, cycle: int | None) -> int:
        """Cycle for a dedicated-wire event, falling back to the last
        clocked step for legacy callers that pass none."""
        return cycle if cycle is not None else self._last_cycle

    def release_flow(self, flow_id: int) -> None:
        self._pending_reserve.pop(flow_id, None)
        self._flow_pace.pop(flow_id, None)
        if flow_id in self._rr_flows:
            self._rr_flows.remove(flow_id)

    # -- application interface ----------------------------------------------------

    def handle_message(self, message: NocMessage, cycle: int):
        request = message.metadata
        if isinstance(request, TxReserve):
            queue = self._pending_reserve.get(request.flow_id)
            if queue is None:
                return self.drop(message, "unknown flow")
            queue.append([request.size, request.reply_to])
            return self._grant_reservations(request.flow_id)
        if isinstance(request, TxReady):
            tx = self.flows.tx.get(request.flow_id)
            if tx is None:
                return self.drop(message, "unknown flow")
            tx.tx_written += request.size
            return []
        return self.drop(message, "unknown message at TCP TX")

    def service_cycles(self, message: NocMessage) -> int:
        """App-interface bookkeeping (reserve/ready) is a couple of
        state-machine transitions, not a packet traversal."""
        if isinstance(message.metadata, PacketMeta):
            return max(message.n_flits, self.occupancy)
        return max(message.n_flits, 8)

    def _acked_stream(self, flow_id: int) -> int:
        """Stream bytes the peer has acknowledged (frees ring space)."""
        rx = self.flows.rx[flow_id]
        tx = self.flows.tx[flow_id]
        return max(0, seq_diff(rx.snd_una, seq_add(tx.iss, 1)))

    def _grant_reservations(self, flow_id: int) -> list[NocMessage]:
        tx = self.flows.tx[flow_id]
        outputs = []
        queue = self._pending_reserve[flow_id]
        while queue:
            size, reply_to = queue[0]
            free = tx.tx_buf_size - (tx.tx_reserved -
                                     self._acked_stream(flow_id))
            offset = tx.tx_reserved % tx.tx_buf_size
            # Grant whole requests (or ring-boundary splits), never
            # free-space crumbs: fragmenting a reservation into tiny
            # grants floods the engine with bookkeeping messages.
            chunk = min(size, tx.tx_buf_size - offset)
            if free < chunk:
                break
            grant = TxGrant(
                flow_id=flow_id,
                addr=tx.tx_buf_base + offset,
                size=chunk,
                stream_offset=tx.tx_reserved,
            )
            outputs.append(self.make_message(reply_to, metadata=grant))
            tx.tx_reserved += chunk
            if chunk == size:
                queue.popleft()
            else:
                queue[0][0] = size - chunk
        return outputs

    # -- transmission pump -----------------------------------------------------------

    def on_cycle(self, cycle: int) -> None:
        self._last_cycle = cycle
        if cycle < self._pace_free or \
                self.port.tx_backlog >= self.max_tx_backlog:
            return
        message = self._next_transmission(cycle)
        if message is None:
            return
        self.send(message)
        self._pace_free = cycle + max(message.n_flits,
                                      self.pipeline_ii)
        # Retry any reservations that freed ring space unblocks.
        for flow_id in list(self._pending_reserve):
            if self._pending_reserve[flow_id]:
                for out in self._grant_reservations(flow_id):
                    self.send(out)

    def _next_transmission(self, cycle: int) -> NocMessage | None:
        while self._control:
            kind, flow_id = self._control.popleft()
            if flow_id not in self.flows.tx:
                continue
            if kind == "synack":
                self.flows.tx[flow_id].last_tx_cycle = cycle
                return self._build_segment(flow_id, syn=True)
            if kind == "ack":
                self.pure_acks_out += 1
                return self._build_segment(flow_id)
            if kind == "fast_rtx":
                tx = self.flows.tx[flow_id]
                tx.fast_retransmits += 1
                return self._retransmit(flow_id, cycle)
        # Data transmission: round-robin across flows.
        for _ in range(len(self._rr_flows)):
            flow_id = self._rr_flows[0]
            self._rr_flows.rotate(-1)
            message = self._try_send_data(flow_id, cycle)
            if message is not None:
                return message
        # Retransmission timer.
        from repro.tcp.flow import TcpState
        for flow_id in self.flows.tx:
            tx = self.flows.tx[flow_id]
            rx = self.flows.rx.get(flow_id)
            if rx is None or tx.iss == 0:
                continue
            if cycle - tx.last_tx_cycle <= self.rto_cycles:
                continue
            if rx.state == TcpState.SYN_RCVD:
                tx.retransmits += 1
                tx.last_tx_cycle = cycle
                return self._build_segment(flow_id, syn=True)
            in_flight = seq_diff(tx.snd_nxt, rx.snd_una)
            if rx.state in (TcpState.ESTABLISHED, TcpState.CLOSE_WAIT) \
                    and in_flight > 0:
                tx.retransmits += 1
                if self.cc is not None and tx.cwnd:
                    # RTO: the strategy's heavy hammer.
                    self.cc.on_timeout(tx, in_flight, self.mss, cycle)
                return self._retransmit(flow_id, cycle)
        return None

    def _try_send_data(self, flow_id: int,
                       cycle: int) -> NocMessage | None:
        tx = self.flows.tx[flow_id]
        rx = self.flows.rx.get(flow_id)
        if rx is None or tx.iss == 0:
            return None
        if cycle < self._flow_pace.get(flow_id, 0):
            return None  # this flow's state round-trip is in flight
        unsent = tx.tx_written - tx.tx_stream_sent
        if unsent <= 0:
            return None
        in_flight = seq_diff(tx.snd_nxt, rx.snd_una)
        send_window = rx.peer_window
        if self.congestion_control and tx.cwnd:
            send_window = min(send_window, tx.cwnd)
        window_room = send_window - in_flight
        if window_room <= 0:
            return None
        length = min(unsent, window_room, self.mss)
        payload = self._read_ring(tx, tx.tx_stream_sent, length)
        message = self._build_segment(flow_id, payload=payload,
                                      seq=tx.snd_nxt)
        tx.snd_nxt = seq_add(tx.snd_nxt, len(payload))
        tx.last_tx_cycle = cycle
        self._flow_pace[flow_id] = cycle + self.occupancy
        self.payload_bytes_out += len(payload)
        return message

    def _retransmit(self, flow_id: int, cycle: int) -> NocMessage | None:
        """Go-back-N: resend one segment from the oldest unacked byte."""
        tx = self.flows.tx[flow_id]
        rx = self.flows.rx.get(flow_id)
        if rx is None:
            return None
        start = self._acked_stream(flow_id)
        length = min(seq_diff(tx.snd_nxt, rx.snd_una), self.mss)
        if length <= 0:
            return None
        payload = self._read_ring(tx, start, length)
        tx.last_tx_cycle = cycle
        self._flow_pace[flow_id] = cycle + self.occupancy
        return self._build_segment(flow_id, payload=payload,
                                   seq=rx.snd_una)

    def _read_ring(self, tx, stream_offset: int, length: int) -> bytes:
        offset = stream_offset % tx.tx_buf_size
        base = tx.tx_buf_base
        memory = self.tx_buffer.memory
        first = min(length, tx.tx_buf_size - offset)
        data = bytes(memory[base + offset:base + offset + first])
        if first < length:
            data += bytes(memory[base:base + (length - first)])
        return data

    def _build_segment(self, flow_id: int, payload: bytes = b"",
                       syn: bool = False,
                       seq: int | None = None) -> NocMessage | None:
        rx = self.flows.rx.get(flow_id)
        tx = self.flows.tx[flow_id]
        if rx is None:
            return None
        client_ip, client_port, server_ip, server_port = rx.four_tuple
        flags = TCP_ACK
        if syn:
            flags |= TCP_SYN
            seq = tx.iss
        elif payload:
            flags |= TCP_PSH
        if seq is None:
            seq = tx.snd_nxt
        header = TcpHeader(
            src_port=server_port,
            dst_port=client_port,
            seq=seq,
            ack=rx.rcv_nxt,  # read across the dedicated wires
            flags=flags,
            window=min(rx.rx_window, 0xFFFF),  # no window scaling
        )
        ip = IPv4Header(
            src=IPv4Address(server_ip),
            dst=IPv4Address(client_ip),
            protocol=IPPROTO_TCP,
            total_length=20 + header.header_len + len(payload),
        )
        tcp_bytes = header.pack_with_checksum(
            ip.pseudo_header(header.header_len + len(payload)), payload
        )
        meta = PacketMeta(ip=ip, tcp=header)
        dest = self.next_hop.lookup(self.DEFAULT)
        if dest is None:
            return None
        self.segments_out += 1
        return self.make_message(dest, metadata=meta,
                                 data=tcp_bytes + payload)
