"""The TCP receive engine tile.

Responsibilities (paper section V-D): accept connection-setup requests,
determine whether received data is in order, calculate the next ACK,
and process ACKs for the transmitted data (including driving fast
retransmit on the third duplicate ACK).  Out-of-order segments are
dropped and re-ACKed — the engine has no SACK, mirroring the paper.

The engine writes only the RX half of the flow state; it reads the TX
half and signals the transmit engine over dedicated wires
(:meth:`connect_tx` — direct method calls, not NoC messages), because
"every receive path has only one corresponding transmit path, so wires
do not fan out".
"""

from __future__ import annotations

from collections import deque

from repro import params
from repro.noc.mesh import Mesh
from repro.noc.message import NocMessage
from repro.packet.tcp import TCP_ACK, TCP_FIN, TCP_RST, TCP_SYN, TcpHeader
from repro.tcp.flow import (
    FlowTable,
    TcpState,
    seq_add,
    seq_diff,
    seq_ge,
)
from repro.tcp.messages import (
    ConnectionClosed,
    ConnectionNotify,
    RxComplete,
    RxNotify,
    RxRequest,
)
from repro.tiles.base import DestDomain, PacketMeta, Tile
from repro.tiles.buffer import BufferTile


class TcpRxEngineTile(Tile):
    """Server-side TCP receive processing."""

    KIND = "tcp_rx"

    def __init__(self, name: str, mesh: Mesh, coord: tuple[int, int],
                 flows: FlowTable, rx_buffer: BufferTile,
                 rx_buf_bytes: int = params.TCP_RX_BUFFER_BYTES,
                 pipeline_ii: int = params.TCP_ENGINE_PIPELINE_II_CYCLES,
                 **kwargs):
        kwargs.setdefault("occupancy", params.TCP_ENGINE_PER_PACKET_CYCLES)
        super().__init__(name, mesh, coord, **kwargs)
        # Like the TX engine, the RX pipeline issues a new segment
        # every pipeline_ii cycles; the full per-packet occupancy is a
        # *per-flow* state round-trip, which at the receive side is
        # already enforced by the sender's pacing, so segments of
        # different flows interleave freely.
        self.pipeline_ii = pipeline_ii
        self.flows = flows
        self.rx_buffer = rx_buffer
        self.rx_buf_bytes = rx_buf_bytes
        self.listen_ports: dict[int, tuple[int, int]] = {}  # port -> app
        self.tx_engine = None
        self._next_buf_base = 0
        # Per-flow: stream offset already handed to the app via RxNotify.
        self._notified: dict[int, int] = {}
        # Per-flow queue of outstanding (remaining_size, reply_to).
        self._pending: dict[int, deque] = {}
        # Statistics
        self.segments_in = 0
        self.out_of_order_drops = 0
        self.checksum_errors = 0
        self.resets = 0

    def dest_domain(self) -> DestDomain:
        """The RX engine addresses its buffer, every listening app,
        and — data-dependently — per-flow reply destinations carried
        in the requests it services."""
        return DestDomain.of(
            [self.rx_buffer.coord, *self.listen_ports.values()],
            data_dependent=True)

    # -- wiring ---------------------------------------------------------------

    def connect_tx(self, tx_engine) -> None:
        """Attach the dedicated wires to the transmit engine."""
        self.tx_engine = tx_engine

    def listen(self, port: int, app_coord: tuple[int, int]) -> None:
        """Accept connections on ``port`` for the app tile at
        ``app_coord``."""
        self.listen_ports[port] = app_coord

    # -- message handling -------------------------------------------------------

    def handle_message(self, message: NocMessage, cycle: int):
        request = message.metadata
        if isinstance(request, RxRequest):
            return self._handle_rx_request(request)
        if isinstance(request, RxComplete):
            return self._handle_rx_complete(request)
        if isinstance(request, PacketMeta):
            return self._handle_segment(request, message.data, cycle)
        return self.drop(message, "unknown message at TCP RX")

    def service_cycles(self, message) -> int:
        """App-interface messages (RxRequest/RxComplete) are cheap
        state updates; segments occupy the pipelined engine for one
        initiation interval (or their flit stream, if longer)."""
        if isinstance(message.metadata, PacketMeta):
            return max(message.n_flits, self.pipeline_ii)
        return max(message.n_flits, 8)

    # -- segment path -------------------------------------------------------------

    def _handle_segment(self, meta: PacketMeta, data: bytes, cycle: int):
        try:
            tcp, payload = TcpHeader.unpack(data)
        except ValueError:
            return self.drop(None, "malformed TCP")
        l4_len = tcp.header_len + len(payload)
        if not tcp.verify(meta.ip.pseudo_header(l4_len), payload):
            self.checksum_errors += 1
            return []
        self.segments_in += 1
        four_tuple = (int(meta.ip.src), tcp.src_port,
                      int(meta.ip.dst), tcp.dst_port)
        flow_id = self.flows.lookup(four_tuple)

        if tcp.flag(TCP_RST):
            if flow_id is not None:
                self.resets += 1
                self._teardown(flow_id)
            return []

        outputs: list[NocMessage] = []
        if tcp.flag(TCP_SYN) and not tcp.flag(TCP_ACK):
            self._handle_syn(four_tuple, tcp, meta, flow_id)
            return []
        if flow_id is None:
            return []  # no flow and not a SYN: filtered out
        rx = self.flows.rx[flow_id]

        if tcp.flag(TCP_ACK):
            self._process_ack(rx, tcp, outputs, cycle)

        if payload or tcp.flag(TCP_FIN):
            self._process_data(rx, tcp, payload, meta, outputs)

        outputs.extend(self._satisfy_pending(flow_id))
        return outputs

    def _handle_syn(self, four_tuple, tcp: TcpHeader, meta: PacketMeta,
                    flow_id: int | None) -> None:
        if tcp.dst_port not in self.listen_ports:
            return
        if flow_id is None:
            flow_id = self.flows.create(four_tuple)
            if flow_id is None:
                return  # connection table full
            rx = self.flows.rx[flow_id]
            rx.rx_buf_base = self._next_buf_base
            rx.rx_buf_size = self.rx_buf_bytes
            self._next_buf_base += self.rx_buf_bytes
            self._notified[flow_id] = 0
            self._pending[flow_id] = deque()
        rx = self.flows.rx[flow_id]
        # Fresh SYN or SYN retransmission: (re)arm the handshake.
        rx.irs = tcp.seq
        rx.rcv_nxt = seq_add(tcp.seq, 1)
        rx.peer_window = tcp.window
        rx.state = TcpState.SYN_RCVD
        self.tx_engine.request_synack(flow_id)

    def _process_ack(self, rx, tcp: TcpHeader,
                     outputs: list[NocMessage], cycle: int) -> None:
        rx.peer_window = tcp.window
        tx = self.flows.tx[rx.flow_id]
        ack = tcp.ack
        if rx.state == TcpState.SYN_RCVD and \
                ack == seq_add(tx.iss, 1):
            rx.state = TcpState.ESTABLISHED
            rx.snd_una = ack
            app = self.listen_ports.get(rx.four_tuple[3])
            if app is not None:
                notify = ConnectionNotify(
                    flow_id=rx.flow_id, four_tuple=rx.four_tuple,
                    dst_port=rx.four_tuple[3],
                )
                outputs.append(self.make_message(app, metadata=notify))
            return
        if seq_diff(ack, rx.snd_una) > 0 and seq_ge(tx.snd_nxt, ack):
            acked = seq_diff(ack, rx.snd_una)
            rx.snd_una = ack
            rx.dup_acks = 0
            self.tx_engine.on_ack_advance(rx.flow_id, acked, cycle)
        elif ack == rx.snd_una and \
                seq_diff(tx.snd_nxt, rx.snd_una) > 0:
            rx.dup_acks += 1
            if rx.dup_acks == 3:
                self.tx_engine.fast_retransmit(rx.flow_id, cycle)

    def _process_data(self, rx, tcp: TcpHeader, payload: bytes,
                      meta: PacketMeta,
                      outputs: list[NocMessage]) -> None:
        if rx.state not in (TcpState.ESTABLISHED, TcpState.CLOSE_WAIT):
            return
        in_order = tcp.seq == rx.rcv_nxt
        fits = len(payload) <= rx.rx_window
        if payload and in_order and fits:
            self._write_ring(rx, payload)
            rx.rcv_nxt = seq_add(rx.rcv_nxt, len(payload))
        elif payload:
            self.out_of_order_drops += 1
        if tcp.flag(TCP_FIN) and not rx.fin_received:
            if payload:
                fin_in_order = in_order and fits and \
                    seq_add(tcp.seq, len(payload)) == rx.rcv_nxt
            else:
                fin_in_order = tcp.seq == rx.rcv_nxt
            if fin_in_order:
                rx.fin_received = True
                rx.rcv_nxt = seq_add(rx.rcv_nxt, 1)
                rx.state = TcpState.CLOSE_WAIT
                app = self.listen_ports.get(rx.four_tuple[3])
                if app is not None:
                    outputs.append(self.make_message(
                        app,
                        metadata=ConnectionClosed(flow_id=rx.flow_id),
                    ))
        # Always ACK: progress ACK if accepted, duplicate ACK otherwise —
        # the duplicate is what lets the peer fast-retransmit.
        self.tx_engine.request_ack(rx.flow_id)

    def _write_ring(self, rx, payload: bytes) -> None:
        offset = rx.rx_stream_received % rx.rx_buf_size
        base = rx.rx_buf_base
        first = min(len(payload), rx.rx_buf_size - offset)
        memory = self.rx_buffer.memory
        memory[base + offset:base + offset + first] = payload[:first]
        if first < len(payload):
            rest = payload[first:]
            memory[base:base + len(rest)] = rest

    def _teardown(self, flow_id: int) -> None:
        self.flows.release(flow_id)
        self._notified.pop(flow_id, None)
        self._pending.pop(flow_id, None)
        self.tx_engine.release_flow(flow_id)

    # -- application interface ---------------------------------------------------

    def _handle_rx_request(self, request: RxRequest):
        if request.flow_id not in self.flows.rx:
            return []
        self._pending[request.flow_id].append(
            [request.size, request.reply_to]
        )
        return self._satisfy_pending(request.flow_id)

    def _handle_rx_complete(self, request: RxComplete):
        rx = self.flows.rx.get(request.flow_id)
        if rx is not None:
            rx.app_read_offset += request.size
        return []

    def _satisfy_pending(self, flow_id: int) -> list[NocMessage]:
        """Emit RxNotify for any request that data now satisfies."""
        rx = self.flows.rx.get(flow_id)
        if rx is None:
            return []
        outputs = []
        queue = self._pending.get(flow_id)
        while queue:
            size, reply_to = queue[0]
            available = rx.rx_stream_received - self._notified[flow_id]
            if available < size:
                break
            offset = self._notified[flow_id] % rx.rx_buf_size
            chunk = min(size, rx.rx_buf_size - offset)
            notify = RxNotify(
                flow_id=flow_id,
                addr=rx.rx_buf_base + offset,
                size=chunk,
                stream_offset=self._notified[flow_id],
            )
            outputs.append(self.make_message(reply_to, metadata=notify))
            self._notified[flow_id] += chunk
            if chunk == size:
                queue.popleft()
            else:
                queue[0][0] = size - chunk  # wrapped: remainder pending
        return outputs
