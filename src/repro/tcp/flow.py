"""TCP flow state, partitioned by writing engine.

The paper avoids write conflicts between the receive and transmit
engines by dividing flow state into two BRAMs according to which engine
writes the data (section V-D).  We keep the same discipline:
:class:`RxFlowState` is written only by the RX engine,
:class:`TxFlowState` only by the TX engine; each engine may *read* the
other's store (over the dedicated wires between the tiles), tolerating
slightly stale values as the paper's asynchrony argument allows.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

SEQ_MOD = 1 << 32


def seq_add(a: int, b: int) -> int:
    return (a + b) % SEQ_MOD


def seq_diff(a: int, b: int) -> int:
    """a - b in sequence space, interpreted as a signed 32-bit delta."""
    delta = (a - b) % SEQ_MOD
    if delta >= SEQ_MOD // 2:
        delta -= SEQ_MOD
    return delta


def seq_ge(a: int, b: int) -> bool:
    return seq_diff(a, b) >= 0


class TcpState(enum.Enum):
    LISTEN = "listen"
    SYN_RCVD = "syn_rcvd"
    ESTABLISHED = "established"
    CLOSE_WAIT = "close_wait"
    CLOSED = "closed"


FourTuple = tuple  # (client_ip_int, client_port, server_ip_int, server_port)


@dataclass
class RxFlowState:
    """Flow state written by the receive engine only."""

    flow_id: int
    four_tuple: FourTuple
    state: TcpState = TcpState.LISTEN
    irs: int = 0          # initial receive sequence number (client's ISS)
    rcv_nxt: int = 0      # next in-order byte expected = the ACK we send
    snd_una: int = 0      # oldest unacknowledged byte of *our* stream
    peer_window: int = 65535  # latest window advertised by the peer
    dup_acks: int = 0
    # Receive buffering (ring inside a buffer tile region).
    rx_buf_base: int = 0
    rx_buf_size: int = 0
    app_read_offset: int = 0   # stream bytes the app has consumed/freed
    fin_received: bool = False

    @property
    def rx_stream_received(self) -> int:
        """In-order payload bytes received so far (stream offset)."""
        return seq_diff(self.rcv_nxt, seq_add(self.irs, 1)) - (
            1 if self.fin_received else 0
        )

    @property
    def rx_window(self) -> int:
        """Receive window to advertise: free ring space."""
        unread = self.rx_stream_received - self.app_read_offset
        return max(0, self.rx_buf_size - unread)


@dataclass
class TxFlowState:
    """Flow state written by the transmit engine only."""

    flow_id: int
    iss: int = 0          # our initial sequence number
    snd_nxt: int = 0      # next sequence number to send
    # Transmit buffering (ring inside a buffer tile region).
    tx_buf_base: int = 0
    tx_buf_size: int = 0
    tx_written: int = 0     # stream bytes the app has made ready
    tx_reserved: int = 0    # stream bytes granted to the app
    last_tx_cycle: int = 0  # for the retransmission timer
    retransmits: int = 0
    fast_retransmits: int = 0
    # Congestion control (RFC 5681), an optional extension: the
    # paper's engine ships without it and notes it as future work.
    cwnd: int = 0           # 0 = congestion control disabled
    ssthresh: int = 65535

    @property
    def tx_stream_sent(self) -> int:
        return seq_diff(self.snd_nxt, seq_add(self.iss, 1))


class FlowTable:
    """Both engines' stores plus the 4-tuple lookup CAM."""

    def __init__(self, max_flows: int = 16):
        self.max_flows = max_flows
        self.rx: dict[int, RxFlowState] = {}
        self.tx: dict[int, TxFlowState] = {}
        self._by_tuple: dict[FourTuple, int] = {}
        self._next_id = 0

    def lookup(self, four_tuple: FourTuple) -> int | None:
        return self._by_tuple.get(four_tuple)

    def create(self, four_tuple: FourTuple) -> int | None:
        """Allocate a flow id, or None if the CAM is full."""
        if len(self._by_tuple) >= self.max_flows:
            return None
        flow_id = self._next_id
        self._next_id += 1
        self._by_tuple[four_tuple] = flow_id
        self.rx[flow_id] = RxFlowState(flow_id=flow_id,
                                       four_tuple=four_tuple)
        self.tx[flow_id] = TxFlowState(flow_id=flow_id)
        return flow_id

    def release(self, flow_id: int) -> None:
        rx = self.rx.pop(flow_id, None)
        self.tx.pop(flow_id, None)
        if rx is not None:
            self._by_tuple.pop(rx.four_tuple, None)

    def flows(self) -> list[int]:
        return list(self.rx)

    def __len__(self) -> int:
        return len(self._by_tuple)
