"""repro — a Python reproduction of Beehive (MICRO 2024).

Beehive is an FPGA network stack for direct-attached accelerators,
built as protocol/application tiles message-passing over a 2D-mesh
NoC.  This package reproduces the system and its evaluation in
simulation: a flit-accurate NoC and tile model, byte-accurate
protocols (Ethernet/IPv4/UDP/TCP), network functions (NAT, IP-in-IP),
a control plane, compile-time deadlock analysis, design-XML tooling,
the two case-study accelerators (Reed-Solomon, VR witness), every
baseline the paper compares against, and one benchmark per table and
figure.  See DESIGN.md for the substitution map (what the paper ran on
hardware vs. what this package models) and EXPERIMENTS.md for
paper-vs-measured results.

Quick start::

    from repro.designs import UdpEchoDesign, FrameSink
    from repro.packet import build_ipv4_udp_frame, MacAddress, IPv4Address

    design = UdpEchoDesign(udp_port=7)
    design.add_client(IPv4Address("10.0.0.1"),
                      MacAddress("02:00:00:00:00:01"))
    frame = build_ipv4_udp_frame(...)
    design.inject(frame, cycle=0)
    sink = FrameSink(design.eth_tx)
    design.sim.add(sink)
    design.sim.run_until(lambda: sink.count >= 1)
"""

__version__ = "1.0.0"

from repro import params

__all__ = ["params", "__version__"]
