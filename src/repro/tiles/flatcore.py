"""Flat tile engine: batch-step a design's tiles as one kernel component.

``repro.noc.flatmesh`` showed the shape: replace N scheduled Python
objects with one array-of-struct core that keeps a busy bitmask, steps
only the members with work, and preserves the object API through
read-only views.  :class:`FlatTileCore` applies the same recipe to the
tile layer — under the object backend every tile is its own schedule
entry paying kernel dispatch, contract checks, and two ``_pump_*``
method calls per cycle; under the flat backend the whole protocol
pipeline is one entry whose step inlines the pump bodies for tiles in
the busy mask only.

Correctness contract
--------------------

The core replicates :class:`repro.tiles.base.Tile` semantics *exactly*
(same guard order, same counter updates, same tracer events in the same
within-cycle order) so the differential equivalence suite holds
bit-identically across ``tile_backend="object"|"flat"``:

- Tiles stay the source of truth for all mutable state (``_rx_ready``,
  ``_in_service``, ``_buffered_flits``, counters, ...).  The core owns
  only scheduling state: the busy bitmask, per-tile armed deadlines,
  and a timer heap.  Telemetry (``design_counters``, the probe) and the
  fault engine keep reading and mutating tiles directly.
- Adoption order is registration order, and the busy mask is iterated
  LSB-first, so trace events appear in the same order as the object
  backend's per-tile stepping.
- A tile whose class overrides any engine-internal hook (``on_cycle``,
  ``_pump_process``, ...) falls back to *object mode*: the core calls
  its ``step``/``is_idle``/``next_event_cycle`` methods instead of the
  inlined fast path, so application tiles (VR, RS, TCP engines, the
  load balancer) keep working unchanged.  ``handle_message``,
  ``service_cycles``, ``send`` and ``drop`` are always dispatched
  through the instance, so subclass hooks and instance-level patches
  (``hostprof``) fire under both modes.
- Each adopted tile gets a ``_kernel_wake`` hook that sets its busy bit
  (and wakes the core), and the core registers the tiles' ejection
  FIFOs as its own ``wake_sources`` — so frame injection, router
  ejection, and fault thaw re-activate exactly the tiles they touch,
  under both the scheduled and naive kernels.

Scheduling contract (``repro.sim.kernel``): the core reports
``kernel_weight`` equal to the tile count it replaces, lists the tiles
as ``kernel_substeps()`` so the linter treats them as
registered-by-proxy, and implements ``is_idle``/``next_event_cycle``
over its own busy mask and timer heap — mirroring, tile by tile, what
the kernel would have computed for individually registered tiles.
"""

from __future__ import annotations

import heapq
from collections.abc import Iterable

from repro.noc.flit import FlitKind
from repro.noc.message import next_packet_id
from repro.sim.kernel import CycleSimulator, Wakeable
from repro.tiles.base import Tile

_DATA = FlitKind.DATA

# A tile class is eligible for the inlined fast path only if it leaves
# every engine-internal hook untouched.  ``handle_message`` /
# ``service_cycles`` / ``send`` / ``drop`` are instance-dispatched in
# both modes, so overriding them does not disqualify a class.
_ENGINE_HOOKS = (
    "step", "commit", "on_cycle", "is_idle", "next_event_cycle",
    "wake_sources", "_pump_eject", "_pump_process", "_begin_service",
    "_finish_service",
)
_FAST_CLASS_CACHE: dict[type, bool] = {}


def _class_is_fast(cls: type) -> bool:
    fast = _FAST_CLASS_CACHE.get(cls)
    if fast is None:
        fast = all(
            getattr(cls, hook) is getattr(Tile, hook)
            for hook in _ENGINE_HOOKS
        )
        _FAST_CLASS_CACHE[cls] = fast
    return fast


class FlatTileView:
    """Read-only per-tile window into a :class:`FlatTileCore`.

    The adapter the dashboards/probe use to see core-side scheduling
    state (busy bit, armed deadline, dispatch mode) next to the
    tile-side queue state — same pattern as ``flatmesh.FlatRouterView``.
    """

    __slots__ = ("_core", "index")

    def __init__(self, core: FlatTileCore, index: int):
        self._core = core
        self.index = index

    @property
    def tile(self) -> Tile:
        return self._core.tiles[self.index]

    @property
    def name(self) -> str:
        return self.tile.name

    @property
    def kind(self) -> str:
        return getattr(self.tile, "KIND", "generic")

    @property
    def busy(self) -> bool:
        return bool((self._core._busy >> self.index) & 1)

    @property
    def mode(self) -> str:
        """``"fast"`` (inlined pumps) or ``"object"`` (delegated step)."""
        return "fast" if self._core._fast[self.index] else "object"

    @property
    def armed_deadline(self) -> int | None:
        deadline = self._core._deadlines[self.index]
        return None if deadline < 0 else deadline

    @property
    def rx_depth(self) -> int:
        return len(self.tile._rx_ready)

    @property
    def eject_depth(self) -> int:
        return len(self.tile.port.eject_fifo)

    def __repr__(self) -> str:
        return (f"FlatTileView({self.name!r}, kind={self.kind!r}, "
                f"mode={self.mode!r}, busy={self.busy})")


class FlatTileCore(Wakeable):
    """Array-of-struct engine batch-stepping a design's tiles.

    Build with :func:`register_tiles` (or ``adopt`` tiles manually,
    then ``sim.add(core)``).  The core is one clocked component; the
    adopted tiles must *not* also be registered with the simulator —
    the linter's BHV106 flags that double-step.
    """

    def __init__(self, name: str = "flattiles"):
        self.name = name
        self.tiles: list[Tile] = []
        self._fast: list[bool] = []
        # True where the class keeps Tile.service_cycles — the pickup
        # inlines the default instead of a method call.
        self._default_service: list[bool] = []
        self._ports: list = []
        self._ejects: list = []
        self._assemblers: list = []
        # Per-tile hot-path record, indexed by tile bit:
        # (tile, port, eject_fifo, assembler, fast, default_service) —
        # one list lookup per busy tile per cycle instead of six.
        self._fabric: list[tuple] = []
        # Scheduling state: busy bitmask (bit i == tiles[i] must step),
        # per-tile armed deadline (-1 when unarmed), timer heap of
        # (deadline, index) with lazy invalidation — the same shape the
        # kernel uses for individually registered components.
        self._busy = 0
        self._deadlines: list[int] = []
        self._timers: list[tuple[int, int]] = []
        self._index_of: dict[str, int] = {}
        self.by_kind: dict[str, list[int]] = {}

    # -- construction -------------------------------------------------------

    def adopt(self, tile: Tile) -> int:
        """Take over stepping for ``tile``; returns its index."""
        if not isinstance(tile, Tile):
            raise TypeError(f"FlatTileCore can only adopt Tiles, "
                            f"got {type(tile).__name__}")
        index = len(self.tiles)
        bit = 1 << index
        self.tiles.append(tile)
        cls = type(tile)
        self._fast.append(_class_is_fast(cls))
        self._default_service.append(
            cls.service_cycles is Tile.service_cycles)
        self._ports.append(tile.port)
        self._ejects.append(tile.port.eject_fifo)
        self._assemblers.append(tile.port._assembler)
        self._fabric.append((
            tile, tile.port, tile.port.eject_fifo,
            tile.port._assembler, self._fast[index],
            self._default_service[index],
        ))
        self._deadlines.append(-1)
        self._busy |= bit
        self._index_of[tile.name] = index
        self.by_kind.setdefault(getattr(cls, "KIND", "generic"),
                                []).append(index)

        def hook(core=self, bit=bit):
            # Fires on every ejected flit at saturation; the early exit
            # skips the kernel wake when the bit is already set (a set
            # bit means the core is not idle, so it is still scheduled).
            busy = core._busy
            if busy & bit:
                return
            core._busy = busy | bit
            waker = core._kernel_wake
            if waker is not None:
                waker()

        # The tile-side wake hook: push_frame/send/fault-thaw call
        # tile._wake(), the router's ejection lands in the FIFO — both
        # must set the busy bit whether or not the kernel ever wired a
        # waker of its own (it doesn't, under the naive kernel).
        tile._kernel_wake = hook
        tile.port.eject_fifo.add_waker(hook)
        return index

    # -- views --------------------------------------------------------------

    def view(self, tile_or_name) -> FlatTileView:
        if isinstance(tile_or_name, str):
            index = self._index_of[tile_or_name]
        else:
            index = self.tiles.index(tile_or_name)
        return FlatTileView(self, index)

    def views(self) -> list[FlatTileView]:
        return [FlatTileView(self, i) for i in range(len(self.tiles))]

    @property
    def busy_tiles(self) -> int:
        """Population count of the busy mask (telemetry gauge)."""
        return self._busy.bit_count()

    # -- clocked behaviour --------------------------------------------------

    def step(self, cycle: int) -> None:
        timers = self._timers
        if timers and timers[0][0] <= cycle:
            deadlines = self._deadlines
            while timers and timers[0][0] <= cycle:
                deadline, index = heapq.heappop(timers)
                if deadlines[index] == deadline:
                    deadlines[index] = -1
                    self._busy |= 1 << index
        mask = self._busy
        if not mask:
            return
        fabric = self._fabric
        while mask:
            low = mask & -mask
            mask ^= low
            i = low.bit_length() - 1
            t, port, eject, assembler, is_fast, has_default_service = \
                fabric[i]
            if t._fault_frozen:
                continue  # clock gated; stays busy (pinned, like is_idle)
            if not is_fast:
                t.step(cycle)
                if t.is_idle():
                    self._busy &= ~low
                    deadline = t.next_event_cycle()
                    if deadline is not None:
                        self._arm(i, deadline, cycle)
                continue
            # Inlined Tile.step for engine-default tiles: on_cycle is
            # the base no-op, then _pump_eject / _pump_process with the
            # exact guard order and tracer calls of tiles/base.py.
            if eject._items and not port.fault_stalled and \
                    (t._buffered_flits < t.buffer_flits or
                     assembler._active):
                # ``LocalPort.receive`` inlined (its fault_stalled and
                # empty-FIFO checks are the guards above): pop one
                # flit, fault-filter it, feed the reassembler.
                t._buffered_flits += 1
                flit = eject._items.popleft()
                port.flits_ejected += 1
                fault_eject = port._fault_eject
                if fault_eject is not None:
                    flit = fault_eject.filter(flit)
                # Body-DATA flits are ~22 of every 24 at MTU: append
                # the chunk directly and skip the assembler call.
                if (not flit.is_tail and not flit.is_head
                        and flit.kind is _DATA
                        and flit.msg_id == assembler._msg_id
                        and assembler._active):
                    assembler._chunks.append(bytes(flit.payload or b""))
                    message = None
                else:
                    message = assembler.push(flit)
                if message is not None:
                    port.messages_received += 1
                    t._rx_ready.append((cycle, message))
                    tracer = t.tracer
                    if tracer.enabled:
                        tracer.message_received(cycle, t, message)
                        tracer.buffer_level(cycle, t, t._buffered_flits)
            in_service = t._in_service
            if in_service is not None and cycle >= t._emit_at:
                t.messages_in += 1
                t.bytes_in += len(in_service.data)
                buffered = t._buffered_flits - in_service.n_flits
                t._buffered_flits = buffered if buffered > 0 else 0
                if in_service.packet_id is None:
                    in_service.packet_id = next_packet_id()
                t._service_ctx = (in_service, cycle)
                sent_before = t.messages_out
                try:
                    outputs = t.handle_message(in_service, cycle)
                    for out in outputs or []:
                        t.send(out)
                finally:
                    t._service_ctx = None
                tracer = t.tracer
                if tracer.enabled:
                    tracer.processing_end(cycle, t, in_service,
                                          t.messages_out - sent_before)
                    tracer.buffer_level(cycle, t, t._buffered_flits)
                t._in_service = in_service = None
            rx = t._rx_ready
            if (in_service is None and rx and rx[0][0] <= cycle
                    and cycle >= t._engine_free
                    and port.tx_backlog < t.max_tx_backlog):
                message = rx.popleft()[1]
                if has_default_service:
                    n_flits = message.n_flits
                    occupancy = t.occupancy
                    busy_cycles = (n_flits if n_flits > occupancy
                                   else occupancy)
                else:
                    busy_cycles = t.service_cycles(message)
                t._in_service = message
                parse_latency = t.parse_latency
                t._emit_at = cycle + (parse_latency if parse_latency > 1
                                      else 1)
                t._engine_free = cycle + busy_cycles
                tracer = t.tracer
                if tracer.enabled:
                    tracer.processing_start(cycle, t, message)
            # Inlined Tile.is_idle + next_event_cycle, mirroring the
            # kernel's post-step reschedule for the object backend.
            if eject._items or eject._staged:
                continue  # flits to pump (or a full buffer to poll)
            if t._in_service is not None:
                self._busy &= ~low
                self._arm(i, t._emit_at, cycle)
                continue
            if rx:
                if port.tx_backlog < t.max_tx_backlog:
                    tail_cycle = rx[0][0]
                    engine_free = t._engine_free
                    self._busy &= ~low
                    self._arm(i,
                              tail_cycle if tail_cycle > engine_free
                              else engine_free, cycle)
                # else: blocked injection — only port progress (not a
                # wake) unblocks it, so the bit stays set for polling.
                continue
            self._busy &= ~low

    def commit(self) -> None:
        pass  # tile FIFOs are committed by their mesh/port owners

    def _arm(self, index: int, deadline: int, cycle: int) -> None:
        if deadline <= cycle:
            deadline = cycle + 1
        armed = self._deadlines[index]
        if armed != -1 and armed <= deadline:
            return  # an equal-or-earlier (safe) wake is already queued
        self._deadlines[index] = deadline
        heapq.heappush(self._timers, (deadline, index))

    # -- quiescence contract (see repro.sim.kernel) -------------------------

    @property
    def kernel_weight(self) -> int:
        """Effective design size: the schedule entries this replaces."""
        return max(1, len(self.tiles))

    def kernel_substeps(self) -> list:
        """The components this core steps on the kernel's behalf."""
        return list(self.tiles)

    def wake_sources(self):
        """Ejections into any adopted tile re-activate the core."""
        return list(self._ejects)

    def lint_consumed_fifos(self):
        """FIFOs the core itself pops (via the inlined eject pump)."""
        return list(self._ejects)

    def is_idle(self) -> bool:
        return not self._busy

    def next_event_cycle(self) -> int | None:
        timers = self._timers
        deadlines = self._deadlines
        while timers and deadlines[timers[0][1]] != timers[0][0]:
            heapq.heappop(timers)  # lazily drop superseded entries
        if timers:
            return timers[0][0]
        return None

    def __repr__(self) -> str:
        return (f"FlatTileCore({self.name!r}, tiles={len(self.tiles)}, "
                f"busy={self.busy_tiles})")


class ShardTileCores:
    """Per-shard :class:`FlatTileCore` group (sharded flat backend).

    A sharded design's tiles cannot share one core — each shard's
    tiles must step inside that shard's simulator — so
    :func:`register_tiles` builds one core per populated shard and
    returns this aggregate, which exposes the slice of the core
    surface telemetry reads (``busy_tiles``, the views, ``tiles``).
    """

    __slots__ = ("cores",)

    def __init__(self, cores: list[FlatTileCore]):
        self.cores = cores

    @property
    def tiles(self) -> list[Tile]:
        return [tile for core in self.cores for tile in core.tiles]

    @property
    def busy_tiles(self) -> int:
        return sum(core.busy_tiles for core in self.cores)

    def views(self) -> list[FlatTileView]:
        out: list[FlatTileView] = []
        for core in self.cores:
            out.extend(core.views())
        return out

    def view(self, name: str) -> FlatTileView:
        for core in self.cores:
            if name in core._index_of:
                return core.view(name)
        raise KeyError(f"no adopted tile named {name!r}")

    def __repr__(self) -> str:
        return (f"ShardTileCores({len(self.cores)} cores, "
                f"tiles={len(self.tiles)})")


def register_tiles(sim: CycleSimulator, tiles,
                   tile_backend: str = "object"
                   ) -> FlatTileCore | ShardTileCores | None:
    """Register a design's tiles with ``sim`` under a tile backend.

    ``"object"``: every tile is its own scheduled component (the
    classic ``sim.add_all``).  ``"flat"``: all tiles are adopted into
    one :class:`FlatTileCore` registered in their place — same
    registration slot, so within-cycle step order (and therefore every
    trace stream) is preserved bit-identically.

    Returns the core under ``"flat"``, None under ``"object"``; design
    constructors store it as ``self.tile_core``.

    A sharded simulator routes each tile to its owning shard: under
    ``"object"`` the per-tile ``add`` already does that, and under
    ``"flat"`` the tiles are partitioned into one core per populated
    shard (adoption order preserves the design's tile order within
    each shard, which is the reference stepping order restricted to
    that shard) — returned as a :class:`ShardTileCores`.
    """
    if tile_backend not in ("object", "flat"):
        raise ValueError(f"unknown tile backend {tile_backend!r} "
                         "(choose 'object' or 'flat')")
    sequence: Iterable[Tile] = (
        tiles.values() if isinstance(tiles, dict) else tiles)
    if tile_backend == "object":
        sim.add_all(sequence)
        return None
    if getattr(sim, "is_sharded", False):
        by_shard: dict[int, FlatTileCore] = {}
        for tile in sequence:
            shard = sim.shard_of(tile.coord)
            core = by_shard.get(shard)
            if core is None:
                core = by_shard[shard] = FlatTileCore(
                    name=f"flattiles.s{shard}")
            core.adopt(tile)
        cores = [by_shard[shard] for shard in sorted(by_shard)]
        # Add after adoption (like the unsharded path) so the kernel
        # snapshots the full wake_sources/kernel_weight.
        for shard, core in zip(sorted(by_shard), cores):
            sim.sims[shard].add(core)
        return ShardTileCores(cores)
    core = FlatTileCore()
    for tile in sequence:
        core.adopt(tile)
    sim.add(core)
    return core
