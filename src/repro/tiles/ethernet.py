"""Ethernet tiles: the boundary between the transceivers and the NoC.

The RX tile parses and strips the Ethernet (optionally 802.1Q) header,
turning a wire frame into a NoC message routed by ethertype.  The TX
tile prepends a fresh Ethernet header — destination MAC resolved from a
static neighbour table, as in a datacenter stack with ARP suppression —
and hands the frame to the MAC at line rate.
"""

from __future__ import annotations

import math
from collections import deque

from repro import params
from repro.noc.mesh import Mesh
from repro.noc.message import NocMessage, next_packet_id
from repro.packet.ethernet import ETHERTYPE_IPV4, EthernetHeader, MacAddress
from repro.packet.ipv4 import IPv4Address
from repro.tiles.base import DestDomain, NextHopTable, PacketMeta, Tile


class EthernetRxTile(Tile):
    """Parses Ethernet framing and routes by ethertype.

    Frames enter through :meth:`push_frame` (the MAC-facing I/O port the
    paper notes Ethernet tiles keep in addition to their NoC ports).
    """

    KIND = "eth_rx"

    def __init__(self, name: str, mesh: Mesh, coord: tuple[int, int],
                 my_mac: MacAddress | None = None, **kwargs):
        super().__init__(name, mesh, coord, **kwargs)
        self.my_mac = my_mac
        self.next_hop = NextHopTable(name=f"{name}.nexthop")
        self.bad_frames = 0

    def push_frame(self, frame: bytes, cycle: int) -> None:
        """Deliver one wire frame from the MAC (fully arrived at
        ``cycle``)."""
        pseudo = NocMessage(dst=self.coord, src=self.coord, metadata=None,
                            data=frame, n_meta_flits=0,
                            packet_id=next_packet_id())
        self._rx_ready.append((cycle, pseudo))
        self._wake()

    def handle_message(self, message: NocMessage, cycle: int):
        frame = message.data
        try:
            eth, rest = EthernetHeader.unpack(frame)
        except ValueError:
            self.bad_frames += 1
            return self.drop(message, "malformed ethernet")
        if self.my_mac is not None and eth.dst != self.my_mac and \
                eth.dst != MacAddress.broadcast():
            return self.drop(message, "not for us")
        dest = self.next_hop.lookup(eth.ethertype)
        if dest is None:
            return self.drop(message, "no handler for ethertype")
        meta = PacketMeta(eth=eth, ingress_cycle=cycle)
        return [self.make_message(dest, metadata=meta, data=rest)]


class EthernetTxTile(Tile):
    """Prepends Ethernet framing and transmits at line rate.

    Completed frames land in :attr:`frames_out` as ``(frame, cycle)``
    pairs — the MAC-facing output.  ``line_rate_bytes_per_cycle`` models
    the physical link: 50 B/cycle is 100 GbE at 250 MHz; ``None`` leaves
    the NoC's 64 B/cycle as the only limit (the paper's "in simulation"
    configuration that scales to 128 Gbps).
    """

    KIND = "eth_tx"

    def __init__(self, name: str, mesh: Mesh, coord: tuple[int, int],
                 my_mac: MacAddress,
                 line_rate_bytes_per_cycle: float | None = 50.0,
                 emit_to_noc: tuple[int, int] | None = None,
                 **kwargs):
        super().__init__(name, mesh, coord, **kwargs)
        self.my_mac = MacAddress(my_mac)
        self.line_rate = line_rate_bytes_per_cycle
        # An *inner* Ethernet TX tile (e.g. inside a VXLAN overlay)
        # hands its frames to the encapsulation tile over the NoC
        # instead of a MAC.
        self.emit_to_noc = emit_to_noc
        self.neighbor_macs: dict[IPv4Address, MacAddress] = {}
        self.frames_out: deque[tuple[bytes, int]] = deque()
        # MAC-side consumers (FrameSink and friends) register a wake
        # callback here so a newly queued frame re-activates them.
        self.frame_listeners: list = []
        self.frame_bytes_out = 0
        self._line_free = 0

    def add_neighbor(self, ip: IPv4Address, mac: MacAddress) -> None:
        self.neighbor_macs[IPv4Address(ip)] = MacAddress(mac)

    def dest_domain(self) -> DestDomain | None:
        """A MAC-facing TX tile addresses nothing on the NoC; an inner
        (overlay) TX tile addresses exactly its encapsulation tile."""
        if self.emit_to_noc is None:
            return None
        return DestDomain.of((self.emit_to_noc,))

    def handle_message(self, message: NocMessage, cycle: int):
        meta: PacketMeta = message.metadata
        if meta is None or meta.ip is None:
            return self.drop(message, "no IP metadata for framing")
        dst_mac = self.neighbor_macs.get(meta.ip.dst)
        if dst_mac is None:
            return self.drop(message, f"no MAC for {meta.ip.dst}")
        eth = EthernetHeader(dst=dst_mac, src=self.my_mac,
                             ethertype=ETHERTYPE_IPV4)
        frame = eth.pack() + message.data
        if self.emit_to_noc is not None:
            self.frame_bytes_out += len(frame)
            out = NocMessage(dst=self.emit_to_noc, src=self.coord,
                             metadata=meta.clone(), data=frame,
                             n_meta_flits=1)
            return [out]
        emit_cycle = cycle
        if self.line_rate is not None:
            wire_bytes = len(frame) + params.ETHERNET_OVERHEAD_BYTES
            serialize = math.ceil(wire_bytes / self.line_rate)
            emit_cycle = max(cycle, self._line_free)
            self._line_free = emit_cycle + serialize
        self.frames_out.append((frame, emit_cycle))
        self.frame_bytes_out += len(frame)
        for listener in self.frame_listeners:
            listener()
        if meta.ingress_cycle is not None:
            self.last_transit_cycles = emit_cycle - meta.ingress_cycle
        return []

    last_transit_cycles: int | None = None
