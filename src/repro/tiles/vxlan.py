"""VXLAN tiles — the second network-virtualization flavour of the
paper's target stack (Fig 2).

VXLAN rides the *transport* layer, so the overlay gets a complete
duplicated protocol chain: outer UDP RX routes port 4789 to the decap
tile, which validates the VNI and hands the inner Ethernet frame to a
second (inner) Ethernet RX tile; on transmit the inner Ethernet TX
tile hands its frame to the encap tile, which wraps it in VXLAN + the
outer UDP/IP metadata for the outer transmit chain.  This is the
paper's composability thesis at full stretch: a 15-tile stack built by
chaining two whole protocol pipelines through two small tiles, with no
change to any protocol tile.

Each tile keeps a VNI-keyed forwarding table (inner MAC -> remote VTEP
IP) that the control plane can rewrite, like the NAT and IP-in-IP
tables.
"""

from __future__ import annotations

from repro.noc.mesh import Mesh
from repro.noc.message import NocMessage
from repro.packet.ethernet import EthernetHeader, MacAddress
from repro.packet.ipv4 import IPPROTO_UDP, IPv4Address, IPv4Header
from repro.packet.udp import UdpHeader
from repro.packet.vxlan import VXLAN_UDP_PORT, VxlanHeader
from repro.tiles.base import NextHopTable, PacketMeta, Tile, flow_hash


class VxlanDecapTile(Tile):
    """Strips the VXLAN header and forwards the inner frame."""

    KIND = "ipinip"  # same resource class as the other encap tiles

    DEFAULT = "default"

    def __init__(self, name: str, mesh: Mesh, coord: tuple[int, int],
                 **kwargs):
        super().__init__(name, mesh, coord, **kwargs)
        self.known_vnis: set[int] = set()
        self.next_hop = NextHopTable(name=f"{name}.nexthop")
        self.decapsulated = 0
        self.unknown_vni_drops = 0

    def allow_vni(self, vni: int) -> None:
        self.known_vnis.add(vni)

    def handle_message(self, message: NocMessage, cycle: int):
        meta: PacketMeta = message.metadata
        if meta is None or meta.udp is None:
            return self.drop(message, "not UDP-delivered VXLAN")
        try:
            header, inner_frame = VxlanHeader.unpack(message.data)
        except ValueError:
            return self.drop(message, "malformed VXLAN")
        if header.vni not in self.known_vnis:
            self.unknown_vni_drops += 1
            return self.drop(message, f"unknown VNI {header.vni}")
        dest = self.next_hop.lookup(self.DEFAULT)
        if dest is None:
            return self.drop(message, "no inner stack")
        self.decapsulated += 1
        inner_meta = PacketMeta(ingress_cycle=meta.ingress_cycle,
                                flow_hint=header.vni)
        return [self.make_message(dest, metadata=inner_meta,
                                  data=inner_frame)]


class VxlanEncapTile(Tile):
    """Wraps inner frames in VXLAN + outer UDP/IP metadata."""

    KIND = "ipinip"

    DEFAULT = "default"

    def __init__(self, name: str, mesh: Mesh, coord: tuple[int, int],
                 vtep_ip: IPv4Address, vni: int, **kwargs):
        super().__init__(name, mesh, coord, **kwargs)
        self.vtep_ip = IPv4Address(vtep_ip)
        self.vni = vni
        # Inner destination MAC -> remote VTEP physical IP.
        self.vteps: dict[MacAddress, IPv4Address] = {}
        self.next_hop = NextHopTable(name=f"{name}.nexthop")
        self.encapsulated = 0
        self.misses = 0

    def set_vtep(self, inner_mac: MacAddress,
                 vtep_ip: IPv4Address) -> None:
        self.vteps[MacAddress(inner_mac)] = IPv4Address(vtep_ip)

    def handle_message(self, message: NocMessage, cycle: int):
        inner_frame = message.data
        try:
            inner_eth, _ = EthernetHeader.unpack(inner_frame)
        except ValueError:
            return self.drop(message, "malformed inner frame")
        remote = self.vteps.get(inner_eth.dst)
        if remote is None:
            self.misses += 1
            return self.drop(message,
                             f"no VTEP for {inner_eth.dst!r}")
        payload = VxlanHeader(vni=self.vni).pack() + inner_frame
        # RFC 7348: the outer source port carries inner-flow entropy
        # so underlay ECMP spreads overlay flows.
        entropy = 49152 + (flow_hash(
            (int(inner_eth.src), int(inner_eth.dst))) % 16384)
        meta = PacketMeta(
            ip=IPv4Header(src=self.vtep_ip, dst=remote,
                          protocol=IPPROTO_UDP),
            udp=UdpHeader(src_port=entropy, dst_port=VXLAN_UDP_PORT),
            ingress_cycle=(message.metadata.ingress_cycle
                           if isinstance(message.metadata, PacketMeta)
                           else None),
        )
        dest = self.next_hop.lookup(self.DEFAULT)
        if dest is None:
            return self.drop(message, "no outer transmit path")
        self.encapsulated += 1
        return [self.make_message(dest, metadata=meta, data=payload)]
