"""Tiles — the basic Beehive component (paper Fig. 3).

Each tile couples a NoC router with NoC-message construction and
deconstruction logic and a piece of processing logic (a protocol layer,
a network function, or an application).  Tiles also hold the per-hop
packet-level routing tables ("each tile hop determines the next tile",
section IV-D), which the control plane can rewrite at runtime.
"""

from repro.tiles.base import DestDomain, NextHopTable, PacketMeta, Tile
from repro.tiles.ethernet import EthernetRxTile, EthernetTxTile
from repro.tiles.ip import IpRxTile, IpTxTile
from repro.tiles.udp import UdpRxTile, UdpTxTile
from repro.tiles.buffer import BufferReadReq, BufferTile, BufferWriteReq
from repro.tiles.nat import NatRxTile, NatTxTile
from repro.tiles.ipinip import IpInIpDecapTile, IpInIpEncapTile
from repro.tiles.loadbalancer import FlowHashLoadBalancerTile
from repro.tiles.scheduler import RoundRobinSchedulerTile
from repro.tiles.logger import PacketLogTile
from repro.tiles.vxlan import VxlanDecapTile, VxlanEncapTile

__all__ = [
    "BufferReadReq",
    "BufferTile",
    "BufferWriteReq",
    "DestDomain",
    "EthernetRxTile",
    "EthernetTxTile",
    "FlowHashLoadBalancerTile",
    "IpInIpDecapTile",
    "IpInIpEncapTile",
    "IpRxTile",
    "IpTxTile",
    "NatRxTile",
    "NatTxTile",
    "NextHopTable",
    "PacketLogTile",
    "PacketMeta",
    "RoundRobinSchedulerTile",
    "Tile",
    "UdpRxTile",
    "UdpTxTile",
    "VxlanDecapTile",
    "VxlanEncapTile",
]
