"""IP NAT tiles for network virtualization (section V-E).

The NAT holds a virtual-IP <-> physical-IP table that the control plane
rewrites when a client machine migrates.  The RX tile translates the
source address of inbound packets from physical to virtual space; the TX
tile translates the destination of outbound packets from virtual back to
the current physical address.  Both patch the embedded L4 checksum so
downstream validation (and real clients) still pass.
"""

from __future__ import annotations

from repro.noc.mesh import Mesh
from repro.noc.message import NocMessage
from repro.packet.checksum import incremental_update
from repro.packet.ipv4 import IPPROTO_TCP, IPPROTO_UDP, IPv4Address, IPv4Header
from repro.packet.tcp import TcpHeader
from repro.packet.udp import UdpHeader
from repro.tiles.base import NextHopTable, PacketMeta, Tile


class NatTable:
    """A bidirectional virtual<->physical address map."""

    def __init__(self):
        self._virt_to_phys: dict[IPv4Address, IPv4Address] = {}
        self._phys_to_virt: dict[IPv4Address, IPv4Address] = {}

    def set_mapping(self, virtual: IPv4Address,
                    physical: IPv4Address) -> None:
        virtual = IPv4Address(virtual)
        physical = IPv4Address(physical)
        old_phys = self._virt_to_phys.pop(virtual, None)
        if old_phys is not None:
            self._phys_to_virt.pop(old_phys, None)
        self._virt_to_phys[virtual] = physical
        self._phys_to_virt[physical] = virtual

    def to_physical(self, virtual: IPv4Address) -> IPv4Address | None:
        return self._virt_to_phys.get(IPv4Address(virtual))

    def to_virtual(self, physical: IPv4Address) -> IPv4Address | None:
        return self._phys_to_virt.get(IPv4Address(physical))

    def __len__(self) -> int:
        return len(self._virt_to_phys)


def rewrite_l4_checksum(data: bytes, new_ip: IPv4Header,
                        old_ip: IPv4Header | None = None) -> bytes:
    """Patch the UDP/TCP checksum inside ``data`` for new IPs.

    ``data`` is an L4 segment (the NAT tiles sit between IP RX and the
    L4 layer, so the IP header is already in metadata).  Address
    rewriting invalidates the pseudo-header checksum; like a hardware
    NAT, when ``old_ip`` is given the existing checksum is patched with
    an RFC 1624 incremental update over just the changed address words
    — no pass over the payload.  Without ``old_ip`` (or when the
    datagram carries no checksum to patch) the checksum is recomputed
    from scratch over the new pseudo-header.
    """
    if new_ip.protocol == IPPROTO_UDP:
        udp, payload = UdpHeader.unpack(data)
        if old_ip is not None and udp.checksum != 0:
            csum = incremental_update(
                udp.checksum,
                old_ip.src.packed + old_ip.dst.packed,
                new_ip.src.packed + new_ip.dst.packed,
            )
            if csum == 0:
                csum = 0xFFFF  # RFC 768: transmitted 0 means "no checksum"
            udp.checksum = csum
            fixed = udp.pack()
        else:
            fixed = udp.pack_with_checksum(new_ip.pseudo_header(udp.length),
                                           payload)
        return fixed + data[len(fixed):]
    if new_ip.protocol == IPPROTO_TCP:
        tcp, payload = TcpHeader.unpack(data)
        if old_ip is not None:
            tcp.checksum = incremental_update(
                tcp.checksum,
                old_ip.src.packed + old_ip.dst.packed,
                new_ip.src.packed + new_ip.dst.packed,
            )
            return tcp.pack() + payload
        fixed = tcp.pack_with_checksum(
            new_ip.pseudo_header(tcp.header_len + len(payload)), payload
        )
        return fixed + payload
    return data


class _NatTileBase(Tile):
    DEFAULT = "default"

    def __init__(self, name: str, mesh: Mesh, coord: tuple[int, int],
                 table: NatTable | None = None, **kwargs):
        super().__init__(name, mesh, coord, **kwargs)
        self.table = table if table is not None else NatTable()
        self.next_hop = NextHopTable(name=f"{name}.nexthop")
        self.translations = 0
        self.misses = 0

    def _forward(self, message: NocMessage, meta: PacketMeta,
                 data: bytes) -> list:
        dest = self.next_hop.lookup(self.DEFAULT)
        if dest is None:
            return self.drop(message, "no downstream")
        return [self.make_message(dest, metadata=meta, data=data)]


class NatRxTile(_NatTileBase):
    """Inbound: translate the source address physical -> virtual."""

    KIND = "nat"

    def handle_message(self, message: NocMessage, cycle: int):
        meta: PacketMeta = message.metadata
        if meta is None or meta.ip is None:
            return self.drop(message, "no IP metadata")
        virtual = self.table.to_virtual(meta.ip.src)
        if virtual is None:
            self.misses += 1
            return self._forward(message, meta, message.data)
        old_ip = meta.ip
        meta = meta.clone()
        meta.ip = IPv4Header(
            src=virtual, dst=old_ip.dst, protocol=old_ip.protocol,
            total_length=old_ip.total_length, ttl=old_ip.ttl,
            identification=old_ip.identification,
        )
        self.translations += 1
        data = rewrite_l4_checksum(message.data, meta.ip, old_ip=old_ip)
        return self._forward(message, meta, data)


class NatTxTile(_NatTileBase):
    """Outbound: translate the destination address virtual -> physical."""

    KIND = "nat"

    def handle_message(self, message: NocMessage, cycle: int):
        meta: PacketMeta = message.metadata
        if meta is None or meta.ip is None:
            return self.drop(message, "no IP metadata")
        physical = self.table.to_physical(meta.ip.dst)
        if physical is None:
            self.misses += 1
            return self._forward(message, meta, message.data)
        old_ip = meta.ip
        meta = meta.clone()
        meta.ip = IPv4Header(
            src=old_ip.src, dst=physical, protocol=old_ip.protocol,
            total_length=old_ip.total_length, ttl=old_ip.ttl,
            identification=old_ip.identification,
        )
        self.translations += 1
        data = rewrite_l4_checksum(message.data, meta.ip, old_ip=old_ip)
        return self._forward(message, meta, data)
