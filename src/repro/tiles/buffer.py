"""Buffer tiles: blocks of memory reachable over the NoC (section V-C).

Any tile can read or write a buffer tile by sending request messages;
replies are routed back to the requester.  The TCP engine uses buffer
tiles for its receive/transmit windows, and applications retrieve their
request data from them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.noc.mesh import Mesh
from repro.noc.message import NocMessage
from repro.tiles.base import DestDomain, Tile


@dataclass(frozen=True)
class BufferWriteReq:
    """Write ``data`` (in the message body) at ``addr``."""

    addr: int
    reply_to: tuple[int, int] | None = None
    tag: object = None


@dataclass(frozen=True)
class BufferReadReq:
    addr: int
    length: int
    reply_to: tuple[int, int]
    tag: object = None


@dataclass(frozen=True)
class BufferWriteAck:
    addr: int
    length: int
    tag: object = None


@dataclass(frozen=True)
class BufferReadResp:
    addr: int
    tag: object = None


class BufferTile(Tile):
    """A BRAM-backed (DRAM-extensible) shared memory block."""

    KIND = "buffer_tile"

    def __init__(self, name: str, mesh: Mesh, coord: tuple[int, int],
                 size_bytes: int = 256 * 1024, **kwargs):
        kwargs.setdefault("occupancy", 2)
        kwargs.setdefault("parse_latency", 2)
        super().__init__(name, mesh, coord, **kwargs)
        self.size_bytes = size_bytes
        self.memory = bytearray(size_bytes)
        self.reads = 0
        self.writes = 0

    def dest_domain(self) -> DestDomain:
        """Purely data-dependent: every reply goes to the ``reply_to``
        coordinate carried in the request being serviced."""
        return DestDomain.of((), data_dependent=True)

    def _check_range(self, addr: int, length: int) -> bool:
        return 0 <= addr and addr + length <= self.size_bytes

    def handle_message(self, message: NocMessage, cycle: int):
        request = message.metadata
        if isinstance(request, BufferWriteReq):
            data = message.data
            if not self._check_range(request.addr, len(data)):
                return self.drop(message, "write out of range")
            self.memory[request.addr:request.addr + len(data)] = data
            self.writes += 1
            if request.reply_to is None:
                return []
            ack = BufferWriteAck(addr=request.addr, length=len(data),
                                 tag=request.tag)
            return [self.make_message(request.reply_to, metadata=ack)]
        if isinstance(request, BufferReadReq):
            if not self._check_range(request.addr, request.length):
                return self.drop(message, "read out of range")
            self.reads += 1
            chunk = bytes(
                self.memory[request.addr:request.addr + request.length]
            )
            resp = BufferReadResp(addr=request.addr, tag=request.tag)
            return [self.make_message(request.reply_to, metadata=resp,
                                      data=chunk)]
        return self.drop(message, "unknown buffer request")
