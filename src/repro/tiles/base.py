"""The tile framework.

A :class:`Tile` is the paper's basic component (Fig. 3): a NoC router
(reached through a :class:`repro.noc.mesh.LocalPort`), message
construction/deconstruction logic, and processing logic supplied by a
subclass's :meth:`Tile.handle_message`.

Timing model
------------

Tiles are *streaming* engines in the paper; we model them at message
granularity with two calibrated timing knobs that together reproduce the
latency and throughput behaviour the evaluation reports:

- ``parse_latency``: cycles between the tail flit arriving and the
  transformed output beginning to inject (header parse/deparse plus the
  realignment shifter).  Governs per-packet *latency*.
- ``occupancy``: the engine handles one message at a time and is busy
  for ``max(message_flits, occupancy)`` cycles per message.  Governs
  small-packet *throughput* (the paper's UDP stack serialises at ~13.6
  cycles/packet — 9 Gbps of 64 B packets) while large messages stream at
  one flit per cycle and reach line rate.

Backpressure is real: the tile consumes ejected flits only while its
internal buffer has space, a full buffer stops the router's local output,
and a blocked wormhole message then holds its chain of NoC links — which
is what makes the Fig. 5(a) deadlock reproducible in this simulator.
"""

from __future__ import annotations

import zlib
from collections import Counter, deque
from dataclasses import dataclass, replace
from collections.abc import Iterable

from repro import params
from repro.noc.mesh import LocalPort, Mesh
from repro.noc.message import NocMessage, next_packet_id
from repro.sim.kernel import Wakeable
from repro.telemetry.trace import NULL_TRACER
from repro.packet.ethernet import EthernetHeader
from repro.packet.ipv4 import IPv4Header
from repro.packet.tcp import TcpHeader
from repro.packet.udp import UdpHeader


@dataclass
class PacketMeta:
    """Parsed-header metadata carried in a NoC message's metadata flit.

    Each protocol tile fills in (RX) or consumes (TX) its layer.  The
    ``outer_ip`` slot holds the encapsulating header for IP-in-IP
    traffic.  ``ingress_cycle`` is the Ethernet-layer timestamp used by
    the latency microbenchmark and the logging tiles.
    """

    eth: EthernetHeader | None = None
    ip: IPv4Header | None = None
    outer_ip: IPv4Header | None = None
    udp: UdpHeader | None = None
    tcp: TcpHeader | None = None
    ingress_cycle: int | None = None
    flow_hint: object = None  # app/scheduler cookie (e.g. shard id)

    def clone(self) -> PacketMeta:
        return replace(self)

    def four_tuple(self) -> tuple:
        """(src_ip, dst_ip, src_port, dst_port) for flow hashing."""
        l4 = self.udp or self.tcp
        if self.ip is None or l4 is None:
            raise ValueError("four_tuple needs ip and l4 headers")
        return (int(self.ip.src), int(self.ip.dst),
                l4.src_port, l4.dst_port)


def flow_hash(key: tuple) -> int:
    """Deterministic hash used by the load-balancing hash tables."""
    return zlib.crc32(repr(key).encode()) & 0xFFFFFFFF


@dataclass(frozen=True)
class DestDomain:
    """A tile's declared destination domain — the typed generalisation
    of the ``lint_dest_coords()`` hook.

    ``coords`` is the complete set of mesh coordinates the tile may
    ever address, *including* destinations computed from packet data at
    runtime (Dagger-style RPC dispatch, multi-tenant demux).  A tile
    declares its domain through a ``dest_domain()`` method returning
    one of these; :mod:`repro.analysis.dataflow` joins the declaration
    against the tile's real routing state (``NextHopTable`` entries,
    replica/stack lists) and flags coordinates that can never be
    routed (BHV501), domain entries nothing emits (BHV502), and
    runtime destinations outside the declaration (BHV503).

    ``data_dependent`` marks domains whose concrete destination is
    picked per packet rather than configured up front (flow hashing,
    round-robin scheduling, RPC dispatch) — it documents why the
    domain may be wider than any routing table ever shows.
    """

    coords: tuple[tuple[int, int], ...]
    data_dependent: bool = False

    @classmethod
    def of(cls, coords: Iterable[tuple[int, int]],
           data_dependent: bool = False) -> DestDomain:
        """Normalise any iterable of coordinates into a domain."""
        unique: list[tuple[int, int]] = []
        seen: set[tuple[int, int]] = set()
        for coord in coords:
            key = (int(coord[0]), int(coord[1]))
            if key not in seen:
                seen.add(key)
                unique.append(key)
        return cls(coords=tuple(unique), data_dependent=data_dependent)


class NextHopTable:
    """A tile's packet-level routing component (section IV-D, V-B).

    Maps a match key (ethertype, IP protocol, L4 port, ...) to one or
    more downstream tile coordinates.  Multiple coordinates are load
    balanced round-robin or by flow hash.  Unmatched traffic is dropped,
    per the paper ("any packet that does not have an entry for a next
    hop is dropped").  The control plane rewrites entries at runtime via
    :meth:`set_entry`.
    """

    def __init__(self, name: str = "nexthop", policy: str = "flow_hash"):
        if policy not in ("flow_hash", "round_robin"):
            raise ValueError(f"unknown policy {policy!r}")
        self.name = name
        self.policy = policy
        self._entries: dict[object, list[tuple[int, int]]] = {}
        self._rr: dict[object, int] = {}
        self.drops = 0

    def set_entry(self, key, dests) -> None:
        """Install/replace the destination set for ``key``.

        ``dests`` is one coordinate or a list of coordinates.
        """
        if isinstance(dests, tuple) and len(dests) == 2 and \
                all(isinstance(v, int) for v in dests):
            dests = [dests]
        dests = list(dests)
        if not dests:
            raise ValueError("destination list must be non-empty")
        self._entries[key] = dests
        self._rr.setdefault(key, 0)

    def remove_entry(self, key) -> None:
        self._entries.pop(key, None)

    def keys(self) -> list:
        return list(self._entries)

    def lookup(self, key, flow_key: tuple | None = None) -> tuple | None:
        """The next tile for ``key``, or None (drop) if unmatched."""
        dests = self._entries.get(key)
        if dests is None:
            self.drops += 1
            return None
        if len(dests) == 1:
            return dests[0]
        if self.policy == "flow_hash" and flow_key is not None:
            return dests[flow_hash(flow_key) % len(dests)]
        # set_entry may have shrunk the list since the pointer last
        # advanced, so reduce it modulo the current length first.
        index = self._rr[key] % len(dests)
        self._rr[key] = (index + 1) % len(dests)
        return dests[index]


class Tile(Wakeable):
    """Base class for every Beehive tile.

    Subclasses implement :meth:`handle_message` (transform one input
    message into zero or more outputs) and may override :meth:`on_cycle`
    (source/application behaviour independent of message arrival).

    Scheduling: the base class implements the kernel's quiescence
    contract, so a purely message-driven tile sleeps while it has no
    flits to pump and no engine work, and its timers (``parse_latency``
    emit deadline, engine recovery, future-stamped arrivals) are served
    by the kernel's timer wheel.  A subclass that overrides
    :meth:`on_cycle` is conservatively treated as always active unless
    it also overrides :meth:`is_idle` with its own contract.
    """

    KIND = "generic"  # key into the resource model's cost tables

    # True for tiles whose bounded *dropping* buffer decouples their
    # upstream from their downstream (e.g. the packet log's readback
    # queue): the static deadlock analyzer splits derived streaming
    # chains at such tiles instead of coupling across them.
    CHAIN_BOUNDARY = False

    # Tracing sink (shared no-op unless attach_tracer replaces it).
    tracer = NULL_TRACER

    # Fault injection (repro.faults): True while a scheduled freeze or
    # crash window holds the tile's clock.  Class-level default keeps
    # the un-faulted step to one attribute test; the fault engine
    # shadows it per instance.
    _fault_frozen = False

    def __init__(
        self,
        name: str,
        mesh: Mesh,
        coord: tuple[int, int],
        parse_latency: int = params.TILE_PARSE_LATENCY_CYCLES,
        occupancy: int = params.TILE_MSG_OCCUPANCY_CYCLES,
        buffer_flits: int = 320,
        max_tx_backlog: int = 2,
    ):
        self.name = name
        self.mesh = mesh
        self.coord = coord
        self.port: LocalPort = mesh.attach(coord)
        self.parse_latency = parse_latency
        self.occupancy = occupancy
        self.buffer_flits = buffer_flits
        self.max_tx_backlog = max_tx_backlog

        self._buffered_flits = 0
        # (tail_cycle, msg) pairs; deque because pickup pops the head.
        self._rx_ready: deque[tuple[int, NocMessage]] = deque()
        self._engine_free = 0
        self._emit_at = 0
        self._in_service: NocMessage | None = None
        # (message, cycle) while handle_message runs — lets drop() and
        # send() know which input packet the outputs descend from.
        self._service_ctx: tuple[NocMessage, int] | None = None
        # Statistics
        self.messages_in = 0
        self.messages_out = 0
        self.bytes_in = 0
        self.bytes_out = 0
        self.drops = 0
        self.drop_reasons: Counter = Counter()

    # -- subclass interface ---------------------------------------------------

    def handle_message(self, message: NocMessage,
                       cycle: int) -> Iterable[NocMessage]:
        """Transform one input message into zero or more outputs."""
        raise NotImplementedError

    def on_cycle(self, cycle: int) -> None:
        """Per-cycle hook for tiles that originate traffic."""

    def service_cycles(self, message: NocMessage) -> int:
        """Engine occupancy for one message.  Default: the flit stream
        or the per-packet occupancy, whichever is longer.  Stateful
        tiles override this to charge control messages less than
        packets (e.g. the TCP engines' app-interface bookkeeping)."""
        return max(message.n_flits, self.occupancy)

    # -- helpers --------------------------------------------------------------

    def make_message(self, dst: tuple[int, int], metadata=None,
                     data: bytes = b"") -> NocMessage:
        return NocMessage(dst=dst, src=self.coord, metadata=metadata,
                          data=data)

    def drop(self, message: NocMessage | None, reason: str = "") -> list:
        reason = reason or "unspecified"
        self.drops += 1
        self.drop_reasons[reason] += 1
        if self.tracer.enabled:
            cycle = (self._service_ctx[1]
                     if self._service_ctx is not None else None)
            self.tracer.drop(cycle, self, message, reason)
        return []

    # -- clocked behaviour ----------------------------------------------------

    def step(self, cycle: int) -> None:
        if self._fault_frozen:
            return  # clock gated by an injected freeze/crash window
        self.on_cycle(cycle)
        self._pump_eject(cycle)
        self._pump_process(cycle)

    def commit(self) -> None:
        pass  # the LocalPort (registered separately) commits the FIFOs

    # -- quiescence contract (see repro.sim.kernel) ---------------------------

    def wake_sources(self):
        """Flits ejected by the router re-activate the tile."""
        return (self.port.eject_fifo,)

    def is_idle(self) -> bool:
        """True when ``step`` is provably a no-op until a wake or timer.

        A subclass that overrides :meth:`on_cycle` has per-cycle
        behaviour the base class cannot reason about, so it is reported
        never-idle (always stepped — naive-kernel behaviour) unless it
        supplies its own contract.
        """
        if self._fault_frozen:
            # Pinned active: a frozen tile's timers are stale, so it
            # must not be descheduled against them; the fault engine
            # additionally wakes it at thaw (kernel-wake-safe resume).
            return False
        if type(self).on_cycle is not Tile.on_cycle:
            return False
        eject = self.port.eject_fifo
        if eject._items or eject._staged:
            return False  # flits to pump (or a full buffer to poll)
        if self._in_service is not None:
            return True   # sleeps until the _emit_at timer
        if self._rx_ready:
            # Pickup waits on arrival/engine timers — but a blocked
            # injection queue must be polled, since only the port's
            # progress (not a wake) unblocks it.
            return self.port.tx_backlog < self.max_tx_backlog
        return True

    def next_event_cycle(self) -> int | None:
        """The engine's next self-scheduled deadline, if any."""
        if self._in_service is not None:
            return self._emit_at
        if self._rx_ready:
            tail_cycle = self._rx_ready[0][0]
            if tail_cycle > self._engine_free:
                return tail_cycle
            return self._engine_free
        return None

    def _pump_eject(self, cycle: int) -> None:
        """Consume at most one flit from the router, space permitting.

        A message mid-assembly is always drained to completion (the
        paper's tiles stream; ours must at least not wedge a wormhole
        mid-message); the buffer cap gates the *start* of the next
        message, which is where real backpressure bites.
        """
        if self.port.fault_stalled:
            # Checked before the peek: receive() would return None and
            # the buffered-flit count must not advance for it.
            return
        if self._buffered_flits >= self.buffer_flits and \
                not self.port.mid_message:
            return
        if self.port.eject_fifo.peek() is None:
            return
        self._buffered_flits += 1
        message = self.port.receive()
        if message is not None:
            self._rx_ready.append((cycle, message))
            if self.tracer.enabled:
                self.tracer.message_received(cycle, self, message)
                self.tracer.buffer_level(cycle, self, self._buffered_flits)

    def _pump_process(self, cycle: int) -> None:
        """Run the (serialised) processing engine.

        Pickup happens when the engine is free and the output side has
        room; the transformed outputs emit ``parse_latency`` cycles
        later; the engine then stays busy so consecutive messages are
        spaced ``max(message_flits, occupancy)`` cycles apart — the
        flit stream for large messages, the engine recovery for small
        ones.
        """
        if self._in_service is not None and cycle >= self._emit_at:
            self._finish_service(self._in_service, cycle)
            self._in_service = None
        if (self._in_service is None
                and self._rx_ready
                and self._rx_ready[0][0] <= cycle
                and cycle >= self._engine_free
                and self.port.tx_backlog < self.max_tx_backlog):
            _tail_cycle, message = self._rx_ready.popleft()
            self._begin_service(message, cycle,
                                self.service_cycles(message))

    def _begin_service(self, message: NocMessage, cycle: int,
                       busy_cycles: int) -> None:
        """Engine pickup: occupy the engine for ``busy_cycles``."""
        self._in_service = message
        self._emit_at = cycle + max(1, self.parse_latency)
        self._engine_free = cycle + busy_cycles
        if self.tracer.enabled:
            self.tracer.processing_start(cycle, self, message)

    def _finish_service(self, message: NocMessage, cycle: int) -> None:
        self.messages_in += 1
        self.bytes_in += len(message.data)
        self._buffered_flits = max(
            0, self._buffered_flits - message.n_flits
        )
        if message.packet_id is None:
            message.packet_id = next_packet_id()
        self._service_ctx = (message, cycle)
        sent_before = self.messages_out
        try:
            outputs = self.handle_message(message, cycle)
            for out in outputs or []:
                self.send(out)
        finally:
            self._service_ctx = None
        if self.tracer.enabled:
            self.tracer.processing_end(cycle, self, message,
                                       self.messages_out - sent_before)
            self.tracer.buffer_level(cycle, self, self._buffered_flits)

    def send(self, message: NocMessage) -> None:
        """Queue an output message for injection.

        Outputs emitted while an input is in service inherit its
        ``packet_id`` (the end-to-end correlation id tracing spans are
        stitched by); source-originated messages get a fresh one.
        """
        if message.packet_id is None:
            if self._service_ctx is not None:
                message.packet_id = self._service_ctx[0].packet_id
            else:
                message.packet_id = next_packet_id()
        self.messages_out += 1
        self.bytes_out += len(message.data)
        self.port.send(message)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r}@{self.coord})"
