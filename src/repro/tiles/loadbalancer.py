"""The front-end load-balancer tile of the multi-stack design (Fig 12).

Splits incoming flows evenly across duplicated network stacks.  Its
service time is the paper's: 3 cycles of NoC message for a 64 B packet
plus 1 recovery cycle — 4 cycles/packet, capping it at 32 Gbps for 64 B
UDP packets (section VII-I).
"""

from __future__ import annotations

from repro import params
from repro.noc.mesh import Mesh
from repro.noc.message import NocMessage, next_packet_id
from repro.packet.ethernet import EthernetHeader
from repro.packet.ipv4 import IPPROTO_TCP, IPPROTO_UDP, IPv4Header
from repro.packet.tcp import TcpHeader
from repro.packet.udp import UdpHeader
from repro.tiles.base import DestDomain, Tile, flow_hash


class FlowHashLoadBalancerTile(Tile):
    """Distributes raw frames across replicated stack ingress tiles.

    Frames enter through :meth:`push_frame` (it sits at the MAC) and are
    forwarded, untouched, to one of the registered ingress tiles chosen
    by 4-tuple flow hash (falling back to round-robin for non-IP
    traffic), so stateful flows always hit the same stack instance.
    """

    KIND = "load_balancer"

    def __init__(self, name: str, mesh: Mesh, coord: tuple[int, int],
                 **kwargs):
        kwargs.setdefault("parse_latency", 2)
        kwargs.setdefault("occupancy", 0)  # service time = flits + recovery
        super().__init__(name, mesh, coord, **kwargs)
        self.stacks: list[tuple[int, int]] = []
        self._rr = 0

    def add_stack(self, ingress_coord: tuple[int, int]) -> None:
        self.stacks.append(ingress_coord)

    def lint_dest_coords(self) -> list[tuple[int, int]]:
        """Static-lint hook: frames may go to any registered stack."""
        return list(self.stacks)

    def dest_domain(self) -> DestDomain:
        """Declared destination domain: the flow hash picks a stack per
        packet, but never anything outside the registered list."""
        return DestDomain.of(self.stacks, data_dependent=True)

    def push_frame(self, frame: bytes, cycle: int) -> None:
        pseudo = NocMessage(dst=self.coord, src=self.coord, metadata=None,
                            data=frame, n_meta_flits=0,
                            packet_id=next_packet_id())
        self._rx_ready.append((cycle, pseudo))
        self._wake()

    def _pump_process(self, cycle: int) -> None:
        # Same engine as Tile, but the per-packet service time is the
        # paper's flits + 1 recovery cycle rather than max(flits, occ).
        if self._in_service is not None and cycle >= self._emit_at:
            self._finish_service(self._in_service, cycle)
            self._in_service = None
        if (self._in_service is None
                and self._rx_ready
                and self._rx_ready[0][0] <= cycle
                and cycle >= self._engine_free
                and self.port.tx_backlog < self.max_tx_backlog):
            _tail, message = self._rx_ready.popleft()
            self._begin_service(
                message, cycle,
                message.n_flits + params.LOAD_BALANCER_RECOVERY_CYCLES,
            )

    def _pick(self, frame: bytes) -> tuple[int, int] | None:
        if not self.stacks:
            return None
        try:
            eth, rest = EthernetHeader.unpack(frame)
            ip, l4 = IPv4Header.unpack(rest)
            if ip.protocol == IPPROTO_UDP:
                l4_hdr, _ = UdpHeader.unpack(l4)
            elif ip.protocol == IPPROTO_TCP:
                l4_hdr, _ = TcpHeader.unpack(l4)
            else:
                raise ValueError("no l4")
            key = (int(ip.src), int(ip.dst),
                   l4_hdr.src_port, l4_hdr.dst_port)
            return self.stacks[flow_hash(key) % len(self.stacks)]
        except ValueError:
            choice = self.stacks[self._rr % len(self.stacks)]
            self._rr += 1
            return choice

    def handle_message(self, message: NocMessage, cycle: int):
        dest = self._pick(message.data)
        if dest is None:
            return self.drop(message, "no stacks registered")
        # A raw frame is forwarded with no metadata flit: 3 flits for a
        # 64 B UDP packet, matching the paper's cycle accounting.
        out = NocMessage(dst=dest, src=self.coord, data=message.data,
                         n_meta_flits=0)
        return [out]
