"""Logging tiles (section V-F).

A :class:`PacketLogTile` is inserted into a processing chain (the paper
puts them between the TCP and IP layers): it forwards traffic unchanged
while recording a cycle-timestamped summary of each packet's headers
into a ring buffer.  The log is read back over the network: the L4 RX
tile routes requests on the log's UDP port here, and the tile answers
one entry per request (requests are queued in a small buffer and
dropped when it overflows, exactly as the paper describes — the client
re-requests missing entries).

Entries carry the exact cycle timestamps needed by the trace-replay
framework in :mod:`repro.telemetry.replay`.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.noc.mesh import Mesh
from repro.noc.message import NocMessage
from repro.tiles.base import NextHopTable, PacketMeta, Tile


@dataclass(frozen=True)
class LogEntry:
    """One logged packet: cycle timestamp + header summary."""

    cycle: int
    direction: str  # "rx" or "tx" relative to the protected engine
    summary: str
    seq: int | None = None
    ack: int | None = None
    flags: str = ""
    length: int = 0

    MAX_WIRE_LEN = 64

    def pack(self) -> bytes:
        """Fixed-width wire encoding used by the UDP readback protocol."""
        # ';' separates fields ('|' appears inside TCP flag strings).
        text = f"{self.direction};{self.flags};{self.summary}"
        blob = text.encode()[: self.MAX_WIRE_LEN]
        return struct.pack(
            "!QIIH", self.cycle,
            (self.seq or 0) & 0xFFFFFFFF,
            (self.ack or 0) & 0xFFFFFFFF,
            self.length,
        ) + blob

    @classmethod
    def unpack(cls, data: bytes) -> LogEntry:
        cycle, seq, ack, length = struct.unpack_from("!QIIH", data)
        text = data[18:].decode()
        direction, flags, summary = text.split(";", 2)
        return cls(cycle=cycle, direction=direction, summary=summary,
                   seq=seq, ack=ack, flags=flags, length=length)


@dataclass(frozen=True)
class LogReadReq:
    """NoC-level log read: entry ``index`` to ``reply_to``."""

    index: int
    reply_to: tuple[int, int]
    tag: object = None


@dataclass(frozen=True)
class LogReadResp:
    index: int
    total: int
    entry: LogEntry | None
    tag: object = None


class PacketLogTile(Tile):
    """A pass-through tap that logs headers with cycle timestamps."""

    KIND = "log_tile"

    # The bounded, *dropping* request buffer decouples the readback
    # path from the forward path (section V-F), so derived streaming
    # chains split here — matching the segmented chains the logged
    # designs declare.
    CHAIN_BOUNDARY = True

    FORWARD = "forward"

    def __init__(self, name: str, mesh: Mesh, coord: tuple[int, int],
                 direction: str = "rx", capacity: int = 4096,
                 request_buffer: int = 8,
                 readback_port: int | None = None, **kwargs):
        kwargs.setdefault("occupancy", 4)
        kwargs.setdefault("parse_latency", 2)
        super().__init__(name, mesh, coord, **kwargs)
        self.direction = direction
        self.readback_port = readback_port
        self.capacity = capacity
        self.entries: list[LogEntry] = []
        self.request_buffer = request_buffer
        self.dropped_requests = 0
        self.next_hop = NextHopTable(name=f"{name}.nexthop")

    # -- logging ---------------------------------------------------------

    def _record(self, meta: PacketMeta | None, data: bytes,
                cycle: int) -> None:
        length = len(data)
        seq = ack = None
        flags = ""
        summary = "?"
        if meta is not None:
            tcp = meta.tcp
            if tcp is None and meta.ip is not None and \
                    meta.ip.protocol == 6:
                # Below the TCP layer (the paper's placement between the
                # TCP and IP tiles) the header is still in the payload:
                # parse it here, like the hardware logging tile does.
                from repro.packet.tcp import TcpHeader
                try:
                    tcp, _ = TcpHeader.unpack(data)
                except ValueError:
                    tcp = None
            udp = meta.udp
            if udp is None and tcp is None and meta.ip is not None \
                    and meta.ip.protocol == 17:
                from repro.packet.udp import UdpHeader
                try:
                    udp, _ = UdpHeader.unpack(data)
                except ValueError:
                    udp = None
            if tcp is not None:
                seq, ack = tcp.seq, tcp.ack
                flags = tcp.describe_flags()
                summary = f"tcp {tcp.src_port}->{tcp.dst_port}"
            elif udp is not None:
                summary = f"udp {udp.src_port}->{udp.dst_port}"
            elif meta.udp is not None:
                summary = (f"udp {meta.udp.src_port}->{meta.udp.dst_port}")
            elif meta.ip is not None:
                summary = f"ip proto {meta.ip.protocol}"
        entry = LogEntry(cycle=cycle, direction=self.direction,
                         summary=summary, seq=seq, ack=ack, flags=flags,
                         length=length)
        if len(self.entries) >= self.capacity:
            self.entries.pop(0)
        self.entries.append(entry)

    # -- message handling --------------------------------------------------

    READBACK = "readback"

    def handle_message(self, message: NocMessage, cycle: int):
        request = message.metadata
        if isinstance(request, LogReadReq):
            return self._serve_read(request)
        meta = request if isinstance(request, PacketMeta) else None
        if meta is not None and meta.udp is not None and \
                self.READBACK in self.next_hop.keys():
            # The paper's section V-F flow: the L4 RX tile directed a
            # UDP packet on the log's port here; serve one entry back
            # over the network.
            return self._serve_udp_read(meta, message.data)
        # Data-plane traffic: log and forward unchanged.  Traffic on
        # the log's own readback port is control, not workload — skip
        # it so read requests don't pollute the trace being read.
        if not self._is_readback_traffic(meta, message.data):
            self._record(meta, message.data, cycle)
        dest = self.next_hop.lookup(self.FORWARD)
        if dest is None:
            return self.drop(message, "no forward destination")
        return [self.make_message(dest, metadata=message.metadata,
                                  data=message.data)]

    def _is_readback_traffic(self, meta: PacketMeta | None,
                             data: bytes) -> bool:
        if self.readback_port is None or meta is None:
            return False
        udp = meta.udp
        if udp is None and meta.ip is not None and \
                meta.ip.protocol == 17:
            from repro.packet.udp import UdpHeader
            try:
                udp, _ = UdpHeader.unpack(data)
            except ValueError:
                return False
        return udp is not None and udp.dst_port == self.readback_port

    def _serve_udp_read(self, meta: PacketMeta, payload: bytes):
        """Network-facing readback: request = 4-byte entry index;
        response = (index, total count, packed entry | empty).  The
        client reads an entry at a time and re-requests entries whose
        responses never arrive, as the paper describes."""
        if self.request_buffer <= 0:
            self.dropped_requests += 1
            return []
        if len(payload) < 4:
            return self.drop(None, "short log read request")
        index = struct.unpack_from("!I", payload)[0]
        body = struct.pack("!II", index, len(self.entries))
        if 0 <= index < len(self.entries):
            body += self.entries[index].pack()
        from repro.packet.ipv4 import IPPROTO_UDP, IPv4Header
        from repro.packet.udp import UdpHeader
        reply_meta = PacketMeta(
            ip=IPv4Header(src=meta.ip.dst, dst=meta.ip.src,
                          protocol=IPPROTO_UDP),
            udp=UdpHeader(src_port=meta.udp.dst_port,
                          dst_port=meta.udp.src_port),
        )
        dest = self.next_hop.lookup(self.READBACK)
        return [self.make_message(dest, metadata=reply_meta,
                                  data=body)]

    def _serve_read(self, request: LogReadReq) -> list:
        if self.request_buffer <= 0:
            self.dropped_requests += 1
            return []
        entry = None
        if 0 <= request.index < len(self.entries):
            entry = self.entries[request.index]
        resp = LogReadResp(index=request.index, total=len(self.entries),
                           entry=entry, tag=request.tag)
        data = entry.pack() if entry is not None else b""
        return [self.make_message(request.reply_to, metadata=resp,
                                  data=data)]
