"""The round-robin front-end scheduler tile (section VI-A).

The Reed-Solomon accelerator is stateless, so any request can go to any
replica; this tile parcels requests round-robin across the registered
application tiles.  (Stateful applications like the VR witness are
instead distributed by destination port in the UDP RX table.)
"""

from __future__ import annotations

from repro.noc.mesh import Mesh
from repro.noc.message import NocMessage
from repro.tiles.base import DestDomain, Tile


class RoundRobinSchedulerTile(Tile):
    """Forwards each incoming message to the next replica in turn."""

    KIND = "load_balancer"

    def __init__(self, name: str, mesh: Mesh, coord: tuple[int, int],
                 **kwargs):
        kwargs.setdefault("parse_latency", 2)
        kwargs.setdefault("occupancy", 4)
        super().__init__(name, mesh, coord, **kwargs)
        self.replicas: list[tuple[int, int]] = []
        self._rr = 0

    def add_replica(self, coord: tuple[int, int]) -> None:
        self.replicas.append(coord)

    def lint_dest_coords(self) -> list[tuple[int, int]]:
        """Static-lint hook: requests may go to any registered replica."""
        return list(self.replicas)

    def dest_domain(self) -> DestDomain:
        """Declared destination domain: round-robin walks the replica
        list and never leaves it."""
        return DestDomain.of(self.replicas, data_dependent=True)

    def handle_message(self, message: NocMessage, cycle: int):
        if not self.replicas:
            return self.drop(message, "no replicas registered")
        dest = self.replicas[self._rr % len(self.replicas)]
        self._rr += 1
        return [self.make_message(dest, metadata=message.metadata,
                                  data=message.data)]
