"""UDP tiles.

RX parses/strips the UDP header, validates the pseudo-header checksum,
and routes by destination port through the control-plane-rewritable hash
table — this table is also how replicated application tiles are load
balanced and how log-readback ports reach logging tiles.  TX builds the
UDP header (with checksum) around the application payload.
"""

from __future__ import annotations

from repro.noc.mesh import Mesh
from repro.noc.message import NocMessage
from repro.packet import udp as udp_mod
from repro.packet.udp import UdpHeader
from repro.tiles.base import NextHopTable, PacketMeta, Tile


class UdpRxTile(Tile):
    """Parses UDP, validates the checksum, routes by destination port."""

    KIND = "udp_rx"

    def __init__(self, name: str, mesh: Mesh, coord: tuple[int, int],
                 **kwargs):
        super().__init__(name, mesh, coord, **kwargs)
        self.next_hop = NextHopTable(name=f"{name}.nexthop")
        self.checksum_errors = 0

    def handle_message(self, message: NocMessage, cycle: int):
        meta: PacketMeta = message.metadata
        if meta is None or meta.ip is None:
            return self.drop(message, "no IP metadata")
        try:
            udp, payload = UdpHeader.unpack(message.data)
        except ValueError:
            return self.drop(message, "malformed UDP")
        if not udp.verify(meta.ip.pseudo_header(udp.length), payload):
            self.checksum_errors += 1
            return self.drop(message, "UDP checksum mismatch")
        meta = meta.clone()
        meta.udp = udp
        dest = self.next_hop.lookup(udp.dst_port,
                                    flow_key=meta.four_tuple())
        if dest is None:
            return self.drop(message, f"no app on port {udp.dst_port}")
        return [self.make_message(dest, metadata=meta, data=payload)]


class UdpTxTile(Tile):
    """Builds the UDP header (with checksum) and forwards to IP TX."""

    KIND = "udp_tx"

    DEFAULT = "default"

    def __init__(self, name: str, mesh: Mesh, coord: tuple[int, int],
                 **kwargs):
        super().__init__(name, mesh, coord, **kwargs)
        self.next_hop = NextHopTable(name=f"{name}.nexthop")

    def handle_message(self, message: NocMessage, cycle: int):
        meta: PacketMeta = message.metadata
        if meta is None or meta.ip is None or meta.udp is None:
            return self.drop(message, "missing IP/UDP metadata")
        payload = message.data
        udp = UdpHeader(
            src_port=meta.udp.src_port,
            dst_port=meta.udp.dst_port,
            length=udp_mod.HEADER_LEN + len(payload),
        )
        udp_bytes = udp.pack_with_checksum(
            meta.ip.pseudo_header(udp.length), payload
        )
        meta = meta.clone()
        meta.udp = udp
        dest = self.next_hop.lookup(self.DEFAULT)
        if dest is None:
            return self.drop(message, "no downstream for UDP TX")
        return [self.make_message(dest, metadata=meta,
                                  data=udp_bytes + payload)]
