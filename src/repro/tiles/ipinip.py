"""IP-in-IP encapsulation tiles for network virtualization (section V-E).

Encap (TX direction) sits after the inner IP TX tile: it owns the
virtual-IP -> physical-IP table, wraps the inner packet's metadata with
an outer header, and forwards to a *second* IP TX tile that prepends the
outer header bytes.  Decap (RX direction) sits after the first IP RX
tile (which parsed the outer header, protocol 4): it validates the
tunnel endpoint and forwards to a second IP RX tile that parses the
inner header.  Duplicating the IP tiles rather than looping back is the
paper's resource-ordering fix for repeated headers (section IV-E).
"""

from __future__ import annotations

from repro.noc.mesh import Mesh
from repro.noc.message import NocMessage
from repro.packet.ipv4 import IPPROTO_IPIP, IPv4Address, IPv4Header
from repro.tiles.base import NextHopTable, PacketMeta, Tile


class IpInIpEncapTile(Tile):
    """Wraps outbound packets in an outer IP header (virtual->physical)."""

    KIND = "ipinip"

    DEFAULT = "default"

    def __init__(self, name: str, mesh: Mesh, coord: tuple[int, int],
                 tunnel_src: IPv4Address, **kwargs):
        super().__init__(name, mesh, coord, **kwargs)
        self.tunnel_src = IPv4Address(tunnel_src)
        self.endpoints: dict[IPv4Address, IPv4Address] = {}
        self.next_hop = NextHopTable(name=f"{name}.nexthop")
        self.encapsulated = 0
        self.misses = 0
        # Outer headers repeat per (endpoint, size): keep one immutable
        # instance each so the downstream IP TX pack hits the template
        # cache (checksum patched incrementally) instead of rebuilding
        # and re-summing the header for every packet.
        self._outer_cache: dict[tuple[IPv4Address, int], IPv4Header] = {}

    def set_endpoint(self, virtual_dst: IPv4Address,
                     physical_dst: IPv4Address) -> None:
        self.endpoints[IPv4Address(virtual_dst)] = IPv4Address(physical_dst)

    def handle_message(self, message: NocMessage, cycle: int):
        meta: PacketMeta = message.metadata
        if meta is None or meta.ip is None:
            return self.drop(message, "no IP metadata")
        physical = self.endpoints.get(meta.ip.dst)
        if physical is None:
            self.misses += 1
            return self.drop(message, f"no tunnel for {meta.ip.dst}")
        outer = self._outer_cache.get((physical, len(message.data)))
        if outer is None:
            outer = IPv4Header(
                src=self.tunnel_src,
                dst=physical,
                protocol=IPPROTO_IPIP,
                total_length=20 + len(message.data),
            )
            if len(self._outer_cache) >= 1024:
                self._outer_cache.clear()
            self._outer_cache[(physical, len(message.data))] = outer
        meta = meta.clone()
        meta.outer_ip = meta.ip
        meta.ip = outer
        self.encapsulated += 1
        dest = self.next_hop.lookup(self.DEFAULT)
        if dest is None:
            return self.drop(message, "no downstream")
        return [self.make_message(dest, metadata=meta, data=message.data)]


class IpInIpDecapTile(Tile):
    """Validates the tunnel endpoint of inbound IP-in-IP packets."""

    KIND = "ipinip"

    DEFAULT = "default"

    def __init__(self, name: str, mesh: Mesh, coord: tuple[int, int],
                 tunnel_endpoints: set | None = None, **kwargs):
        super().__init__(name, mesh, coord, **kwargs)
        self.tunnel_endpoints = {
            IPv4Address(ip) for ip in (tunnel_endpoints or set())
        }
        self.next_hop = NextHopTable(name=f"{name}.nexthop")
        self.decapsulated = 0

    def allow_endpoint(self, physical_src: IPv4Address) -> None:
        self.tunnel_endpoints.add(IPv4Address(physical_src))

    def handle_message(self, message: NocMessage, cycle: int):
        meta: PacketMeta = message.metadata
        if meta is None or meta.ip is None:
            return self.drop(message, "no outer IP metadata")
        if meta.ip.protocol != IPPROTO_IPIP:
            return self.drop(message, "not IP-in-IP")
        if self.tunnel_endpoints and \
                meta.ip.src not in self.tunnel_endpoints:
            return self.drop(message, f"unknown tunnel {meta.ip.src}")
        self.decapsulated += 1
        dest = self.next_hop.lookup(self.DEFAULT)
        if dest is None:
            return self.drop(message, "no downstream")
        return [self.make_message(dest, metadata=meta, data=message.data)]
