"""IPv4 tiles.

RX parses and strips the (variable-width) IPv4 header, validates its
checksum, and routes by IP protocol number — which is also how IP-in-IP
reaches the decap tile (protocol 4) and how a second, duplicated IP RX
tile parses the inner header, the paper's answer to repeated headers
breaking resource ordering (section IV-E).  TX prepends a freshly built
header.  No fragmentation support, mirroring the paper's scoping.
"""

from __future__ import annotations

from repro.noc.mesh import Mesh
from repro.noc.message import NocMessage
from repro.packet.ipv4 import IPv4Address, IPv4Header
from repro.tiles.base import NextHopTable, PacketMeta, Tile


class IpRxTile(Tile):
    """Parses IPv4, validates the header checksum, routes by protocol."""

    KIND = "ip_rx"

    def __init__(self, name: str, mesh: Mesh, coord: tuple[int, int],
                 my_ip: IPv4Address | None = None, **kwargs):
        super().__init__(name, mesh, coord, **kwargs)
        self.my_ip = IPv4Address(my_ip) if my_ip is not None else None
        self.next_hop = NextHopTable(name=f"{name}.nexthop")
        self.checksum_errors = 0

    def handle_message(self, message: NocMessage, cycle: int):
        meta: PacketMeta = message.metadata or PacketMeta()
        try:
            ip, payload = IPv4Header.unpack(message.data)
        except ValueError:
            self.checksum_errors += 1
            return self.drop(message, "bad IPv4 header")
        if ip.fragment_offset or (ip.flags & 0b001):
            return self.drop(message, "fragmentation unsupported")
        if self.my_ip is not None and ip.dst != self.my_ip:
            return self.drop(message, "not our IP")
        meta = meta.clone()
        if meta.ip is not None:
            meta.outer_ip = meta.ip  # second parse of an IP-in-IP packet
        meta.ip = ip
        dest = self.next_hop.lookup(
            ip.protocol, flow_key=(int(ip.src), int(ip.dst))
        )
        if dest is None:
            return self.drop(message, f"no handler for proto {ip.protocol}")
        return [self.make_message(dest, metadata=meta, data=payload)]


class IpTxTile(Tile):
    """Prepends an IPv4 header built from the message metadata."""

    KIND = "ip_tx"

    DEFAULT = "default"

    def __init__(self, name: str, mesh: Mesh, coord: tuple[int, int],
                 **kwargs):
        super().__init__(name, mesh, coord, **kwargs)
        self.next_hop = NextHopTable(name=f"{name}.nexthop")
        self._ident = 0

    def handle_message(self, message: NocMessage, cycle: int):
        meta: PacketMeta = message.metadata
        if meta is None or meta.ip is None:
            return self.drop(message, "no IP metadata")
        self._ident = (self._ident + 1) & 0xFFFF
        header = IPv4Header(
            src=meta.ip.src,
            dst=meta.ip.dst,
            protocol=meta.ip.protocol,
            total_length=20 + len(message.data),
            ttl=meta.ip.ttl,
            identification=self._ident,
        )
        meta = meta.clone()
        meta.ip = header
        dest = self.next_hop.lookup(self.DEFAULT)
        if dest is None:
            return self.drop(message, "no downstream for IP TX")
        return [self.make_message(dest, metadata=meta,
                                  data=header.pack() + message.data)]
