"""Normalized view of an *instantiated* design for the analysis passes.

The passes run over real objects — the mesh, the routers, the next-hop
tables, the simulator's component list — not the XML spec, so what is
analyzed is what actually executes.  Any object exposing the loose
design duck type (``sim``, ``mesh``, ``tiles``; optionally ``chains``,
``tile_coords``, ``control``) can be linted: every shipped design class
and :class:`repro.config.generate.GeneratedDesign` qualify.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.noc.mesh import LocalPort, Mesh
from repro.noc.router import Router
from repro.noc.routing import xy_route, yx_route
from repro.sim.kernel import CycleSimulator, StagedFifo

Coord = tuple


class DesignModel:
    """Everything the passes need, extracted once."""

    def __init__(self, design: object,
                 name: str | None = None) -> None:
        self.design = design
        self.name = name or type(design).__name__
        self.sim: CycleSimulator | None = getattr(design, "sim", None)
        self.mesh: Mesh | None = getattr(design, "mesh", None)
        self.control = getattr(design, "control", None)

        tiles = getattr(design, "tiles", None) or []
        if isinstance(tiles, dict):
            self.tiles: dict[str, object] = dict(tiles)
        else:
            self.tiles = {t.name: t for t in tiles}

        coords = getattr(design, "tile_coords", None)
        if coords is None:
            coords = {name: tile.coord
                      for name, tile in self.tiles.items()
                      if hasattr(tile, "coord")}
        self.coords: dict[str, Coord] = dict(coords)

        chains = getattr(design, "chains", None) or []
        self.declared_chains: list[list[str]] = [list(c) for c in chains]

        # Reverse map: coordinate -> tile names at that coordinate
        # (normally one; more than one is itself a finding).
        self.tiles_at: dict[Coord, list[str]] = {}
        for tile_name, tile in self.tiles.items():
            coord = getattr(tile, "coord", None)
            if coord is not None:
                self.tiles_at.setdefault(coord, []).append(tile_name)

    # -- routing -----------------------------------------------------------

    @property
    def route_fn(self) -> Callable[[tuple[int, int], tuple[int, int]],
                                   object]:
        routing = getattr(self.mesh, "routing", "xy")
        return {"xy": xy_route, "yx": yx_route}.get(routing, xy_route)

    # -- next-hop extraction -----------------------------------------------

    def dest_coords(self, tile: object) -> list[Coord]:
        """Every *runtime-derivable* destination coordinate of ``tile``.

        Sources: an explicit ``lint_dest_coords()`` hook on the tile
        (the scheduler and load-balancer tiles provide one covering
        their replica / stack destination lists) and the
        :class:`~repro.tiles.base.NextHopTable` entry sets (including
        every member of a round-robin / flow-hash destination set).

        Deliberately *excludes* ``dest_domain()`` declarations: a
        domain covers request/reply and data-dependent traffic that is
        not a cut-through streaming path, so feeding it to the chain
        derivation would manufacture phantom streaming chains.  The
        declarations are checked by :mod:`repro.analysis.dataflow`.
        """
        coords: list[Coord] = []
        hook = getattr(tile, "lint_dest_coords", None)
        if callable(hook):
            coords.extend(hook())
        table = getattr(tile, "next_hop", None)
        if table is not None:
            for dests in getattr(table, "_entries", {}).values():
                coords.extend(dests)
        seen: set[Coord] = set()
        unique = []
        for coord in coords:
            if coord not in seen:
                seen.add(coord)
                unique.append(coord)
        return unique

    def forwarding_edges(self) -> list[tuple[str, str, Coord]]:
        """Tile-level edges ``(src_name, dst_name_or_None, dst_coord)``.

        ``dst_name`` is None when the destination coordinate has no
        tile attached (a dangling route — reported by the structural
        pass; the deadlock pass skips such edges).
        """
        edges = []
        for name, tile in self.tiles.items():
            for coord in self.dest_coords(tile):
                targets = self.tiles_at.get(coord)
                edges.append((name, targets[0] if targets else None,
                              coord))
        return edges

    # -- simulator components ----------------------------------------------

    def components(self) -> list:
        if self.sim is None:
            return []
        return list(self.sim._components)

    def substeps(self, component: object) -> list:
        """Sub-components ``component`` steps internally each cycle.

        A registered component may absorb the step/commit of objects
        that are not themselves in the simulator (the flat mesh core
        steps every local port, for example) and declares them through
        a ``kernel_substeps()`` hook.  The analysis passes treat a
        substep as registered-by-proxy: its parent's schedule entry is
        its schedule entry, and its parent's wake hooks are the ones
        that must cover its inputs.
        """
        hook = getattr(component, "kernel_substeps", None)
        if not callable(hook):
            return []
        return list(hook())

    def substep_parents(self) -> dict[int, object]:
        """Map ``id(substep) -> parent`` over all registered
        components."""
        parents: dict[int, object] = {}
        for component in self.components():
            for sub in self.substeps(component):
                parents[id(sub)] = component
        return parents

    def consumed_fifos(
            self, component: object) -> list[StagedFifo]:
        """The FIFOs ``component`` pops from during ``step``.

        Discovered structurally from the known component shapes; a
        component may also expose ``lint_consumed_fifos()`` to declare
        its own.  Anything the model cannot classify contributes no
        FIFOs (and therefore no wake-contract findings).
        """
        hook = getattr(component, "lint_consumed_fifos", None)
        if callable(hook):
            return list(hook())
        if isinstance(component, Router):
            return list(component._in_fifos)
        if isinstance(component, LocalPort):
            return [component.eject_fifo]
        port = getattr(component, "port", None)
        if isinstance(port, LocalPort):
            # Tiles, control endpoints, controller tiles: they all pull
            # from their local port's ejection FIFO.
            return [port.eject_fifo]
        return []

    def attached_ports(self) -> list[LocalPort]:
        ports = []
        if self.mesh is not None:
            ports.extend(self.mesh.ports.values())
        control_mesh = getattr(self.control, "mesh", None)
        if control_mesh is not None:
            ports.extend(control_mesh.ports.values())
        return ports


def extract(design: object,
            name: str | None = None) -> DesignModel:
    """Build a :class:`DesignModel`; pass ``design`` through unchanged
    if it already is one."""
    if isinstance(design, DesignModel):
        return design
    return DesignModel(design, name=name)
