"""Seeded-bug designs for demonstrating (and testing) the linter.

:func:`build_broken_wake_design` is the canonical lost-wakeup example:
an echo tile whose ``wake_sources()`` deliberately returns nothing.
Under the naive kernel the design works — every component is stepped
every cycle, so the missing hook is invisible.  Under the scheduled
kernel the tile idles out before traffic arrives and nothing ever
wakes it, so the same design stalls forever.  The wake-contract pass
flags exactly this divergence as BHV301 *before* anything runs.
"""

from __future__ import annotations

from repro.noc.mesh import Mesh
from repro.noc.message import NocMessage
from repro.sim.kernel import CycleSimulator
from repro.tiles.base import Tile


class BrokenWakeEchoTile(Tile):
    """Counts messages; its FIFO wake hook is deliberately missing."""

    def __init__(self, name: str, mesh: Mesh, coord: tuple[int, int],
                 **kwargs):
        super().__init__(name, mesh, coord, **kwargs)
        self.echoed = 0

    def wake_sources(self):
        return ()  # BUG: the ejection FIFO never wakes the tile

    def handle_message(self, message: NocMessage, cycle: int):
        self.echoed += 1
        return []


class BrokenWakeDesign:
    """A 2x1 mesh: an ingress port feeding one broken echo tile."""

    def __init__(self, kernel: str = "scheduled"):
        self.sim = CycleSimulator(kernel=kernel)
        self.mesh = Mesh(2, 1)
        self.echo = BrokenWakeEchoTile("echo", self.mesh, (1, 0))
        self.ingress = self.mesh.attach((0, 0))
        self.tiles = [self.echo]
        self.mesh.register(self.sim)
        self.sim.add(self.echo)
        self.chains = [["ingress", "echo"]]
        self.tile_coords = {"ingress": (0, 0), "echo": (1, 0)}

    def send(self, data: bytes = b"ping") -> None:
        self.ingress.send(NocMessage(dst=self.echo.coord,
                                     src=self.ingress.coord,
                                     data=data))


def build_broken_wake_design(kernel: str = "scheduled") -> BrokenWakeDesign:
    return BrokenWakeDesign(kernel=kernel)
