"""Seeded-bug designs for demonstrating (and testing) the linter.

:func:`build_broken_wake_design` is the canonical lost-wakeup example:
an echo tile whose ``wake_sources()`` deliberately returns nothing.
Under the naive kernel the design works — every component is stepped
every cycle, so the missing hook is invisible.  Under the scheduled
kernel the tile idles out before traffic arrives and nothing ever
wakes it, so the same design stalls forever.  The wake-contract pass
flags exactly this divergence as BHV301 *before* anything runs.

The remaining builders each seed exactly one bug for one finding code,
so the linter's regression tests can assert "this pass catches this
bug, and no other pass misfires on it":

==============================  ======  ==================================
builder                         code    seeded bug
==============================  ======  ==================================
build_broken_wake_design        BHV301  wake_sources() misses the FIFO
build_idle_liar_design          BHV401  is_idle() lies while work remains
build_leaky_eject_design        BHV403  pops the eject FIFO off the books
build_step_parity_design        BHV404  behaviour depends on step count
build_phantom_dest_design       BHV501  declared domain coord unattached
build_stale_domain_design       BHV502  domain wider than the replicas
build_escaped_domain_design     BHV503  replicas outside the domain
build_blind_forwarder_design    BHV504  forwarding with no declarations
==============================  ======  ==================================

(BHV402 needs no dedicated fixture: the broken-wake design is also the
canonical *dynamic* lost wakeup — the staged push its consumer misses.)
"""

from __future__ import annotations

from repro.noc.mesh import Mesh
from repro.noc.message import NocMessage
from repro.sim.kernel import CycleSimulator
from repro.tiles.base import DestDomain, Tile
from repro.tiles.scheduler import RoundRobinSchedulerTile


class BrokenWakeEchoTile(Tile):
    """Counts messages; its FIFO wake hook is deliberately missing."""

    def __init__(self, name: str, mesh: Mesh, coord: tuple[int, int],
                 **kwargs: object) -> None:
        super().__init__(name, mesh, coord, **kwargs)
        self.echoed = 0

    def wake_sources(self) -> tuple:
        return ()  # BUG: the ejection FIFO never wakes the tile

    def handle_message(self, message: NocMessage,
                       cycle: int) -> list[NocMessage]:
        self.echoed += 1
        return []


class BrokenWakeDesign:
    """A 2x1 mesh: an ingress port feeding one broken echo tile."""

    def __init__(self, kernel: str = "scheduled") -> None:
        self.sim = CycleSimulator(kernel=kernel)
        self.mesh = Mesh(2, 1)
        self.echo = BrokenWakeEchoTile("echo", self.mesh, (1, 0))
        self.ingress = self.mesh.attach((0, 0))
        self.tiles = [self.echo]
        self.mesh.register(self.sim)
        self.sim.add(self.echo)
        self.chains = [["ingress", "echo"]]
        self.tile_coords = {"ingress": (0, 0), "echo": (1, 0)}

    def send(self, data: bytes = b"ping") -> None:
        self.ingress.send(NocMessage(dst=self.echo.coord,
                                     src=self.ingress.coord,
                                     data=data))


def build_broken_wake_design(kernel: str = "scheduled") -> BrokenWakeDesign:
    return BrokenWakeDesign(kernel=kernel)


# -- shared fixture scaffolding ---------------------------------------------

class CountingSinkTile(Tile):
    """A well-behaved terminal tile: counts and discards messages."""

    def __init__(self, name: str, mesh: Mesh, coord: tuple[int, int],
                 **kwargs: object) -> None:
        super().__init__(name, mesh, coord, **kwargs)
        self.received = 0

    def handle_message(self, message: NocMessage,
                       cycle: int) -> list[NocMessage]:
        self.received += 1
        return []


# -- BHV401: is_idle() that lies --------------------------------------------

class IdleLiarTile(Tile):
    """Holds a private work list its ``is_idle()`` pretends not to have.

    The scheduled kernel prunes it immediately; the idle-truth pass
    shadow-steps it and watches ``echoed`` advance — observable
    progress from a component that swore it was quiescent.
    """

    def __init__(self, name: str, mesh: Mesh, coord: tuple[int, int],
                 work_items: int = 8, **kwargs: object) -> None:
        super().__init__(name, mesh, coord, **kwargs)
        self._work = list(range(work_items))
        self.echoed = 0

    def on_cycle(self, cycle: int) -> None:
        if self._work:
            self._work.pop()
            self.echoed += 1

    def is_idle(self) -> bool:
        return True  # BUG: claims quiescence while _work remains

    def next_event_cycle(self) -> int | None:
        return None  # ... and never arms a timer to come back for it


class IdleLiarDesign:
    """A 2x1 mesh holding one lying tile; no traffic needed."""

    def __init__(self, kernel: str = "scheduled") -> None:
        self.sim = CycleSimulator(kernel=kernel)
        self.mesh = Mesh(2, 1)
        self.liar = IdleLiarTile("liar", self.mesh, (1, 0))
        self.tiles = [self.liar]
        self.mesh.register(self.sim)
        self.sim.add(self.liar)
        self.chains: list[list[str]] = []
        self.tile_coords = {"liar": (1, 0)}


def build_idle_liar_design(kernel: str = "scheduled") -> IdleLiarDesign:
    return IdleLiarDesign(kernel=kernel)


# -- BHV403: flits popped off the books -------------------------------------

class LeakyEjectTile(Tile):
    """Drains its ejection FIFO directly, bypassing the port's
    ``receive()`` — so ``flits_ejected`` never learns about the flits
    and the conservation ledger shows unattributed loss.

    ``on_cycle`` is overridden, so the base ``is_idle()`` honestly
    reports never-idle: the tile is stepped every cycle and the other
    dynamic passes stay silent.
    """

    def __init__(self, name: str, mesh: Mesh, coord: tuple[int, int],
                 **kwargs: object) -> None:
        super().__init__(name, mesh, coord, **kwargs)
        self.leaked = 0

    def on_cycle(self, cycle: int) -> None:
        fifo = self.port.eject_fifo
        while fifo._items:
            fifo._items.popleft()  # BUG: bypasses LocalPort.receive()
            self.leaked += 1

    def handle_message(self, message: NocMessage,
                       cycle: int) -> list[NocMessage]:
        return []  # unreachable: on_cycle stole the flits


class LeakyEjectDesign:
    """A 2x1 mesh: an ingress port feeding the leaky tile."""

    def __init__(self, kernel: str = "scheduled") -> None:
        self.sim = CycleSimulator(kernel=kernel)
        self.mesh = Mesh(2, 1)
        self.leaky = LeakyEjectTile("leaky", self.mesh, (1, 0))
        self.ingress = self.mesh.attach((0, 0))
        self.tiles = [self.leaky]
        self.mesh.register(self.sim)
        self.sim.add(self.leaky)
        self.chains = [["ingress", "leaky"]]
        self.tile_coords = {"ingress": (0, 0), "leaky": (1, 0)}

    def send(self, data: bytes = b"x" * 256) -> None:
        self.ingress.send(NocMessage(dst=self.leaky.coord,
                                     src=self.ingress.coord,
                                     data=data))


def build_leaky_eject_design(kernel: str = "scheduled") -> LeakyEjectDesign:
    return LeakyEjectDesign(kernel=kernel)


# -- BHV404: behaviour keyed to step count ----------------------------------

class StepParityTile(Tile):
    """Echoes or drops depending on how often it has been stepped.

    ``steps_seen`` advances once per ``step`` call — which is every
    cycle under the naive kernel but only on active cycles under the
    scheduled one, so identical traffic produces different echo/drop
    streams.  ``is_idle()`` is *honest* (the base queue checks, minus
    the on_cycle guard), so the idle-truth pass stays silent: this is
    the bug class only the determinism pass can see.
    """

    def __init__(self, name: str, mesh: Mesh, coord: tuple[int, int],
                 **kwargs: object) -> None:
        super().__init__(name, mesh, coord, **kwargs)
        self.steps_seen = 0
        self.echoed = 0

    def on_cycle(self, cycle: int) -> None:
        self.steps_seen += 1  # BUG: observable state keyed to stepping

    def is_idle(self) -> bool:
        if self._fault_frozen:
            return False
        eject = self.port.eject_fifo
        if eject._items or eject._staged:
            return False
        if self._in_service is not None:
            return True
        if self._rx_ready:
            return self.port.tx_backlog < self.max_tx_backlog
        return True

    def handle_message(self, message: NocMessage,
                       cycle: int) -> list[NocMessage]:
        # Under the naive kernel steps_seen tracks the cycle count, so
        # this echoes; under the scheduled kernel the tile slept most
        # of its life, so the same message is dropped.
        if self.steps_seen < cycle // 2:
            return self.drop(message, "stepped too rarely")
        self.echoed += 1
        return [self.make_message(message.src, data=message.data)]


class StepParityDesign:
    """A 2x1 mesh: an ingress port feeding the parity tile."""

    def __init__(self, kernel: str = "scheduled") -> None:
        self.sim = CycleSimulator(kernel=kernel)
        self.mesh = Mesh(2, 1)
        self.parity = StepParityTile("parity", self.mesh, (1, 0))
        self.ingress = self.mesh.attach((0, 0))
        self.tiles = [self.parity]
        self.mesh.register(self.sim)
        self.sim.add(self.parity)
        self.chains = [["ingress", "parity"]]
        self.tile_coords = {"ingress": (0, 0), "parity": (1, 0)}

    def send(self, data: bytes = b"ping") -> None:
        self.ingress.send(NocMessage(dst=self.parity.coord,
                                     src=self.ingress.coord,
                                     data=data))


def build_step_parity_design(kernel: str = "scheduled") -> StepParityDesign:
    return StepParityDesign(kernel=kernel)


# -- BHV501/502/503: destination-domain declarations vs reality --------------

class PhantomDomainTile(Tile):
    """Declares a data-dependent destination with no tile attached."""

    def __init__(self, name: str, mesh: Mesh, coord: tuple[int, int],
                 phantom: tuple[int, int], **kwargs: object) -> None:
        super().__init__(name, mesh, coord, **kwargs)
        self._phantom = phantom

    def dest_domain(self) -> DestDomain:
        # BUG: the coordinate never got a tile, so data-dependent
        # dispatch to it could never be routed.
        return DestDomain.of([self._phantom], data_dependent=True)

    def handle_message(self, message: NocMessage,
                       cycle: int) -> list[NocMessage]:
        return []


class StaleDomainScheduler(RoundRobinSchedulerTile):
    """Declares one more destination than the replica list registers."""

    def __init__(self, name: str, mesh: Mesh, coord: tuple[int, int],
                 stale: tuple[int, int], **kwargs: object) -> None:
        super().__init__(name, mesh, coord, **kwargs)
        self._stale = stale

    def dest_domain(self) -> DestDomain:
        # BUG: the domain kept a coordinate no runtime state emits.
        return DestDomain.of([*self.replicas, self._stale],
                             data_dependent=True)


class EscapedDomainScheduler(RoundRobinSchedulerTile):
    """Declares only the first replica; the rest escape the domain."""

    def dest_domain(self) -> DestDomain:
        # BUG: round-robin reaches every replica, not just replicas[0].
        return DestDomain.of(self.replicas[:1], data_dependent=True)


class _DomainFixtureDesign:
    """A 3x2 mesh: an ingress feeding one dispatcher plus two
    well-behaved sink tiles; (2, 1) stays unoccupied."""

    def __init__(self, dispatcher_cls: type,
                 kernel: str = "scheduled",
                 **dispatcher_kwargs: object) -> None:
        self.sim = CycleSimulator(kernel=kernel)
        self.mesh = Mesh(3, 2)
        self.dispatch = dispatcher_cls("dispatch", self.mesh, (1, 0),
                                       **dispatcher_kwargs)
        self.sink_a = CountingSinkTile("sink_a", self.mesh, (2, 0))
        self.sink_b = CountingSinkTile("sink_b", self.mesh, (1, 1))
        self.ingress = self.mesh.attach((0, 0))
        self.tiles = [self.dispatch, self.sink_a, self.sink_b]
        self.mesh.register(self.sim)
        for tile in self.tiles:
            self.sim.add(tile)
        self.chains = [["ingress", "dispatch"],
                       ["dispatch", "sink_a"], ["dispatch", "sink_b"]]
        self.tile_coords = {t.name: t.coord for t in self.tiles}
        self.tile_coords["ingress"] = (0, 0)

    def send(self, data: bytes = b"ping") -> None:
        self.ingress.send(NocMessage(dst=self.dispatch.coord,
                                     src=self.ingress.coord,
                                     data=data))


def build_phantom_dest_design(
        kernel: str = "scheduled") -> _DomainFixtureDesign:
    """BHV501: the declared domain names the unoccupied (2, 1)."""
    return _DomainFixtureDesign(PhantomDomainTile, kernel=kernel,
                                phantom=(2, 1))


def build_stale_domain_design(
        kernel: str = "scheduled") -> _DomainFixtureDesign:
    """BHV502: sink_b is declared but only sink_a is a replica."""
    design = _DomainFixtureDesign(StaleDomainScheduler, kernel=kernel,
                                  stale=(1, 1))
    design.dispatch.add_replica(design.sink_a.coord)
    return design


def build_escaped_domain_design(
        kernel: str = "scheduled") -> _DomainFixtureDesign:
    """BHV503: both sinks are replicas but only sink_a is declared."""
    design = _DomainFixtureDesign(EscapedDomainScheduler, kernel=kernel)
    design.dispatch.add_replica(design.sink_a.coord)
    design.dispatch.add_replica(design.sink_b.coord)
    return design


# -- BHV504: forwarding with no static footprint -----------------------------

class BlindForwarderTile(Tile):
    """Forwards everything to a hard-coded coordinate held in a plain
    attribute — no table entry, no hook, no declaration."""

    def __init__(self, name: str, mesh: Mesh, coord: tuple[int, int],
                 forward_to: tuple[int, int], **kwargs: object) -> None:
        super().__init__(name, mesh, coord, **kwargs)
        self._forward_to = forward_to

    def handle_message(self, message: NocMessage,
                       cycle: int) -> list[NocMessage]:
        return [self.make_message(self._forward_to,
                                  metadata=message.metadata,
                                  data=message.data)]


class BlindForwarderDesign:
    """A 3x1 mesh: the forwarder is non-terminal in a declared chain,
    so its statically-invisible routing is the linter's blind spot."""

    def __init__(self, kernel: str = "scheduled") -> None:
        self.sim = CycleSimulator(kernel=kernel)
        self.mesh = Mesh(3, 1)
        self.sink = CountingSinkTile("sink", self.mesh, (2, 0))
        self.fwd = BlindForwarderTile("fwd", self.mesh, (1, 0),
                                      forward_to=self.sink.coord)
        self.ingress = self.mesh.attach((0, 0))
        self.tiles = [self.fwd, self.sink]
        self.mesh.register(self.sim)
        for tile in self.tiles:
            self.sim.add(tile)
        self.chains = [["ingress", "fwd"], ["fwd", "sink"]]
        self.tile_coords = {t.name: t.coord for t in self.tiles}
        self.tile_coords["ingress"] = (0, 0)

    def send(self, data: bytes = b"ping") -> None:
        self.ingress.send(NocMessage(dst=self.fwd.coord,
                                     src=self.ingress.coord,
                                     data=data))


def build_blind_forwarder_design(
        kernel: str = "scheduled") -> BlindForwarderDesign:
    return BlindForwarderDesign(kernel=kernel)
