"""Wake-contract verification (BHV3xx).

The activity-scheduled kernel (:mod:`repro.sim.kernel`) deschedules any
component whose ``is_idle()`` returns True.  A descheduled component is
revived only by (a) a wake hook on a FIFO it consumes, (b) its
``_kernel_wake`` slot being called from an external mutator, or (c) a
timer armed from ``next_event_cycle()``.  A component that can sleep
but has no wake path for some input *stalls silently* — the benchmark
completes with wrong numbers or hangs — so this pass turns the contract
into lint findings:

- every FIFO a sleeper consumes must wake it (``wake_sources()`` must
  cover all inputs, and — under a scheduled kernel — the hook must
  actually be wired);
- a sleeper must have at least one wake mechanism;
- ``is_idle()`` / ``next_event_cycle()`` must be implemented
  consistently (probed once; the probe is side-effect-free by
  contract).
"""

from __future__ import annotations

from repro.analysis.findings import Finding
from repro.analysis.model import extract
from repro.sim.kernel import StagedFifo


def _name_of(component: object) -> str:
    name = getattr(component, "name", None)
    if name:
        return str(name)
    coord = getattr(component, "coord", None)
    if coord is not None:
        return f"{type(component).__name__}@{coord}"
    return type(component).__name__


def _wired_to(fifo: StagedFifo, component: object) -> bool:
    """True if one of ``fifo``'s wake hooks re-activates ``component``.

    The kernel tags each waker closure with the component it wakes
    (``waker.component``); a hook without the tag (e.g. a hand-written
    listener) is treated as unknown and does not count.
    """
    for waker in getattr(fifo, "_wakers", ()):
        if getattr(waker, "component", None) is component:
            return True
    return False


def _probe(component: object) -> tuple[object, Finding | None]:
    """Call ``is_idle()`` defensively; (value, finding-or-None)."""
    name = _name_of(component)
    try:
        idle = component.is_idle()
    except Exception as error:  # noqa: BLE001 - lint must not crash
        return None, Finding(
            "BHV304",
            f"is_idle() raised {type(error).__name__}: {error}",
            location=name)
    if not isinstance(idle, bool):
        return idle, Finding(
            "BHV304",
            f"is_idle() returned {idle!r} ({type(idle).__name__}), "
            "expected bool",
            location=name)
    return idle, None


def run(design: object) -> list[Finding]:
    """The BHV3xx lint pass over an instantiated design."""
    model = extract(design)
    findings: list[Finding] = []
    scheduled = bool(getattr(model.sim, "_scheduled", False))

    for component in model.components():
        name = _name_of(component)
        has_is_idle = callable(getattr(component, "is_idle", None))
        has_next_event = callable(
            getattr(component, "next_event_cycle", None))
        sources_fn = getattr(component, "wake_sources", None)
        consumed = model.consumed_fifos(component)

        if not has_is_idle:
            if has_next_event:
                findings.append(Finding(
                    "BHV303",
                    "next_event_cycle() is implemented but is_idle() "
                    "is not; the kernel never consults the timer",
                    location=name))
            if consumed:
                findings.append(Finding(
                    "BHV305",
                    f"{type(component).__name__} has no quiescence "
                    "contract; it is stepped every cycle",
                    location=name,
                    hint="implement is_idle()/wake_sources() to make "
                         "it eligible for idle-skip"))
            continue

        _, probe_finding = _probe(component)
        if probe_finding is not None:
            findings.append(probe_finding)

        declared: list[StagedFifo] = []
        if callable(sources_fn):
            try:
                declared = list(sources_fn())
            except Exception as error:  # noqa: BLE001
                findings.append(Finding(
                    "BHV304",
                    f"wake_sources() raised "
                    f"{type(error).__name__}: {error}",
                    location=name))
        declared_ids = {id(fifo) for fifo in declared}

        # Every consumed FIFO must wake the sleeper.
        for fifo in consumed:
            if scheduled:
                hooked = _wired_to(fifo, component)
            else:
                hooked = id(fifo) in declared_ids
            if not hooked:
                findings.append(Finding(
                    "BHV301",
                    f"consumes FIFO {fifo.name!r} but the push hook "
                    "never wakes it: a message arriving while it "
                    "sleeps is lost until something else happens to "
                    "wake it",
                    location=name,
                    hint="return the FIFO from wake_sources() so the "
                         "kernel wires the wake hook",
                    data={"fifo": fifo.name}))

        # A sleeper with no wake mechanism at all can never be revived.
        has_wake_slot = hasattr(component, "_kernel_wake")
        if not declared and not has_next_event and not has_wake_slot:
            findings.append(Finding(
                "BHV302",
                "implements is_idle() but has no wake_sources(), no "
                "next_event_cycle() and no _kernel_wake slot: once "
                "descheduled it sleeps forever",
                location=name))

        # Declared wake sources must be hookable (and, under a
        # scheduled kernel, actually wired by the kernel).
        for fifo in declared:
            if not isinstance(fifo, StagedFifo):
                findings.append(Finding(
                    "BHV306",
                    f"wake_sources() returned {fifo!r}, which is not "
                    "a StagedFifo the kernel can hook",
                    location=name))
            elif scheduled and not _wired_to(fifo, component):
                findings.append(Finding(
                    "BHV306",
                    f"wake source {fifo.name!r} has no wired hook for "
                    "this component (was it added to the simulator "
                    "before the FIFO existed?)",
                    location=name))

        # Substeps (components this one steps internally, e.g. local
        # ports inside the flat mesh core) sleep when the parent
        # sleeps, so each of *their* consumed FIFOs must wake the
        # parent.
        for sub in model.substeps(component):
            sub_name = f"{name}/{_name_of(sub)}"
            for fifo in model.consumed_fifos(sub):
                if scheduled:
                    hooked = _wired_to(fifo, component)
                else:
                    hooked = id(fifo) in declared_ids
                if not hooked:
                    findings.append(Finding(
                        "BHV301",
                        f"substep consumes FIFO {fifo.name!r} but the "
                        "push hook never wakes the stepping parent: a "
                        "message arriving while the parent sleeps is "
                        "lost until something else wakes it",
                        location=sub_name,
                        hint="return the FIFO from the parent's "
                             "wake_sources() so the kernel wires the "
                             "wake hook",
                        data={"fifo": fifo.name}))
    return findings
