"""Simulation-backed sanitizer passes (BHV4xx).

The static passes (BHV1xx–BHV3xx, BHV5xx) reason about structure: what
is wired, what is declared, what *could* route.  This module closes
the remaining gap — contract violations only visible while a design
executes — by running short, bounded, fully instrumented simulations
and reporting through the same :class:`~repro.analysis.findings`
pipeline:

- **idle-truth** (BHV401): every component the scheduled kernel pruned
  is *shadow-stepped* each cycle with a state fingerprint taken around
  its own ``step``.  A truthfully idle component's step is a no-op by
  the quiescence contract (the same property the kernel's saturation
  bypass relies on); a fingerprint change means ``is_idle()`` lied.
- **lost-wake** (BHV402): at the end of each step phase (staged pushes
  still visible), a FIFO holding staged items whose consumer is pruned
  with no same-cycle wake and no timer due by the next cycle is a lost
  wakeup — the dynamic twin of the static BHV301 check, catching hooks
  that exist but never fire.
- **conservation** (BHV403): a flit ledger per mesh.  Every flit a
  port injects must be ejected or still in flight (router input
  occupancy plus ejection-FIFO occupancy); the machinery that drops
  traffic does so outside the fabric (wire faults pre-injection, tile
  drops post-ejection), so any imbalance is unattributed loss.
- **determinism** (BHV404): the same traffic is replayed, cycle by
  cycle, under two kernel x mesh x tile combos; per-cycle digests of
  the design counters localize the first divergent cycle, and the
  final counters / egress frames are deep-compared.

Everything here is strictly opt-in: the normal ``tick``/``run`` paths
never consult the sanitizer, so a design that does not ask for it runs
the exact pre-sanitizer code (the overhead benchmark pins this).

Entry points::

    from repro.analysis.sanitize import analyze_dynamic
    report = analyze_dynamic(UdpEchoDesign, name="udp_echo")
    assert report.ok, report.render()

or, from a shell::

    python -m repro.tools.lint udp_echo --sanitize --cycles 2000
"""

from __future__ import annotations

import hashlib
import zlib
from collections.abc import Callable, Iterable, Sequence

from repro.analysis.findings import AnalysisReport, Finding
from repro.analysis.model import DesignModel, extract
from repro.noc.message import reset_id_counters
from repro.sim.kernel import StagedFifo
from repro.telemetry.stats import design_counters

#: (kernel, mesh backend, tile backend).
Combo = tuple[str, str, str]
#: (fire cycle, zero-argument thunk).
Action = tuple[int, Callable[[], None]]
#: (design, cycles) -> actions.
TrafficFn = Callable[[object, int], list[Action]]

#: Default bounded-run length — long enough for every shipped design
#: to move real traffic end to end, short enough to run the whole
#: fleet in CI.
DEFAULT_CYCLES = 2000

#: Default combos a design is sanitized under: the scheduled kernel
#: over both compiled backends (the configurations users actually run).
DEFAULT_COMBOS: tuple[Combo, ...] = (
    ("scheduled", "flat", "flat"),
    ("scheduled", "object", "object"),
)

#: The reference combo the determinism pass falls back to when fewer
#: than two combos are given: the exhaustive kernel over the
#: object-for-object backends.
NAIVE_REFERENCE: Combo = ("naive", "object", "object")

#: name -> one-line description, mirroring the static PASSES registry.
SANITIZE_PASSES: dict[str, str] = {
    "idle-truth": "shadow-step pruned components; any observable "
                  "progress is an is_idle() lie (BHV401)",
    "lost-wake": "staged push into a FIFO whose consumer stays pruned "
                 "with no same-cycle wake (BHV402)",
    "conservation": "flit ledger: injected == ejected + in-flight per "
                    "mesh (BHV403)",
    "determinism": "dual-run digest across two kernel x backend "
                   "combos, localizing the first divergence (BHV404)",
}

# Counter attributes a component (or its port / substeps) may expose;
# integers sampled into the shadow-step fingerprint.  Deliberately a
# closed list: fixture-private counters (a demo tile's step tally) are
# *not* observable state, so incrementing one while pruned is legal.
_COUNTER_ATTRS: tuple[str, ...] = (
    "messages_in", "messages_out", "bytes_in", "bytes_out", "drops",
    "messages_sent", "messages_received", "flits_injected",
    "flits_ejected", "flits_forwarded", "total_flits_forwarded",
    "_ring_total", "sent", "bytes_sent", "count", "frame_bytes",
    "payload_bytes", "malformed", "echoed", "frames_offered",
    "frames_delivered",
)

# Queue-like attributes whose length is observable state.
_QUEUE_ATTRS: tuple[str, ...] = (
    "_rx_ready", "_pending_flits", "_send_queue", "_heap", "frames_out",
)


def _component_name(component: object) -> str:
    name = getattr(component, "name", None)
    if isinstance(name, str):
        return name
    coord = getattr(component, "coord", None)
    if coord is not None:
        return f"{type(component).__name__}{coord}"
    return type(component).__name__


def _combo_label(combo: Combo) -> str:
    return "/".join(combo)


def build_design(factory: Callable[..., object],
                 combo: Combo | None = None,
                 fault_plan: object | None = None) -> object:
    """Instantiate ``factory`` under ``combo``, dropping unsupported
    keyword arguments.

    Shipped designs accept the full ``kernel`` / ``mesh_backend`` /
    ``tile_backend`` / ``fault_plan`` set; demo and fixture designs
    often take only ``kernel``.  Unknown-keyword ``TypeError``\\ s are
    retried without the rejected kwarg so one driver covers both.
    """
    kwargs: dict[str, object] = {}
    if combo is not None:
        kernel, mesh_backend, tile_backend = combo
        kwargs["kernel"] = kernel
        kwargs["mesh_backend"] = mesh_backend
        kwargs["tile_backend"] = tile_backend
    if fault_plan is not None:
        kwargs["fault_plan"] = fault_plan
    while True:
        try:
            return factory(**kwargs)
        except TypeError as error:
            message = str(error)
            if "keyword" not in message:
                raise
            dropped = next((key for key in kwargs if key in message), None)
            if dropped is None:
                raise
            del kwargs[dropped]


def _payload(index: int, length: int) -> bytes:
    """Deterministic pseudo-random bytes (no RNG state involved)."""
    out = b""
    counter = 0
    while len(out) < length:
        out += hashlib.sha256(
            f"bhv-sanitize-{index}-{counter}".encode()).digest()
        counter += 1
    return out[:length]


def default_traffic(design: object, cycles: int) -> list[Action]:
    """A bounded, deterministic traffic schedule for ``design``.

    Three tiers, best available first:

    1. valid UDP frames from a synthetic client, when the design
       exposes the stack conveniences (``server_ip`` / ``server_mac``
       / ``udp_port`` / ``add_client`` / ``inject``) — traffic the
       whole chain actually processes;
    2. deterministic garbage frames through ``inject`` — exercises
       ingress parsing and drop paths;
    3. ``send()`` calls for port-level demo designs.

    Frames stop well before the horizon so in-flight traffic drains
    and the conservation ledger is checked against a (near-)quiescent
    fabric.
    """
    inject = getattr(design, "inject", None)
    first = max(1, min(50, cycles // 20))
    last = max(first + 1, cycles - max(200, cycles // 4))
    count = max(4, min(32, cycles // 60))
    spread = [first + (last - first) * i // count for i in range(count)]
    actions: list[Action] = []

    server_ip = getattr(design, "server_ip", None)
    server_mac = getattr(design, "server_mac", None)
    udp_port = getattr(design, "udp_port", None)
    add_client = getattr(design, "add_client", None)
    if (inject is not None and callable(add_client)
            and server_ip is not None and server_mac is not None
            and isinstance(udp_port, int)):
        from repro.packet.builder import build_ipv4_udp_frame
        from repro.packet.ethernet import MacAddress
        from repro.packet.ipv4 import IPv4Address

        client_ip = IPv4Address("10.9.9.99")
        client_mac = MacAddress("02:be:ef:99:99:99")
        actions.append((0, lambda: add_client(client_ip, client_mac)))
        for i, at in enumerate(spread):
            frame = build_ipv4_udp_frame(
                src_mac=client_mac, dst_mac=server_mac,
                src_ip=client_ip, dst_ip=server_ip,
                src_port=40_000 + (i % 8), dst_port=udp_port,
                payload=_payload(i, 26), identification=i + 1,
            )
            actions.append(
                (at, lambda f=frame, c=at: inject(f, c)))
        return actions

    if inject is not None:
        for i, at in enumerate(spread):
            frame = _payload(i, 64)
            actions.append(
                (at, lambda f=frame, c=at: inject(f, c)))
        return actions

    send = getattr(design, "send", None)
    if callable(send):
        for at in spread:
            actions.append((at, send))
    return actions


class SanitizeObserver:
    """The per-run instrumentation behind
    :meth:`repro.sim.kernel.CycleSimulator.sanitized_tick`.

    ``shadow_step`` owns stepping every pruned component (the kernel
    hands them over instead of stepping them) and, when the idle-truth
    pass is selected, fingerprints observable state around the step.
    ``step_phase_done`` runs the lost-wake check while staged pushes
    are still distinguishable from committed items.
    """

    def __init__(self, design: object, model: DesignModel,
                 passes: Iterable[str], combo: Combo) -> None:
        self.sim = design.sim
        self.model = model
        self.combo = combo
        selected = set(passes)
        scheduled = getattr(self.sim, "kernel", "naive") == "scheduled"
        self.check_idle = "idle-truth" in selected and scheduled
        self.check_wake = "lost-wake" in selected and scheduled
        self.findings: list[Finding] = []
        self._reported_401: set[int] = set()
        self._reported_402: set[tuple[int, int]] = set()
        # id(component) -> [(probe, label), ...]
        self._plans: dict[int, list[tuple[Callable[[], object], str]]] = {}
        # (component, name, consumed StagedFifos) for the wake check.
        self._consumers: list[tuple[object, str, list[StagedFifo]]] = []
        if self.check_wake:
            for component in model.components():
                fifos: list[StagedFifo] = []
                pool = [component]
                pool.extend(model.substeps(component))
                for member in pool:
                    for fifo in model.consumed_fifos(member):
                        if isinstance(fifo, StagedFifo) and \
                                all(f is not fifo for f in fifos):
                            fifos.append(fifo)
                if fifos:
                    self._consumers.append(
                        (component, _component_name(component), fifos))

    # -- fingerprinting ----------------------------------------------------

    def _fingerprint_sources(self, component: object) -> list[object]:
        """The component plus everything it steps or owns: kernel
        substeps (a flat core's tiles/ports) and each member's port."""
        objs: list[object] = [component]
        objs.extend(self.model.substeps(component))
        for obj in list(objs):
            port = getattr(obj, "port", None)
            if port is not None and all(o is not port for o in objs):
                objs.append(port)
        return objs

    def _build_plan(
            self, component: object,
    ) -> list[tuple[Callable[[], object], str]]:
        plan: list[tuple[Callable[[], object], str]] = []
        fifos_seen: list[object] = []
        for obj in self._fingerprint_sources(component):
            oname = _component_name(obj)
            for attr in _COUNTER_ATTRS:
                if isinstance(getattr(obj, attr, None), int):
                    plan.append((
                        lambda o=obj, a=attr: getattr(o, a),
                        f"{oname}.{attr}"))
            for attr in _QUEUE_ATTRS:
                if hasattr(getattr(obj, attr, None), "__len__"):
                    plan.append((
                        lambda o=obj, a=attr: len(getattr(o, a)),
                        f"len({oname}.{attr})"))
            fifos: list[object] = list(self.model.consumed_fifos(obj))
            sources = getattr(obj, "wake_sources", None)
            if callable(sources):
                fifos.extend(sources())
            for fifo in fifos:
                if any(f is fifo for f in fifos_seen):
                    continue
                fifos_seen.append(fifo)
                fname = getattr(fifo, "name", "fifo")
                if isinstance(fifo, StagedFifo):
                    plan.append((
                        lambda f=fifo: (len(f._items), len(f._staged)),
                        f"fifo {fname}"))
                else:
                    plan.append((
                        lambda f=fifo: (len(f), f.occupancy),
                        f"fifo {fname}"))
        return plan

    # -- sanitized_tick callbacks ------------------------------------------

    def shadow_step(self, component: object, cycle: int) -> None:
        if not self.check_idle or id(component) in self._reported_401:
            component.step(cycle)
            return
        plan = self._plans.get(id(component))
        if plan is None:
            plan = self._plans[id(component)] = self._build_plan(component)
        before = [probe() for probe, _ in plan]
        component.step(cycle)
        after = [probe() for probe, _ in plan]
        if before == after:
            return
        changed = [label for (_, label), b, a in zip(plan, before, after)
                   if b != a]
        self._reported_401.add(id(component))
        name = _component_name(component)
        self.findings.append(Finding(
            "BHV401",
            f"pruned component made observable progress when "
            f"shadow-stepped at cycle {cycle} "
            f"(changed: {', '.join(changed[:4])})"
            f"{' ...' if len(changed) > 4 else ''} "
            f"[{_combo_label(self.combo)}]",
            location=name,
            hint="is_idle() reported quiescence while work remained — "
                 "fix is_idle()/next_event_cycle() or wire the missing "
                 "wake source",
            data={"cycle": cycle, "changed": changed,
                  "combo": _combo_label(self.combo)}))

    def step_phase_done(self, cycle: int) -> None:
        if not self.check_wake:
            return
        active = self.sim._active
        armed = self.sim._armed
        for component, name, fifos in self._consumers:
            if component in active:
                continue
            for fifo in fifos:
                if not fifo._staged:
                    continue
                key = (id(component), id(fifo))
                if key in self._reported_402:
                    continue
                deadline = armed.get(component)
                if deadline is not None and deadline <= cycle + 1:
                    continue  # a timer wakes it in time; nothing lost
                self._reported_402.add(key)
                self.findings.append(Finding(
                    "BHV402",
                    f"push into {fifo.name!r} staged at cycle {cycle} "
                    f"but its consumer {name!r} is pruned, was not "
                    f"woken this cycle, and has no timer due by cycle "
                    f"{cycle + 1} [{_combo_label(self.combo)}]",
                    location=name,
                    hint="the producer's push must reach a wake hook "
                         "for this consumer: check wake_sources() "
                         "covers the FIFO",
                    data={"cycle": cycle, "fifo": fifo.name,
                          "combo": _combo_label(self.combo)}))

    def cycle_done(self, cycle: int) -> None:
        pass


def _drive(design: object, actions: Sequence[Action], cycles: int,
           observer: SanitizeObserver | None) -> None:
    """Tick ``design`` to ``cycles``, firing traffic actions on their
    cycles.  Always plain per-cycle ticks (never ``run``): idle-skip
    would make runs incomparable and starve the shadow checks."""
    sim = design.sim
    ordered = sorted(actions, key=lambda action: action[0])
    index = 0
    total = len(ordered)
    while sim.cycle < cycles:
        while index < total and ordered[index][0] <= sim.cycle:
            ordered[index][1]()
            index += 1
        if observer is None:
            sim.tick()
        else:
            sim.sanitized_tick(observer)


# -- BHV403: flit conservation ---------------------------------------------

def _meshes_of(design: object) -> list[tuple[str, object]]:
    meshes: list[tuple[str, object]] = []
    mesh = getattr(design, "mesh", None)
    if mesh is not None:
        meshes.append(("mesh", mesh))
    control_mesh = getattr(getattr(design, "control", None), "mesh", None)
    if control_mesh is not None:
        meshes.append(("control.mesh", control_mesh))
    return meshes


def conservation_ledger(mesh: object) -> dict[str, int]:
    """The flit ledger of one mesh: injected, ejected, in flight.

    In-flight counts every router input (directional rings and LOCAL)
    plus every ejection FIFO, committed and staged — anything a port
    injected that no port has ejected yet.  Flits awaiting injection
    (``_pending_flits``) are not injected yet and tile-level drops
    happen after ejection, so the identity is exact: the machinery
    never loses a flit inside the fabric.
    """
    ports = list(mesh.ports.values())
    injected = sum(port.flits_injected for port in ports)
    ejected = sum(port.flits_ejected for port in ports)
    in_flight = sum(port.eject_fifo.occupancy for port in ports)
    for router in mesh.routers.values():
        for fifo in router.inputs.values():
            in_flight += fifo.occupancy
    return {"injected": injected, "ejected": ejected,
            "in_flight": in_flight}


def _conservation_findings(design: object, combo: Combo) -> list[Finding]:
    findings: list[Finding] = []
    for label, mesh in _meshes_of(design):
        if not getattr(mesh, "ports", None):
            continue
        ledger = conservation_ledger(mesh)
        delta = (ledger["injected"] - ledger["ejected"]
                 - ledger["in_flight"])
        if delta:
            findings.append(Finding(
                "BHV403",
                f"{abs(delta)} flit(s) "
                f"{'lost' if delta > 0 else 'conjured'} in {label}: "
                f"injected={ledger['injected']} "
                f"ejected={ledger['ejected']} "
                f"in_flight={ledger['in_flight']} "
                f"[{_combo_label(combo)}]",
                location=label,
                hint="something pops an ejection FIFO without counting "
                     "flits_ejected (or pushes flits outside a port); "
                     "route drains through LocalPort.receive or bump "
                     "the counters at the bypass site",
                data={**ledger, "delta": delta,
                      "combo": _combo_label(combo)}))
    return findings


# -- BHV404: determinism ----------------------------------------------------

def _tiles_list(design: object) -> list[object]:
    tiles = getattr(design, "tiles", None) or []
    if isinstance(tiles, dict):
        return list(tiles.values())
    return list(tiles)


def _cycle_digest(design: object) -> int:
    """A cheap per-cycle digest over the design's observable totals."""
    parts: list[int] = []
    mesh = getattr(design, "mesh", None)
    if mesh is not None:
        parts.append(mesh.total_flits_forwarded)
        for coord in sorted(mesh.ports):
            port = mesh.ports[coord]
            parts.append(port.flits_injected)
            parts.append(port.flits_ejected)
    for tile in _tiles_list(design):
        parts.append(getattr(tile, "messages_in", 0))
        parts.append(getattr(tile, "messages_out", 0))
        parts.append(getattr(tile, "drops", 0))
    return zlib.crc32(",".join(map(str, parts)).encode())


def _determinism_run(
        factory: Callable[..., object], combo: Combo,
        fault_plan: object | None, traffic: TrafficFn, cycles: int,
) -> tuple[list[int], dict, list | None]:
    reset_id_counters()
    design = build_design(factory, combo, fault_plan)
    actions = sorted(traffic(design, cycles), key=lambda a: a[0])
    sim = design.sim
    digests: list[int] = []
    index = 0
    total = len(actions)
    while sim.cycle < cycles:
        while index < total and actions[index][0] <= sim.cycle:
            actions[index][1]()
            index += 1
        sim.tick()
        digests.append(_cycle_digest(design))
    counters = design_counters(design)
    counters.pop("backends", None)  # the one *expected* difference
    eth_tx = getattr(design, "eth_tx", None)
    frames = (None if eth_tx is None
              else list(getattr(eth_tx, "frames_out", [])))
    return digests, counters, frames


def _determinism_findings(
        factory: Callable[..., object], pair: tuple[Combo, Combo],
        fault_plan: object | None, traffic: TrafficFn, cycles: int,
        target: str,
) -> list[Finding]:
    runs = [_determinism_run(factory, combo, fault_plan, traffic, cycles)
            for combo in pair]
    (digests_a, counters_a, frames_a) = runs[0]
    (digests_b, counters_b, frames_b) = runs[1]
    if (digests_a == digests_b and counters_a == counters_b
            and frames_a == frames_b):
        return []
    divergent = next(
        (i for i, (a, b) in enumerate(zip(digests_a, digests_b))
         if a != b), None)
    keys = sorted(key for key in set(counters_a) | set(counters_b)
                  if counters_a.get(key) != counters_b.get(key))
    where = (f"first divergent cycle {divergent}"
             if divergent is not None else "final state only")
    detail = f"; differing counters: {', '.join(keys)}" if keys else ""
    if frames_a != frames_b:
        detail += "; egress frame streams differ"
    labels = f"{_combo_label(pair[0])} vs {_combo_label(pair[1])}"
    return [Finding(
        "BHV404",
        f"identical traffic diverged under {labels}: {where}{detail}",
        location=target,
        hint="per-cycle observable state must be independent of the "
             "kernel and backends; look for state advanced by step "
             "count rather than by committed events",
        data={"combos": [list(pair[0]), list(pair[1])],
              "first_divergent_cycle": divergent,
              "counter_keys": keys})]


# -- the entry point --------------------------------------------------------

def analyze_dynamic(
        factory: Callable[..., object], *,
        name: str | None = None,
        passes: Iterable[str] | None = None,
        cycles: int = DEFAULT_CYCLES,
        combos: Iterable[Combo] | None = None,
        fault_plan: object | None = None,
        traffic: TrafficFn | None = None,
) -> AnalysisReport:
    """Run the selected sanitizer passes over ``factory``'s design.

    ``factory`` is called once per combo (every run needs a fresh
    design); ``traffic`` (default :func:`default_traffic`) builds the
    per-run action schedule, and ``fault_plan`` composes the run with
    :mod:`repro.faults` — the sanitizer invariants hold under fault
    injection, which is precisely when silent loss tends to appear.

    Findings duplicated across combos are reported once (tagged with
    the first combo that saw them).
    """
    selected = (list(SANITIZE_PASSES) if passes is None
                else list(passes))
    unknown = [p for p in selected if p not in SANITIZE_PASSES]
    if unknown:
        raise KeyError(f"unknown sanitize pass(es) {unknown}; "
                       f"available: {sorted(SANITIZE_PASSES)}")
    if cycles < 1:
        raise ValueError(f"cycles must be >= 1, got {cycles}")
    combo_list: list[Combo] = [tuple(c) for c in
                               (DEFAULT_COMBOS if combos is None
                                else combos)]
    if not combo_list:
        raise ValueError("at least one combo is required")
    traffic_fn: TrafficFn = (default_traffic if traffic is None
                             else traffic)
    report = AnalysisReport(
        target=name or getattr(factory, "__name__", "design"))
    seen: set[tuple[str, str, str]] = set()

    def add(finding: Finding) -> None:
        key = (finding.code, finding.location,
               str(finding.data.get("fifo", "")))
        if key in seen:
            return
        seen.add(key)
        report.findings.append(finding)

    observed = ("idle-truth" in selected) or ("lost-wake" in selected)
    if observed or "conservation" in selected:
        for combo in combo_list:
            reset_id_counters()
            design = build_design(factory, combo, fault_plan)
            model = extract(design, name=report.target)
            actions = traffic_fn(design, cycles)
            observer = (SanitizeObserver(design, model, selected, combo)
                        if observed else None)
            _drive(design, actions, cycles, observer)
            if observer is not None:
                for finding in observer.findings:
                    add(finding)
            if "conservation" in selected:
                for finding in _conservation_findings(design, combo):
                    add(finding)

    if "determinism" in selected:
        if len(combo_list) >= 2:
            pair = (combo_list[0], combo_list[1])
        else:
            pair = (combo_list[0], NAIVE_REFERENCE)
        for finding in _determinism_findings(
                factory, pair, fault_plan, traffic_fn, cycles,
                report.target):
            add(finding)

    report.passes_run.extend(f"sanitize:{p}" for p in selected)
    return report
