"""Finding objects and the BHV code registry.

Every problem the design linter can report carries a stable code so CI
greps, suppressions, and documentation survive message rewording:

- ``BHV1xx`` — topology / structural soundness,
- ``BHV2xx`` — routing and channel-dependency deadlock,
- ``BHV3xx`` — simulation-kernel (quiescence/wake) contract,
- ``BHV4xx`` — dynamic sanitizer findings from bounded instrumented
  runs (:mod:`repro.analysis.sanitize`),
- ``BHV5xx`` — data-flow routing: declared destination domains vs the
  runtime routing state (:mod:`repro.analysis.dataflow`).

Severities: ``error`` findings make :mod:`repro.tools.lint` exit
nonzero; ``warning`` and ``info`` findings are reported but do not
fail the build (``--strict`` promotes warnings).
"""

from __future__ import annotations

from dataclasses import dataclass, field

ERROR = "error"
WARNING = "warning"
INFO = "info"

_SEVERITY_RANK = {ERROR: 0, WARNING: 1, INFO: 2}

#: code -> (default severity, one-line description).  The table is the
#: source of truth for ``repro.tools.lint --list-codes`` and the
#: tutorial's finding-code table.
CODES: dict[str, tuple[str, str]] = {
    # -- BHV1xx: topology / structure ----------------------------------
    "BHV101": (ERROR, "two tiles share the same mesh coordinates"),
    "BHV102": (ERROR, "tile coordinates outside the mesh rectangle"),
    "BHV103": (WARNING, "tile is unreachable: no ingress, no incoming "
                        "route, and it originates no traffic"),
    "BHV104": (ERROR, "next-hop destination has no tile attached "
                      "(flits would wedge in the router)"),
    "BHV105": (ERROR, "duplicate tile name"),
    "BHV106": (ERROR, "component registered with the simulator more "
                      "than once (double-stepped)"),
    "BHV107": (ERROR, "attached local port never registered with the "
                      "simulator (its ejection FIFO never commits)"),
    "BHV110": (WARNING, "suspicious buffer/credit sizing"),
    "BHV111": (ERROR, "tile engine can never make progress "
                      "(non-positive backlog or buffer limits)"),
    "BHV120": (ERROR, "bad mesh dimensions"),
    "BHV121": (ERROR, "chain references an unknown tile"),
    "BHV122": (WARNING, "no chains declared: deadlock analysis has "
                        "nothing to check"),
    "BHV123": (ERROR, "destination entry with no targets"),
    "BHV124": (ERROR, "destination targets an unknown tile"),
    # -- BHV2xx: routing / deadlock ------------------------------------
    "BHV201": (ERROR, "channel-dependency cycle: a message chain can "
                      "hold a NoC link it later re-acquires"),
    "BHV202": (WARNING, "tile-level forwarding loop in the next-hop "
                        "tables"),
    "BHV203": (INFO, "traffic path derived from the next-hop tables is "
                     "not covered by any declared chain"),
    "BHV204": (INFO, "path enumeration truncated (design too large for "
                     "exhaustive analysis)"),
    "BHV205": (ERROR, "next-hop entry routes a tile to itself"),
    # -- BHV3xx: kernel / wake contract --------------------------------
    "BHV301": (ERROR, "component can idle-sleep but consumes a FIFO "
                      "with no wake hook (lost-wakeup stall)"),
    "BHV302": (ERROR, "component can idle-sleep but has no wake "
                      "mechanism at all"),
    "BHV303": (WARNING, "next_event_cycle() implemented without "
                        "is_idle() (the timer is never consulted)"),
    "BHV304": (WARNING, "quiescence probe misbehaved (is_idle / "
                        "next_event_cycle raised or returned a wrong "
                        "type)"),
    "BHV305": (INFO, "component has no quiescence contract; it is "
                     "stepped every cycle (naive-kernel behaviour)"),
    "BHV306": (WARNING, "declared wake source is not wired to wake "
                        "this component"),
    # -- BHV4xx: dynamic sanitizer (bounded instrumented runs) ---------
    "BHV401": (ERROR, "idle-truthfulness violation: a component the "
                      "scheduled kernel pruned made observable "
                      "progress when shadow-stepped"),
    "BHV402": (ERROR, "lost wakeup: a push into a FIFO whose consumer "
                      "is pruned and not woken in the same cycle"),
    "BHV403": (ERROR, "flit conservation violated: injected flits != "
                      "ejected + in-flight (unattributed loss)"),
    "BHV404": (ERROR, "non-determinism: two kernel x backend combos "
                      "diverged under identical traffic"),
    # -- BHV5xx: data-flow routing (destination domains) ---------------
    "BHV501": (ERROR, "declared destination-domain coordinate has no "
                      "tile attached (data-dependent dispatch to it "
                      "can never be routed)"),
    "BHV502": (WARNING, "declared destination-domain coordinate that "
                        "no runtime routing state (next-hop table, "
                        "replica/stack list) can emit"),
    "BHV503": (ERROR, "runtime destination outside the tile's "
                      "declared destination domain (the declaration "
                      "under-covers the reachable set)"),
    "BHV504": (WARNING, "tile forwards traffic but has no statically "
                        "derivable destinations (data-dependent "
                        "routing the linter cannot see)"),
}


@dataclass
class Finding:
    """One problem (or observation) found by an analysis pass."""

    code: str
    message: str
    location: str = ""
    severity: str = ""  # defaults to the code's registry severity
    hint: str = ""
    data: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.code not in CODES:
            raise ValueError(f"unregistered finding code {self.code!r}")
        if not self.severity:
            self.severity = CODES[self.code][0]
        if self.severity not in _SEVERITY_RANK:
            raise ValueError(f"bad severity {self.severity!r}")

    @property
    def is_error(self) -> bool:
        return self.severity == ERROR

    def to_dict(self) -> dict:
        out = {
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
            "location": self.location,
        }
        if self.hint:
            out["hint"] = self.hint
        if self.data:
            out["data"] = self.data
        return out

    def render(self) -> str:
        where = f" {self.location}:" if self.location else ""
        text = f"{self.severity} {self.code}{where} {self.message}"
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text


@dataclass
class AnalysisReport:
    """The combined output of every pass run over one design."""

    target: str
    findings: list[Finding] = field(default_factory=list)
    passes_run: list[str] = field(default_factory=list)

    def extend(self, findings: list[Finding]) -> None:
        self.findings.extend(findings)

    @property
    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == ERROR]

    @property
    def warnings(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == WARNING]

    @property
    def ok(self) -> bool:
        return not self.errors

    def sorted_findings(self) -> list[Finding]:
        return sorted(
            self.findings,
            key=lambda f: (_SEVERITY_RANK[f.severity], f.code, f.location),
        )

    def by_code(self, code: str) -> list[Finding]:
        return [f for f in self.findings if f.code == code]

    def to_dict(self) -> dict:
        return {
            "target": self.target,
            "ok": self.ok,
            "passes": self.passes_run,
            "findings": [f.to_dict() for f in self.sorted_findings()],
        }

    def render(self) -> str:
        lines = [f"== {self.target} =="]
        for finding in self.sorted_findings():
            lines.append(finding.render())
        n_err, n_warn = len(self.errors), len(self.warnings)
        n_info = len(self.findings) - n_err - n_warn
        lines.append(
            f"{'FAIL' if n_err else 'OK'}: {n_err} error(s), "
            f"{n_warn} warning(s), {n_info} info"
        )
        return "\n".join(lines)
