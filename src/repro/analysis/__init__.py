"""Pass-based static analysis of instantiated Beehive designs.

The paper's design-time tooling (section V-G) rejects broken
topologies before anything runs; the activity-scheduled kernel (PR 2)
added a second class of statically-checkable failure — lost-wakeup
stalls.  This package is one finding pipeline for both:

- :mod:`repro.analysis.structural` — topology soundness (BHV1xx);
- :mod:`repro.analysis.deadlock` — channel-dependency deadlock over
  the *real* routing state: declared chains plus chains derived from
  the next-hop tables (BHV2xx);
- :mod:`repro.analysis.wake` — quiescence/wake contract verification
  against the scheduled kernel (BHV3xx);
- :mod:`repro.analysis.dataflow` — destination-domain declarations vs
  the runtime routing state, covering data-dependent routing (BHV5xx).

A separate *dynamic* family, :mod:`repro.analysis.sanitize`, runs
bounded instrumented simulations (BHV4xx: idle-truthfulness, lost
wakeups, flit conservation, determinism) through the same finding
pipeline — see :func:`repro.analysis.sanitize.analyze_dynamic` and
``python -m repro.tools.lint --sanitize``.

Entry points::

    from repro.analysis import analyze
    report = analyze(UdpEchoDesign())
    assert report.ok, report.render()

or, from a shell::

    python -m repro.tools.lint udp_echo --json
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.analysis import dataflow as _dataflow_pass
from repro.analysis import deadlock as _deadlock_pass
from repro.analysis import structural as _structural_pass
from repro.analysis import wake as _wake_pass
from repro.analysis.deadlock import (
    DeadlockError,
    analyze_chains,
    assert_deadlock_free,
    build_dependency_graph,
    chain_link_sequence,
    derive_streaming_chains,
    witness_cycles,
)
from repro.analysis.findings import (
    CODES,
    ERROR,
    INFO,
    WARNING,
    AnalysisReport,
    Finding,
)
from repro.analysis.model import DesignModel, extract
from repro.analysis.sanitize import SANITIZE_PASSES, analyze_dynamic
from repro.analysis.structural import lint_spec

#: name -> pass callable (design-like -> list[Finding]), in run order.
PASSES = {
    "structural": _structural_pass.run,
    "deadlock": _deadlock_pass.run,
    "wake-contract": _wake_pass.run,
    "dataflow": _dataflow_pass.run,
}


def analyze(design: object, *, name: str | None = None,
            passes: Iterable[str] | None = None) -> AnalysisReport:
    """Run the requested passes (default: all) over ``design``."""
    model = extract(design, name=name)
    selected = list(PASSES) if passes is None else list(passes)
    unknown = [p for p in selected if p not in PASSES]
    if unknown:
        raise KeyError(f"unknown pass(es) {unknown}; "
                       f"available: {sorted(PASSES)}")
    report = AnalysisReport(target=model.name)
    for pass_name in selected:
        report.extend(PASSES[pass_name](model))
        report.passes_run.append(pass_name)
    return report


__all__ = [
    "CODES",
    "ERROR",
    "INFO",
    "PASSES",
    "SANITIZE_PASSES",
    "WARNING",
    "AnalysisReport",
    "DeadlockError",
    "DesignModel",
    "Finding",
    "analyze",
    "analyze_chains",
    "analyze_dynamic",
    "assert_deadlock_free",
    "build_dependency_graph",
    "chain_link_sequence",
    "derive_streaming_chains",
    "extract",
    "lint_spec",
    "witness_cycles",
]
