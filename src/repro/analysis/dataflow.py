"""Data-flow routing analysis (BHV5xx).

The structural pass (BHV1xx) checks the destinations it can *see*:
``NextHopTable`` entries and the ``lint_dest_coords()`` hooks.  Tiles
that compute destinations from packet data — the load balancer's flow
hash, the round-robin scheduler, future RPC-dispatch tiles — are only
as checkable as their declarations, which is the gap ROADMAP carried
("the linter cannot see data-dependent routing beyond explicit
``lint_dest_coords()`` hooks").

This pass closes it with the typed
:class:`repro.tiles.base.DestDomain` protocol: a tile declares the
complete coordinate set it may ever address via ``dest_domain()``, and
the pass joins that declaration against the tile's *real* routing
state (table entries, replica/stack lists):

- **BHV501** (error): a declared-domain coordinate with no tile
  attached — data-dependent dispatch to it can never be routed (flits
  would wedge in the router, same failure mode as BHV104, but visible
  even before any table entry exists);
- **BHV502** (warning): a declared-domain coordinate that no runtime
  routing state can emit — a stale or speculative domain entry;
- **BHV503** (error): a runtime destination *outside* the declared
  domain — the declaration under-covers the reachable set, so every
  consumer of the domain (placement, isolation, capacity checks) is
  reasoning from a wrong map;
- **BHV504** (warning): a tile that forwards traffic (it is
  non-terminal in a declared chain) but has no statically derivable
  destinations at all — the linter's data-dependent blind spot, made
  visible instead of silent.
"""

from __future__ import annotations

from repro.analysis.findings import Finding
from repro.analysis.model import Coord, DesignModel, extract
from repro.tiles.base import DestDomain


def domain_of(tile: object) -> DestDomain | None:
    """The tile's declared destination domain, or None.

    Accepts either a :class:`DestDomain` or any iterable of
    coordinates from the ``dest_domain()`` hook (normalised with
    :meth:`DestDomain.of`, marked data-dependent).
    """
    hook = getattr(tile, "dest_domain", None)
    if not callable(hook):
        return None
    declared = hook()
    if declared is None:
        return None
    if isinstance(declared, DestDomain):
        return declared
    return DestDomain.of(declared, data_dependent=True)


def runtime_dests(tile: object) -> list[Coord]:
    """Destinations derivable from the tile's *runtime* routing state:
    the ``lint_dest_coords()`` hook (replica/stack lists) plus every
    ``NextHopTable`` entry — deliberately excluding ``dest_domain()``,
    which is the declaration this pass checks the runtime against."""
    coords: list[Coord] = []
    hook = getattr(tile, "lint_dest_coords", None)
    if callable(hook):
        coords.extend(tuple(c) for c in hook())
    table = getattr(tile, "next_hop", None)
    if table is not None:
        for dests in getattr(table, "_entries", {}).values():
            coords.extend(tuple(c) for c in dests)
    seen: set[Coord] = set()
    unique: list[Coord] = []
    for coord in coords:
        if coord not in seen:
            seen.add(coord)
            unique.append(coord)
    return unique


def _forwarding_names(model: DesignModel) -> set[str]:
    """Tiles in a non-terminal position of some declared chain."""
    names: set[str] = set()
    for chain in model.declared_chains:
        names.update(chain[:-1])
    return names


def run(design: object) -> list[Finding]:
    """The BHV5xx lint pass over an instantiated design."""
    model = extract(design)
    findings: list[Finding] = []
    forwarding = _forwarding_names(model)

    for name, tile in model.tiles.items():
        domain = domain_of(tile)
        runtime = runtime_dests(tile)

        if domain is None:
            if not runtime and name in forwarding:
                findings.append(Finding(
                    "BHV504",
                    "forwards traffic (non-terminal in a declared "
                    "chain) but has no NextHopTable entries, no "
                    "lint_dest_coords() and no dest_domain(): its "
                    "routing is invisible to every static pass",
                    location=name,
                    hint="declare the reachable set with a "
                         "dest_domain() -> DestDomain hook"))
            continue

        declared = set(domain.coords)
        runtime_set = set(runtime)

        for coord in sorted(declared):
            if coord not in model.tiles_at:
                findings.append(Finding(
                    "BHV501",
                    f"declared destination {coord} has no tile "
                    "attached: data-dependent dispatch to it can "
                    "never be routed",
                    location=name,
                    hint="attach a tile at the coordinate or remove "
                         "it from dest_domain()",
                    data={"coord": list(coord)}))

        # A tile with no table/replica state at all (fixed wiring held
        # in plain attributes, or purely data-dependent dispatch) has
        # nothing to diff the declaration against; only report stale
        # domain entries when runtime state exists to contradict them.
        if runtime_set:
            for coord in sorted(declared - runtime_set):
                findings.append(Finding(
                    "BHV502",
                    f"declared destination {coord} is emitted by no "
                    "runtime routing state (no table entry, replica "
                    "or stack registers it)",
                    location=name,
                    hint="remove the stale domain entry or register "
                         "the destination",
                    data={"coord": list(coord)}))

        for coord in sorted(runtime_set - declared):
            findings.append(Finding(
                "BHV503",
                f"runtime routing state can emit {coord}, which is "
                "outside the declared destination domain",
                location=name,
                hint="dest_domain() must cover every destination the "
                     "tile can actually address",
                data={"coord": list(coord)}))
    return findings
