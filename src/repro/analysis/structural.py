"""Structural soundness checks (BHV1xx).

Two front ends share the finding vocabulary:

- :func:`lint_spec` checks a declarative :class:`DesignSpec` (the XML
  world) — it is the finding-pipeline form of the paper's section V-G
  checks, and :func:`repro.config.validate.validate` is now a thin
  wrapper over it;
- :func:`run` checks an *instantiated* design: coordinate collisions
  on the real mesh, dangling next-hop destinations, tiles nobody can
  reach, double- or never-registered components, and buffer/credit
  sizing sanity.
"""

from __future__ import annotations

from repro.analysis.findings import Finding
from repro.analysis.model import DesignModel, extract
from repro.tiles.base import Tile


def lint_spec(spec: object) -> list[Finding]:
    """BHV1xx findings for a :class:`repro.config.schema.DesignSpec`."""
    findings: list[Finding] = []
    if spec.width < 1 or spec.height < 1:
        findings.append(Finding(
            "BHV120", f"bad dimensions {spec.width}x{spec.height}",
            location=spec.name))
    seen_names: set[str] = set()
    seen_coords: dict = {}
    all_names = {tile.name for tile in spec.tiles}
    for tile in spec.tiles:
        if tile.name in seen_names:
            findings.append(Finding(
                "BHV105", f"duplicate tile name {tile.name!r}",
                location=tile.name))
        seen_names.add(tile.name)
        if not (0 <= tile.x < spec.width and 0 <= tile.y < spec.height):
            findings.append(Finding(
                "BHV102",
                f"tile {tile.name!r} at {tile.coord} is outside the "
                f"{spec.width}x{spec.height} mesh",
                location=tile.name))
        elif tile.coord in seen_coords:
            findings.append(Finding(
                "BHV101",
                f"tiles {seen_coords[tile.coord]!r} and {tile.name!r} "
                f"share coordinates {tile.coord}",
                location=tile.name))
        else:
            seen_coords[tile.coord] = tile.name
        for dest in tile.dests:
            for target in dest.targets:
                if target not in all_names:
                    findings.append(Finding(
                        "BHV124",
                        f"tile {tile.name!r} routes to unknown tile "
                        f"{target!r}",
                        location=tile.name))
            if not dest.targets:
                findings.append(Finding(
                    "BHV123",
                    f"tile {tile.name!r} has a destination with no "
                    "targets",
                    location=tile.name))
    for chain in spec.chains:
        for name in chain.tiles:
            if name not in seen_names:
                findings.append(Finding(
                    "BHV121",
                    f"chain references unknown tile {name!r}",
                    location=" -> ".join(chain.tiles)))
    if not findings and not spec.chains:
        findings.append(Finding(
            "BHV122",
            "no chains declared: deadlock analysis has nothing to "
            "check",
            location=spec.name))
    return findings


def _mesh_findings(model: DesignModel) -> list[Finding]:
    findings: list[Finding] = []
    mesh = model.mesh
    if mesh is None:
        return findings
    for coord, names in sorted(model.tiles_at.items()):
        if len(names) > 1:
            findings.append(Finding(
                "BHV101",
                f"tiles {', '.join(repr(n) for n in names)} share "
                f"coordinates {coord} (one local port, interleaved "
                "traffic)",
                location=names[-1]))
        if coord not in mesh.routers:
            findings.append(Finding(
                "BHV102",
                f"tile {names[0]!r} at {coord} is outside the "
                f"{mesh.width}x{mesh.height} mesh",
                location=names[0]))
    return findings


def _routing_findings(model: DesignModel) -> list[Finding]:
    findings: list[Finding] = []
    reached: set[str] = set()
    for src, dst, coord in model.forwarding_edges():
        if dst is None:
            findings.append(Finding(
                "BHV104",
                f"tile {src!r} routes to {coord}, where no tile is "
                "attached — ejected flits would wedge the router",
                location=src,
                hint="attach a tile at that coordinate or fix the "
                     "next-hop entry"))
        else:
            reached.add(dst)
    for chain in model.declared_chains:
        reached.update(chain[1:])
    for name, tile in model.tiles.items():
        if name in reached:
            continue
        if hasattr(tile, "push_frame"):
            continue  # an ingress: frames enter from outside the NoC
        if isinstance(tile, Tile) and \
                type(tile).on_cycle is not Tile.on_cycle:
            continue  # originates its own traffic
        if not isinstance(tile, Tile):
            continue  # non-framework component; cannot reason about it
        findings.append(Finding(
            "BHV103",
            f"tile {name!r} has no ingress, no incoming route, and "
            "originates no traffic",
            location=name,
            hint="dead tile: remove it or wire a next-hop entry to it"))
    return findings


def _registration_findings(model: DesignModel) -> list[Finding]:
    findings: list[Finding] = []
    if model.sim is None:
        return findings
    counts: dict[int, int] = {}
    registered: set[int] = set()
    by_id: dict[int, object] = {}
    for component in model.components():
        key = id(component)
        counts[key] = counts.get(key, 0) + 1
        registered.add(key)
        by_id[key] = component
    for key, count in counts.items():
        if count > 1:
            findings.append(Finding(
                "BHV106",
                f"component {by_id[key]!r} registered {count} times — "
                "it steps (and commits) that many times per cycle",
                location=getattr(by_id[key], "name", "")))
    # A substep is stepped by its parent, so it counts as registered —
    # unless it is *also* in the simulator directly, in which case it
    # steps twice per cycle.  The same applies when two parents both
    # claim a substep (e.g. a tile adopted by two flat tile cores):
    # ``substep_parents`` dedupes on id, so count occurrences here.
    sub_claims: dict[int, dict[int, object]] = {}
    sub_by_id: dict[int, object] = {}
    for component in model.components():
        for sub in model.substeps(component):
            sub_claims.setdefault(id(sub), {})[id(component)] = component
            sub_by_id[id(sub)] = sub
    for key, parents in sub_claims.items():
        sub = sub_by_id[key]
        if key in registered:
            parent = next(iter(parents.values()))
            findings.append(Finding(
                "BHV106",
                f"component {sub!r} is registered with the simulator "
                f"and also stepped internally by "
                f"{getattr(parent, 'name', parent)!r} — it steps "
                "twice per cycle",
                location=getattr(sub, "name", "")))
        if len(parents) > 1:
            names = ", ".join(
                repr(getattr(p, "name", p)) for p in parents.values())
            findings.append(Finding(
                "BHV106",
                f"component {sub!r} is stepped internally by "
                f"{len(parents)} parents ({names}) — it steps that "
                "many times per cycle",
                location=getattr(sub, "name", "")))
    registered |= set(sub_claims)
    for port in model.attached_ports():
        if id(port) not in registered:
            findings.append(Finding(
                "BHV107",
                f"local port at {port.coord} is attached to the mesh "
                "but never added to the simulator",
                location=str(port.coord),
                hint="register it (Mesh.register does this for ports "
                     "attached before the call)"))
    for name, tile in model.tiles.items():
        if id(tile) not in registered:
            findings.append(Finding(
                "BHV107",
                f"tile {name!r} is part of the design but never added "
                "to the simulator",
                location=name))
    return findings


def _sizing_findings(model: DesignModel) -> list[Finding]:
    findings: list[Finding] = []
    for name, tile in model.tiles.items():
        if not isinstance(tile, Tile):
            continue
        if tile.max_tx_backlog < 1:
            findings.append(Finding(
                "BHV111",
                f"tile {name!r} has max_tx_backlog="
                f"{tile.max_tx_backlog}: its engine can never pick up "
                "a message",
                location=name))
        if tile.buffer_flits < 1:
            findings.append(Finding(
                "BHV111",
                f"tile {name!r} has buffer_flits={tile.buffer_flits}: "
                "it can never start receiving a message",
                location=name))
        eject = tile.port.eject_fifo
        if eject.capacity is None:
            findings.append(Finding(
                "BHV110",
                f"tile {name!r} has an unbounded ejection FIFO — "
                "credit backpressure (and the deadlock model) assumes "
                "bounded ejection",
                location=name))
    if model.mesh is not None:
        for coord, router in model.mesh.routers.items():
            for port_enum, fifo in router.inputs.items():
                if fifo.capacity is not None and fifo.capacity < 2:
                    findings.append(Finding(
                        "BHV110",
                        f"router {coord} input {port_enum.value!r} has "
                        f"a {fifo.capacity}-flit FIFO; depth < 2 "
                        "serialises every hop",
                        location=str(coord)))
                    break  # one finding per router is enough
    return findings


def run(design: object) -> list[Finding]:
    """The BHV1xx lint pass over an instantiated design."""
    model = extract(design)
    findings = _mesh_findings(model)
    findings.extend(_routing_findings(model))
    findings.extend(_registration_findings(model))
    findings.extend(_sizing_findings(model))
    return findings
