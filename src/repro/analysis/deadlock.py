"""Channel-dependency deadlock analysis (paper sections IV-E, V-G).

A *resource* is a directed NoC link ``((x, y), port)`` — the output
port of the router at (x, y), including the LOCAL ejection port into a
tile.  A *chain* is the tile sequence a packet class traverses.  Under
wormhole switching with streaming tiles, a packet flowing down a chain
can simultaneously hold every link from its current tail position back
upstream, so the chain acquires the concatenated link sequence of all
its hops in order; a cycle anywhere in the union graph over all chains
is a potential deadlock.

This module is the canonical home of the analysis (it moved here from
the old ``repro.deadlock.analysis`` module, since removed; the
``repro.deadlock`` package re-exports the stable API and keeps the
runtime demo).  Two entry points:

- the functional API (:func:`analyze_chains`,
  :func:`assert_deadlock_free`) over explicitly declared chains, used
  by the design constructors; and
- :func:`run`, the lint *pass* over an instantiated design, which
  additionally derives the real traffic chains from the next-hop
  tables (round-robin/flow-hash destination sets included), splits
  them at decoupling tiles (``CHAIN_BOUNDARY``, e.g. the packet log's
  bounded dropping request buffer), and reports every independent
  cycle with its full edge path as a ``BHV2xx`` finding.
"""

from __future__ import annotations

from collections.abc import Callable

import networkx as nx

from repro.analysis.findings import Finding
from repro.analysis.model import DesignModel, extract
from repro.noc.routing import Port, route_path, xy_route

Coord = tuple
Resource = tuple  # ((x, y), Port)
#: (here, dst) -> next output port.
RouteFn = Callable[[tuple[int, int], tuple[int, int]], Port]

# Hard cap on derived-path enumeration; beyond this the pass reports
# BHV204 and analyzes the paths found so far.
MAX_DERIVED_PATHS = 4096


class DeadlockError(RuntimeError):
    """Raised when a design's chains admit a resource cycle."""

    def __init__(self, cycle: list,
                 chains_involved: list[str]) -> None:
        self.cycle = cycle
        self.chains_involved = chains_involved
        links = " -> ".join(f"{coord}:{port.value}"
                            for coord, port in cycle)
        super().__init__(
            f"message-level deadlock: resource cycle [{links}] "
            f"(chains: {', '.join(chains_involved) or 'unknown'}); "
            "re-place the tiles so each chain acquires links in order"
        )


def chain_link_sequence(chain: list[str],
                        coords: dict[str, Coord],
                        route_fn: RouteFn = xy_route) -> list[Resource]:
    """The ordered list of NoC links a chain can hold simultaneously.

    Each tile-to-tile hop contributes its full route, including the
    final LOCAL ejection into the destination tile.
    """
    missing = [name for name in chain if name not in coords]
    if missing:
        raise KeyError(f"chain references unknown tiles: {missing}")
    links: list[Resource] = []
    for src_name, dst_name in zip(chain, chain[1:]):
        src, dst = coords[src_name], coords[dst_name]
        if src == dst:
            raise ValueError(
                f"chain hop {src_name}->{dst_name} stays on one tile"
            )
        links.extend(route_path(src, dst, route_fn))
    return links


def build_dependency_graph(chains: list[list[str]],
                           coords: dict[str, Coord],
                           route_fn: RouteFn = xy_route) -> nx.DiGraph:
    """Union of every chain's consecutive-resource dependency edges."""
    graph = nx.DiGraph()
    for chain in chains:
        name = "->".join(chain)
        sequence = chain_link_sequence(chain, coords, route_fn)
        for held, wanted in zip(sequence, sequence[1:]):
            if held == wanted:
                continue
            if graph.has_edge(held, wanted):
                graph[held][wanted]["chains"].add(name)
            else:
                graph.add_edge(held, wanted, chains={name})
        # A repeated resource inside one chain is an immediate self-wait.
        seen: dict[Resource, int] = {}
        for position, resource in enumerate(sequence):
            if resource in seen and resource[1] != Port.LOCAL:
                graph.add_edge(resource, resource, chains={name})
            seen[resource] = position
    return graph


def witness_cycles(graph: nx.DiGraph) -> list[list[Resource]]:
    """One witness cycle per independent cyclic region of the graph.

    LOCAL ejection ports are consumed by tiles (which always drain
    eventually in a correct design), so a cycle must involve at least
    one mesh link to count as a true NoC deadlock.
    """
    cycles: list[list[Resource]] = []
    for scc in nx.strongly_connected_components(graph):
        if len(scc) == 1:
            node = next(iter(scc))
            if not graph.has_edge(node, node):
                continue
        try:
            edges = nx.find_cycle(graph.subgraph(scc),
                                  orientation="original")
        except nx.NetworkXNoCycle:  # pragma: no cover - SCC has a cycle
            continue
        cycle = [edge[0] for edge in edges]
        if all(resource[1] == Port.LOCAL for resource in cycle):
            continue
        cycles.append(cycle)
    return cycles


def chains_through(graph: nx.DiGraph, cycle: list[Resource]) -> list[str]:
    """The chain names contributing edges inside the cycle's region."""
    involved: set[str] = set()
    cycle_set = set(cycle)
    for held, wanted, data in graph.edges(data=True):
        if held in cycle_set and wanted in cycle_set:
            involved.update(data["chains"])
    return sorted(involved)


def analyze_chains(chains: list[list[str]],
                   coords: dict[str, Coord],
                   route_fn: RouteFn = xy_route) -> list | None:
    """Returns a witness resource cycle, or None if deadlock-free."""
    graph = build_dependency_graph(chains, coords, route_fn)
    cycles = witness_cycles(graph)
    return cycles[0] if cycles else None


def assert_deadlock_free(chains: list[list[str]],
                         coords: dict[str, Coord],
                         route_fn: RouteFn = xy_route) -> None:
    """Raise :class:`DeadlockError` if the chains admit a cycle."""
    graph = build_dependency_graph(chains, coords, route_fn)
    cycles = witness_cycles(graph)
    if not cycles:
        return
    raise DeadlockError(cycles[0], chains_through(graph, cycles[0]))


def analyze_design(design: object) -> None:
    """Convenience: check a built design exposing .chains/.tile_coords."""
    assert_deadlock_free(design.chains, design.tile_coords)


# -- chain derivation from the instantiated routing state ---------------------


def _is_boundary(tile: object) -> bool:
    return bool(getattr(type(tile), "CHAIN_BOUNDARY", False))


def derive_streaming_chains(
    model: DesignModel,
) -> tuple[list[list[str]], list[Finding]]:
    """Maximal backpressure-coupled tile paths, from the real tables.

    A tile wired through a next-hop table consumes its input only while
    it can inject its output, so consecutive next-hop hops are coupled
    and the whole path is one chain.  Paths split at ``CHAIN_BOUNDARY``
    tiles (bounded *dropping* buffers decouple their upstream from
    their downstream) and terminate on a revisit (a forwarding loop,
    reported as BHV202).
    """
    findings: list[Finding] = []
    adjacency: dict[str, list[str]] = {name: [] for name in model.tiles}
    indegree: dict[str, int] = {name: 0 for name in model.tiles}
    for src, dst, coord in model.forwarding_edges():
        if dst is None:
            continue  # dangling route: the structural pass reports it
        if dst == src:
            findings.append(Finding(
                "BHV205",
                f"tile {src!r} routes traffic to its own "
                f"coordinates {coord}",
                location=src,
                hint="a self-route never leaves the local port and "
                     "wedges the ejection FIFO",
            ))
            continue
        adjacency[src].append(dst)
        indegree[dst] += 1

    starts = [name for name, tile in model.tiles.items()
              if adjacency[name]
              and (indegree[name] == 0 or _is_boundary(tile))]

    chains: list[list[str]] = []
    covered_edges: set[tuple[str, str]] = set()
    truncated = False

    def walk(path: list[str]) -> None:
        nonlocal truncated
        if len(chains) >= MAX_DERIVED_PATHS:
            truncated = True
            return
        head = path[-1]
        successors = adjacency[head]
        extended = False
        for nxt in successors:
            covered_edges.add((head, nxt))
            if _is_boundary(model.tiles[nxt]):
                # The hop *into* the boundary still holds links; the
                # boundary's own output starts a fresh chain.  A path
                # revisiting a boundary (e.g. the log readback loop
                # udp_rx -> log) is closed by the boundary's dropping
                # buffer, so it is not a forwarding-loop finding.
                chains.append(path + [nxt])
                extended = True
                continue
            if nxt in path:
                findings.append(Finding(
                    "BHV202",
                    "forwarding loop in the next-hop tables: "
                    + " -> ".join(path + [nxt]),
                    location=head,
                    hint="a packet revisiting a tile usually means a "
                         "mis-wired next-hop entry",
                ))
                chains.append(path + [nxt])
                continue
            extended = True
            walk(path + [nxt])
        if not extended and len(path) > 1:
            chains.append(path)

    for start in starts:
        walk([start])
    # Cover edges unreachable from any start (e.g. components that are
    # pure forwarding cycles with no external entry point).
    for src, dsts in adjacency.items():
        for dst in dsts:
            if (src, dst) not in covered_edges and \
                    len(chains) < MAX_DERIVED_PATHS:
                walk([src])
                break

    if truncated:
        findings.append(Finding(
            "BHV204",
            f"derived-path enumeration stopped at {MAX_DERIVED_PATHS} "
            "paths; analysis covers the enumerated prefix only",
            location=model.name,
        ))
    return chains, findings


def _is_covered(derived: list[str], declared: list[list[str]]) -> bool:
    """True if ``derived`` is a contiguous run of some declared chain."""
    n = len(derived)
    for chain in declared:
        for offset in range(len(chain) - n + 1):
            if chain[offset:offset + n] == derived:
                return True
    return False


def _drains_at_boundary(chain: list[str], model: DesignModel) -> bool:
    """True if the chain's terminal tile is a ``CHAIN_BOUNDARY``.

    Such a chain's head always advances — the boundary serves or
    *drops* instead of backpressuring — so none of its links can be
    held indefinitely and it cannot contribute to a sustained resource
    cycle (the paper's argument for the log readback loop).
    """
    tile = model.tiles.get(chain[-1])
    return tile is not None and _is_boundary(tile)


def run(design: object) -> list[Finding]:
    """The BHV2xx lint pass over an instantiated design."""
    model = extract(design)
    findings: list[Finding] = []
    derived, derive_findings = derive_streaming_chains(model)
    findings.extend(derive_findings)

    for chain in derived:
        if _drains_at_boundary(chain, model) and chain[-1] in chain[:-1]:
            continue  # a boundary-closed loop exists *by design*
        if not _is_covered(chain, model.declared_chains):
            findings.append(Finding(
                "BHV203",
                "derived traffic path not covered by any declared "
                "chain: " + " -> ".join(chain),
                location=model.name,
                hint="declare it (design.chains) so the build-time "
                     "analysis sees the same traffic the tables route",
            ))

    all_chains: list[list[str]] = []
    seen: set[tuple[str, ...]] = set()
    for chain in model.declared_chains + derived:
        key = tuple(chain)
        if len(chain) >= 2 and key not in seen:
            seen.add(key)
            all_chains.append(chain)

    graph = nx.DiGraph()
    route_fn = model.route_fn
    for chain in all_chains:
        if _drains_at_boundary(chain, model):
            continue  # cannot sustain a wait; see _drains_at_boundary
        try:
            sub = build_dependency_graph([chain], model.coords, route_fn)
        except KeyError as error:
            findings.append(Finding(
                "BHV121", str(error), location=" -> ".join(chain)))
            continue
        except ValueError as error:
            findings.append(Finding(
                "BHV205", str(error), location=" -> ".join(chain)))
            continue
        for held, wanted, data in sub.edges(data=True):
            if graph.has_edge(held, wanted):
                graph[held][wanted]["chains"].update(data["chains"])
            else:
                graph.add_edge(held, wanted, chains=set(data["chains"]))

    for cycle in witness_cycles(graph):
        links = " -> ".join(f"{coord}:{port.value}"
                            for coord, port in cycle)
        involved = chains_through(graph, cycle)
        findings.append(Finding(
            "BHV201",
            f"resource cycle [{links} -> {cycle[0][0]}:"
            f"{cycle[0][1].value}] "
            f"(chains: {', '.join(involved) or 'unknown'})",
            location=model.name,
            hint="re-place the tiles so each chain acquires NoC links "
                 "in a consistent order (paper Fig 5b)",
            data={
                "cycle": [[list(coord), port.value]
                          for coord, port in cycle],
                "chains": involved,
            },
        ))
    return findings
