"""Runtime reproduction of the Fig 5 deadlock example.

:class:`CutThroughTile` forwards flits as they arrive (streaming, like
the paper's protocol engines) with only a couple of flits of internal
buffering, so a blocked downstream transfer back-pressures through the
tile and holds the upstream wormhole open.  Chaining four of them in
the Fig 5a placement wedges the NoC on a sufficiently long packet;
the Fig 5b placement streams the same packet through cleanly.
"""

from __future__ import annotations

import itertools

from repro.noc.flit import Flit
from repro.noc.mesh import Mesh
from repro.noc.routing import Port
from repro.sim.kernel import CycleSimulator

_msg_ids = itertools.count(1_000_000)


class CutThroughTile:
    """A streaming relay: each ejected flit is re-addressed to the next
    tile and injected immediately.  ``next_coord=None`` makes it a sink."""

    def __init__(self, name: str, mesh: Mesh, coord: tuple[int, int],
                 next_coord: tuple[int, int] | None):
        self.name = name
        self.coord = coord
        self.next_coord = next_coord
        self.port = mesh.attach(coord)
        self._held: Flit | None = None
        self._out_msg_id = 0
        self.flits_through = 0
        self.messages_through = 0

    def step(self, cycle: int) -> None:
        local_in = self.port.router.inputs[Port.LOCAL]
        if self._held is not None:
            if not local_in.can_accept():
                return  # blocked: stop consuming, hold the wormhole open
            local_in.push(self._held)
            self.port.flits_injected += 1
            self._held = None
        flit = self.port.eject_fifo.peek()
        if flit is None:
            return
        if self.next_coord is None:
            self.port.eject_fifo.pop()
            self.port.flits_ejected += 1
            self.flits_through += 1
            if flit.is_tail:
                self.messages_through += 1
            return
        self.port.eject_fifo.pop()
        self.port.flits_ejected += 1
        self.flits_through += 1
        if flit.is_head:
            self._out_msg_id = next(_msg_ids)
        if flit.is_tail:
            self.messages_through += 1
        forwarded = Flit(
            kind=flit.kind,
            is_head=flit.is_head,
            is_tail=flit.is_tail,
            dst=self.next_coord,
            src=self.coord,
            msg_id=self._out_msg_id,
            payload=flit.payload,
        )
        if local_in.can_accept():
            local_in.push(forwarded)
            self.port.flits_injected += 1
        else:
            self._held = forwarded

    def commit(self) -> None:
        pass  # the LocalPort (registered by the mesh) commits the FIFOs

    def lint_dest_coords(self):
        """Static destinations for the design linter's derived-chain
        analysis (this tile has no NextHopTable)."""
        return [] if self.next_coord is None else [self.next_coord]


class Fig5Design:
    """The Fig 5 receive chain eth -> ip -> udp -> app on a 4x1 mesh,
    in the deadlocking (``variant="a"``) or safe (``"b"``) placement.

    The Ethernet position is the injection point (its processing is the
    message entering the NoC); ip and udp are streaming relays; app is
    a sink.  Shaped like a design (``sim``/``mesh``/``tiles``/
    ``chains``/``tile_coords``) so ``python -m repro.tools.lint`` can
    analyze it directly.
    """

    def __init__(self, variant: str = "a"):
        if variant == "a":
            coords = {"eth": (0, 0), "ip": (2, 0), "udp": (1, 0),
                      "app": (3, 0)}
        elif variant == "b":
            coords = {"eth": (0, 0), "ip": (1, 0), "udp": (2, 0),
                      "app": (3, 0)}
        else:
            raise ValueError(f"unknown Fig 5 variant {variant!r}")
        self.variant = variant
        self.sim = CycleSimulator()
        self.mesh = Mesh(4, 1)
        self.tiles = {
            "ip": CutThroughTile("ip", self.mesh, coords["ip"],
                                 coords["udp"]),
            "udp": CutThroughTile("udp", self.mesh, coords["udp"],
                                  coords["app"]),
            "app": CutThroughTile("app", self.mesh, coords["app"], None),
        }
        self.ingress = self.mesh.attach(coords["eth"])
        self.mesh.register(self.sim)
        self.sim.add_all(self.tiles.values())
        self.chains = [["eth", "ip", "udp", "app"]]
        self.tile_coords = dict(coords)


def build_fig5_layout(variant: str):
    """Build a :class:`Fig5Design` and unpack it the historical way:
    ``(sim, ingress_port, tiles, chain, coords)``."""
    design = Fig5Design(variant)
    return (design.sim, design.ingress, design.tiles,
            design.chains[0], design.tile_coords)
