"""Compatibility shim — the analysis moved to :mod:`repro.analysis`.

The static resource-dependency analysis now lives in
:mod:`repro.analysis.deadlock`, where it is one pass of the unified
design linter (``python -m repro.tools.lint``).  This module re-exports
the stable API so existing imports keep working; :func:`analyze_chains`
is deprecated in favour of the canonical home (or, for whole designs,
:func:`repro.analysis.analyze`).
"""

from __future__ import annotations

import warnings

from repro.analysis.deadlock import (  # noqa: F401 - re-exports
    DeadlockError,
    analyze_design,
    assert_deadlock_free,
    build_dependency_graph,
    chain_link_sequence,
)
from repro.analysis.deadlock import analyze_chains as _analyze_chains
from repro.noc.routing import xy_route

Coord = tuple
Resource = tuple  # ((x, y), Port)


def analyze_chains(chains, coords, route_fn=xy_route):
    """Deprecated alias for :func:`repro.analysis.analyze_chains`."""
    warnings.warn(
        "repro.deadlock.analyze_chains moved to repro.analysis; "
        "use repro.analysis.analyze_chains (or repro.analysis.analyze "
        "for whole-design linting)",
        DeprecationWarning,
        stacklevel=2,
    )
    return _analyze_chains(chains, coords, route_fn)
