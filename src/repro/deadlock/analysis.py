"""Static resource-dependency analysis of message chains.

A *resource* is a directed NoC link ``((x, y), port)`` — the output
port of the router at (x, y), including the LOCAL ejection port into a
tile.  A *chain* is the tile sequence a packet class traverses (all
chains are known at compile time, section IV-E).

Under wormhole switching with streaming tiles, a packet flowing down a
chain can simultaneously hold every link from its current tail position
back upstream; equivalently, the chain acquires the concatenated link
sequence of all its hops in order.  We add a dependency edge between
each consecutive pair of resources in that order; a cycle anywhere in
the union graph over all chains is a potential deadlock, and the
shortest witness cycle is reported so the designer can re-place tiles
(the paper's prescribed fix).
"""

from __future__ import annotations

import networkx as nx

from repro.noc.routing import Port, route_path, xy_route

Coord = tuple
Resource = tuple  # ((x, y), Port)


class DeadlockError(RuntimeError):
    """Raised when a design's chains admit a resource cycle."""

    def __init__(self, cycle: list, chains_involved: list[str]):
        self.cycle = cycle
        self.chains_involved = chains_involved
        links = " -> ".join(f"{coord}:{port.value}"
                            for coord, port in cycle)
        super().__init__(
            f"message-level deadlock: resource cycle [{links}] "
            f"(chains: {', '.join(chains_involved) or 'unknown'}); "
            "re-place the tiles so each chain acquires links in order"
        )


def chain_link_sequence(chain: list[str],
                        coords: dict[str, Coord],
                        route_fn=xy_route) -> list[Resource]:
    """The ordered list of NoC links a chain can hold simultaneously.

    Each tile-to-tile hop contributes its full XY route, including the
    final LOCAL ejection into the destination tile.
    """
    missing = [name for name in chain if name not in coords]
    if missing:
        raise KeyError(f"chain references unknown tiles: {missing}")
    links: list[Resource] = []
    for src_name, dst_name in zip(chain, chain[1:]):
        src, dst = coords[src_name], coords[dst_name]
        if src == dst:
            raise ValueError(
                f"chain hop {src_name}->{dst_name} stays on one tile"
            )
        links.extend(route_path(src, dst, route_fn))
    return links


def build_dependency_graph(chains: list[list[str]],
                           coords: dict[str, Coord],
                           route_fn=xy_route) -> nx.DiGraph:
    """Union of every chain's consecutive-resource dependency edges."""
    graph = nx.DiGraph()
    for index, chain in enumerate(chains):
        name = "->".join(chain)
        sequence = chain_link_sequence(chain, coords, route_fn)
        for held, wanted in zip(sequence, sequence[1:]):
            if held == wanted:
                continue
            if graph.has_edge(held, wanted):
                graph[held][wanted]["chains"].add(name)
            else:
                graph.add_edge(held, wanted, chains={name})
        # A repeated resource inside one chain is an immediate self-wait.
        seen: dict[Resource, int] = {}
        for position, resource in enumerate(sequence):
            if resource in seen and resource[1] != Port.LOCAL:
                graph.add_edge(resource, resource, chains={name})
            seen[resource] = position
    return graph


def analyze_chains(chains: list[list[str]],
                   coords: dict[str, Coord],
                   route_fn=xy_route) -> list | None:
    """Returns a witness resource cycle, or None if deadlock-free.

    LOCAL ejection ports are consumed by tiles (which always drain
    eventually in a correct design), so a cycle must involve at least
    one mesh link to be a true NoC deadlock.
    """
    graph = build_dependency_graph(chains, coords, route_fn)
    try:
        cycle_edges = nx.find_cycle(graph, orientation="original")
    except nx.NetworkXNoCycle:
        return None
    cycle = [edge[0] for edge in cycle_edges]
    if all(resource[1] == Port.LOCAL for resource in cycle):
        return None
    return cycle


def assert_deadlock_free(chains: list[list[str]],
                         coords: dict[str, Coord],
                         route_fn=xy_route) -> None:
    """Raise :class:`DeadlockError` if the chains admit a cycle."""
    cycle = analyze_chains(chains, coords, route_fn)
    if cycle is None:
        return
    graph = build_dependency_graph(chains, coords, route_fn)
    involved: set[str] = set()
    cycle_set = set(cycle)
    for held, wanted, data in graph.edges(data=True):
        if held in cycle_set and wanted in cycle_set:
            involved.update(data["chains"])
    raise DeadlockError(cycle, sorted(involved))


def analyze_design(design) -> None:
    """Convenience: check a built design exposing .chains/.tile_coords."""
    assert_deadlock_free(design.chains, design.tile_coords)
