"""Deprecated shim — the analysis moved to :mod:`repro.analysis.deadlock`.

The static resource-dependency analysis now lives in
:mod:`repro.analysis.deadlock`, where it is one pass of the unified
design linter (``python -m repro.tools.lint``); whole designs are
checked with :func:`repro.analysis.analyze`.  Import from there.

Every name this module ever exported still resolves — lazily, via
module ``__getattr__`` — but each access emits a
:class:`DeprecationWarning` naming the canonical home (the test suite
asserts this, so the shim cannot silently rot into a second API
surface).  :mod:`repro.deadlock` itself (the package) imports from the
canonical module directly and stays warning-free.
"""

from __future__ import annotations

import warnings

Coord = tuple
Resource = tuple  # ((x, y), Port)

#: Names this shim forwards to :mod:`repro.analysis.deadlock`.
_FORWARDED = (
    "DeadlockError",
    "analyze_chains",
    "analyze_design",
    "assert_deadlock_free",
    "build_dependency_graph",
    "chain_link_sequence",
)


def __getattr__(name: str):
    if name in _FORWARDED:
        warnings.warn(
            f"repro.deadlock.analysis.{name} moved to repro.analysis; "
            f"use repro.analysis.deadlock.{name} (or "
            "repro.analysis.analyze for whole-design linting)",
            DeprecationWarning,
            stacklevel=2,
        )
        from repro.analysis import deadlock as _canonical
        return getattr(_canonical, name)
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted([*_FORWARDED, "Coord", "Resource"])
