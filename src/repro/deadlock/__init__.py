"""Compile-time deadlock analysis (paper sections IV-E, V-G).

Routing-level deadlock is prevented by dimension-ordered routing; the
remaining hazard is message-level deadlock across chained tiles: a
streaming chain holds its earlier NoC links while acquiring later ones,
so if any link must be *re*-acquired (Fig 5a) the chain waits on itself.

The analysis itself now lives in :mod:`repro.analysis.deadlock`, where
it is one pass of the unified design linter
(``python -m repro.tools.lint``); this package re-exports the stable
API and keeps :mod:`repro.deadlock.demo`, whose cut-through relay
tiles make the Fig 5a deadlock actually happen in the cycle simulator
(and Fig 5b run clean) — the runtime counterpart of the static check.
"""

# Imported from the canonical home, NOT via the deprecated
# repro.deadlock.analysis shim — importing this package must not warn.
from repro.analysis.deadlock import (
    DeadlockError,
    assert_deadlock_free,
    chain_link_sequence,
)
from repro.analysis.deadlock import analyze_chains as _analyze_chains
from repro.deadlock.demo import CutThroughTile, build_fig5_layout
from repro.noc.routing import xy_route


def analyze_chains(chains, coords, route_fn=xy_route):
    """Deprecated alias — warns at call time, delegates to
    :func:`repro.analysis.deadlock.analyze_chains`."""
    import warnings

    warnings.warn(
        "repro.deadlock.analyze_chains moved to repro.analysis; "
        "use repro.analysis.analyze_chains (or repro.analysis.analyze "
        "for whole-design linting)",
        DeprecationWarning,
        stacklevel=2,
    )
    return _analyze_chains(chains, coords, route_fn)

__all__ = [
    "CutThroughTile",
    "DeadlockError",
    "analyze_chains",
    "assert_deadlock_free",
    "build_fig5_layout",
    "chain_link_sequence",
]
