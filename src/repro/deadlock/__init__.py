"""Compile-time deadlock analysis (paper sections IV-E, V-G).

Routing-level deadlock is prevented by dimension-ordered routing; the
remaining hazard is message-level deadlock across chained tiles: a
streaming chain holds its earlier NoC links while acquiring later ones,
so if any link must be *re*-acquired (Fig 5a) the chain waits on itself.

The analysis itself now lives in :mod:`repro.analysis.deadlock`, where
it is one pass of the unified design linter
(``python -m repro.tools.lint``); this package re-exports the stable
API and keeps :mod:`repro.deadlock.demo`, whose cut-through relay
tiles make the Fig 5a deadlock actually happen in the cycle simulator
(and Fig 5b run clean) — the runtime counterpart of the static check.
"""

from repro.analysis.deadlock import (
    DeadlockError,
    analyze_chains,
    assert_deadlock_free,
    chain_link_sequence,
)
from repro.deadlock.demo import CutThroughTile, build_fig5_layout

__all__ = [
    "CutThroughTile",
    "DeadlockError",
    "analyze_chains",
    "assert_deadlock_free",
    "build_fig5_layout",
    "chain_link_sequence",
]
