"""Compile-time deadlock analysis (paper sections IV-E, V-G).

Routing-level deadlock is prevented by dimension-ordered routing; the
remaining hazard is message-level deadlock across chained tiles: a
streaming chain holds its earlier NoC links while acquiring later ones,
so if any link must be *re*-acquired (Fig 5a) the chain waits on itself.

:mod:`repro.deadlock.analysis` builds the resource dependency graph
from a design's declared message chains and reports any cycle with a
witness.  :mod:`repro.deadlock.demo` contains cut-through relay tiles
that make the Fig 5a deadlock actually happen in the cycle simulator
(and Fig 5b run clean) — the runtime counterpart of the static check.
"""

from repro.deadlock.analysis import (
    DeadlockError,
    analyze_chains,
    assert_deadlock_free,
    chain_link_sequence,
)
from repro.deadlock.demo import CutThroughTile, build_fig5_layout

__all__ = [
    "CutThroughTile",
    "DeadlockError",
    "analyze_chains",
    "assert_deadlock_free",
    "build_fig5_layout",
    "chain_link_sequence",
]
