"""Named, seeded random streams.

Each subsystem draws from its own stream so adding randomness to one
model never perturbs another — a property the reproduction's
deterministic regression tests rely on.
"""

from __future__ import annotations

import hashlib
import random


def _derive_seed(root_seed: int, name: str) -> int:
    digest = hashlib.sha256(f"{root_seed}:{name}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


class SeededStreams:
    """A factory of independent ``random.Random`` streams."""

    def __init__(self, root_seed: int = 0xBEE):
        self.root_seed = root_seed
        self._streams: dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """The stream for ``name``, created on first use."""
        if name not in self._streams:
            self._streams[name] = random.Random(
                _derive_seed(self.root_seed, name)
            )
        return self._streams[name]

    def for_shard(self, shard_id: int) -> "SeededStreams":
        """Streams for one shard of a partitioned run.

        Derived from ``(root_seed, shard_id)`` so every shard draws
        reproducible, independent randomness regardless of how shards
        interleave at runtime.  Shard 0 keeps the root seed itself:
        a design's stochastic components are anchored to shard 0 (see
        :mod:`repro.sim.shard`), so a sharded run replays the exact
        byte-identical streams of the unsharded reference.
        """
        if shard_id == 0:
            return SeededStreams(self.root_seed)
        return SeededStreams(
            _derive_seed(self.root_seed, f"shard{shard_id}")
        )
