"""Event-driven simulation kernel for the distributed-host experiments.

A classic timestamped event queue.  Host models (Linux stacks, DPDK
stacks, VR nodes, clients, switches) schedule callbacks; ties are broken
by insertion order so runs are deterministic for a fixed seed.
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Callable


class Event:
    """Handle for a scheduled callback; supports cancellation."""

    __slots__ = ("time", "callback", "args", "cancelled")

    def __init__(self, time: float, callback: Callable, args: tuple):
        self.time = time
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True


class EventSimulator:
    """A deterministic discrete-event simulator."""

    def __init__(self):
        self.now = 0.0
        self._queue: list[tuple[float, int, Event]] = []
        self._counter = itertools.count()
        self.events_run = 0

    def schedule(self, delay: float, callback: Callable, *args) -> Event:
        """Run ``callback(*args)`` ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        event = Event(self.now + delay, callback, args)
        heapq.heappush(self._queue, (event.time, next(self._counter), event))
        return event

    def schedule_at(self, time: float, callback: Callable, *args) -> Event:
        """Run ``callback(*args)`` at absolute simulated time ``time``."""
        return self.schedule(time - self.now, callback, *args)

    @property
    def pending(self) -> int:
        return sum(1 for _, _, e in self._queue if not e.cancelled)

    def run_until(self, end_time: float) -> None:
        """Process events with timestamps <= ``end_time``.

        Leaves ``now`` at ``end_time`` even if the queue drains early, so
        rate computations over the window are well defined.
        """
        while self._queue and self._queue[0][0] <= end_time:
            _, _, event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self.now = event.time
            event.callback(*event.args)
            self.events_run += 1
        self.now = max(self.now, end_time)

    def run(self, max_events: int = 10_000_000) -> None:
        """Process events until the queue is empty."""
        processed = 0
        while self._queue:
            _, _, event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self.now = event.time
            event.callback(*event.args)
            self.events_run += 1
            processed += 1
            if processed >= max_events:
                raise TimeoutError(f"exceeded {max_events} events")
