"""Sharded execution engine: one design, K cooperating simulators.

:func:`make_simulator` is the factory design constructors thread their
``shards=`` setting through.  ``shards == 1`` returns the ordinary
:class:`~repro.sim.kernel.CycleSimulator` — the sharded machinery
costs nothing unless asked for.  ``shards > 1`` returns a
:class:`ShardedSimulator`: the design's mesh is partitioned into K
contiguous column bands (:mod:`repro.noc.shardmesh`), each band's
routers, ports and tiles live in their own full per-shard
``CycleSimulator``, and the shards synchronise *only* at the cut
links, once per cycle.

Why one barrier per cycle is enough — and exact
-----------------------------------------------

Every inter-router link carries one cycle of lookahead in both
directions (see :mod:`repro.noc.router`): a flit staged during cycle N
is observable downstream only from cycle N+1, and a credit released at
N is observable upstream only from N+1.  So during cycle N no shard
can observe anything the *other* side of a cut does at N — a
conservative barriered exchange of boundary flits and credits after
all shards have ticked cycle N reproduces, bit for bit, what a single
simulator's commit phase would have published.  There is no rollback,
no speculation, and no tolerance window: equality is exact, and
``tests/test_shard.py`` pins it (frames and cycle counts, per-design
counters, and the merged trace stream) against the single-process
reference across the kernel x mesh x tile matrix.

Transports
----------

``shard_transport="loopback"`` (default) runs the K inner simulators
in-process, round-robin, with the exchange as a function call — zero
parallelism, full determinism, and the mode the equivalence suite
proves.  ``shard_transport="mp"`` forks one worker process per shard
(lazily, at the first ``run``) and ships boundary flits over pipes;
neighbouring workers exchange directly, so the per-cycle
synchronisation is neighbour-to-neighbour, not a global barrier.

Components that need a design-wide view — the fault engine and the
telemetry probe, marked ``shard_scope = "global"`` — step at the
coordinator after the exchange each cycle.  Their mutations become
visible at cycle N+1, exactly as in the reference, where both register
last and step after every mesh/tile component.  They require the
loopback transport.
"""

from __future__ import annotations

import time
from collections.abc import Callable

from repro.noc.message import IdNamespace
from repro.sim.kernel import CycleSimulator


def make_simulator(tracer=None, kernel: str = "scheduled",
                   mesh_backend: str = "object",
                   tile_backend: str = "object",
                   saturation_threshold: float | None = None,
                   prune_interval: int | None = None,
                   shards: int = 1,
                   shard_transport: str = "loopback"):
    """Build the simulator a design asked for.

    A plain :class:`CycleSimulator` for ``shards == 1`` (the common
    case pays nothing), a :class:`ShardedSimulator` otherwise.
    """
    if shards < 1:
        raise ValueError("shards must be >= 1")
    if shards == 1:
        return CycleSimulator(
            tracer=tracer, kernel=kernel, mesh_backend=mesh_backend,
            tile_backend=tile_backend,
            saturation_threshold=saturation_threshold,
            prune_interval=prune_interval)
    return ShardedSimulator(
        tracer=tracer, kernel=kernel, mesh_backend=mesh_backend,
        tile_backend=tile_backend,
        saturation_threshold=saturation_threshold,
        prune_interval=prune_interval, shards=shards,
        transport=shard_transport)


class ShardedSimulator(CycleSimulator):
    """K per-shard simulators behind the single-simulator surface.

    Subclasses :class:`CycleSimulator` so ``run``/``run_until`` (and
    their idle-skip bisection) work unchanged — they drive the
    coordinator through ``tick``/``_next_wake_cycle``/``_skip_to``,
    all overridden here.  The coordinator itself owns no mesh or tile
    components; it routes ``add`` calls to the owning shard by
    coordinate, steps ``shard_scope == "global"`` components after the
    boundary exchange, and aggregates ``stats``.
    """

    is_sharded = True

    def __init__(self, tracer=None, kernel: str = "scheduled",
                 mesh_backend: str = "object",
                 tile_backend: str = "object",
                 saturation_threshold: float | None = None,
                 prune_interval: int | None = None,
                 shards: int = 2, transport: str = "loopback"):
        if transport not in ("loopback", "mp"):
            raise ValueError(f"unknown shard transport {transport!r} "
                             "(choose 'loopback' or 'mp')")
        if shards < 2:
            raise ValueError("ShardedSimulator needs shards >= 2 "
                             "(use make_simulator for shards=1)")
        super().__init__(tracer=tracer, kernel=kernel,
                         mesh_backend=mesh_backend,
                         tile_backend=tile_backend,
                         saturation_threshold=saturation_threshold,
                         prune_interval=prune_interval)
        self.shards = shards
        self.transport = transport
        self.sims = [
            CycleSimulator(kernel=kernel, mesh_backend=mesh_backend,
                           tile_backend=tile_backend,
                           saturation_threshold=saturation_threshold,
                           prune_interval=prune_interval)
            for _ in range(shards)
        ]
        for sim in self.sims:
            sim.tracer = self._tracer
        #: Per-shard id namespaces (repro.noc.message): installed
        #: around each shard's tick so id allocation is shard-local
        #: and deterministic.  Namespace 0 — whose id space is exactly
        #: the unsharded one — is installed at rest, so construction-
        #: and injection-time allocations match the reference.
        self.namespaces = [IdNamespace(k) for k in range(shards)]
        self.namespaces[0].install()
        self._mesh = None
        self._links: list = []
        self._globals: list = []
        #: Host-seconds each shard spent ticking / in the exchange —
        #: the critical-path accounting bench_shard_scaling reports.
        self.shard_busy_s = [0.0] * shards
        self.exchange_s = 0.0
        # Multiprocessing transport state (lazily started at run()).
        self._mp_started = False
        self._mp_workers: list = []
        self._mp_ctrl: list = []
        self._mp_stats: list | None = None
        self._harvest_fn: Callable | None = None
        self.harvest_results: list | None = None

    # -- tracer propagation -------------------------------------------------

    @property
    def tracer(self):
        return self._tracer

    @tracer.setter
    def tracer(self, value) -> None:
        # Parent __init__ assigns self.tracer before self.sims exists;
        # __init__ re-propagates to the freshly built inner sims.
        self._tracer = value
        for sim in getattr(self, "sims", ()):
            sim.tracer = value

    # -- wiring -------------------------------------------------------------

    def bind_mesh(self, mesh) -> None:
        """Called by :meth:`ShardedMesh.register`: adopt the partition
        map and the boundary links."""
        if self._mesh is not None:
            raise RuntimeError("a mesh is already bound to this "
                               "sharded simulator")
        self._mesh = mesh
        self._links = list(mesh.links)

    def shard_of(self, coord: tuple[int, int]) -> int:
        if self._mesh is None:
            raise RuntimeError(
                "no sharded mesh bound yet — build the design's mesh "
                "with the same shards= and register it before adding "
                "coordinate-anchored components")
        return self._mesh.shard_of(coord)

    def add(self, component) -> None:
        """Route a component to its owner.

        - ``shard_scope == "global"`` (fault engine, probe): stepped by
          the coordinator after the boundary exchange each cycle.
        - A ``coord`` attribute anchors the component to the shard
          owning that column band.
        - Anything else (frame sources, fault wires) runs in shard 0,
          alongside the design's ingress.
        """
        if getattr(component, "shard_scope", None) == "global":
            if self.transport != "loopback":
                raise RuntimeError(
                    f"{type(component).__name__} needs a design-wide "
                    "view each cycle; use shard_transport='loopback'")
            self._globals.append(component)
            if getattr(component, "_kernel_wake", False) is None:
                component._kernel_wake = lambda: None
            return
        coord = getattr(component, "coord", None)
        shard = 0 if coord is None else self.shard_of(coord)
        self.sims[shard].add(component)

    def register_fifo(self, fifo):
        return self.sims[0].register_fifo(fifo)

    def wake(self, component) -> None:
        for sim in self.sims:
            if component in sim._order:
                sim.wake(component)
                return

    # -- the clock -----------------------------------------------------------

    def tick(self) -> None:
        if self.transport != "loopback":
            raise RuntimeError(
                "per-cycle tick() is a loopback-transport operation; "
                "the mp transport runs whole stretches (use run())")
        cycle = self.cycle
        sims = self.sims
        namespaces = self.namespaces
        busy = self.shard_busy_s
        perf = time.perf_counter
        for k in range(self.shards):
            namespaces[k].install()
            t0 = perf()
            sims[k].tick()
            busy[k] += perf() - t0
        namespaces[0].install()
        t0 = perf()
        # Links are pairwise independent, so the fused per-link
        # exchange equals the global two-phase collect/apply.
        for link in self._links:
            link.exchange()
        self.exchange_s += perf() - t0
        # Design-wide components step after the whole fabric, exactly
        # where the reference's registration order puts them; their
        # writes become visible next cycle either way.
        for component in self._globals:
            component.step(cycle)
        for component in self._globals:
            component.commit()
        self.cycle = cycle + 1

    def _skip_to(self, target: int) -> None:
        skipped = target - self.cycle
        if skipped <= 0:
            return
        # Inner sims handle their own tracer announcement (cycle_start
        # is idempotent, so K calls for the same cycle are one event).
        for sim in self.sims:
            sim._skip_to(target)
        self.idle_cycles_skipped += skipped
        self.cycle = target

    def _next_wake_cycle(self):
        wake = None
        cycle = self.cycle
        for sim in self.sims:
            w = sim._next_wake_cycle()
            if w is not None:
                if w <= cycle:
                    return cycle
                if wake is None or w < wake:
                    wake = w
        for component in self._globals:
            is_idle = getattr(component, "is_idle", None)
            if is_idle is None or not is_idle():
                return cycle
            next_event = getattr(component, "next_event_cycle", None)
            if next_event is not None:
                deadline = next_event()
                if deadline is not None:
                    deadline = max(deadline, cycle)
                    if wake is None or deadline < wake:
                        wake = deadline
        return wake

    def sanitized_tick(self, observer) -> None:
        raise NotImplementedError(
            "sanitizer passes run unsharded — build the design with "
            "shards=1 to sanitize it")

    # -- stats ---------------------------------------------------------------

    @property
    def active_components(self) -> int:
        return sum(sim.active_components for sim in self.sims)

    def stats(self) -> dict:
        if self._mp_stats is not None:
            inner = self._mp_stats
        else:
            inner = [sim.stats() for sim in self.sims]
        return {
            "kernel": self.kernel,
            "cycle": self.cycle,
            "components": (sum(s["components"] for s in inner)
                           + len(self._globals)),
            "active": sum(s["active"] for s in inner),
            "armed_timers": sum(s["armed_timers"] for s in inner),
            "idle_cycles_skipped": self.idle_cycles_skipped,
            "component_steps": sum(s["component_steps"]
                                   for s in inner),
            "shards": self.shards,
        }

    # -- multiprocessing transport -------------------------------------------

    def set_harvest(self, fn: Callable[[], object]) -> None:
        """Register a closure each worker runs at :meth:`harvest`.

        Under the mp transport the design state lives in the forked
        workers; ``fn`` (typically closing over a sink or counter
        object) executes *inside* each worker and its picklable return
        value is shipped back, one entry per shard, into
        ``self.harvest_results``.  Must be registered before the first
        ``run`` (the fork ships it).
        """
        if self._mp_started:
            raise RuntimeError("set_harvest must run before the first "
                               "run() — workers fork there")
        self._harvest_fn = fn

    def run(self, cycles: int) -> None:
        if self.transport == "mp":
            self._run_mp(cycles)
            return
        super().run(cycles)

    def run_until(self, condition, max_cycles: int = 1_000_000,
                  wall_clock_budget_s: float | None = None) -> int:
        if self.transport == "mp":
            raise NotImplementedError(
                "run_until needs a per-cycle view of the whole design;"
                " use run() under the mp transport (or loopback)")
        return super().run_until(condition, max_cycles,
                                 wall_clock_budget_s)

    def _mp_start(self) -> None:
        import multiprocessing

        if self._globals:
            raise RuntimeError(
                "fault engine / probe (shard_scope='global') require "
                "shard_transport='loopback'")
        if getattr(self._tracer, "enabled", False):
            raise RuntimeError(
                "tracing records in worker memory and would be lost; "
                "use shard_transport='loopback' for traced runs")
        if "fork" not in multiprocessing.get_all_start_methods():
            raise RuntimeError(
                "shard_transport='mp' needs the fork start method "
                "(POSIX); use 'loopback' on this platform")
        ctx = multiprocessing.get_context("fork")
        shards = self.shards
        # One duplex pipe per adjacent shard pair, one control pipe
        # per worker.  Everything is created before the fork so each
        # worker inherits exactly the connections it needs.
        right_conns = [None] * shards  # worker k <-> worker k + 1
        left_conns = [None] * shards
        for k in range(shards - 1):
            a, b = ctx.Pipe(duplex=True)
            right_conns[k] = a
            left_conns[k + 1] = b
        self._mp_ctrl = []
        self._mp_workers = []
        for k in range(shards):
            parent_conn, child_conn = ctx.Pipe(duplex=True)
            worker = ctx.Process(
                target=_shard_worker_main,
                args=(self, k, child_conn, left_conns[k],
                      right_conns[k]),
                daemon=True,
                name=f"repro-shard-{k}",
            )
            worker.start()
            child_conn.close()
            self._mp_ctrl.append(parent_conn)
            self._mp_workers.append(worker)
        self._mp_started = True

    def _run_mp(self, cycles: int) -> None:
        if not self._mp_started:
            self._mp_start()
        for conn in self._mp_ctrl:
            conn.send(("run", cycles))
        stats = [None] * self.shards
        for k, conn in enumerate(self._mp_ctrl):
            kind, busy_s, shard_stats = conn.recv()
            if kind != "done":  # pragma: no cover - defensive
                raise RuntimeError(f"shard worker {k} answered {kind!r}")
            self.shard_busy_s[k] += busy_s
            stats[k] = shard_stats
        self._mp_stats = stats
        self.cycle += cycles

    def harvest(self) -> list:
        """Run the registered harvest closure in every worker."""
        if self._harvest_fn is None:
            raise RuntimeError("no harvest closure registered "
                               "(set_harvest)")
        if not self._mp_started:
            # Loopback (or never ran): everything is in-process, so
            # one in-place call sees the whole design.
            self.harvest_results = [self._harvest_fn()]
            return self.harvest_results
        for conn in self._mp_ctrl:
            conn.send(("harvest",))
        self.harvest_results = [conn.recv()[1]
                                for conn in self._mp_ctrl]
        return self.harvest_results

    def shutdown(self) -> None:
        """Stop mp workers (no-op under loopback)."""
        if not self._mp_started:
            return
        for conn in self._mp_ctrl:
            try:
                conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for worker in self._mp_workers:
            worker.join(timeout=5)
            if worker.is_alive():  # pragma: no cover - defensive
                worker.terminate()
        self._mp_started = False


def _shard_worker_main(coordinator: ShardedSimulator, shard: int,
                       ctrl, left_conn, right_conn) -> None:
    """Worker-process loop for one shard (mp transport).

    The fork gave this process a full copy of the design; the worker
    drives only its own inner simulator and the boundary links it
    touches.  Per cycle it ticks, *sends* its boundary payload to both
    neighbours before receiving (pipes buffer one cycle's worth of
    flits, so neighbour pairs can't deadlock), then applies what the
    neighbours sent.
    """
    sim = coordinator.sims[shard]
    coordinator.namespaces[shard].install()
    links = coordinator._links
    # Links this worker exchanges per neighbour side, in the global
    # link order (both endpoint workers enumerate the same order, so
    # the payload lists line up without tagging).
    send_left = [ln for ln in links
                 if ln.sender == shard and ln.receiver == shard - 1]
    recv_left = [ln for ln in links
                 if ln.sender == shard - 1 and ln.receiver == shard]
    send_right = [ln for ln in links
                  if ln.sender == shard and ln.receiver == shard + 1]
    recv_right = [ln for ln in links
                  if ln.sender == shard + 1 and ln.receiver == shard]
    perf = time.perf_counter
    busy_s = 0.0

    def exchange() -> None:
        # Pops are measured before anything is applied (the committed
        # occupancy the senders' credits are derived from).
        if left_conn is not None:
            left_payload = (
                [ln.egress.drain() for ln in send_left],
                [ln.ingress.take_pops() for ln in recv_left],
            )
        if right_conn is not None:
            right_payload = (
                [ln.egress.drain() for ln in send_right],
                [ln.ingress.take_pops() for ln in recv_right],
            )
        if left_conn is not None:
            left_conn.send(left_payload)
        if right_conn is not None:
            right_conn.send(right_payload)
        if left_conn is not None:
            flits_in, credits = left_conn.recv()
            for ln, flits in zip(recv_left, flits_in):
                ln.ingress.apply(flits)
            for ln, pops in zip(send_left, credits):
                ln.egress.credit(pops)
        if right_conn is not None:
            flits_in, credits = right_conn.recv()
            for ln, flits in zip(recv_right, flits_in):
                ln.ingress.apply(flits)
            for ln, pops in zip(send_right, credits):
                ln.egress.credit(pops)

    while True:
        try:
            cmd = ctrl.recv()
        except EOFError:
            return
        if cmd[0] == "run":
            cycles = cmd[1]
            t0 = perf()
            for _ in range(cycles):
                sim.tick()
                exchange()
            busy_s += perf() - t0
            ctrl.send(("done", busy_s, sim.stats()))
            busy_s = 0.0
        elif cmd[0] == "harvest":
            fn = coordinator._harvest_fn
            ctrl.send(("harvested",
                       None if fn is None else fn()))
        elif cmd[0] == "stop":
            return
