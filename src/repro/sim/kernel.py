"""Cycle-driven simulation kernel.

Models synchronous digital hardware with a two-phase clock:

1. *step*: every component reads the state committed at the end of the
   previous cycle and stages its outputs (e.g. pushes flits into
   downstream :class:`StagedFifo` objects).
2. *commit*: all staged writes become visible simultaneously.

Because no staged write is observable until every component has stepped,
the result is independent of component iteration order, which keeps the
simulator deterministic and faithful to clocked RTL.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Iterable, Protocol, runtime_checkable


@runtime_checkable
class ClockedComponent(Protocol):
    """Anything driven by the simulator clock.

    ``step(cycle)`` computes against last cycle's state; ``commit()``
    publishes this cycle's writes.
    """

    def step(self, cycle: int) -> None: ...

    def commit(self) -> None: ...


class StagedFifo:
    """A FIFO with staged writes, modelling a clocked queue.

    ``push`` stages an item that becomes poppable only after ``commit``.
    Capacity accounting is conservative: staged items count against
    capacity immediately, so a producer that checks :meth:`can_accept`
    during *step* can never overflow the queue.
    """

    def __init__(self, capacity: int | None = None, name: str = "fifo"):
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be >= 1 (or None for unbounded)")
        self.capacity = capacity
        self.name = name
        self._items: deque = deque()
        self._staged: list = []

    def __len__(self) -> int:
        """Number of committed (visible) items."""
        return len(self._items)

    @property
    def occupancy(self) -> int:
        """Committed plus staged items — what counts against capacity."""
        return len(self._items) + len(self._staged)

    def can_accept(self, n: int = 1) -> bool:
        if self.capacity is None:
            return True
        return self.occupancy + n <= self.capacity

    def push(self, item) -> None:
        if not self.can_accept():
            raise OverflowError(f"push to full StagedFifo {self.name!r}")
        self._staged.append(item)

    def peek(self):
        """The oldest committed item, or None if empty."""
        if not self._items:
            return None
        return self._items[0]

    def pop(self):
        if not self._items:
            raise IndexError(f"pop from empty StagedFifo {self.name!r}")
        return self._items.popleft()

    def commit(self) -> None:
        if self._staged:
            self._items.extend(self._staged)
            self._staged.clear()

    def drain(self) -> list:
        """Pop and return *everything*: committed items, then staged.

        Draining empties the FIFO completely — the staging buffer is
        cleared too, so nothing silently becomes visible on the next
        ``commit``.  Committed items come first (they are older); staged
        items follow in push order.  Mid-simulation use still breaks the
        two-phase abstraction (a drain observes writes from the current
        cycle), so this remains a between-runs/testing convenience.
        """
        out = list(self._items)
        out.extend(self._staged)
        self._items.clear()
        self._staged.clear()
        return out


class CycleSimulator:
    """Drives a set of :class:`ClockedComponent` objects cycle by cycle.

    ``tracer`` is the observability event bus
    (:mod:`repro.telemetry.trace`); it defaults to the shared no-op
    tracer, so an untraced simulation pays a single attribute test per
    tick.  Use :func:`repro.telemetry.trace.attach_tracer` to wire a
    recording tracer into a whole design.
    """

    def __init__(self, tracer=None):
        from repro.telemetry.trace import NULL_TRACER
        self.cycle = 0
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._components: list[ClockedComponent] = []
        self._fifos: list[StagedFifo] = []

    def add(self, component: ClockedComponent) -> None:
        self._components.append(component)

    def add_all(self, components: Iterable[ClockedComponent]) -> None:
        for component in components:
            self.add(component)

    def register_fifo(self, fifo: StagedFifo) -> StagedFifo:
        """Track a free-standing FIFO so the simulator commits it.

        FIFOs owned by a component should be committed by that
        component's ``commit`` instead.
        """
        self._fifos.append(fifo)
        return fifo

    def tick(self) -> None:
        """Advance the simulation by one clock cycle."""
        if self.tracer.enabled:
            self.tracer.cycle_start(self.cycle)
        for component in self._components:
            component.step(self.cycle)
        for component in self._components:
            component.commit()
        for fifo in self._fifos:
            fifo.commit()
        self.cycle += 1

    def run(self, cycles: int) -> None:
        for _ in range(cycles):
            self.tick()

    def run_until(
        self,
        condition: Callable[[], bool],
        max_cycles: int = 1_000_000,
    ) -> int:
        """Tick until ``condition()`` is true; returns cycles consumed.

        Raises TimeoutError if the condition does not hold within
        ``max_cycles`` — the standard way tests detect a hung (e.g.
        deadlocked) design.
        """
        start = self.cycle
        while not condition():
            if self.cycle - start >= max_cycles:
                raise TimeoutError(
                    f"condition not met within {max_cycles} cycles"
                )
            self.tick()
        return self.cycle - start
