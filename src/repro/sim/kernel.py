"""Cycle-driven simulation kernel.

Models synchronous digital hardware with a two-phase clock:

1. *step*: every component reads the state committed at the end of the
   previous cycle and stages its outputs (e.g. pushes flits into
   downstream :class:`StagedFifo` objects).
2. *commit*: all staged writes become visible simultaneously.

Because no staged write is observable until every component has stepped,
the result is independent of component iteration order, which keeps the
simulator deterministic and faithful to clocked RTL.

Scheduling
----------

The simulator ships two kernels, selected by ``kernel=``:

``"scheduled"`` (the default)
    Activity-scheduled execution.  Components that implement the
    *quiescence contract* (below) are removed from the per-cycle active
    set while idle and re-activated in O(1) by either a *wake hook* on a
    :class:`StagedFifo` they consume from or a *timer wheel* entry for
    their next self-generated event.  When the whole design is
    quiescent, idle stretches are skipped wholesale instead of being
    ticked one no-op cycle at a time.

``"naive"``
    The original exhaustive scheduler: every registered component steps
    and commits every cycle.  Kept as an escape hatch and as the
    reference for differential (cycle-equivalence) testing.

The quiescence contract — all optional, checked with ``getattr``:

``is_idle() -> bool``
    True iff ``step(cycle)`` would make no externally visible state
    change at the current cycle *and every future cycle* until either
    (a) an item is pushed into one of the component's
    :meth:`wake_sources` FIFOs, (b) the component is woken through its
    ``_kernel_wake`` hook, or (c) the cycle returned by
    ``next_event_cycle()`` arrives.  A component without ``is_idle``
    is stepped every cycle, exactly as under the naive kernel.

``next_event_cycle() -> int | None``
    The absolute cycle of the component's next self-generated event
    (a paced injector's next send, a tile engine's emit deadline), or
    None if only external input can create work.  Consulted only when
    ``is_idle()`` is True; waking *early* is always safe (the step is
    a no-op and the component re-idles), waking late is a bug.

``wake_sources() -> iterable[StagedFifo]``
    The FIFOs whose ``push`` must re-activate this component — its NoC
    input FIFOs, ejection FIFO, and so on.  Wired up by :meth:`add`.

``_kernel_wake``
    Slot filled by the kernel with a zero-argument wake callable (see
    :class:`Wakeable`).  Components call it from externally-invoked
    mutators (``push_frame``, ``send``) so out-of-band state changes
    re-activate them.

A wake that arrives during the step phase still gets the component a
commit this cycle (so staged pushes into its FIFOs become visible on
schedule) and a step from the next cycle on — which is exactly when the
naive kernel would first let it observe the new state.
"""

from __future__ import annotations

import heapq
import time
from collections import deque
from collections.abc import Callable, Iterable
from typing import Protocol, runtime_checkable


class WallClockBudgetExceeded(TimeoutError):
    """``run_until`` exceeded its ``wall_clock_budget_s``.

    Distinct from the plain ``TimeoutError`` raised when ``max_cycles``
    is exhausted: a cycle budget bounds *simulated* time, the wall
    budget bounds *host* time — the guard chaos sweeps and CI use so a
    wedged design fails instead of hanging the job.
    """


@runtime_checkable
class ClockedComponent(Protocol):
    """Anything driven by the simulator clock.

    ``step(cycle)`` computes against last cycle's state; ``commit()``
    publishes this cycle's writes.  Components may additionally
    implement the quiescence contract (module docstring) to be
    eligible for idle-skip under the scheduled kernel.
    """

    def step(self, cycle: int) -> None: ...

    def commit(self) -> None: ...


class Wakeable:
    """Mixin giving a component an externally triggerable wake hook.

    The scheduled kernel fills :attr:`_kernel_wake` when the component
    is added; methods that mutate component state from outside the
    component's own ``step`` (frame injection, message send) call
    :meth:`_wake` so the scheduler re-activates the sleeper.  Under the
    naive kernel the slot stays None and ``_wake`` is a no-op.
    """

    _kernel_wake: Callable[[], None] | None = None

    def _wake(self) -> None:
        wake = self._kernel_wake
        if wake is not None:
            wake()


class StagedFifo:
    """A FIFO with staged writes, modelling a clocked queue.

    ``push`` stages an item that becomes poppable only after ``commit``.
    Capacity accounting is conservative: staged items count against
    capacity immediately, so a producer that checks :meth:`can_accept`
    during *step* can never overflow the queue.

    Wake hooks: consumers registered through :meth:`add_waker` are
    re-activated on every ``push`` — the mechanism the scheduled kernel
    uses to let downstream components sleep while the queue is empty.
    """

    __slots__ = ("capacity", "name", "high_water", "_items", "_staged",
                 "_wakers", "_visible")

    def __init__(self, capacity: int | None = None, name: str = "fifo"):
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be >= 1 (or None for unbounded)")
        self.capacity = capacity
        self.name = name
        #: Maximum end-of-cycle depth ever committed — the telemetry
        #: plane's per-queue high-water mark.  Updated at commit (the
        #: only point the occupancy is architecturally observable), so
        #: it costs nothing on cycles without staged pushes.
        self.high_water = 0
        self._items: deque = deque()
        self._staged: list = []
        self._wakers: list[Callable[[], None]] = []
        #: Committed occupancy as of the last commit boundary — the
        #: credit count a link-level producer sees.  Router-to-router
        #: links release credits with one cycle of lag (a pop becomes
        #: visible upstream only at the next cycle boundary, like a
        #: hardware credit return crossing the link), which is what
        #: gives every inter-router link a full cycle of lookahead and
        #: lets the sharded engine cut the mesh anywhere between
        #: routers (see repro.sim.shard).
        self._visible = 0

    def __len__(self) -> int:
        """Number of committed (visible) items."""
        return len(self._items)

    @property
    def occupancy(self) -> int:
        """Committed plus staged items — what counts against capacity."""
        return len(self._items) + len(self._staged)

    def can_accept(self, n: int = 1) -> bool:
        capacity = self.capacity
        if capacity is None:
            return True
        return len(self._items) + len(self._staged) + n <= capacity

    def add_waker(self, waker: Callable[[], None]) -> None:
        """Re-activate a consumer (and its committer) on every push."""
        self._wakers.append(waker)

    def push(self, item) -> None:
        if not self.can_accept():
            raise OverflowError(f"push to full StagedFifo {self.name!r}")
        self._staged.append(item)
        for waker in self._wakers:
            waker()

    def push_unchecked(self, item) -> None:
        """``push`` minus the capacity re-check, for hot paths that
        have just tested :meth:`can_accept` themselves."""
        self._staged.append(item)
        for waker in self._wakers:
            waker()

    def peek(self):
        """The oldest committed item, or None if empty."""
        if not self._items:
            return None
        return self._items[0]

    def pop(self):
        if not self._items:
            raise IndexError(f"pop from empty StagedFifo {self.name!r}")
        return self._items.popleft()

    def commit(self) -> None:
        if self._staged:
            self._items.extend(self._staged)
            self._staged.clear()
            depth = len(self._items)
            if depth > self.high_water:
                self.high_water = depth
            self._visible = depth
        elif self._visible != len(self._items):
            self._visible = len(self._items)

    def drain(self) -> list:
        """Pop and return *everything*: committed items, then staged.

        Draining empties the FIFO completely — the staging buffer is
        cleared too, so nothing silently becomes visible on the next
        ``commit``.  Committed items come first (they are older); staged
        items follow in push order.  Mid-simulation use still breaks the
        two-phase abstraction (a drain observes writes from the current
        cycle), so this remains a between-runs/testing convenience.
        """
        out = list(self._items)
        out.extend(self._staged)
        self._items.clear()
        self._staged.clear()
        self._visible = 0
        return out


class CycleSimulator:
    """Drives a set of :class:`ClockedComponent` objects cycle by cycle.

    ``kernel`` selects the scheduler: ``"scheduled"`` (activity-based,
    the default) or ``"naive"`` (step everything every cycle — the
    reference for differential testing; see the module docstring).

    ``tracer`` is the observability event bus
    (:mod:`repro.telemetry.trace`); it defaults to the shared no-op
    tracer, so an untraced simulation pays a single attribute test per
    tick.  Use :func:`repro.telemetry.trace.attach_tracer` to wire a
    recording tracer into a whole design.
    """

    def __init__(self, tracer=None, kernel: str = "scheduled",
                 mesh_backend: str = "object",
                 tile_backend: str = "object",
                 saturation_threshold: float | None = None,
                 prune_interval: int | None = None):
        from repro.telemetry.trace import NULL_TRACER
        if kernel not in ("scheduled", "naive"):
            raise ValueError(f"unknown kernel {kernel!r} "
                             "(choose 'scheduled' or 'naive')")
        if mesh_backend not in ("object", "flat"):
            raise ValueError(f"unknown mesh backend {mesh_backend!r} "
                             "(choose 'object' or 'flat')")
        if tile_backend not in ("object", "flat"):
            raise ValueError(f"unknown tile backend {tile_backend!r} "
                             "(choose 'object' or 'flat')")
        if saturation_threshold is not None and saturation_threshold < 0:
            raise ValueError("saturation_threshold must be >= 0 "
                             "(fractions > 1 disable the bypass)")
        if prune_interval is not None and prune_interval < 1:
            raise ValueError("prune_interval must be >= 1 cycle")
        self.cycle = 0
        self.kernel = kernel
        # Advisory: design constructors thread their mesh and tile
        # backends through here (mirroring kernel=) so harnesses,
        # telemetry, and bench reports can consult them.
        self.mesh_backend = mesh_backend
        self.tile_backend = tile_backend
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._components: list[ClockedComponent] = []
        self._fifos: list[StagedFifo] = []
        self._scheduled = kernel == "scheduled"
        # Scheduled-kernel state.
        self._order: dict = {}          # component -> registration index
        self._active: set = set()       # components stepped next cycle
        self._timers: list = []         # heap of (cycle, seq, component)
        self._timer_seq = 0
        self._armed: dict = {}          # component -> earliest armed cycle
        self._in_step = False
        self._late_wakes: list = []
        # component -> (is_idle, next_event_cycle) resolved once at add
        # time; (None, None) for components without the contract.
        self._contracts: dict = {}
        # Sorted view of the active set, rebuilt only when it changes
        # (under saturation the set is stable for long stretches).
        self._stepping_cache: list = []
        self._active_dirty = True
        # Saturation bypass tuning.  The bypass engages on the *raw*
        # active fraction (schedule entries, not weights): a
        # batch-stepped component like the flat mesh core is one cheap
        # entry however many routers it absorbs.  ``kernel_weight``
        # (the component count such a core replaces) instead feeds the
        # effective design size that derives the prune interval.
        self._saturation_threshold = (
            0.25 if saturation_threshold is None else saturation_threshold
        )
        self._prune_interval_cfg = prune_interval
        self._total_weight = 0          # effective component count
        self._sat_limit = 0.0           # threshold * len(components)
        # Adaptive pruning cadence (no explicit prune_interval): start
        # at the floor and let the controller in _tick_scheduled adapt
        # within [_PRUNE_FLOOR, _PRUNE_CAP] from what pruning ticks
        # actually find.  An explicit setting stays fixed.
        self._adaptive = prune_interval is None
        self._prune_interval = prune_interval or self._PRUNE_FLOOR
        # Stats (scheduled kernel only; stay 0 under naive).
        self.idle_cycles_skipped = 0
        self.component_steps = 0

    @property
    def saturation_threshold(self) -> float:
        """Active-weight fraction above which the bypass engages."""
        return self._saturation_threshold

    #: Adaptive prune-cadence bounds: the controller never checks more
    #: often than every _PRUNE_FLOOR cycles under saturation, and never
    #: lets more than _PRUNE_CAP bypass cycles pass without one full
    #: pruning sweep (the bound on how stale the active set can get).
    _PRUNE_FLOOR = 32
    _PRUNE_CAP = 4096

    @property
    def prune_interval(self) -> int:
        """Cycles between pruning ticks while the bypass is engaged.

        With no explicit ``prune_interval=``, the cadence is adaptive:
        every pruning tick that finds nothing to prune doubles the
        interval (a genuinely saturated design pays ever fewer full
        sweeps), and any tick that *does* prune — or any cycle below
        the saturation threshold — resets it to the floor, so a
        draining design is detected within one floor-interval.  Bounds
        are [32, 4096].  An explicit setting disables the controller
        and stays fixed.
        """
        return self._prune_interval

    @property
    def active_components(self) -> int:
        """Schedule entries in the active set (all, under naive)."""
        if not self._scheduled:
            return len(self._components)
        return len(self._active)

    def stats(self) -> dict:
        """Operational scheduler state, as the telemetry probe samples it.

        Plain ints only — the dict is JSON-able as-is and cheap enough
        to build every sampling interval.
        """
        return {
            "kernel": self.kernel,
            "cycle": self.cycle,
            "components": len(self._components),
            "active": self.active_components,
            "armed_timers": len(self._timers),
            "idle_cycles_skipped": self.idle_cycles_skipped,
            "component_steps": self.component_steps,
        }

    # -- registration -------------------------------------------------------

    def add(self, component: ClockedComponent) -> None:
        self._components.append(component)
        if not self._scheduled:
            return
        self._order[component] = len(self._components) - 1
        self._total_weight += int(getattr(component, "kernel_weight", 1))
        self._sat_limit = (self._saturation_threshold
                           * len(self._components))
        self._active.add(component)
        self._contracts[component] = (
            getattr(component, "is_idle", None),
            getattr(component, "next_event_cycle", None),
        )
        waker = None
        if getattr(component, "_kernel_wake", False) is None:
            waker = self._waker_for(component)
            component._kernel_wake = waker
        sources = getattr(component, "wake_sources", None)
        if sources is not None:
            if waker is None:
                waker = self._waker_for(component)
            for fifo in sources():
                fifo.add_waker(waker)

    def add_all(self, components: Iterable[ClockedComponent]) -> None:
        for component in components:
            self.add(component)

    def register_fifo(self, fifo: StagedFifo) -> StagedFifo:
        """Track a free-standing FIFO so the simulator commits it.

        FIFOs owned by a component should be committed by that
        component's ``commit`` instead.
        """
        self._fifos.append(fifo)
        return fifo

    # -- scheduled-kernel machinery ----------------------------------------

    def _waker_for(self, component) -> Callable[[], None]:
        active = self._active

        def wake() -> None:
            if component in active:
                return
            active.add(component)
            self._active_dirty = True
            if self._in_step:
                # Woken mid-step: too late to step this cycle (the
                # naive kernel's step would see nothing new anyway)
                # but it must commit this cycle so staged pushes into
                # its FIFOs land on schedule.  Everything stepped this
                # cycle was already in the active set, so reaching
                # here means this component is not being stepped.
                self._late_wakes.append(component)

        # Tag the closure with its target so static analysis
        # (repro.analysis.wake) can verify FIFO hooks are wired to the
        # component that consumes the FIFO.
        wake.component = component
        return wake

    def wake(self, component) -> None:
        """Re-activate ``component`` (no-op under the naive kernel)."""
        if self._scheduled and component in self._order:
            self._waker_for(component)()

    def _arm_timer(self, component, deadline: int) -> None:
        armed = self._armed.get(component)
        if armed is not None and armed <= deadline:
            return  # an equal-or-earlier (safe) wake is already queued
        self._armed[component] = deadline
        self._timer_seq += 1
        heapq.heappush(self._timers, (deadline, self._timer_seq, component))

    def _service_timers(self, cycle: int) -> None:
        timers = self._timers
        while timers and timers[0][0] <= cycle:
            deadline, _, component = heapq.heappop(timers)
            if self._armed.get(component) == deadline:
                del self._armed[component]
            if component not in self._active:
                self._active.add(component)
                self._active_dirty = True

    def _reschedule(self, component, cycle: int) -> None:
        """Deactivate ``component`` if it reports quiescence.

        (The tick loop inlines this per stepped component; this method
        is the readable reference and the hook for external callers.)
        """
        is_idle, next_event = self._contracts[component]
        if is_idle is None or not is_idle():
            return
        if component in self._active:
            self._active.discard(component)
            self._active_dirty = True
        if next_event is None:
            return
        deadline = next_event()
        if deadline is not None:
            self._arm_timer(component, max(deadline, cycle + 1))

    def _next_wake_cycle(self) -> int | None:
        """Earliest cycle with scheduled work, or None if fully quiescent.

        Only meaningful under the scheduled kernel; callers use it to
        skip idle stretches in O(1).
        """
        if self._active:
            return self.cycle
        if self._timers:
            return max(self._timers[0][0], self.cycle)
        return None

    def _skip_to(self, target: int) -> None:
        """Advance the clock over a stretch of provably idle cycles."""
        skipped = target - self.cycle
        if skipped <= 0:
            return
        self.idle_cycles_skipped += skipped
        if self.tracer.enabled:
            # The naive kernel announces every cycle; announcing the
            # last skipped one keeps Tracer.last_cycle (and horizon)
            # identical without per-cycle cost.
            self.tracer.cycle_start(target - 1)
        self.cycle = target

    # -- the clock ----------------------------------------------------------

    def tick(self) -> None:
        """Advance the simulation by one clock cycle."""
        if self._scheduled:
            self._tick_scheduled()
        else:
            self._tick_naive()

    def _tick_naive(self) -> None:
        if self.tracer.enabled:
            self.tracer.cycle_start(self.cycle)
        for component in self._components:
            component.step(self.cycle)
        for component in self._components:
            component.commit()
        for fifo in self._fifos:
            fifo.commit()
        self.cycle += 1

    def _tick_scheduled(self) -> None:
        cycle = self.cycle
        timers = self._timers
        if timers and timers[0][0] <= cycle:
            self._service_timers(cycle)
        # Saturation bypass: when a sizeable fraction of the schedule
        # entries is active, pruning bookkeeping (idle checks, timer
        # arms, set churn) costs more than the no-op steps it saves.
        # Stepping a sleeping component is always safe — its step is a
        # no-op by contract — so step the full registration list
        # naive-style, keeping a periodic pruning tick (every
        # ``prune_interval`` cycles) so the active set drains when load
        # drops.  The bypass *engages* on raw entry counts — a
        # batch-stepping core skips its own idle internals, so it stays
        # one cheap entry however many components it absorbs — but the
        # design-size gate uses effective weight, so a design that is
        # large only through such a core still qualifies.
        saturated = (self._total_weight >= 16
                     and len(self._active) > self._sat_limit)
        if saturated and cycle % self._prune_interval:
            if self.tracer.enabled:
                self.tracer.cycle_start(cycle)
            components = self._components
            for component in components:
                component.step(cycle)
            for component in components:
                component.commit()
            for fifo in self._fifos:
                fifo.commit()
            self.component_steps += len(components)
            self.cycle = cycle + 1
            return
        if self.tracer.enabled:
            self.tracer.cycle_start(cycle)
        if self._active_dirty:
            stepping = sorted(self._active, key=self._order.__getitem__)
            self._stepping_cache = stepping
            self._active_dirty = False
        else:
            stepping = self._stepping_cache
        self._late_wakes = late = []
        self._in_step = True
        try:
            for component in stepping:
                component.step(cycle)
        finally:
            self._in_step = False
        if late:
            # A late wake already marked the active set dirty, so the
            # cache is rebuilt next tick; extending in place is safe.
            stepping.extend(sorted(late, key=self._order.__getitem__))
        self.component_steps += len(stepping)
        for component in stepping:
            component.commit()
        for fifo in self._fifos:
            fifo.commit()
        contracts = self._contracts
        active = self._active
        pruned = 0
        for component in stepping:
            is_idle, next_event = contracts[component]
            if is_idle is None or not is_idle():
                continue
            active.discard(component)
            self._active_dirty = True
            pruned += 1
            if next_event is None:
                continue
            deadline = next_event()
            if deadline is not None:
                self._arm_timer(component, max(deadline, cycle + 1))
        if self._adaptive:
            # Adapt the pruning cadence to what this tick observed: a
            # saturated sweep that pruned nothing doubles the interval
            # (up to the cap), one that found idle components — or any
            # cycle below the saturation threshold — resets it to the
            # floor so draining load is noticed promptly.
            if saturated:
                if pruned:
                    self._prune_interval = self._PRUNE_FLOOR
                elif self._prune_interval < self._PRUNE_CAP:
                    self._prune_interval *= 2
            elif self._prune_interval != self._PRUNE_FLOOR:
                self._prune_interval = self._PRUNE_FLOOR
        self.cycle = cycle + 1

    def sanitized_tick(self, observer) -> None:
        """One instrumented cycle for :mod:`repro.analysis.sanitize`.

        Steps the *full* registration list naive-style — safe because a
        truthfully idle component's step is a no-op by contract, the
        same property the saturation bypass relies on — while
        maintaining the scheduled kernel's activity bookkeeping (active
        set, timers, pruning) exactly as a bypass-free scheduled run
        would.  The divergence between the two is the signal:

        - a component *not* in the active set is handed to
          ``observer.shadow_step(component, cycle)`` instead of being
          stepped directly, so the observer can fingerprint it around
          its own step (BHV401 idle-truthfulness);
        - after the step phase, ``observer.step_phase_done(cycle)``
          runs with staged pushes still visible, so pushes into FIFOs
          whose consumers stayed pruned are observable (BHV402).

        This method is strictly opt-in: the normal ``tick`` path never
        consults it, so the sanitizer-off fast path is untouched.
        Under the naive kernel nothing is ever pruned and this
        degrades to a plain naive tick plus the observer callbacks.
        """
        cycle = self.cycle
        if not self._scheduled:
            if self.tracer.enabled:
                self.tracer.cycle_start(cycle)
            for component in self._components:
                component.step(cycle)
            observer.step_phase_done(cycle)
            for component in self._components:
                component.commit()
            for fifo in self._fifos:
                fifo.commit()
            self.cycle = cycle + 1
            observer.cycle_done(cycle)
            return
        if self._timers and self._timers[0][0] <= cycle:
            self._service_timers(cycle)
        if self.tracer.enabled:
            self.tracer.cycle_start(cycle)
        active = self._active
        stepped = []
        self._late_wakes = late = []
        self._in_step = True
        try:
            for component in self._components:
                if component in active:
                    stepped.append(component)
                    component.step(cycle)
                else:
                    observer.shadow_step(component, cycle)
        finally:
            self._in_step = False
        observer.step_phase_done(cycle)
        self.component_steps += len(self._components)
        for component in self._components:
            component.commit()
        for fifo in self._fifos:
            fifo.commit()
        # Prune bookkeeping over the components the scheduled kernel
        # would have stepped (the active set at cycle start plus late
        # wakes), mirroring _tick_scheduled without the bypass.
        stepped.extend(late)
        contracts = self._contracts
        for component in stepped:
            is_idle, next_event = contracts[component]
            if is_idle is None or not is_idle():
                continue
            active.discard(component)
            self._active_dirty = True
            if next_event is None:
                continue
            deadline = next_event()
            if deadline is not None:
                self._arm_timer(component, max(deadline, cycle + 1))
        self.cycle = cycle + 1
        observer.cycle_done(cycle)

    def run(self, cycles: int) -> None:
        if not self._scheduled:
            for _ in range(cycles):
                self.tick()
            return
        end = self.cycle + cycles
        while self.cycle < end:
            wake = self._next_wake_cycle()
            target = end if wake is None else min(wake, end)
            if target > self.cycle:
                self._skip_to(target)
                continue
            self.tick()

    def run_until(
        self,
        condition: Callable[[], bool],
        max_cycles: int = 1_000_000,
        wall_clock_budget_s: float | None = None,
    ) -> int:
        """Tick until ``condition()`` is true; returns cycles consumed.

        Raises TimeoutError if the condition does not hold within
        ``max_cycles`` — the standard way tests detect a hung (e.g.
        deadlocked) design.  ``wall_clock_budget_s`` additionally
        bounds *host* time: when set, the run raises
        :class:`WallClockBudgetExceeded` once the budget elapses (the
        check runs between ticks, so one pathological tick can overrun
        the budget, but a wedged loop cannot hang the caller).

        Under the scheduled kernel, fully idle stretches are skipped
        and the condition re-evaluated at each wake boundary.  During
        a stretch no simulated state changes except ``self.cycle``, so
        a condition that flips mid-stretch (e.g. ``sim.cycle >= N``)
        is located by bisection and observed at the exact cycle it
        first became true — never overshot.  (A condition that flips
        back and forth *within* one idle stretch as a function of the
        cycle number alone has no well-defined first-true cycle under
        any scheduler; bisection returns one of its true cycles.)
        """
        start = self.cycle
        limit = start + max_cycles
        deadline = (None if wall_clock_budget_s is None
                    else time.monotonic() + wall_clock_budget_s)
        while not condition():
            if self.cycle - start >= max_cycles:
                raise TimeoutError(
                    f"condition not met within {max_cycles} cycles"
                )
            if deadline is not None and time.monotonic() >= deadline:
                raise WallClockBudgetExceeded(
                    f"condition not met within {wall_clock_budget_s}s "
                    f"of wall clock ({self.cycle - start} cycles run)"
                )
            if self._scheduled:
                wake = self._next_wake_cycle()
                target = limit if wake is None else min(wake, limit)
                if target > self.cycle:
                    self._skip_to_condition(condition, target)
                    continue
            self.tick()
        return self.cycle - start

    def _skip_to_condition(
        self,
        condition: Callable[[], bool],
        target: int,
    ) -> None:
        """Skip an idle stretch, stopping at the first cycle in
        ``(cycle, target]`` where ``condition`` holds (if any).

        Only the clock advances during an idle stretch, so probing the
        condition at a trial cycle is just a matter of setting
        ``self.cycle`` — no component state is touched.
        """
        here = self.cycle
        self.cycle = target
        fired = condition()
        self.cycle = here
        if not fired:
            self._skip_to(target)
            return
        lo, hi = here + 1, target
        while lo < hi:
            mid = (lo + hi) // 2
            self.cycle = mid
            if condition():
                hi = mid
            else:
                lo = mid + 1
        self.cycle = here
        self._skip_to(lo)
