"""Simulation substrates.

Two simulators underpin the reproduction:

- :mod:`repro.sim.kernel` — a deterministic, two-phase, cycle-driven
  simulator used for the on-chip world (NoC routers, tiles, MAC).  It
  models synchronous hardware: every component computes in the *step*
  phase against last cycle's state, and all state changes become visible
  in the *commit* phase.
- :mod:`repro.sim.events` — a timestamped event-driven simulator used for
  the distributed-systems world (hosts, switches, links, clients).

:mod:`repro.sim.rng` provides named, seeded random streams so every
experiment is reproducible run-to-run.
"""

from repro.sim.events import EventSimulator
from repro.sim.kernel import ClockedComponent, CycleSimulator, StagedFifo
from repro.sim.rng import SeededStreams

__all__ = [
    "ClockedComponent",
    "CycleSimulator",
    "EventSimulator",
    "SeededStreams",
    "StagedFifo",
]
