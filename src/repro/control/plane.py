"""The control NoC and tile control endpoints.

The control plane is a physically separate mesh (the paper uses a
lower-width NoC; ours is the same flit-accurate model with shallower
buffering, since control messages are small and rare).  Keeping it
separate means control traffic never shares resources with the long
data-plane chains in the deadlock dependency graph, so endpoint
placement is unconstrained.

Each participating tile gets a :class:`ControlEndpoint` at its own
coordinates.  The endpoint dispatches :class:`TableUpdate` and
:class:`CounterRead` messages to handler callables registered by the
design (e.g. ``lambda key, value: nat_table.set_mapping(key, value)``)
and returns ACKs to the sender.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.control.messages import (
    ControlAck,
    CounterRead,
    CounterValue,
    TableUpdate,
)
from repro.noc.mesh import LocalPort, Mesh
from repro.noc.message import NocMessage
from repro.sim.kernel import CycleSimulator, Wakeable


class ControlEndpoint(Wakeable):
    """A tile's attachment to the control NoC (a clocked component)."""

    def __init__(self, plane: ControlPlane, coord: tuple[int, int],
                 name: str):
        self.plane = plane
        self.coord = coord
        self.name = name
        self.port: LocalPort = plane.mesh.attach(coord)
        self.table_handlers: dict[str, Callable] = {}
        self.counters: dict[str, Callable] = {}
        self.updates_applied = 0
        self._replies: list = []  # completions for locally-sent requests

    # -- registration --------------------------------------------------------

    def on_table(self, table: str, handler: Callable) -> None:
        """Register ``handler(key, value)`` for ``table`` updates."""
        self.table_handlers[table] = handler

    def on_counter(self, name: str, reader: Callable) -> None:
        """Register a zero-argument reader for telemetry ``name``."""
        self.counters[name] = reader

    # -- sending ----------------------------------------------------------------

    def send(self, dst: tuple[int, int], payload) -> None:
        self.port.send(NocMessage(dst=dst, src=self.coord,
                                  metadata=payload))

    def pop_replies(self) -> list:
        replies = self._replies
        self._replies = []
        return replies

    # -- clocked behaviour ----------------------------------------------------------

    def step(self, cycle: int) -> None:
        message = self.port.receive()
        if message is None:
            return
        payload = message.metadata
        if isinstance(payload, TableUpdate):
            self._apply_update(payload, message.src)
        elif isinstance(payload, CounterRead):
            self._read_counter(payload)
        else:
            self._replies.append(payload)

    def _apply_update(self, update: TableUpdate, src) -> None:
        handler = self.table_handlers.get(update.table)
        if handler is None:
            ack = ControlAck(ok=False, tag=update.tag,
                             detail=f"no table {update.table!r} at "
                                    f"{self.name}")
        else:
            handler(update.key, update.value)
            self.updates_applied += 1
            ack = ControlAck(ok=True, tag=update.tag)
        reply_to = update.reply_to if update.reply_to is not None else src
        self.send(reply_to, ack)

    def _read_counter(self, request: CounterRead) -> None:
        reader = self.counters.get(request.name)
        value = reader() if reader is not None else None
        self.send(request.reply_to,
                  CounterValue(name=request.name, value=value,
                               tag=request.tag))

    def commit(self) -> None:
        pass

    # -- quiescence contract (see repro.sim.kernel) ----------------------------

    def wake_sources(self):
        return (self.port.eject_fifo,)

    def is_idle(self) -> bool:
        """Control messages are rare; the endpoint sleeps whenever its
        ejection FIFO is empty."""
        fifo = self.port.eject_fifo
        return not fifo._items and not fifo._staged


class ControlPlane:
    """The separate control NoC plus its endpoints."""

    def __init__(self, width: int, height: int):
        # Lower-width NoC: shallower router buffering (the 64-bit vs
        # 512-bit datapath width is immaterial to a functional model of
        # small control messages).
        self.mesh = Mesh(width, height, fifo_depth=2)
        self.endpoints: dict[tuple[int, int], ControlEndpoint] = {}

    def attach(self, coord: tuple[int, int],
               name: str) -> ControlEndpoint:
        if coord in self.endpoints:
            return self.endpoints[coord]
        endpoint = ControlEndpoint(self, coord, name)
        self.endpoints[coord] = endpoint
        return endpoint

    def register(self, sim: CycleSimulator) -> None:
        self.mesh.register(sim)
        sim.add_all(self.endpoints.values())
