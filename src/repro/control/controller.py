"""The internal controller tile (paper section V-E).

An external controller reconfigures the stack with an RPC over the
transport layer.  This tile terminates that RPC on the data plane,
translates it into a :class:`TableUpdate` on the control NoC, waits for
the target tile's acknowledgement, and sends the confirmation response
back to the external controller — the exact sequence the paper
describes for migrating a client's virtual-to-physical IP mapping.
"""

from __future__ import annotations

import itertools
import json

from repro.control.messages import ControlAck, TableUpdate
from repro.control.plane import ControlEndpoint
from repro.noc.mesh import Mesh
from repro.noc.message import NocMessage
from repro.packet.ipv4 import IPPROTO_UDP, IPv4Header
from repro.packet.udp import UdpHeader
from repro.tiles.base import NextHopTable, PacketMeta, Tile


def encode_control_rpc(target: tuple[int, int], table: str, key, value,
                       tag=None, op: str = "update") -> bytes:
    """Serialise an external controller command (wire format: JSON).

    ``op`` is ``"update"`` (rewrite a table entry) or
    ``"read_counter"`` (telemetry: ``key`` names the counter).
    """
    return json.dumps({
        "op": op,
        "target": list(target),
        "table": table,
        "key": str(key),
        "value": str(value),
        "tag": tag,
    }).encode()


def decode_control_rpc(payload: bytes) -> dict:
    command = json.loads(payload.decode())
    command["target"] = tuple(command["target"])
    return command


def encode_control_response(ok: bool, tag, detail: str = "") -> bytes:
    return json.dumps({"ok": ok, "tag": tag, "detail": detail}).encode()


def decode_control_response(payload: bytes) -> dict:
    return json.loads(payload.decode())


class InternalControllerTile(Tile):
    """Bridges external RPCs to control-NoC table updates."""

    KIND = "controller"

    DEFAULT = "default"

    def __init__(self, name: str, mesh: Mesh, coord: tuple[int, int],
                 endpoint: ControlEndpoint, **kwargs):
        super().__init__(name, mesh, coord, **kwargs)
        self.endpoint = endpoint
        self.next_hop = NextHopTable(name=f"{name}.nexthop")
        self._tags = itertools.count(1)
        # internal tag -> (client PacketMeta, external tag)
        self._pending: dict[int, tuple[PacketMeta, object]] = {}
        self.rpcs_served = 0

    def handle_message(self, message: NocMessage, cycle: int):
        meta: PacketMeta = message.metadata
        if meta is None or meta.udp is None:
            return self.drop(message, "controller expects UDP RPCs")
        try:
            command = decode_control_rpc(message.data)
        except (ValueError, KeyError):
            return self.drop(message, "malformed control RPC")
        tag = next(self._tags)
        self._pending[tag] = (meta, command.get("tag"))
        if command.get("op", "update") == "read_counter":
            from repro.control.messages import CounterRead
            request = CounterRead(name=command["key"],
                                  reply_to=self.endpoint.coord, tag=tag)
            self.endpoint.send(command["target"], request)
        else:
            update = TableUpdate(
                table=command["table"],
                key=command["key"],
                value=command["value"],
                reply_to=self.endpoint.coord,
                tag=tag,
            )
            self.endpoint.send(command["target"], update)
        return []

    def on_cycle(self, cycle: int) -> None:
        from repro.control.messages import CounterValue
        for reply in self.endpoint.pop_replies():
            if isinstance(reply, ControlAck):
                body = {"ok": reply.ok, "detail": reply.detail}
            elif isinstance(reply, CounterValue):
                body = {"ok": True, "counter": reply.name,
                        "value": reply.value}
            else:
                continue
            pending = self._pending.pop(reply.tag, None)
            if pending is None:
                continue
            client_meta, external_tag = pending
            body["tag"] = external_tag
            self._respond(client_meta, body)

    def _respond(self, client_meta: PacketMeta, body: dict) -> None:
        dest = self.next_hop.lookup(self.DEFAULT)
        if dest is None:
            return
        response = PacketMeta(
            ip=IPv4Header(src=client_meta.ip.dst, dst=client_meta.ip.src,
                          protocol=IPPROTO_UDP),
            udp=UdpHeader(src_port=client_meta.udp.dst_port,
                          dst_port=client_meta.udp.src_port),
        )
        self.rpcs_served += 1
        self.send(self.make_message(dest, metadata=response,
                                    data=json.dumps(body).encode()))
