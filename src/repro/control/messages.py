"""Control-plane NoC message types."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TableUpdate:
    """Rewrite an entry in a tile's table (NAT mapping, IP-in-IP
    endpoint, or a protocol tile's next-hop hash table)."""

    table: str
    key: object
    value: object
    reply_to: tuple | None = None
    tag: object = None


@dataclass(frozen=True)
class ControlAck:
    ok: bool
    tag: object = None
    detail: str = ""


@dataclass(frozen=True)
class CounterRead:
    """Telemetry: read a named statistic from a tile."""

    name: str
    reply_to: tuple
    tag: object = None


@dataclass(frozen=True)
class CounterValue:
    name: str
    value: object
    tag: object = None
