"""The control plane (paper sections IV-F, V-E).

Beehive uses a second, lower-width, message-based NoC for control
rather than a dedicated bus: configuration must ride a reliable
transport, reach any tile without ad-hoc wires, and never contend with
long data-plane chains in the deadlock dependency graph.

- :class:`repro.control.plane.ControlPlane` — the separate control NoC
  plus per-tile endpoints.
- :class:`repro.control.controller.InternalControllerTile` — the
  data-plane tile that terminates the external controller's RPC (over
  UDP/TCP), issues table updates over the control NoC, and confirms.
"""

from repro.control.messages import (
    ControlAck,
    CounterRead,
    CounterValue,
    TableUpdate,
)
from repro.control.plane import ControlEndpoint, ControlPlane
from repro.control.controller import (
    InternalControllerTile,
    decode_control_rpc,
    encode_control_rpc,
)

__all__ = [
    "ControlAck",
    "ControlEndpoint",
    "ControlPlane",
    "CounterRead",
    "CounterValue",
    "InternalControllerTile",
    "TableUpdate",
    "decode_control_rpc",
    "encode_control_rpc",
]
