"""Live mesh dashboard — ``top`` for a running design.

    python -m repro.tools.top udp_echo --cycles 20000
    python -m repro.tools.top --replay snapshots.json --plain
    python -m repro.tools.top udp_echo --save snapshots.json

Live mode builds a design (XML path or builtin name), attaches a
:class:`repro.telemetry.probe.Probe`, drives the same UDP traffic the
trace tool does, and redraws a frame per sample: a link-utilization
heatmap of the mesh, per-tile occupancy (queue depths against their
high-water marks), latency percentiles with a sparkline, and the
kernel's scheduling stats.  With a TTY and curses the frame repaints
in place; otherwise (or with ``--plain``) frames print sequentially.

Replay mode renders a recorded snapshot series (``probe.write(path)``
or ``--save``) instead of running anything.  Rendering is a pure
function of the snapshot data — replaying the same file always
produces byte-identical frames, which is what the CI smoke asserts.
"""

from __future__ import annotations

import argparse
import sys

from repro.telemetry.export import SnapshotSeries

#: Latency sparkline ramp (8 levels + blank).
BLOCKS = " ▁▂▃▄▅▆▇█"
#: Heatmap ramp, cold to hot.
SHADES = " .:-=+*#%@"
SPARK_WIDTH = 32


def _coord_of(value) -> tuple[int, int]:
    """A (x, y) tuple from a snapshot coord (list) or a link key."""
    return (int(value[0]), int(value[1]))


def _link_source(key: str) -> tuple[int, int]:
    """``"(1, 0)->east"`` -> ``(1, 0)``."""
    coord_text = key.split("->", 1)[0].strip("() ")
    x_text, y_text = coord_text.split(",")
    return (int(x_text), int(y_text))


def mesh_extent(snapshot) -> tuple[int, int]:
    """Grid size implied by tile coords and link endpoints."""
    width = height = 1
    for tile in snapshot.get("tiles", {}).values():
        x, y = _coord_of(tile["coord"])
        width = max(width, x + 1)
        height = max(height, y + 1)
    for key in snapshot.get("links", {}):
        x, y = _link_source(key)
        width = max(width, x + 1)
        height = max(height, y + 1)
    return width, height


def router_activity(snapshot) -> dict[tuple[int, int], int]:
    """Outgoing flit deltas summed per source router."""
    activity: dict[tuple[int, int], int] = {}
    for key, delta in snapshot.get("links", {}).items():
        coord = _link_source(key)
        activity[coord] = activity.get(coord, 0) + delta
    return activity


def _shade(value: int, peak: int) -> str:
    if peak <= 0 or value <= 0:
        return SHADES[0]
    index = 1 + (value * (len(SHADES) - 2)) // peak
    return SHADES[min(index, len(SHADES) - 1)]


def sparkline(values, width: int = SPARK_WIDTH) -> str:
    """Fixed-width block sparkline of the last ``width`` values."""
    tail = [v for v in values if v is not None][-width:]
    if not tail:
        return ""
    peak = max(tail) or 1
    chars = []
    for value in tail:
        index = (int(value) * (len(BLOCKS) - 2)) // int(peak) + 1 \
            if value > 0 else 0
        chars.append(BLOCKS[min(index, len(BLOCKS) - 1)])
    return "".join(chars)


def render_frame(series: SnapshotSeries, index: int) -> str:
    """One dashboard frame, as text.  Pure: same series + index in,
    byte-identical frame out — the replay determinism contract."""
    snapshots = series.snapshots
    snapshot = snapshots[index]
    width, height = mesh_extent(snapshot)
    activity = router_activity(snapshot)
    peak = max(activity.values(), default=0)
    interval = series.interval or 1

    lines = [
        f"repro.top — {series.design or 'design'}  "
        f"cycle {snapshot['cycle']}  "
        f"sample {index + 1}/{len(snapshots)}",
        f"fabric: {snapshot.get('busy_routers', 0)} busy routers, "
        f"{snapshot.get('total_flits', 0)} flits forwarded total, "
        f"peak link {peak}/{interval} flits/cycle this sample",
        "",
        f"link utilization ({width}x{height} mesh, '{SHADES[-1]}' = "
        "hottest router this sample):",
    ]
    for y in range(height):
        row = "".join(
            _shade(activity.get((x, y), 0), peak) * 2
            for x in range(width))
        lines.append(f"  {y} |{row}|")
    lines.append("     " + "".join(f"{x % 10} " for x in range(width)))

    lines.append("")
    lines.append(f"{'tile':<14} {'coord':<8} {'in':>7} {'out':>7} "
                 f"{'drops':>6} {'ej d/hwm':>9} {'tx d/hwm':>9}")
    for name in sorted(snapshot.get("tiles", {})):
        tile = snapshot["tiles"][name]
        coord = tuple(tile["coord"])
        lines.append(
            f"{name:<14} {str(coord):<8} {tile['msgs_in']:>7} "
            f"{tile['msgs_out']:>7} {tile['drops']:>6} "
            f"{tile['eject_depth']:>4}/{tile['eject_hwm']:<4} "
            f"{tile['tx_backlog']:>4}/{tile['tx_hwm']:<4}"
        )

    latency = snapshot.get("latency") or {}
    history = [s.get("latency", {}).get("window_p50")
               for s in snapshots[:index + 1]]
    spark = sparkline(history)

    def fmt(value) -> str:
        return "-" if value is None else f"{value:.0f}"

    lines.append("")
    lines.append(
        f"latency (cycles): p50={fmt(latency.get('p50'))} "
        f"p99={fmt(latency.get('p99'))} p999={fmt(latency.get('p999'))} "
        f"window n={latency.get('completed', 0)} "
        f"p50={fmt(latency.get('window_p50'))}"
        + (f"  last transit={latency['last_transit']}"
           if "last_transit" in latency else "")
    )
    if spark:
        lines.append(f"window p50 trend: {spark}")

    kernel = snapshot.get("kernel") or {}
    if kernel:
        lines.append(
            f"kernel[{kernel.get('kernel', '?')}]: "
            f"{kernel.get('active', 0)}/{kernel.get('components', 0)} "
            f"active, {kernel.get('armed_timers', 0)} timers, "
            f"{kernel.get('idle_cycles_skipped', 0)} idle skipped, "
            f"{kernel.get('component_steps', 0)} steps"
        )
    faults = snapshot.get("faults")
    if faults:
        rendered = ", ".join(f"{kind}={count}"
                             for kind, count in sorted(faults.items()))
        lines.append(f"faults: {rendered}")
    return "\n".join(lines)


def render_all(series: SnapshotSeries) -> str:
    """Every frame, separated — the deterministic replay transcript."""
    frames = [render_frame(series, i)
              for i in range(len(series.snapshots))]
    separator = "\n" + "=" * 72 + "\n"
    return separator.join(frames)


# -- live mode ---------------------------------------------------------------


def _run_live(args) -> int:
    # Reuse the trace tool's design loading + traffic conventions, but
    # sample with a probe instead of recording a full trace.
    from repro.config import build_design
    from repro.designs.harness import FrameSink, FrameSource
    from repro.packet import IPv4Address, MacAddress, build_ipv4_udp_frame
    from repro.telemetry.probe import attach_probe
    from repro.tools.trace import (
        CLIENT_IP,
        CLIENT_MAC,
        _default_port,
        _load_spec,
        _spec_param,
    )

    try:
        spec = _load_spec(args.design)
    except OSError as error:
        print(f"error: cannot read design {args.design!r}: {error}",
              file=sys.stderr)
        return 1

    design = build_design(spec)
    probe = attach_probe(design, interval=args.interval,
                         design_name=args.design)
    design.add_neighbor(CLIENT_IP, CLIENT_MAC)
    server_mac = MacAddress(
        _spec_param(spec, "eth_rx", "my_mac") or "02:be:e0:00:00:01")
    server_ip = IPv4Address(
        _spec_param(spec, "ip_rx", "my_ip") or "10.0.0.10")
    port = _default_port(spec)
    frame = build_ipv4_udp_frame(CLIENT_MAC, server_mac, CLIENT_IP,
                                 server_ip, 5555, port,
                                 bytes(args.payload))
    source = FrameSource(design.inject, lambda i: frame, rate=args.rate)
    sink = FrameSink(design.eth_tx, keep_frames=False)
    design.sim.add(source)
    design.sim.add(sink)

    use_curses = (not args.plain and sys.stdout.isatty())
    screen = None
    curses = None
    if use_curses:
        try:
            import curses as curses_mod
            curses = curses_mod
            screen = curses.initscr()
            curses.noecho()
            curses.cbreak()
            screen.nodelay(True)
        except Exception:
            screen = None
    try:
        remaining = args.cycles
        while remaining > 0:
            chunk = min(args.interval, remaining)
            design.sim.run(chunk)
            remaining -= chunk
            if not probe.series.snapshots:
                continue
            frame_text = render_frame(
                probe.series, len(probe.series.snapshots) - 1)
            if screen is not None:
                screen.erase()
                try:
                    screen.addstr(0, 0, frame_text)
                except Exception:
                    pass  # terminal smaller than the frame
                screen.refresh()
                if screen.getch() in (ord("q"), 27):
                    break
            else:
                print(frame_text)
                print("=" * 72)
    finally:
        if screen is not None and curses is not None:
            curses.nocbreak()
            curses.echo()
            curses.endwin()

    if args.save:
        probe.write(args.save)
        print(f"saved {len(probe.series.snapshots)} snapshots "
              f"-> {args.save}")
    if screen is not None and probe.series.snapshots:
        # Leave the final frame on the scrollback after curses exits.
        print(render_frame(probe.series, len(probe.series.snapshots) - 1))
    print(f"injected {source.sent} frames, egressed {sink.count}, "
          f"{probe.samples_taken} samples")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.tools.top",
        description="Live mesh dashboard, or deterministic replay of a "
                    "recorded snapshot series.",
    )
    parser.add_argument("design", nargs="?",
                        help="design XML path or builtin name "
                             "(omit with --replay)")
    parser.add_argument("--replay", metavar="SNAPSHOTS_JSON",
                        help="render a recorded snapshot series instead "
                             "of running a design")
    parser.add_argument("--frame", type=int, default=None,
                        help="with --replay: render only this frame "
                             "(0-based; negative counts from the end)")
    parser.add_argument("--cycles", type=int, default=20000,
                        help="live mode: cycles to simulate "
                             "(default 20000)")
    parser.add_argument("--interval", type=int, default=500,
                        help="probe sampling interval in cycles "
                             "(default 500)")
    parser.add_argument("--rate", type=float, default=50.0,
                        help="injection rate in bytes/cycle "
                             "(default 50)")
    parser.add_argument("--payload", type=int, default=64,
                        help="UDP payload bytes per frame (default 64)")
    parser.add_argument("--plain", action="store_true",
                        help="print frames sequentially (no curses)")
    parser.add_argument("--save", metavar="PATH",
                        help="live mode: write the snapshot series for "
                             "later --replay")
    args = parser.parse_args(argv)

    if args.replay:
        try:
            series = SnapshotSeries.load(args.replay)
        except (OSError, ValueError) as error:
            print(f"error: cannot load {args.replay!r}: {error}",
                  file=sys.stderr)
            return 1
        if not series.snapshots:
            print(f"error: {args.replay!r} holds no snapshots",
                  file=sys.stderr)
            return 1
        if args.frame is not None:
            index = args.frame if args.frame >= 0 \
                else len(series.snapshots) + args.frame
            if not 0 <= index < len(series.snapshots):
                print(f"error: frame {args.frame} out of range "
                      f"(0..{len(series.snapshots) - 1})",
                      file=sys.stderr)
                return 1
            print(render_frame(series, index))
        else:
            print(render_all(series))
        return 0

    if not args.design:
        parser.error("a design (or --replay) is required")
    return _run_live(args)


if __name__ == "__main__":
    sys.exit(main())
