"""Command-line tools for working with Beehive design files."""
