"""Perf-lab runner — execute benchmarks, record JSON, gate regressions.

    python -m repro.tools.bench benchmarks/bench_mesh_backend.py \\
        --out BENCH_run.json
    python -m repro.tools.bench --input BENCH_run.json \\
        --compare BENCH_baseline.json
    python -m repro.tools.bench --check BENCH_run.json
    python -m repro.tools.bench --list

Each ``benchmarks/bench_*.py`` module exposes one zero-argument
``run_*`` entry point (the convention the whole suite follows); the
runner imports the module by path, times the call, and flattens every
numeric leaf of a dict return into dotted metric names.  Results are
written as a schema-validated document (``repro.bench/1``) so a CI
baseline from last week is still comparable next month.

``--compare`` is the regression gate: metrics present in both
documents are compared with a direction inferred from their name
(goodput/speedup/rate-like metrics must not drop, wall-clock/latency
metrics must not grow) and a relative ``--threshold`` (default 5%).
A document compared against itself always passes; any metric worse
than the threshold fails the run with exit code 1.  Metrics whose
direction is unknown are reported but never gate.
"""

from __future__ import annotations

import argparse
import ast
import importlib.util
import json
import sys
from pathlib import Path
from time import perf_counter

SCHEMA = "repro.bench/1"

#: Substrings marking a metric where bigger is better.
HIGHER_BETTER = ("gbps", "goodput", "speedup", "throughput", "rate",
                 "frames", "kreq", "per_sec", "ops", "echoed", "count")
#: Substrings marking a metric where smaller is better.  The seconds
#: suffix is matched at the end only — ``_s`` *inside* a name (as in
#: ``tiles_saturating.speedup`` or ``frames_sent``) says nothing
#: about units.
LOWER_BETTER = ("wall", "seconds", "latency", "p50", "p99",
                "p999", "cycles", "rtt", "overhead", "drops", "loc")


def metric_direction(name: str) -> int:
    """+1 higher-is-better, -1 lower-is-better, 0 unknown.

    Lower-better wins ties ("goodput_wall_s" is a timing), because
    gating a timing as a throughput inverts the alarm.
    """
    lowered = name.lower()
    if lowered.endswith("_s") or \
            any(token in lowered for token in LOWER_BETTER):
        return -1
    if any(token in lowered for token in HIGHER_BETTER):
        return 1
    return 0


def flatten_metrics(value, prefix: str = "") -> dict[str, float]:
    """Dotted numeric leaves of a nested dict/list result.

    Lists flatten to indexed names (``curve.0.goodput_gbps``), so
    per-load-point curves — lists of dicts — survive as one metric
    per point instead of being dropped; a top-level list gets bare
    indices (``0.goodput_gbps``), never a leading dot.
    """
    out: dict[str, float] = {}
    if isinstance(value, dict):
        for key, item in value.items():
            name = f"{prefix}.{key}" if prefix else str(key)
            out.update(flatten_metrics(item, name))
    elif isinstance(value, (list, tuple)):
        for index, item in enumerate(value):
            name = f"{prefix}.{index}" if prefix else str(index)
            out.update(flatten_metrics(item, name))
    elif isinstance(value, bool):
        pass  # True/False are not metrics
    elif isinstance(value, (int, float)):
        out[prefix] = float(value)
    return out


# -- document schema ---------------------------------------------------------


def validate_bench_document(doc) -> dict:
    """Check a ``repro.bench/1`` document; returns it or raises
    ``ValueError`` naming what's wrong."""
    if not isinstance(doc, dict):
        raise ValueError("bench document must be a JSON object")
    if doc.get("schema") != SCHEMA:
        raise ValueError(f"schema must be {SCHEMA!r}, "
                         f"got {doc.get('schema')!r}")
    results = doc.get("results")
    if not isinstance(results, dict):
        raise ValueError("'results' must be an object of benchmarks")
    for bench_name, entry in results.items():
        if not isinstance(entry, dict):
            raise ValueError(f"results[{bench_name!r}] must be an object")
        if not isinstance(entry.get("wall_s"), (int, float)):
            raise ValueError(
                f"results[{bench_name!r}].wall_s must be a number")
        metrics = entry.get("metrics", {})
        if not isinstance(metrics, dict):
            raise ValueError(
                f"results[{bench_name!r}].metrics must be an object")
        for metric, value in metrics.items():
            if isinstance(value, bool) or \
                    not isinstance(value, (int, float)):
                raise ValueError(
                    f"results[{bench_name!r}].metrics[{metric!r}] "
                    "must be a number")
    return doc


def load_bench_document(path: str) -> dict:
    with open(path) as handle:
        return validate_bench_document(json.load(handle))


# -- running -----------------------------------------------------------------


def _entry_point(module, module_name: str):
    """The module's ``run_*`` callable.

    Prefers the one whose suffix appears in the module name
    (``bench_sec7i_scalability`` -> ``run_scalability``); otherwise
    the sole candidate; otherwise the last one defined.
    """
    candidates = [name for name in dir(module)
                  if name.startswith("run_") and
                  callable(getattr(module, name))]
    if not candidates:
        raise ValueError(f"{module_name}: no run_* entry point")
    if len(candidates) > 1:
        matched = [name for name in candidates
                   if name[len("run_"):] in module_name]
        if matched:
            candidates = matched
    return getattr(module, candidates[-1])


def run_benchmark(path: str) -> dict:
    """Import one bench module by path and execute its entry point.

    Returns ``{"wall_s": ..., "metrics": {...}}``.
    """
    module_path = Path(path)
    module_name = module_path.stem
    spec = importlib.util.spec_from_file_location(module_name,
                                                 module_path)
    if spec is None or spec.loader is None:
        raise ValueError(f"cannot import {path}")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    entry = _entry_point(module, module_name)
    start = perf_counter()
    result = entry()
    wall = perf_counter() - start
    metrics = flatten_metrics(result) if isinstance(
        result, (dict, list, tuple)) else {}
    if not metrics:
        raise ValueError(
            f"{module_name}: {entry.__name__}() yielded no usable "
            f"metrics — it returned {type(result).__name__}, but the "
            "runner needs a dict (or list) with numeric leaves to "
            "flatten into dotted metric names")
    return {"wall_s": wall, "metrics": metrics}


def describe_benchmarks(root: str = "benchmarks") -> list[dict]:
    """Discover ``bench_*.py`` modules under ``root`` without importing.

    Each row carries the path, the ``run_*`` entry points found by
    parsing the source (no side effects), and the first docstring
    line; an unparseable file gets an ``error`` entry instead.
    """
    rows: list[dict] = []
    for path in sorted(Path(root).glob("bench_*.py")):
        try:
            tree = ast.parse(path.read_text())
        except SyntaxError as error:
            rows.append({"path": str(path), "error": str(error)})
            continue
        summary = (ast.get_docstring(tree) or "").strip()
        rows.append({
            "path": str(path),
            "entry_points": [node.name for node in tree.body
                             if isinstance(node, ast.FunctionDef)
                             and node.name.startswith("run_")],
            "summary": summary.splitlines()[0] if summary else "",
        })
    return rows


def run_suite(paths: list[str]) -> dict:
    """Run several bench modules into one ``repro.bench/1`` document."""
    results = {}
    for path in paths:
        name = Path(path).stem.removeprefix("bench_")
        results[name] = run_benchmark(path)
    return {"schema": SCHEMA, "results": results}


# -- comparing ---------------------------------------------------------------


def compare_documents(current: dict, baseline: dict,
                      threshold: float = 0.05) -> dict:
    """Gate ``current`` against ``baseline``.

    Returns ``{"regressions": [...], "improvements": [...],
    "unchanged": int, "ungated": [...]}`` where each entry is
    ``(bench, metric, baseline_value, current_value, rel_change)``.
    Only metrics present in both documents are compared; ``wall_s``
    is deliberately ungated (host timing noise is not a regression).
    """
    regressions, improvements, ungated = [], [], []
    unchanged = 0
    current_results = current["results"]
    for bench_name, base_entry in baseline["results"].items():
        cur_entry = current_results.get(bench_name)
        if cur_entry is None:
            continue
        base_metrics = base_entry.get("metrics", {})
        cur_metrics = cur_entry.get("metrics", {})
        for metric, base_value in base_metrics.items():
            if metric not in cur_metrics:
                continue
            cur_value = cur_metrics[metric]
            if base_value == 0:
                change = 0.0 if cur_value == 0 else float("inf")
            else:
                change = (cur_value - base_value) / abs(base_value)
            row = (bench_name, metric, base_value, cur_value, change)
            direction = metric_direction(metric)
            if direction == 0:
                ungated.append(row)
            elif direction * change < -threshold:
                regressions.append(row)
            elif direction * change > threshold:
                improvements.append(row)
            else:
                unchanged += 1
    return {"regressions": regressions, "improvements": improvements,
            "unchanged": unchanged, "ungated": ungated}


def _render_rows(label: str, rows) -> list[str]:
    lines = [f"{label}:"]
    for bench_name, metric, base, cur, change in rows:
        lines.append(f"  {bench_name}.{metric}: "
                     f"{base:g} -> {cur:g} ({change:+.1%})")
    return lines


def format_comparison(outcome: dict) -> str:
    lines = []
    if outcome["regressions"]:
        lines.extend(_render_rows("REGRESSIONS", outcome["regressions"]))
    if outcome["improvements"]:
        lines.extend(_render_rows("improvements",
                                  outcome["improvements"]))
    lines.append(f"{outcome['unchanged']} metrics within threshold, "
                 f"{len(outcome['ungated'])} informational")
    return "\n".join(lines)


# -- CLI ---------------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.tools.bench",
        description="Run bench_* modules into a repro.bench/1 JSON "
                    "document; compare documents as a regression gate.",
    )
    parser.add_argument("benchmarks", nargs="*",
                        help="bench_*.py paths to execute (with "
                             "--list: directories to scan)")
    parser.add_argument("--list", action="store_true",
                        dest="list_benches",
                        help="list discoverable bench modules (from "
                             "benchmarks/ or the given directories) "
                             "and exit")
    parser.add_argument("--out", metavar="PATH",
                        help="write the result document here")
    parser.add_argument("--input", metavar="PATH",
                        help="use an existing result document instead "
                             "of running benchmarks")
    parser.add_argument("--compare", metavar="BASELINE",
                        help="gate results against this baseline "
                             "document (exit 1 on regression)")
    parser.add_argument("--check", metavar="PATH",
                        help="only validate a document against the "
                             f"{SCHEMA} schema")
    parser.add_argument("--threshold", type=float, default=0.05,
                        help="relative regression threshold "
                             "(default 0.05 = 5%%)")
    args = parser.parse_args(argv)

    if args.list_benches:
        roots = args.benchmarks or ["benchmarks"]
        rows: list[dict] = []
        for root in roots:
            if not Path(root).is_dir():
                print(f"error: {root}: not a directory",
                      file=sys.stderr)
                return 2
            rows.extend(describe_benchmarks(root))
        if not rows:
            print(f"no bench_*.py modules under {', '.join(roots)}",
                  file=sys.stderr)
            return 2
        for row in rows:
            if "error" in row:
                print(f"{row['path']}: unparseable ({row['error']})")
                continue
            entries = ", ".join(row["entry_points"]) \
                or "NO run_* entry point"
            line = f"{row['path']}: {entries}"
            if row["summary"]:
                line += f" -- {row['summary']}"
            print(line)
        return 0

    if args.check:
        try:
            load_bench_document(args.check)
        except (OSError, ValueError, json.JSONDecodeError) as error:
            print(f"error: {args.check}: {error}", file=sys.stderr)
            return 2
        print(f"{args.check}: valid {SCHEMA} document")
        return 0

    if args.input:
        try:
            document = load_bench_document(args.input)
        except (OSError, ValueError, json.JSONDecodeError) as error:
            print(f"error: {args.input}: {error}", file=sys.stderr)
            return 2
    elif args.benchmarks:
        try:
            document = run_suite(args.benchmarks)
        except (OSError, ValueError) as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        for bench_name, entry in document["results"].items():
            print(f"{bench_name}: {entry['wall_s']:.2f}s, "
                  f"{len(entry['metrics'])} metrics")
    else:
        parser.error("give bench_*.py paths, or --input/--check/--list")
        return 2  # unreachable; parser.error raises

    validate_bench_document(document)
    if args.out:
        Path(args.out).write_text(
            json.dumps(document, indent=2, sort_keys=True) + "\n")
        print(f"wrote {args.out}")

    if args.compare:
        try:
            baseline = load_bench_document(args.compare)
        except (OSError, ValueError, json.JSONDecodeError) as error:
            print(f"error: {args.compare}: {error}", file=sys.stderr)
            return 2
        outcome = compare_documents(document, baseline,
                                    threshold=args.threshold)
        print(format_comparison(outcome))
        if outcome["regressions"]:
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
