"""The design tool (paper section V-G) as a command line.

    python -m repro.tools.design validate  design.xml
    python -m repro.tools.design analyze   design.xml
    python -m repro.tools.design generate  design.xml
    python -m repro.tools.design loc       design.xml TILE
    python -m repro.tools.design resources design.xml

``validate`` checks topology soundness and reports the auto-generated
empty tiles; ``analyze`` runs the compile-time deadlock analysis over
the declared chains; ``generate`` prints the top-level wiring;
``loc`` prints the Table VI instantiation cost of one tile;
``resources`` prints the Table V-style utilisation summary.
"""

from __future__ import annotations

import argparse
import sys

from repro.config import (
    design_from_xml,
    generate_top_level,
    instantiation_loc,
    validate,
)
from repro.config.validate import ValidationError
from repro.analysis.deadlock import analyze_chains
from repro.resources import tile_cost
from repro import params

# Mapping from config tile types to resource-model kinds.
_RESOURCE_KIND = {
    "eth_rx": "eth_rx", "eth_tx": "eth_tx", "ip_rx": "ip_rx",
    "ip_tx": "ip_tx", "udp_rx": "udp_rx", "udp_tx": "udp_tx",
    "echo_app": "echo_app", "buffer": "buffer_tile",
    "nat_rx": "nat", "nat_tx": "nat", "ipinip_encap": "ipinip",
    "ipinip_decap": "ipinip", "log": "log_tile",
    "load_balancer": "load_balancer", "rr_scheduler": "load_balancer",
    "rs_encoder": "rs_encoder", "vr_witness": "vr_witness",
}


def _load(path: str):
    with open(path) as handle:
        return design_from_xml(handle.read())


def cmd_validate(args) -> int:
    design = _load(args.design)
    try:
        report = validate(design)
    except ValidationError as error:
        for problem in error.problems:
            print(f"error: {problem}")
        return 1
    print(f"design '{design.name}': {len(design.tiles)} tiles on a "
          f"{design.width}x{design.height} mesh — OK")
    if report.empty_coords:
        coords = ", ".join(str(c) for c in report.empty_coords)
        print(f"auto-generated empty tiles at: {coords}")
    for warning in report.warnings:
        print(f"warning: {warning}")
    return 0


def cmd_analyze(args) -> int:
    design = _load(args.design)
    validate(design)
    chains = [chain.tiles for chain in design.chains]
    if not chains:
        print("no chains declared; nothing to analyze")
        return 0
    cycle = analyze_chains(chains, design.coords())
    if cycle is None:
        print(f"{len(chains)} chain(s): deadlock-free")
        return 0
    witness = " -> ".join(f"{coord}:{port.value}"
                          for coord, port in cycle)
    print(f"DEADLOCK: resource cycle [{witness}]")
    print("re-place the tiles so each chain acquires links in order")
    return 2


def cmd_generate(args) -> int:
    design = _load(args.design)
    sys.stdout.write(generate_top_level(design))
    return 0


def cmd_loc(args) -> int:
    design = _load(args.design)
    loc = instantiation_loc(design, args.tile)
    print(f"instantiating {args.tile!r} in '{design.name}':")
    print(f"  XML declaration:  {loc.xml_declaration} lines")
    print(f"  XML destinations: {loc.xml_destination} lines")
    print(f"  top-level wiring: {loc.top_level} lines")
    return 0


def cmd_resources(args) -> int:
    design = _load(args.design)
    validate(design)
    total_luts = 0
    total_brams = 0.0
    for tile in design.tiles:
        kind = _RESOURCE_KIND.get(tile.type)
        if kind is None:
            print(f"  {tile.name:<16} ({tile.type}): no cost model")
            continue
        cost = tile_cost(kind)
        total_luts += cost.luts
        total_brams += cost.brams
        print(f"  {tile.name:<16} {cost.luts:>7} LUTs "
              f"{cost.brams:>5.1f} BRAM")
    for coord in design.empty_coords():
        cost = tile_cost("empty")
        total_luts += cost.luts
        print(f"  empty@{coord!s:<10} {cost.luts:>7} LUTs   0.0 BRAM")
    print(f"  {'TOTAL':<16} {total_luts:>7} LUTs "
          f"({100 * total_luts / params.U200_TOTAL_LUTS:.2f}%) "
          f"{total_brams:>5.1f} BRAM "
          f"({100 * total_brams / params.U200_TOTAL_BRAMS:.2f}%)")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.tools.design",
        description="Beehive design-file tooling (validate / analyze /"
                    " generate / loc / resources).",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    for name, handler, extra in (
        ("validate", cmd_validate, ()),
        ("analyze", cmd_analyze, ()),
        ("generate", cmd_generate, ()),
        ("loc", cmd_loc, ("tile",)),
        ("resources", cmd_resources, ()),
    ):
        command = sub.add_parser(name)
        command.add_argument("design", help="path to the design XML")
        for argument in extra:
            command.add_argument(argument)
        command.set_defaults(handler=handler)
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
