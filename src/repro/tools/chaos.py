"""Chaos-testing CLI: seed-swept fault injection with invariants.

``python -m repro.tools.chaos`` builds the shipped designs under
hostile :class:`~repro.faults.plan.FaultPlan`\\ s and asserts the
recovery properties the reproduction claims:

- **udp**: the echo stack under wire drop/corrupt/duplicate/reorder/
  delay plus a tile freeze and a link stall never raises, never emits
  a malformed frame, and every echoed payload is one the client sent
  (corrupted traffic is dropped by checksums, not echoed).
- **tcp**: a client behind a lossy wire still delivers its full byte
  stream — the engines retransmit to completion.
- **vr**: a frozen leader triggers a view change and the promoted
  leader completes operations.
- **design:<name>**: any shipped design fed deterministic garbage
  (random bytes, truncated frames, flipped bits) must drop it without
  raising — the paper's "hostile traffic is dropped, never crashed
  on".

Every scenario is deterministic per seed; ``--seeds N`` sweeps N
consecutive seeds from ``--base-seed``.  Cycle-level runs are bounded
by ``--budget-s`` of wall clock via the kernel's
``wall_clock_budget_s`` hook, so a wedged design fails instead of
hanging CI.
"""

from __future__ import annotations

import argparse
import random
import sys

from repro.faults import FaultPlan, apply_vr_faults, attach_faults
from repro.sim.kernel import WallClockBudgetExceeded


def _run_cycles(design, end_cycle: int, budget_s: float) -> None:
    design.sim.run_until(lambda: design.sim.cycle >= end_cycle,
                         max_cycles=end_cycle + 10,
                         wall_clock_budget_s=budget_s)


def _udp_plan(seed: int, loss: float) -> FaultPlan:
    """The full hostile plan for the echo stack.

    Ejection corruption targets only the UDP RX tile's port — after
    it, payloads are checksum-validated, so corrupting later hops
    would legitimately alter egress and void the payload-set
    invariant.
    """
    return (FaultPlan(seed=seed)
            .wire(drop=loss, corrupt=0.05, duplicate=0.05,
                  reorder=0.1, delay=0.2)
            .freeze_tile("app", at=500, duration=400)
            .stall_link((3, 0), at=1500, duration=200)
            .corrupt_flits(0.05, coords=[(2, 0)]))


def run_udp_echo(seed: int, budget_s: float,
                 loss: float) -> tuple[list[str], str]:
    from repro.designs.harness import FrameSink
    from repro.designs.udp_stack import UdpEchoDesign
    from repro.packet.builder import build_ipv4_udp_frame
    from repro.packet.ethernet import MacAddress
    from repro.packet.ipv4 import IPv4Address

    client_ip = IPv4Address("10.0.0.1")
    client_mac = MacAddress("02:00:00:00:00:01")
    design = UdpEchoDesign(fault_plan=_udp_plan(seed, loss))
    design.add_client(client_ip, client_mac)
    sink = FrameSink(design.eth_tx)
    design.sim.add(sink)

    sent_payloads = set()
    n_frames = 60
    for i in range(n_frames):
        payload = b"chaos-%03d-%d" % (i, seed)
        sent_payloads.add(payload)
        frame = build_ipv4_udp_frame(
            client_mac, design.server_mac, client_ip, design.server_ip,
            5555, design.udp_port, payload)
        design.inject(frame, 1 + i * 40)

    failures: list[str] = []
    try:
        _run_cycles(design, n_frames * 40 + 20_000, budget_s)
    except WallClockBudgetExceeded:
        failures.append(f"wall-clock budget {budget_s}s exceeded")
    except Exception as error:  # noqa: BLE001 - the invariant itself
        failures.append(f"raised {type(error).__name__}: {error}")

    if sink.malformed:
        failures.append(f"{sink.malformed} malformed egress frames")
    from repro.packet.builder import parse_frame
    for frame, _cycle in sink.frames:
        payload = parse_frame(frame).payload
        if payload not in sent_payloads:
            failures.append(f"echoed a payload never sent: {payload!r}")
            break
    engine = design.fault_engine
    counters = dict(engine.counters) if engine else {}
    return failures, (f"echoed {sink.count}/{n_frames}, "
                      f"faults={sum(counters.values())}")


def run_tcp_server(seed: int, budget_s: float,
                   loss: float) -> tuple[list[str], str]:
    from repro.designs.tcp_stack import TcpServerDesign
    from repro.packet.ethernet import MacAddress
    from repro.packet.ipv4 import IPv4Address
    from repro.tcp.peer import SoftTcpPeer

    client_ip = IPv4Address("10.0.0.1")
    client_mac = MacAddress("02:00:00:00:00:01")
    plan = FaultPlan(seed=seed).wire(drop=loss)
    design = TcpServerDesign(tcp_port=5000, request_size=64,
                             fault_plan=plan)
    design.add_client(client_ip, client_mac)
    peer = SoftTcpPeer(design, client_ip, client_mac,
                       design.server_ip, 5000, wire_cycles=50)
    design.sim.add(peer)

    payload = bytes(random.Random(seed).randrange(256)
                    for _ in range(1024))
    failures: list[str] = []
    try:
        peer.connect()
        design.sim.run_until(lambda: peer.established,
                             max_cycles=500_000,
                             wall_clock_budget_s=budget_s)
        peer.send(payload)
        design.sim.run_until(
            lambda: len(peer.received) >= len(payload),
            max_cycles=5_000_000, wall_clock_budget_s=budget_s)
    except WallClockBudgetExceeded:
        failures.append(f"wall-clock budget {budget_s}s exceeded")
    except TimeoutError:
        failures.append(
            f"stream incomplete: {len(peer.received)}/{len(payload)} "
            f"bytes after cycle budget")
    except Exception as error:  # noqa: BLE001 - the invariant itself
        failures.append(f"raised {type(error).__name__}: {error}")
    else:
        if bytes(peer.received[:len(payload)]) != payload:
            failures.append("echoed stream differs from sent stream")
    engine = design.fault_engine
    drops = engine.counters.get("wire.drop", 0) if engine else 0
    return failures, (f"{len(peer.received)}B echoed, "
                      f"{peer.retransmits} retransmits, "
                      f"{drops} frames dropped")


def run_vr_cluster(seed: int, budget_s: float) -> tuple[list[str], str]:
    from repro.apps.vr.cluster import VrExperiment

    plan = (FaultPlan(seed=seed)
            .vr_freeze("leader", shard=0, at_s=0.05, duration_s=1.0))
    experiment = VrExperiment(
        shards=2, witness_kind="fpga", n_clients=4, seed=seed,
        view_change_timeout_s=0.01, client_retry_s=0.01)
    apply_vr_faults(experiment, plan)

    failures: list[str] = []
    try:
        result = experiment.run(duration_s=0.3, warmup_s=0.02)
    except Exception as error:  # noqa: BLE001 - the invariant itself
        return [f"raised {type(error).__name__}: {error}"], ""
    if experiment.view_changes < 1:
        failures.append("frozen leader never triggered a view change")
    else:
        new_leader = experiment.leaders[0]
        if new_leader.view < 1:
            failures.append("shard 0 still on view 0 after fail-over")
        if new_leader.completed == 0:
            failures.append("promoted leader completed no operations")
    if result.throughput_kops <= 0:
        failures.append("cluster made no progress under the fault")
    return failures, (f"{result.throughput_kops:.1f} kops, "
                      f"{experiment.view_changes} view changes, "
                      f"{sum(c.retries for c in experiment.clients)} "
                      f"client retries")


def _hostile_frames(seed: int, count: int = 40):
    """Deterministic garbage: random bytes, runts, flipped-bit frames."""
    rng = random.Random(seed)
    for i in range(count):
        kind = i % 3
        if kind == 0:  # pure noise
            yield bytes(rng.randrange(256)
                        for _ in range(rng.randrange(14, 200)))
        elif kind == 1:  # runt
            yield bytes(rng.randrange(256)
                        for _ in range(rng.randrange(0, 14)))
        else:  # plausible Ethernet/IPv4 header, garbage after
            yield (bytes.fromhex("02bee0000001020000000001" "0800")
                   + bytes(rng.randrange(256)
                           for _ in range(rng.randrange(10, 120))))


def run_design_hostile(name: str, seed: int,
                       budget_s: float) -> tuple[list[str], str]:
    from repro.designs.harness import FrameSink
    from repro.tools.lint import _shipped_designs

    shipped = _shipped_designs()
    if name not in shipped:
        return [f"unknown design {name!r} "
                f"(have {', '.join(sorted(shipped))})"], ""
    design = shipped[name]()
    attach_faults(design, FaultPlan(seed=seed).wire(
        drop=0.1, corrupt=0.2, duplicate=0.05, reorder=0.1, delay=0.1))
    sink = None
    if hasattr(design, "eth_tx"):
        sink = FrameSink(design.eth_tx, keep_frames=False)
        design.sim.add(sink)

    failures: list[str] = []
    frames = 0
    try:
        for i, frame in enumerate(_hostile_frames(seed)):
            design.inject(frame, 1 + i * 30)
            frames += 1
        _run_cycles(design, frames * 30 + 10_000, budget_s)
    except WallClockBudgetExceeded:
        failures.append(f"wall-clock budget {budget_s}s exceeded")
    except Exception as error:  # noqa: BLE001 - the invariant itself
        failures.append(f"raised {type(error).__name__}: {error}")
    if sink is not None and sink.malformed:
        failures.append(f"{sink.malformed} malformed egress frames")
    return failures, f"{frames} hostile frames survived"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.tools.chaos",
        description="Seed-swept chaos tests over the shipped designs.")
    parser.add_argument(
        "targets", nargs="*", default=None,
        help="udp, tcp, vr, all, or design:<name> (hostile-traffic "
             "soak of any shipped design)")
    parser.add_argument("--seeds", type=int, default=3,
                        help="seeds per target (default 3)")
    parser.add_argument("--base-seed", type=int, default=101,
                        help="first seed of the sweep (default 101)")
    parser.add_argument("--budget-s", type=float, default=60.0,
                        help="wall-clock budget per run (default 60)")
    parser.add_argument("--loss", type=float, default=0.01,
                        help="wire frame-loss probability (default 1%%)")
    args = parser.parse_args(argv)

    targets = list(args.targets) or ["all"]
    if "all" in targets:
        targets = [t for t in targets if t != "all"]
        for name in ("udp", "tcp", "vr"):
            if name not in targets:
                targets.append(name)

    failed = 0
    for target in targets:
        for seed in range(args.base_seed, args.base_seed + args.seeds):
            if target == "udp":
                failures, detail = run_udp_echo(seed, args.budget_s,
                                                args.loss)
            elif target == "tcp":
                failures, detail = run_tcp_server(seed, args.budget_s,
                                                  args.loss)
            elif target == "vr":
                failures, detail = run_vr_cluster(seed, args.budget_s)
            elif target.startswith("design:"):
                failures, detail = run_design_hostile(
                    target[len("design:"):], seed, args.budget_s)
            else:
                parser.error(f"unknown target {target!r} "
                             "(udp, tcp, vr, all, design:<name>)")
            status = "PASS" if not failures else "FAIL"
            print(f"chaos {target} seed={seed}: {status}"
                  + (f" ({detail})" if detail else ""))
            for failure in failures:
                failed += 1
                print(f"  - {failure}", file=sys.stderr)
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
