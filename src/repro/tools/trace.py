"""Run a design under cycle-level trace and export Perfetto JSON.

    python -m repro.tools.trace udp_echo --cycles 5000 --out trace.json
    python -m repro.tools.trace my_design.xml --rate 50 --payload 256

The positional argument is either a design XML file or one of the
builtin example designs (``udp_echo``, ``rs_accelerator``,
``vr_witness``).  The tool builds the design, attaches a
:class:`repro.telemetry.trace.Tracer`, drives UDP traffic from a
simulated client into the design's Ethernet RX tile for ``--cycles``
cycles, then writes the Chrome trace-event JSON (loadable in Perfetto /
``chrome://tracing``) and prints the windowed text summary.

Traffic is plain UDP addressed to ``--port`` (defaulting to the first
``port:N`` entry found on a ``udp_rx`` tile, so the echo design answers
it end to end; designs expecting an application payload — e.g. the
Reed-Solomon accelerator — still exercise their receive path, and any
drops show up in the trace with their reason).
"""

from __future__ import annotations

import argparse
import sys
import xml.etree.ElementTree as ET

from repro.config import build_design, design_from_xml
from repro.config.examples import (
    RS_DESIGN_XML,
    UDP_ECHO_XML,
    VR_DESIGN_XML,
)
from repro.designs.harness import FrameSink, FrameSource
from repro.packet import IPv4Address, MacAddress, build_ipv4_udp_frame
from repro.telemetry.stats import design_report
from repro.telemetry.trace import (
    MetricsWindow,
    Tracer,
    attach_tracer,
    write_chrome_trace,
)

BUILTIN_DESIGNS = {
    "udp_echo": UDP_ECHO_XML,
    "rs_accelerator": RS_DESIGN_XML,
    "vr_witness": VR_DESIGN_XML,
}

CLIENT_IP = IPv4Address("10.0.0.1")
CLIENT_MAC = MacAddress("02:00:00:00:00:01")


def _load_spec(name_or_path: str):
    if name_or_path in BUILTIN_DESIGNS:
        return design_from_xml(BUILTIN_DESIGNS[name_or_path])
    with open(name_or_path) as handle:
        return design_from_xml(handle.read())


def _spec_param(spec, tile_type: str, param: str) -> str | None:
    for tile in spec.tiles:
        if tile.type == tile_type and param in tile.params:
            return tile.params[param]
    return None


def _default_port(spec) -> int:
    """The first UDP port a ``udp_rx`` tile routes — traffic sent there
    actually goes somewhere."""
    for tile in spec.tiles:
        if tile.type != "udp_rx":
            continue
        for dest in tile.dests:
            key = dest.key
            if isinstance(key, str) and key.startswith("port:"):
                return int(key.split(":", 1)[1], 0)
    return 7


def run_traced(spec, cycles: int, rate: float | None, payload: int,
               port: int, window: int):
    """Build, trace, and drive one design; returns the pieces."""
    design = build_design(spec)
    tracer = attach_tracer(design, Tracer())
    design.add_neighbor(CLIENT_IP, CLIENT_MAC)

    server_mac = MacAddress(
        _spec_param(spec, "eth_rx", "my_mac") or "02:be:e0:00:00:01")
    server_ip = IPv4Address(
        _spec_param(spec, "ip_rx", "my_ip") or "10.0.0.10")
    frame = build_ipv4_udp_frame(CLIENT_MAC, server_mac, CLIENT_IP,
                                 server_ip, 5555, port, bytes(payload))
    source = FrameSource(design.inject, lambda i: frame, rate=rate)
    sink = FrameSink(design.eth_tx, keep_frames=False)
    design.sim.add(source)
    design.sim.add(sink)
    design.sim.run(cycles)

    metrics = MetricsWindow(tracer, window)
    return design, tracer, metrics, source, sink


def _rate(text: str) -> float | None:
    """--rate value: bytes/cycle, or 'max'/'none' for unthrottled."""
    if text.lower() in ("max", "none"):
        return None
    try:
        return float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"{text!r} is not a number or 'max'") from None


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.tools.trace",
        description="Run a design under cycle-level trace; write "
                    "Perfetto-loadable JSON plus a text summary.",
    )
    parser.add_argument("design",
                        help="design XML path or builtin name "
                             f"({', '.join(sorted(BUILTIN_DESIGNS))})")
    parser.add_argument("--cycles", type=int, default=5000,
                        help="cycles to simulate (default 5000)")
    parser.add_argument("--rate", type=_rate, default=50.0,
                        help="injection rate in bytes/cycle, or 'max' "
                             "to saturate (default 50 = 100 GbE)")
    parser.add_argument("--payload", type=int, default=64,
                        help="UDP payload bytes per frame (default 64)")
    parser.add_argument("--port", type=int, default=None,
                        help="UDP destination port (default: first "
                             "routed port of the design's udp_rx tile)")
    parser.add_argument("--window", type=int, default=500,
                        help="metrics window in cycles (default 500)")
    parser.add_argument("--out", default="trace.json",
                        help="output JSON path (default trace.json)")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the text summary")
    args = parser.parse_args(argv)

    try:
        spec = _load_spec(args.design)
    except OSError as error:
        print(f"error: cannot read design {args.design!r}: {error}",
              file=sys.stderr)
        return 1
    except (KeyError, ValueError, ET.ParseError) as error:
        print(f"error: cannot parse design {args.design!r}: "
              f"{type(error).__name__}: {error}", file=sys.stderr)
        return 1
    port = args.port if args.port is not None else _default_port(spec)

    design, tracer, metrics, source, sink = run_traced(
        spec, args.cycles, args.rate, args.payload, port, args.window)
    write_chrome_trace(tracer, args.out, args.window)

    if not args.quiet:
        print(design_report(design, metrics))
        print(f"\ninjected {source.sent} frames (port {port}, "
              f"{args.payload} B payload), egressed {sink.count}")
        print(f"trace: {len(tracer.spans)} tile spans, "
              f"{len(tracer.link_flits)} link events, "
              f"{len(tracer.drops)} drops "
              f"-> {args.out} (open in https://ui.perfetto.dev)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
