"""Offered-load CLI — sweep the UDP echo design, race TCP flows.

    python -m repro.tools.load --offered 20,40,60,80,100
    python -m repro.tools.load --offered 20,60 --arrival bursty \\
        --out BENCH_load.json
    python -m repro.tools.load --flows 3 --cc cubic --loss 0.01

The default mode walks the offered-load list through
:func:`repro.loadgen.sweep.sweep` and prints one row per point
(goodput, delivery ratio, latency percentiles) plus the knee; with
``--out`` the result is written as a schema-valid ``repro.bench/1``
document (byte-identical across runs with the same arguments — CI
diffs two invocations to pin determinism).

``--flows`` switches to the competing-TCP-flows harness
(:func:`repro.loadgen.flows.run_competing_flows`): N peers with the
``--cc`` congestion control streaming through seeded loss, reporting
per-flow completion, Jain fairness, and retransmission counters.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.loadgen.flows import run_competing_flows
from repro.loadgen.sweep import sweep, sweep_document
from repro.tcp.cc import _CC_REGISTRY


def _parse_offered(text: str) -> list[float]:
    try:
        values = [float(part) for part in text.split(",") if part]
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"--offered wants comma-separated Gbps, got {text!r}")
    if not values or any(v <= 0 for v in values):
        raise argparse.ArgumentTypeError(
            f"--offered values must be > 0, got {text!r}")
    return values


def _print_sweep(result: dict) -> None:
    header = (f"{'offered':>8} {'goodput':>8} {'ratio':>6} "
              f"{'dropped':>8} {'p50':>7} {'p99':>7} {'p999':>8}")
    print(header)
    for point in result["curve"]:
        print(f"{point['offered_gbps']:>8g} "
              f"{point['goodput_gbps']:>8.2f} "
              f"{point['delivery_ratio']:>6.3f} "
              f"{point['offered_dropped']:>8} "
              f"{point['p50_cycles']:>7g} "
              f"{point['p99_cycles']:>7g} "
              f"{point['p999_cycles']:>8g}")
    print(f"knee: {result['knee_gbps']:g} Gbps "
          f"(last point with delivery ratio >= 0.95)")


def _print_flows(result: dict) -> None:
    print(f"{result['cc']}: {result['n_flows']} flows x "
          f"{result['stream_bytes']} bytes through "
          f"{result['loss']:.1%} loss")
    for flow in result["flows"]:
        done = flow["completion_cycle"]
        print(f"  :{flow['src_port']} acked={flow['bytes_acked']} "
              f"done@{done if done else 'never'} "
              f"goodput={flow['goodput_gbps']:.3f}Gbps "
              f"rtx={flow['retransmits']} "
              f"fast={flow['fast_retransmits']} cwnd={flow['cwnd']}")
    print(f"  completion={result['completion_cycle']} "
          f"jain={result['jain_fairness']:.4f} "
          f"rtx={result['total_retransmits']} "
          f"fast={result['total_fast_retransmits']} "
          f"wire_drops={result['wire_drops']} "
          f"delivered={result['all_delivered']}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.tools.load",
        description="Open-loop offered-load sweeps and competing-flow "
                    "congestion-control runs.",
    )
    parser.add_argument("--offered", type=_parse_offered,
                        default=[20.0, 40.0, 60.0, 80.0, 100.0],
                        metavar="GBPS[,GBPS...]",
                        help="offered loads to sweep "
                             "(default 20,40,60,80,100)")
    parser.add_argument("--arrival", default="poisson",
                        choices=("poisson", "bursty", "diurnal"),
                        help="arrival process (default poisson)")
    parser.add_argument("--payload", type=int, default=64,
                        help="UDP payload bytes (default 64)")
    parser.add_argument("--duration", type=int, default=120_000,
                        help="injection horizon in cycles "
                             "(default 120000)")
    parser.add_argument("--warmup", type=int, default=20_000,
                        help="cycles excluded from latency/goodput "
                             "(default 20000)")
    parser.add_argument("--seed", type=int, default=0xBEE,
                        help="root seed (default 0xBEE)")
    parser.add_argument("--zipf-keys", type=int, default=64,
                        help="key population size (default 64)")
    parser.add_argument("--zipf-skew", type=float, default=1.0,
                        help="Zipf skew exponent (default 1.0)")
    parser.add_argument("--max-admission", type=int, default=64,
                        help="NIC backlog limit before overrun "
                             "(default 64)")
    parser.add_argument("--kernel", default="scheduled",
                        help="simulation kernel (default scheduled)")
    parser.add_argument("--mesh", default="flat",
                        help="mesh backend (default flat)")
    parser.add_argument("--tile", default="flat",
                        help="tile backend (default flat)")
    parser.add_argument("--out", metavar="PATH",
                        help="write the repro.bench/1 document here")
    parser.add_argument("--flows", type=int, default=0, metavar="N",
                        help="run N competing TCP flows instead of "
                             "the sweep")
    parser.add_argument("--cc", default="reno",
                        choices=sorted(_CC_REGISTRY),
                        help="congestion control for --flows "
                             "(default reno)")
    parser.add_argument("--loss", type=float, default=0.01,
                        help="wire drop probability for --flows "
                             "(default 0.01)")
    parser.add_argument("--stream-bytes", type=int, default=48 * 1024,
                        help="bytes each flow streams for --flows "
                             "(default 49152)")
    args = parser.parse_args(argv)

    if args.flows:
        result = run_competing_flows(
            cc=args.cc, n_flows=args.flows, loss=args.loss,
            stream_bytes=args.stream_bytes, seed=args.seed,
            kernel=args.kernel, mesh_backend=args.mesh,
            tile_backend=args.tile)
        _print_flows(result)
        if args.out:
            Path(args.out).write_text(
                json.dumps(result, indent=2, sort_keys=True) + "\n")
            print(f"wrote {args.out}")
        return 0 if result["all_delivered"] else 1

    result = sweep(args.offered, seed=args.seed, arrival=args.arrival,
                   payload_bytes=args.payload,
                   duration_cycles=args.duration,
                   warmup_cycles=args.warmup,
                   zipf_keys=args.zipf_keys, zipf_skew=args.zipf_skew,
                   max_admission=args.max_admission,
                   kernel=args.kernel, mesh_backend=args.mesh,
                   tile_backend=args.tile)
    _print_sweep(result)
    if args.out:
        document = sweep_document(result)
        Path(args.out).write_text(
            json.dumps(document, indent=2, sort_keys=True) + "\n")
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
