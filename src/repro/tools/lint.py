"""The design linter as a command line.

    python -m repro.tools.lint udp_echo
    python -m repro.tools.lint design.xml --json
    python -m repro.tools.lint --all
    python -m repro.tools.lint udp_echo --sanitize --cycles 2000
    python -m repro.tools.lint --list-codes

A target is either the name of a shipped design (see ``--list``) or a
path to a design XML file.  Named designs are instantiated and every
analysis pass runs over the real objects — mesh, routers, next-hop
tables, simulator components.  XML targets are first spec-linted, then
built with :class:`repro.config.generate.GeneratedDesign` and analyzed
the same way.

``--sanitize`` additionally runs the dynamic sanitizer passes
(BHV4xx): bounded instrumented simulations under one or more
kernel/mesh/tile combos (``--combos scheduled/flat/flat``, repeatable)
for ``--cycles`` cycles each.  ``--pass`` filters across both
families; a sanitize-family pass name requires ``--sanitize``.

Exit status: 0 clean (warnings allowed unless ``--strict``), 1 when
any error-severity finding is reported, 2 when a target cannot be
loaded at all.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.analysis import CODES, SANITIZE_PASSES, AnalysisReport, analyze
from repro.analysis.findings import Finding
from repro.analysis.sanitize import DEFAULT_CYCLES, analyze_dynamic


def _shipped_designs():
    """name -> zero-argument design factory, for every shipped design."""
    from repro.designs import (
        IpInIpEchoDesign,
        LoggedUdpEchoDesign,
        ManagedNatEchoDesign,
        MultiStackDesign,
        NatEchoDesign,
        RsDesign,
        ScaledEchoDesign,
        TcpServerDesign,
        UdpEchoDesign,
        VrWitnessDesign,
        VxlanEchoDesign,
    )
    return {
        "udp_echo": UdpEchoDesign,
        "logged_udp_echo": LoggedUdpEchoDesign,
        "nat_echo": NatEchoDesign,
        "ipinip_echo": IpInIpEchoDesign,
        "managed_nat_echo": ManagedNatEchoDesign,
        "multi_stack": MultiStackDesign,
        "scaled_echo": ScaledEchoDesign,
        "tcp_server": TcpServerDesign,
        "tcp_server_logged":
            lambda **kw: TcpServerDesign(with_logging=True, **kw),
        "rs": RsDesign,
        "vr_witness": VrWitnessDesign,
        "vxlan_echo": VxlanEchoDesign,
    }


def _demo_designs():
    """Seeded-bug targets: useful for demos and the linter's own tests,
    deliberately excluded from ``--all``.  One per finding family the
    linter is supposed to catch — see :mod:`repro.analysis.demo`."""
    from repro.analysis.demo import (
        build_blind_forwarder_design,
        build_broken_wake_design,
        build_escaped_domain_design,
        build_idle_liar_design,
        build_leaky_eject_design,
        build_phantom_dest_design,
        build_stale_domain_design,
        build_step_parity_design,
    )
    from repro.deadlock.demo import Fig5Design

    return {
        "fig5a": lambda: Fig5Design("a"),
        "fig5b": lambda: Fig5Design("b"),
        "broken_wake": build_broken_wake_design,
        "idle_liar": build_idle_liar_design,
        "leaky_eject": build_leaky_eject_design,
        "step_parity": build_step_parity_design,
        "phantom_dest": build_phantom_dest_design,
        "stale_domain": build_stale_domain_design,
        "escaped_domain": build_escaped_domain_design,
        "blind_forwarder": build_blind_forwarder_design,
    }


def _split_passes(passes, sanitize: bool, error) -> tuple[list | None,
                                                          list | None]:
    """Split ``--pass`` names into (static, sanitize) selections.

    ``None`` means "all passes of that family".  A sanitize-family
    name without ``--sanitize`` is an error: the dynamic passes run
    simulations and must be asked for explicitly.
    """
    from repro.analysis import PASSES

    if passes is None:
        return None, (None if sanitize else [])
    static = [p for p in passes if p in PASSES]
    dynamic = [p for p in passes if p in SANITIZE_PASSES]
    unknown = [p for p in passes
               if p not in PASSES and p not in SANITIZE_PASSES]
    if unknown:
        error(f"unknown pass(es) {unknown}; static: "
              f"{sorted(PASSES)}; sanitize: {sorted(SANITIZE_PASSES)}")
    if dynamic and not sanitize:
        error(f"pass(es) {dynamic} belong to the sanitizer family; "
              "add --sanitize to run bounded simulations")
    return static, (dynamic if sanitize else [])


def _parse_combos(specs) -> list[tuple[str, str, str]] | None:
    """``kernel/mesh/tile`` strings -> combo tuples (None: defaults)."""
    if not specs:
        return None
    combos = []
    for spec in specs:
        parts = spec.split("/")
        if len(parts) != 3 or not all(parts):
            raise ValueError(
                f"bad combo {spec!r}: expected kernel/mesh/tile, "
                "e.g. scheduled/flat/flat")
        combos.append(tuple(parts))
    return combos


def _sanitize_into(report: AnalysisReport, factory, name: str,
                   passes, cycles: int, combos) -> None:
    """Run the dynamic passes and fold the results into ``report``."""
    dynamic = analyze_dynamic(factory, name=name, passes=passes,
                              cycles=cycles, combos=combos)
    report.extend(dynamic.findings)
    report.passes_run.extend(dynamic.passes_run)


def _lint_xml(path: str, passes, sanitize_passes=(), cycles: int = 0,
              combos=None) -> AnalysisReport:
    """Spec-lint an XML file, then build it and run the instance passes.

    Build-time rejections (the generator's own validation and deadlock
    gate) are folded into the report instead of escaping as tracebacks.
    """
    from repro.analysis import lint_spec
    from repro.analysis.deadlock import DeadlockError
    from repro.config import design_from_xml
    from repro.config.generate import GeneratedDesign
    from repro.config.validate import ValidationError

    with open(path) as handle:
        spec = design_from_xml(handle.read())
    report = AnalysisReport(target=f"{spec.name} ({path})")
    report.extend(lint_spec(spec))
    report.passes_run.append("spec")
    if not report.ok:
        return report  # cannot build a spec the spec-lint rejects
    try:
        design = GeneratedDesign(spec)
    except ValidationError as error:
        for problem in error.problems:
            report.findings.append(Finding(
                "BHV120", f"build rejected: {problem}", location=path))
        return report
    except DeadlockError as error:
        report.findings.append(Finding(
            "BHV201", f"build rejected: {error}", location=path,
            hint="re-place the tiles so each chain acquires links in "
                 "ascending order (paper Fig 5b)"))
        return report
    instance = analyze(design, name=report.target, passes=passes)
    report.extend(instance.findings)
    report.passes_run.extend(instance.passes_run)
    if sanitize_passes is None or sanitize_passes:
        _sanitize_into(report, lambda **kw: GeneratedDesign(spec, **kw),
                       report.target, sanitize_passes, cycles, combos)
    return report


def _lint_named(name: str, factory, passes, sanitize_passes=(),
                cycles: int = 0, combos=None) -> AnalysisReport:
    design = factory()
    report = analyze(design, name=name, passes=passes)
    if sanitize_passes is None or sanitize_passes:
        _sanitize_into(report, factory, name, sanitize_passes, cycles,
                       combos)
    return report


def _print_codes() -> None:
    print(f"{'code':<8} {'severity':<8} description")
    for code, (severity, description) in sorted(CODES.items()):
        print(f"{code:<8} {severity:<8} {description}")


def _exit_code(report: AnalysisReport, strict: bool) -> int:
    if not report.ok:
        return 1
    if strict and report.warnings:
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.tools.lint",
        description="Analysis of Beehive designs: topology (BHV1xx), "
                    "routing/deadlock (BHV2xx), kernel wake contracts "
                    "(BHV3xx), data-flow routing (BHV5xx), and — with "
                    "--sanitize — simulation-backed sanitizers "
                    "(BHV4xx).",
    )
    parser.add_argument("targets", nargs="*",
                        help="shipped design name or design XML path")
    parser.add_argument("--all", action="store_true",
                        help="lint every shipped design")
    parser.add_argument("--list", action="store_true", dest="list_designs",
                        help="list lintable design names and exit")
    parser.add_argument("--list-codes", action="store_true",
                        help="print the BHV finding-code table and exit")
    parser.add_argument("--json", action="store_true",
                        help="machine-readable report on stdout")
    parser.add_argument("--strict", action="store_true",
                        help="treat warnings as errors")
    parser.add_argument("--pass", action="append", dest="passes",
                        metavar="PASS",
                        help="run only this pass (repeatable). static: "
                             "structural, deadlock, wake-contract, "
                             "dataflow; sanitize (needs --sanitize): "
                             "idle-truth, lost-wake, conservation, "
                             "determinism")
    parser.add_argument("--sanitize", action="store_true",
                        help="also run the dynamic sanitizer passes "
                             "(bounded instrumented simulations)")
    parser.add_argument("--cycles", type=int, default=DEFAULT_CYCLES,
                        metavar="N",
                        help="simulated cycles per sanitizer run "
                             f"(default {DEFAULT_CYCLES})")
    parser.add_argument("--combos", action="append", metavar="K/M/T",
                        help="kernel/mesh/tile combo for the sanitizer "
                             "(repeatable), e.g. scheduled/flat/flat; "
                             "default: scheduled over both backends")
    args = parser.parse_args(argv)

    if args.list_codes:
        _print_codes()
        return 0

    static_passes, sanitize_passes = _split_passes(
        args.passes, args.sanitize, parser.error)
    try:
        combos = _parse_combos(args.combos)
    except ValueError as error:
        parser.error(str(error))
    if args.cycles < 1:
        parser.error(f"--cycles must be >= 1, got {args.cycles}")

    shipped = _shipped_designs()
    demos = _demo_designs()
    if args.list_designs:
        print("shipped:", " ".join(sorted(shipped)))
        print("demos:  ", " ".join(sorted(demos)))
        return 0

    targets = list(args.targets)
    if args.all:
        targets.extend(name for name in sorted(shipped)
                       if name not in targets)
    if not targets:
        parser.error("no targets (give a design name / XML path, "
                     "or --all; --list shows the names)")

    worst = 0
    reports = []
    for target in targets:
        if target in shipped or target in demos:
            factory = shipped.get(target) or demos[target]
            try:
                report = _lint_named(target, factory, static_passes,
                                     sanitize_passes, args.cycles,
                                     combos)
            except Exception as error:  # noqa: BLE001 - reported, not hidden
                print(f"error: cannot build design {target!r}: {error}",
                      file=sys.stderr)
                return 2
        elif target.endswith(".xml"):
            try:
                report = _lint_xml(target, static_passes,
                                   sanitize_passes, args.cycles, combos)
            except OSError as error:
                print(f"error: cannot read {target}: {error}",
                      file=sys.stderr)
                return 2
        else:
            print(f"error: unknown design {target!r} (not a shipped "
                  "design name or .xml path; --list shows the names)",
                  file=sys.stderr)
            return 2
        reports.append(report)
        worst = max(worst, _exit_code(report, args.strict))

    if args.json:
        payload = [r.to_dict() for r in reports]
        print(json.dumps(payload[0] if len(payload) == 1 else payload,
                         indent=2))
    else:
        for report in reports:
            print(report.render())
    return worst


if __name__ == "__main__":
    sys.exit(main())
