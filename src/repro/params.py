"""Calibrated constants for the Beehive reproduction.

Every quantity that in the paper comes from physical hardware (FPGA clock,
link rates, host-stack service times, power draws, LUT costs, ...) lives
here as a named constant with a docstring citing the paper value it is
calibrated against.  Benchmarks print paper-vs-measured so any drift
between these models and the paper's numbers is visible rather than
hidden inside the code.

Units are given in each name or docstring.  Time constants for the
event-level simulator are in *seconds*; the cycle-level simulator counts
cycles and converts via :data:`CYCLE_TIME_S`.
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# FPGA fabric / NoC (paper section V-A, VII-A)
# ---------------------------------------------------------------------------

CLOCK_HZ: float = 250e6
"""Beehive runs on an Alveo U200 at 250 MHz (section VII-A)."""

CYCLE_TIME_S: float = 1.0 / CLOCK_HZ
"""One fabric clock cycle: 4 ns."""

FLIT_BYTES: int = 64
"""NoC flit width is 512 bits to match the Xilinx MAC IP (section V-A)."""

NOC_PEAK_GBPS: float = FLIT_BYTES * 8 * CLOCK_HZ / 1e9
"""One flit per cycle at 250 MHz = 128 Gbps, the paper's theoretical max."""

NOC_MAX_PAYLOAD_BYTES: int = 256 * 1024 * 1024
"""Maximum payload size of a single NoC message (section V-A): 256 MiB."""

ROUTER_INPUT_FIFO_FLITS: int = 4
"""Per-input-port buffering in a router.  OpenPiton routers use shallow
input FIFOs; the exact depth only affects slack, not sustained rate."""

ETHERNET_LINE_RATE_GBPS: float = 100.0
"""The physical link is 100 GbE (Alveo U200 QSFP28, section VII-A)."""

ETHERNET_OVERHEAD_BYTES: int = 24
"""Per-frame wire overhead: preamble+SFD (8) + FCS (4) + min IFG (12)."""

# Pipeline latencies of the streaming protocol processors, in cycles.
# Calibrated so the 7-tile UDP echo design (eth/ip/udp rx + app + udp/ip/
# eth tx) measures 92 cycles first-byte-in to last-byte-out for a 1-byte
# UDP echo, matching the paper's 368 ns / 92 cycles (section VII-C).
TILE_PARSE_LATENCY_CYCLES: int = 9
"""Cycles from a tile receiving a message's header flit to emitting its
first output flit (header parse/deparse + realignment shifter)."""

TILE_EJECT_INJECT_LATENCY_CYCLES: int = 2
"""Cycles spent in a tile's NoC message construction/deconstruction logic
on each side of the processing logic."""

TILE_MSG_OCCUPANCY_CYCLES: int = 13
"""Serialised per-message occupancy of a protocol tile's processing
engine (it handles one packet at a time; back-to-back packets restart
the parse/shift pipeline).  The effective per-message cost is
``max(message_flits, occupancy)``: at 64 B packets (3-flit messages)
occupancy dominates and the stack sustains ~9.4 Gbps, matching the
paper's 9 Gbps / 18392 KReq/s; at >=1024 B the flit stream dominates and
the stack reaches line rate, matching Fig 7."""

PIPELINED_MSG_OCCUPANCY_CYCLES: int = 11
"""The fixed-pipeline baseline (Fig 8b) skips NoC message construction/
deconstruction, so its engines recover ~2 cycles faster per packet —
the paper's 'slightly better at small packet sizes' gap that amortises
away with payload size."""

LOAD_BALANCER_RECOVERY_CYCLES: int = 1
"""The Fig-12 load-balancer tile needs 3 cycles for the NoC message of a
64 B packet plus 1 recovery cycle, capping it at 32 Gbps (section VII-I)."""

# ---------------------------------------------------------------------------
# Host network stacks (Table I calibration)
# ---------------------------------------------------------------------------
# One-way per-side costs; an RTT is client TX + wire/switch + server side +
# wire/switch + client RX.  Values are chosen so the four Table I
# configurations land near the paper's medians and p99s; the *shape*
# (direct-attach < trampoline; Linux tail >> DPDK tail) is the claim.

WIRE_SWITCH_ONEWAY_S: float = 0.5e-6
"""One-way propagation + switch + NIC serialisation for a small frame on
the 100 G Arista fabric (cut-through switch ~450 ns + wire)."""

BEEHIVE_SERVER_S: float = 0.58e-6
"""Total Beehive server-side turnaround: MAC/PHY in, the measured
92-cycle (368 ns) stack transit, MAC/PHY out.  Back-solved from the
Table I DPDK-client/Beehive row."""

LINUX_CLIENT_ONEWAY_S: float = 4.39e-6
"""Base one-way cost of the *client* Linux path (timing-harness thread:
syscall, skb, scheduler wakeup).  With the exponential jitter below the
median traversal is ~5.0 us, fitting Table I's Linux-client rows."""

LINUX_SERVER_ONEWAY_S: float = 2.56e-6
"""Base one-way cost of the hot *server* Linux loop (recvfrom/sendto on
a dedicated core) — cheaper at the median than the client path, but
exposed to the scheduler-contention tails below."""

LINUX_SERVER_TAIL_PROB: float = 0.015
"""Per-traversal probability the server loop eats a scheduling hiccup —
the paper's explanation for Linux-to-accelerator's 61.2 us p99 against
its 17.6 us median (Table I)."""

LINUX_SERVER_TAIL_S: float = 40e-6
"""Mean magnitude of a server-side scheduling hiccup."""

LINUX_STACK_ONEWAY_S: float = 4.3e-6
"""Median one-way cost of a UDP small-packet traversal of the Linux
kernel stack including syscall, skb, and driver work."""

LINUX_STACK_JITTER_S: float = 0.9e-6
"""Scale of the light (per-packet, always-on) jitter of the Linux path."""

LINUX_SCHED_TAIL_PROB: float = 0.008
"""Probability a Linux traversal eats a scheduler/softirq hiccup.  Drives
the paper's observation that Linux p99 is ~4-5x its median."""

LINUX_SCHED_TAIL_S: float = 22e-6
"""Mean magnitude of a Linux scheduling hiccup when one occurs."""

DPDK_STACK_ONEWAY_S: float = 1.25e-6
"""Median one-way cost of an F-Stack/DPDK busy-polling traversal."""

DPDK_STACK_JITTER_S: float = 0.08e-6
"""Busy-polling removes scheduling variance; jitter is tens of ns."""

DEMIKERNEL_UDP_SMALL_KREQS: float = 584.0
"""Single-core Demikernel UDP echo rate for 64 B packets (section VII-C:
584 KReq/s = 0.3 Gbps)."""

DEMIKERNEL_PER_BYTE_NS: float = 0.55
"""Incremental per-payload-byte cost of the Demikernel echo path, set so
goodput grows with packet size but stays far from line rate with jumbo
frames (Fig 7's CPU curve)."""

LINUX_TCP_SMALL_KREQS: float = 843.0
"""Linux single-connection TCP send rate at the smallest payload
(section VII-D: 843 KReq/s)."""

LINUX_TCP_PEAK_GBPS: float = 38.0
"""Linux single-connection TCP streaming peak with jumbo frames.  The
paper notes CPU TCP streams better than CPU UDP due to batching."""

PCIE_TRAMPOLINE_ONEWAY_S: float = 0.11e-6
"""Extra one-way cost of bouncing a request through the CPU to a
PCIe-attached accelerator (Enso-style doorbell + DMA + notification;
Enso's streaming interface keeps this near 100 ns at the median),
applied twice per server visit in Fig 1(c) setups."""

# ---------------------------------------------------------------------------
# TCP engine (Fig 9 calibration)
# ---------------------------------------------------------------------------

TCP_ENGINE_PER_PACKET_CYCLES: int = 94
"""Stateful per-packet occupancy of the hardware TCP engine (flow-state
read/modify/write + reassembly bookkeeping).  Single-connection
throughput is payload/occupancy: 250 MHz / 94 cycles = 2.66 M segments/s,
the paper's 2666 KReq/s at the smallest payload (section VII-D).  The
engine reaches full bandwidth only across multiple simultaneous
connections, as the paper notes."""

TCP_ENGINE_PIPELINE_II_CYCLES: int = 18
"""Initiation interval of the pipelined TCP engine: back-to-back
segments of *different* flows issue this many cycles apart, while
same-flow segments must wait the full per-packet state round-trip
(TCP_ENGINE_PER_PACKET_CYCLES).  This is the paper's "our TCP engine
is designed to only achieve full bandwidth across multiple
simultaneous connections" (section VII-D): one flow is RMW-latency
bound; many flows fill the pipeline."""

TCP_MSS_BYTES: int = 8960
"""Maximum segment size.  The testbed runs jumbo frames (section
VII-A), so a segment carries up to ~9000 B minus headers."""

TCP_RTO_CYCLES: int = 50_000
"""Retransmission timeout (200 us at 250 MHz) — datacenter-scale RTO."""

TCP_RX_BUFFER_BYTES: int = 64 * 1024
"""Per-flow receive buffer backed by a buffer tile."""

TCP_TX_BUFFER_BYTES: int = 64 * 1024
"""Per-flow transmit buffer backed by a buffer tile."""

# ---------------------------------------------------------------------------
# Reed-Solomon (Table III calibration)
# ---------------------------------------------------------------------------

RS_DATA_SHARDS: int = 8
RS_PARITY_SHARDS: int = 2
"""The evaluation uses an (8,2) code (section VI-A)."""

RS_REQUEST_BYTES: int = 4096
"""Clients send 4 KB blocks; the accelerator replies with 1 KB parity."""

RS_TILE_GBPS: float = 15.0
"""One hardware encoder instance consumes data at 15 Gbps (section
VII-E), i.e. ~7.5 bytes/cycle at 250 MHz."""

RS_CPU_CORE_GBPS: float = 2.0
"""One CPU core of the BackBlaze encoder sustains ~2 Gbps (Table III)."""

# ---------------------------------------------------------------------------
# Viewstamped replication (Fig 11 / Table IV calibration)
# ---------------------------------------------------------------------------

VR_KEY_BYTES: int = 64
VR_VALUE_BYTES: int = 64
VR_READ_FRACTION: float = 0.9
"""Workload: 64 B keys/values, 90% reads, uniform keys (section VII-F)."""

VR_LEADER_SERVICE_S: float = 20e-6
"""Leader per-operation CPU time (request parse, log append, prepare
fan-out, commit, KV execute, reply).  Decomposed into the three stage
constants below; this is their sum for a 1-witness/1-replica shard."""

VR_LEADER_INGRESS_S: float = 10e-6
"""Leader stage 1: receive the client request through the Linux stack
(5.5 us under load), parse + log append (2 us), and send Prepare to
the witness and the replica (~3 us sendto each)."""

VR_LEADER_ACK_S: float = 4.2e-6
"""Leader stage 2: receive one PrepareOK (5.5 us) + quorum check."""

VR_LEADER_COMMIT_S: float = 5.8e-6
"""Leader stage 3: execute the KV op (1.2 us), reply to the client
(3 us), and send Commit to the replica (3 us)."""

VR_LEADER_JITTER_S: float = 3.5e-6
"""Leader service-time spread (Linux stack + app), exponential scale
distributed across the stages."""

VR_LEADER_TAIL_PROB: float = 0.006
"""Per-stage probability of a leader scheduling hiccup.  Under load a
stalled leader delays every queued request, which is what stretches
the paper's p99 to ~2.4x the median (Table IV)."""

VR_LEADER_TAIL_S: float = 70e-6
"""Mean magnitude of a leader scheduling hiccup."""

VR_CPU_WITNESS_SERVICE_S: float = 11e-6
"""CPU witness per-prepare service time through the Linux UDP stack."""

VR_CPU_WITNESS_JITTER_S: float = 2.5e-6
VR_CPU_WITNESS_TAIL_PROB: float = 0.004
VR_CPU_WITNESS_TAIL_S: float = 60e-6
"""CPU witness scheduling-tail model (same mechanism as the Linux stack
tail in Table I, observed at lower rate because the witness loop is hot)."""

VR_FPGA_WITNESS_SERVICE_S: float = 1.1e-6
"""Beehive witness: UDP stack transit + witness logic, deterministic."""

VR_FPGA_WITNESS_JITTER_S: float = 0.03e-6
"""Hardware witness jitter is NoC arbitration only (tens of ns)."""

VR_CLIENT_APP_S: float = 25e-6
"""Per-operation client-side application work (request marshalling,
response validation, benchmark bookkeeping) inside the closed loop.
This, not zero think time, is what lets the knee sit below leader
saturation: at the paper's circled points the leader runs at ~80-90%
and the ~10 us the hardware witness shaves off the path shows up as
both lower median latency and higher closed-loop throughput."""

VR_CLIENT_SIDE_EXTRA_S: float = 15e-6
"""Additional per-message client-side fixed cost (thread wakeup and
scheduling on the many-threaded client machines) on top of the bare
Linux stack traversal.  Sets the Fig 11 curves' low-load intercept."""

# ---------------------------------------------------------------------------
# Energy models (Tables III and IV calibration)
# ---------------------------------------------------------------------------

RS_CPU_IDLE_W: float = 63.0
"""Socket baseline power during the RS runs (Xeon Gold 6226R, RAPL CPU
plane).  Back-solved from Table III: the paper's 1.1 -> 0.32 mJ/op at
2 -> 8 Gbps implies ~67 -> 78 W, i.e. ~63 W baseline + ~3.7 W/core."""

RS_CPU_CORE_W: float = 3.7
"""Marginal power per busy Reed-Solomon encoder core (Table III fit)."""

VR_CPU_IDLE_W: float = 42.0
"""Witness-server baseline power during the VR runs (Xeon Gold 5218).
Back-solved from Table IV: 46.8 -> 53.9 W across the four shard counts
fits ~42 W baseline + ~14 W per fully-busy witness core."""

VR_CPU_CORE_W: float = 14.0
"""Marginal power per unit of witness-core utilisation (Table IV fit)."""

CPU_CORE_BUSYPOLL_W: float = 14.0
"""A busy-polling core burns full marginal power regardless of load."""

FPGA_STATIC_W: float = 22.0
"""Alveo U200 board static power (shell + transceivers + regulators) as
reported by the CMS registers when the design is idle."""

FPGA_TILE_IDLE_W: float = 0.3
"""Per-instantiated-tile clocking/leakage power.  Table IV's FPGA
witness draws a near-constant ~25.7 W across loads: 22 W static plus
~12 mostly-idle tiles at ~0.3 W."""

FPGA_TILE_ACTIVE_W: float = 0.8
"""Additional per-tile dynamic power at 100% utilisation, scaled
linearly with utilisation (Table III's RS instances at full tilt)."""

# ---------------------------------------------------------------------------
# FPGA resources (Table V leaf-module costs) and timing (section VII-I)
# ---------------------------------------------------------------------------

U200_TOTAL_LUTS: int = 1_182_240
U200_TOTAL_BRAMS: int = 2_160
"""Alveo U200 (xcu200) totals used for the %-utilisation columns."""

LUT_COSTS: dict[str, int] = {
    "router": 5_946,
    "noc_msg_parse_rx": 897,
    "noc_msg_parse_tx": 658,
    "eth_rx_proc": 1_700,
    "eth_tx_proc": 1_500,
    "ip_rx_proc": 2_100,
    "ip_tx_proc": 2_000,
    "udp_rx_proc": 2_912,
    "udp_tx_proc": 3_105,
    "tcp_rx_proc": 10_304,
    "tcp_rx_router": 8_847,
    "tcp_tx_proc": 9_850,
    "tcp_tx_router": 8_847,
    "echo_app": 1_400,
    "rs_encoder": 9_500,
    "vr_witness": 6_200,
    "nat": 3_400,
    "ipinip": 2_900,
    "load_balancer": 2_100,
    "log_tile": 4_000,
    "buffer_tile": 4_500,
    "empty": 0,
    "mac_io": 4_100,
    "controller": 3_000,
}
"""Per-module LUT costs.  Entries present in the paper's Table V use the
paper's numbers (router 5946, UDP RX proc 2912, UDP TX proc 3105, NoC
message parsing 897/658, TCP RX proc 10304, TCP RX router 8847); the rest
are estimates consistent with the stack totals the paper reports."""

BRAM_COSTS: dict[str, float] = {
    "router": 0.0,
    "noc_msg_parse_rx": 0.0,
    "noc_msg_parse_tx": 0.0,
    "eth_rx_proc": 3.5,
    "eth_tx_proc": 3.5,
    "ip_rx_proc": 6.5,
    "ip_tx_proc": 6.5,
    "udp_rx_proc": 9.5,
    "udp_tx_proc": 9.5,
    "tcp_rx_proc": 9.0,
    "tcp_rx_router": 0.0,
    "tcp_tx_proc": 8.0,
    "tcp_tx_router": 0.0,
    "echo_app": 2.0,
    "rs_encoder": 8.0,
    "vr_witness": 6.0,
    "nat": 4.0,
    "ipinip": 3.0,
    "load_balancer": 1.0,
    "log_tile": 8.0,
    "buffer_tile": 16.0,
    "empty": 0.0,
    "mac_io": 4.0,
    "controller": 2.0,
}
"""Per-module BRAM (36 Kb) costs; paper-sourced where Table V lists them."""

TIMING_BASE_NS: float = 3.2
"""Base router-to-router critical path (512-bit crossbar + wire) at
low congestion."""

TIMING_PER_TILE_NS: float = 0.0285
"""Critical-path growth per additional tile (placement congestion,
high-fan-out 512-bit nets, SLR-crossing pressure).  Calibrated so 28
tiles is the last count that closes 250 MHz (section VII-I)."""

MAX_PLACEABLE_TILES: int = 28
"""Section VII-I: the U200 placement/timing wall — 28 tiles total (22
application tiles plus a 6-tile UDP stack) before the router-to-router
critical path fails 250 MHz, dominated by 512-bit fan-out and chiplet
(SLR) crossings."""

U200_SLR_ROWS: int = 3
"""The U200 is three stacked SLR chiplets; mesh rows that straddle an SLR
boundary pay extra routing delay in the timing model."""
