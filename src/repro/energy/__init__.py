"""Energy models (paper section VII-A).

The paper reads RAPL counters on the CPU (CPU plane only) and the
Alveo CMS registers on the FPGA, polling every second and integrating
over the benchmark window.  We substitute calibrated power models
integrated over simulated time; the constants and the Table III/IV
back-fits they come from are documented in :mod:`repro.params`.
"""

from repro.energy.model import (
    CpuEnergyModel,
    FpgaEnergyModel,
    TileActivity,
)

__all__ = ["CpuEnergyModel", "FpgaEnergyModel", "TileActivity"]
