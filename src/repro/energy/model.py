"""CPU (RAPL-like) and FPGA (CMS-like) power/energy models."""

from __future__ import annotations

from dataclasses import dataclass

from repro import params


class CpuEnergyModel:
    """Socket power = baseline + marginal power x core utilisation.

    ``utilisation`` is total busy-core equivalents (2.0 = two cores
    fully busy).  Busy-polling cores count as fully busy regardless of
    useful work, which is what makes kernel-bypass stacks power-hungry
    at low load.
    """

    def __init__(self, idle_w: float, core_w: float):
        self.idle_w = idle_w
        self.core_w = core_w

    def power_w(self, utilisation: float) -> float:
        if utilisation < 0:
            raise ValueError("utilisation must be >= 0")
        return self.idle_w + self.core_w * utilisation

    def energy_j(self, utilisation: float, seconds: float) -> float:
        return self.power_w(utilisation) * seconds

    def mj_per_op(self, utilisation: float, ops_per_s: float) -> float:
        if ops_per_s <= 0:
            raise ValueError("ops_per_s must be positive")
        return self.power_w(utilisation) / ops_per_s * 1e3


@dataclass(frozen=True)
class TileActivity:
    """One tile's contribution to FPGA power: present + how busy."""

    name: str
    utilisation: float  # 0..1


class FpgaEnergyModel:
    """Board power = static + per-tile idle + utilisation-scaled
    dynamic power, mirroring what the CMS registers report."""

    def __init__(self,
                 static_w: float = params.FPGA_STATIC_W,
                 tile_idle_w: float = params.FPGA_TILE_IDLE_W,
                 tile_active_w: float = params.FPGA_TILE_ACTIVE_W):
        self.static_w = static_w
        self.tile_idle_w = tile_idle_w
        self.tile_active_w = tile_active_w

    def power_w(self, tiles: list[TileActivity]) -> float:
        power = self.static_w
        for tile in tiles:
            if not 0.0 <= tile.utilisation <= 1.0:
                raise ValueError(
                    f"tile {tile.name!r} utilisation "
                    f"{tile.utilisation} outside [0, 1]"
                )
            power += self.tile_idle_w
            power += self.tile_active_w * tile.utilisation
        return power

    def mj_per_op(self, tiles: list[TileActivity],
                  ops_per_s: float) -> float:
        if ops_per_s <= 0:
            raise ValueError("ops_per_s must be positive")
        return self.power_w(tiles) / ops_per_s * 1e3


def rs_cpu_model() -> CpuEnergyModel:
    return CpuEnergyModel(params.RS_CPU_IDLE_W, params.RS_CPU_CORE_W)


def vr_cpu_model() -> CpuEnergyModel:
    return CpuEnergyModel(params.VR_CPU_IDLE_W, params.VR_CPU_CORE_W)
