"""VXLAN encapsulation (RFC 7348).

The paper's target stack (Fig 2) carries both IP-in-IP and VXLAN for
network virtualization.  VXLAN rides UDP (destination port 4789): an
8-byte header carrying a 24-bit virtual network identifier (VNI), then
the complete inner Ethernet frame.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

VXLAN_UDP_PORT = 4789
_FLAG_VNI_VALID = 0x08

_HDR = struct.Struct("!BBHIB")  # we pack manually; see below
HEADER_LEN = 8


@dataclass(frozen=True)
class VxlanHeader:
    """The VXLAN header: flags (VNI-valid), 24-bit VNI."""

    vni: int

    def __post_init__(self):
        if not 0 <= self.vni < (1 << 24):
            raise ValueError(f"VNI out of range: {self.vni}")

    def pack(self) -> bytes:
        return bytes([
            _FLAG_VNI_VALID, 0, 0, 0,
            (self.vni >> 16) & 0xFF,
            (self.vni >> 8) & 0xFF,
            self.vni & 0xFF,
            0,
        ])

    @classmethod
    def unpack(cls, data: bytes) -> tuple["VxlanHeader", bytes]:
        """Parse the header off the front; returns (header, inner
        frame).  Raises ValueError if the VNI-valid flag is unset."""
        if len(data) < HEADER_LEN:
            raise ValueError(f"too short for VXLAN: {len(data)}")
        if not data[0] & _FLAG_VNI_VALID:
            raise ValueError("VXLAN I-flag not set")
        vni = (data[4] << 16) | (data[5] << 8) | data[6]
        return cls(vni=vni), data[HEADER_LEN:]


def build_vxlan_frame(
    outer_src_mac, outer_dst_mac, outer_src_ip, outer_dst_ip,
    vni: int, inner_frame: bytes, src_port: int = 49152,
) -> bytes:
    """A complete outer Ethernet/IPv4/UDP/VXLAN frame around
    ``inner_frame``."""
    from repro.packet.builder import build_ipv4_udp_frame

    payload = VxlanHeader(vni=vni).pack() + inner_frame
    return build_ipv4_udp_frame(
        outer_src_mac, outer_dst_mac, outer_src_ip, outer_dst_ip,
        src_port, VXLAN_UDP_PORT, payload,
    )
