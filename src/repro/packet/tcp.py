"""TCP header (RFC 793) with options and pseudo-header checksum.

Like IPv4, TCP headers are variable-width; the options field is the other
case the paper's realignment shifter handles (section V-B).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.packet.checksum import internet_checksum

TCP_FIN = 0x01
TCP_SYN = 0x02
TCP_RST = 0x04
TCP_PSH = 0x08
TCP_ACK = 0x10
TCP_URG = 0x20

_FIXED = struct.Struct("!HHIIBBHHH")
FIXED_HEADER_LEN = 20


@dataclass
class TcpHeader:
    """A TCP header; ``flags`` is a bitmask of TCP_* constants."""

    src_port: int
    dst_port: int
    seq: int = 0
    ack: int = 0
    flags: int = 0
    window: int = 65535
    urgent: int = 0
    options: bytes = b""
    checksum: int = 0

    def __post_init__(self):
        for port in (self.src_port, self.dst_port):
            if not 0 <= port < 65536:
                raise ValueError(f"port out of range: {port}")
        if len(self.options) % 4:
            raise ValueError("TCP options must be 32-bit aligned")
        if len(self.options) > 40:
            raise ValueError("TCP options exceed 40 bytes")

    @property
    def header_len(self) -> int:
        return FIXED_HEADER_LEN + len(self.options)

    @property
    def data_offset(self) -> int:
        return self.header_len // 4

    def flag(self, mask: int) -> bool:
        return bool(self.flags & mask)

    def _pack_raw(self, checksum: int) -> bytes:
        return _FIXED.pack(
            self.src_port,
            self.dst_port,
            self.seq & 0xFFFFFFFF,
            self.ack & 0xFFFFFFFF,
            self.data_offset << 4,
            self.flags,
            self.window,
            checksum,
            self.urgent,
        ) + self.options

    def pack(self) -> bytes:
        return self._pack_raw(self.checksum)

    def pack_with_checksum(self, pseudo_header: bytes,
                           payload: bytes) -> bytes:
        """Serialise with a computed checksum over pseudo-hdr + segment."""
        segment = self._pack_raw(0)
        self.checksum = internet_checksum(pseudo_header + segment + payload)
        return self._pack_raw(self.checksum)

    @classmethod
    def unpack(cls, data: bytes) -> tuple["TcpHeader", bytes]:
        """Parse a header off the front of ``data``; returns (hdr, payload)."""
        if len(data) < FIXED_HEADER_LEN:
            raise ValueError(f"too short for TCP: {len(data)}")
        (src_port, dst_port, seq, ack, off_byte, flags,
         window, checksum, urgent) = _FIXED.unpack_from(data)
        header_len = (off_byte >> 4) * 4
        if header_len < FIXED_HEADER_LEN or len(data) < header_len:
            raise ValueError(f"bad TCP data offset: {header_len}")
        header = cls(
            src_port=src_port,
            dst_port=dst_port,
            seq=seq,
            ack=ack,
            flags=flags,
            window=window,
            urgent=urgent,
            options=bytes(data[FIXED_HEADER_LEN:header_len]),
            checksum=checksum,
        )
        return header, data[header_len:]

    def verify(self, pseudo_header: bytes, payload: bytes) -> bool:
        segment = self._pack_raw(self.checksum)
        return internet_checksum(pseudo_header + segment + payload) == 0

    def describe_flags(self) -> str:
        names = [
            (TCP_SYN, "SYN"), (TCP_ACK, "ACK"), (TCP_FIN, "FIN"),
            (TCP_RST, "RST"), (TCP_PSH, "PSH"), (TCP_URG, "URG"),
        ]
        present = [name for mask, name in names if self.flags & mask]
        return "|".join(present) if present else "-"
