"""IPv4 header with options support and real header checksum.

Variable-length headers (options) are first-class because the paper calls
out variable-width header removal as one of the harder parts of the
hardware (section V-B).  IP fragmentation is not supported, mirroring the
paper's scoping for intra-datacenter services.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.packet.checksum import (
    incremental_update,
    internet_checksum,
    verify_checksum,
)

IPPROTO_TCP = 6
IPPROTO_UDP = 17
IPPROTO_IPIP = 4

_FIXED = struct.Struct("!BBHHHBBH4s4s")
FIXED_HEADER_LEN = 20

# Codec caches.  Headers repeat heavily inside a simulation (same flows,
# same sizes), so pack() keeps a per-field-tuple template with its
# checksum precomputed at identification=0 and patches the id in with an
# RFC 1624 incremental update, and unpack() memoises fully validated
# header blobs.  Both caches are bounded and cleared wholesale when full;
# hits and misses are behaviour-identical, only faster.
_PACK_TEMPLATES: dict[tuple, tuple[bytes, int]] = {}
_UNPACK_CACHE: dict[bytes, "IPv4Header"] = {}
_CACHE_MAX = 4096


class IPv4Address:
    """A 32-bit IPv4 address; hashable, comparable, printable."""

    __slots__ = ("_value",)

    def __init__(self, value: "str | int | bytes | IPv4Address"):
        if isinstance(value, IPv4Address):
            self._value = value._value
        elif isinstance(value, int):
            if not 0 <= value < (1 << 32):
                raise ValueError(f"IPv4 int out of range: {value}")
            self._value = value
        elif isinstance(value, bytes):
            if len(value) != 4:
                raise ValueError(f"IPv4 needs 4 bytes, got {len(value)}")
            self._value = int.from_bytes(value, "big")
        elif isinstance(value, str):
            parts = value.split(".")
            if len(parts) != 4:
                raise ValueError(f"bad IPv4 string {value!r}")
            octets = [int(p) for p in parts]
            if any(not 0 <= o < 256 for o in octets):
                raise ValueError(f"bad IPv4 string {value!r}")
            self._value = int.from_bytes(bytes(octets), "big")
        else:
            raise TypeError(f"cannot make IPv4Address from {type(value)}")

    @property
    def packed(self) -> bytes:
        return self._value.to_bytes(4, "big")

    def __int__(self) -> int:
        return self._value

    def __eq__(self, other) -> bool:
        return isinstance(other, IPv4Address) and self._value == other._value

    def __lt__(self, other: IPv4Address) -> bool:
        return self._value < other._value

    def __hash__(self) -> int:
        return hash(self._value)

    def __repr__(self) -> str:
        return ".".join(str(b) for b in self.packed)


@dataclass
class IPv4Header:
    """An IPv4 header.  ``total_length`` covers header + payload."""

    src: IPv4Address
    dst: IPv4Address
    protocol: int = IPPROTO_UDP
    total_length: int = FIXED_HEADER_LEN
    ttl: int = 64
    identification: int = 0
    dscp: int = 0
    ecn: int = 0
    flags: int = 0b010  # don't-fragment: the stack never fragments
    fragment_offset: int = 0
    options: bytes = b""

    def __post_init__(self):
        self.src = IPv4Address(self.src)
        self.dst = IPv4Address(self.dst)
        if len(self.options) % 4:
            raise ValueError("IPv4 options must be 32-bit aligned")
        if len(self.options) > 40:
            raise ValueError("IPv4 options exceed 40 bytes")

    @property
    def header_len(self) -> int:
        return FIXED_HEADER_LEN + len(self.options)

    @property
    def ihl(self) -> int:
        return self.header_len // 4

    @property
    def payload_len(self) -> int:
        return self.total_length - self.header_len

    def pack(self) -> bytes:
        """Serialise with a freshly computed header checksum.

        Uses a cached identification=0 template per distinct field
        tuple and patches the identification (and its checksum delta,
        via RFC 1624) in — bit-identical to packing from scratch.
        """
        key = (
            int(self.src), int(self.dst), self.protocol,
            self.total_length, self.ttl, self.dscp, self.ecn,
            self.flags, self.fragment_offset, self.options,
        )
        template = _PACK_TEMPLATES.get(key)
        if template is None:
            version_ihl = (4 << 4) | self.ihl
            tos = (self.dscp << 2) | self.ecn
            flags_frag = (self.flags << 13) | self.fragment_offset
            without_csum = _FIXED.pack(
                version_ihl,
                tos,
                self.total_length,
                0,
                flags_frag,
                self.ttl,
                self.protocol,
                0,
                self.src.packed,
                self.dst.packed,
            ) + self.options
            csum0 = internet_checksum(without_csum)
            raw0 = without_csum[:10] + struct.pack("!H", csum0) \
                + without_csum[12:]
            if len(_PACK_TEMPLATES) >= _CACHE_MAX:
                _PACK_TEMPLATES.clear()
            template = _PACK_TEMPLATES[key] = (raw0, csum0)
        raw0, csum0 = template
        ident = self.identification
        if not ident:
            return raw0
        ident_bytes = struct.pack("!H", ident)
        csum = incremental_update(csum0, b"\x00\x00", ident_bytes)
        return raw0[:4] + ident_bytes + raw0[6:10] \
            + struct.pack("!H", csum) + raw0[12:]

    @classmethod
    def unpack(cls, data: bytes) -> tuple["IPv4Header", bytes]:
        """Parse a header off the front of ``data``; returns (hdr, rest).

        Raises ValueError on malformed input or a bad header checksum,
        modelling the tile's checksum-validate-and-drop behaviour.
        """
        if len(data) < FIXED_HEADER_LEN:
            raise ValueError(f"too short for IPv4: {len(data)}")
        cacheable = cls is IPv4Header
        if cacheable:
            # Fast path: this exact (already validated) header blob.
            # Only the length checks depend on the rest of the buffer,
            # so they are the one thing re-done per call.
            quick_len = (data[0] & 0xF) * 4
            if data[0] >> 4 == 4 and \
                    FIXED_HEADER_LEN <= quick_len <= len(data):
                cached = _UNPACK_CACHE.get(bytes(data[:quick_len]))
                if cached is not None:
                    total_length = cached.total_length
                    if total_length < quick_len or total_length > len(data):
                        raise ValueError(
                            f"bad total_length {total_length} "
                            f"(have {len(data)})"
                        )
                    return cached, data[quick_len:total_length]
        (version_ihl, tos, total_length, ident, flags_frag,
         ttl, protocol, _csum, src, dst) = _FIXED.unpack_from(data)
        version = version_ihl >> 4
        if version != 4:
            raise ValueError(f"not IPv4 (version={version})")
        header_len = (version_ihl & 0xF) * 4
        if header_len < FIXED_HEADER_LEN or len(data) < header_len:
            raise ValueError(f"bad IHL: {header_len}")
        if total_length < header_len or total_length > len(data):
            raise ValueError(
                f"bad total_length {total_length} (have {len(data)})"
            )
        if not verify_checksum(data[:header_len]):
            raise ValueError("IPv4 header checksum mismatch")
        header = cls(
            src=IPv4Address(src),
            dst=IPv4Address(dst),
            protocol=protocol,
            total_length=total_length,
            ttl=ttl,
            identification=ident,
            dscp=tos >> 2,
            ecn=tos & 0x3,
            flags=flags_frag >> 13,
            fragment_offset=flags_frag & 0x1FFF,
            options=bytes(data[FIXED_HEADER_LEN:header_len]),
        )
        if cacheable:
            # Parsed headers are never mutated in place (replies build
            # fresh ones), so sharing one instance per blob is safe.
            if len(_UNPACK_CACHE) >= _CACHE_MAX:
                _UNPACK_CACHE.clear()
            _UNPACK_CACHE[bytes(data[:header_len])] = header
        return header, data[header_len:total_length]

    def pseudo_header(self, l4_length: int) -> bytes:
        """The pseudo-header used by UDP/TCP checksums (RFC 768/793)."""
        return self.src.packed + self.dst.packed + struct.pack(
            "!BBH", 0, self.protocol, l4_length
        )
