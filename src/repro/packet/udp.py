"""UDP header (RFC 768) with pseudo-header checksum."""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.packet.checksum import internet_checksum

_HDR = struct.Struct("!HHHH")
HEADER_LEN = 8


@dataclass
class UdpHeader:
    """A UDP header.  ``length`` covers header + payload."""

    src_port: int
    dst_port: int
    length: int = HEADER_LEN
    checksum: int = 0

    def __post_init__(self):
        for port in (self.src_port, self.dst_port):
            if not 0 <= port < 65536:
                raise ValueError(f"port out of range: {port}")

    @property
    def payload_len(self) -> int:
        return self.length - HEADER_LEN

    def pack(self) -> bytes:
        return _HDR.pack(self.src_port, self.dst_port, self.length,
                         self.checksum)

    def pack_with_checksum(self, pseudo_header: bytes,
                           payload: bytes) -> bytes:
        """Serialise with a computed checksum over pseudo-hdr + datagram."""
        datagram = _HDR.pack(self.src_port, self.dst_port, self.length, 0)
        csum = internet_checksum(pseudo_header + datagram + payload)
        if csum == 0:
            csum = 0xFFFF  # RFC 768: transmitted 0 means "no checksum"
        self.checksum = csum
        return _HDR.pack(self.src_port, self.dst_port, self.length, csum)

    @classmethod
    def unpack(cls, data: bytes) -> tuple["UdpHeader", bytes]:
        """Parse a header off the front of ``data``; returns (hdr, payload)."""
        if len(data) < HEADER_LEN:
            raise ValueError(f"too short for UDP: {len(data)}")
        src_port, dst_port, length, checksum = _HDR.unpack_from(data)
        if length < HEADER_LEN or length > len(data):
            raise ValueError(f"bad UDP length {length} (have {len(data)})")
        header = cls(src_port=src_port, dst_port=dst_port, length=length,
                     checksum=checksum)
        return header, data[HEADER_LEN:length]

    def verify(self, pseudo_header: bytes, payload: bytes) -> bool:
        """Validate the checksum (0 means the sender didn't compute one)."""
        if self.checksum == 0:
            return True
        datagram = _HDR.pack(self.src_port, self.dst_port, self.length,
                             self.checksum)
        return internet_checksum(pseudo_header + datagram + payload) == 0
