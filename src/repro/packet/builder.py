"""Whole-frame construction and parsing helpers.

These compose the individual header classes into complete Ethernet
frames, and decompose received frames layer by layer — the same walk the
protocol tile chain performs, packaged for hosts, clients, and tests.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.packet.ethernet import ETHERTYPE_IPV4, EthernetHeader, MacAddress
from repro.packet.ipv4 import (
    IPPROTO_IPIP,
    IPPROTO_TCP,
    IPPROTO_UDP,
    IPv4Address,
    IPv4Header,
)
from repro.packet.tcp import TcpHeader
from repro.packet.udp import UdpHeader
from repro.packet import udp as _udp_mod


def build_ipv4_udp_frame(
    src_mac: MacAddress,
    dst_mac: MacAddress,
    src_ip: IPv4Address,
    dst_ip: IPv4Address,
    src_port: int,
    dst_port: int,
    payload: bytes,
    vlan: int | None = None,
    ttl: int = 64,
    identification: int = 0,
) -> bytes:
    """A complete Ethernet/IPv4/UDP frame with valid checksums."""
    udp = UdpHeader(
        src_port=src_port,
        dst_port=dst_port,
        length=_udp_mod.HEADER_LEN + len(payload),
    )
    ip = IPv4Header(
        src=src_ip,
        dst=dst_ip,
        protocol=IPPROTO_UDP,
        total_length=20 + udp.length,
        ttl=ttl,
        identification=identification,
    )
    udp_bytes = udp.pack_with_checksum(ip.pseudo_header(udp.length), payload)
    eth = EthernetHeader(dst=dst_mac, src=src_mac,
                         ethertype=ETHERTYPE_IPV4, vlan=vlan)
    return eth.pack() + ip.pack() + udp_bytes + payload


def build_tcp_frame(
    src_mac: MacAddress,
    dst_mac: MacAddress,
    src_ip: IPv4Address,
    dst_ip: IPv4Address,
    tcp: TcpHeader,
    payload: bytes = b"",
    ttl: int = 64,
    identification: int = 0,
) -> bytes:
    """A complete Ethernet/IPv4/TCP frame with valid checksums."""
    l4_length = tcp.header_len + len(payload)
    ip = IPv4Header(
        src=src_ip,
        dst=dst_ip,
        protocol=IPPROTO_TCP,
        total_length=20 + l4_length,
        ttl=ttl,
        identification=identification,
    )
    tcp_bytes = tcp.pack_with_checksum(ip.pseudo_header(l4_length), payload)
    eth = EthernetHeader(dst=dst_mac, src=src_mac, ethertype=ETHERTYPE_IPV4)
    return eth.pack() + ip.pack() + tcp_bytes + payload


def build_ipinip_udp_frame(
    src_mac: MacAddress,
    dst_mac: MacAddress,
    outer_src_ip: IPv4Address,
    outer_dst_ip: IPv4Address,
    inner_src_ip: IPv4Address,
    inner_dst_ip: IPv4Address,
    src_port: int,
    dst_port: int,
    payload: bytes,
) -> bytes:
    """An Ethernet / IPv4(IPIP) / IPv4 / UDP frame — the network-
    virtualization tunnel format handled by the IP-in-IP tiles."""
    udp = UdpHeader(
        src_port=src_port,
        dst_port=dst_port,
        length=_udp_mod.HEADER_LEN + len(payload),
    )
    inner = IPv4Header(
        src=inner_src_ip,
        dst=inner_dst_ip,
        protocol=IPPROTO_UDP,
        total_length=20 + udp.length,
    )
    udp_bytes = udp.pack_with_checksum(inner.pseudo_header(udp.length),
                                       payload)
    inner_bytes = inner.pack() + udp_bytes + payload
    outer = IPv4Header(
        src=outer_src_ip,
        dst=outer_dst_ip,
        protocol=IPPROTO_IPIP,
        total_length=20 + len(inner_bytes),
    )
    eth = EthernetHeader(dst=dst_mac, src=src_mac, ethertype=ETHERTYPE_IPV4)
    return eth.pack() + outer.pack() + inner_bytes


@dataclass
class ParsedFrame:
    """A fully decomposed frame.  Layers absent from the packet are None."""

    eth: EthernetHeader
    ip: IPv4Header | None = None
    inner_ip: IPv4Header | None = None  # set for IP-in-IP
    udp: UdpHeader | None = None
    tcp: TcpHeader | None = None
    payload: bytes = b""

    @property
    def l4_proto(self) -> str:
        if self.udp is not None:
            return "udp"
        if self.tcp is not None:
            return "tcp"
        return "none"


def parse_frame(frame: bytes) -> ParsedFrame:
    """Decompose a frame layer by layer, validating every checksum.

    Handles one level of IP-in-IP encapsulation (the network-function
    tile's format).  Raises ValueError for malformed or non-IPv4 frames.
    """
    eth, rest = EthernetHeader.unpack(frame)
    if eth.ethertype != ETHERTYPE_IPV4:
        return ParsedFrame(eth=eth, payload=rest)
    ip, rest = IPv4Header.unpack(rest)
    inner_ip = None
    if ip.protocol == IPPROTO_IPIP:
        inner_ip, rest = IPv4Header.unpack(rest)
    l4_ip = inner_ip if inner_ip is not None else ip
    if l4_ip.protocol == IPPROTO_UDP:
        udp, payload = UdpHeader.unpack(rest)
        if not udp.verify(l4_ip.pseudo_header(udp.length), payload):
            raise ValueError("UDP checksum mismatch")
        return ParsedFrame(eth=eth, ip=ip, inner_ip=inner_ip, udp=udp,
                           payload=payload)
    if l4_ip.protocol == IPPROTO_TCP:
        tcp, payload = TcpHeader.unpack(rest)
        l4_length = tcp.header_len + len(payload)
        if not tcp.verify(l4_ip.pseudo_header(l4_length), payload):
            raise ValueError("TCP checksum mismatch")
        return ParsedFrame(eth=eth, ip=ip, inner_ip=inner_ip, tcp=tcp,
                           payload=payload)
    return ParsedFrame(eth=eth, ip=ip, inner_ip=inner_ip, payload=rest)
