"""The Internet checksum (RFC 1071), used by IPv4, UDP, and TCP.

The hot path sums 32-bit big-endian words and defers the carry fold to
the end: RFC 1071 section 2 permits any accumulator width because
one's-complement addition is associative and ``2**16 == 1 (mod 0xFFFF)``
— the sum of a buffer's 16-bit words and the sum of its 32-bit words
are congruent, and one final fold canonicalises the result.  Odd (or
non-multiple-of-4) input is zero-padded, which adds nothing to the sum.

An optional numpy backend can be selected with
``set_checksum_backend("numpy")`` or by setting the
``REPRO_CHECKSUM_NUMPY`` environment variable before import; the
pure-Python word loop is the default and requires nothing beyond the
stdlib.  Both produce bit-identical checksums (asserted by
tests/test_packet_fuzz.py).

``incremental_update`` implements RFC 1624 equation 3 (the -0-safe
form of RFC 1071's incremental update) so tiles that rewrite a few
header words — NAT address translation, IP identification bumps —
can patch an existing checksum without touching the payload.
"""

from __future__ import annotations

import os
import struct

_np = None  # numpy module when the numpy backend is active, else None

# struct.Struct unpackers keyed by 32-bit word count.  Packet sizes are
# bounded (MTU-ish), so this stays small; cleared if it ever balloons.
_WORD_STRUCTS: dict[int, struct.Struct] = {}
_WORD_STRUCTS_MAX = 2048


def set_checksum_backend(name: str) -> None:
    """Select the checksum implementation: ``"words"`` or ``"numpy"``.

    ``"words"`` is the stdlib 32-bit word loop; ``"numpy"`` vectorises
    the word sum (raises ImportError if numpy is unavailable).
    """
    global _np
    if name == "words":
        _np = None
    elif name == "numpy":
        import numpy
        _np = numpy
    else:
        raise ValueError(f"unknown checksum backend {name!r}")


def internet_checksum(data: bytes) -> int:
    """One's-complement 16-bit checksum over ``data``.

    Processes the buffer as 32-bit big-endian words with the carry
    fold deferred to the end; bit-identical to the classic 16-bit
    byte-pair loop for every input (including odd lengths, which are
    zero-padded per RFC 1071).
    """
    pad = -len(data) & 3
    if pad:
        data = data + b"\x00" * pad
    if _np is not None:
        total = int(_np.frombuffer(data, dtype=">u4").sum(dtype="uint64"))
    else:
        nwords = len(data) >> 2
        unpacker = _WORD_STRUCTS.get(nwords)
        if unpacker is None:
            if len(_WORD_STRUCTS) >= _WORD_STRUCTS_MAX:
                _WORD_STRUCTS.clear()
            unpacker = _WORD_STRUCTS[nwords] = struct.Struct(f"!{nwords}I")
        total = sum(unpacker.unpack(data))
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


def incremental_update(checksum: int, old: bytes, new: bytes) -> int:
    """Patch ``checksum`` for a field change ``old`` -> ``new``.

    RFC 1624 equation 3: ``HC' = ~(~HC + ~m + m')``, summed 16 bits at
    a time in one's-complement.  For a buffer whose embedded checksum
    was valid, the result is bit-identical to recomputing from scratch
    over the modified buffer.  ``old`` and ``new`` need not be the same
    length (odd lengths are zero-padded), but they must describe
    16-bit-aligned regions of the checksummed buffer.
    """
    if len(old) & 1:
        old = old + b"\x00"
    if len(new) & 1:
        new = new + b"\x00"
    total = (~checksum) & 0xFFFF
    for i in range(0, len(old), 2):
        total += 0xFFFF - ((old[i] << 8) | old[i + 1])
    for i in range(0, len(new), 2):
        total += (new[i] << 8) | new[i + 1]
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


def verify_checksum(data: bytes) -> bool:
    """True if ``data`` (including its embedded checksum field) sums to 0.

    A correct RFC 1071 checksum makes the one's-complement sum of the
    whole buffer equal 0xFFFF, so the complemented sum is zero.
    """
    return internet_checksum(data) == 0


if os.environ.get("REPRO_CHECKSUM_NUMPY"):
    set_checksum_backend("numpy")
