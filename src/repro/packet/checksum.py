"""The Internet checksum (RFC 1071), used by IPv4, UDP, and TCP."""

from __future__ import annotations


def internet_checksum(data: bytes) -> int:
    """One's-complement 16-bit checksum over ``data``.

    Odd-length input is padded with a zero byte, per RFC 1071.
    """
    if len(data) % 2:
        data = data + b"\x00"
    total = 0
    for i in range(0, len(data), 2):
        total += (data[i] << 8) | data[i + 1]
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


def verify_checksum(data: bytes) -> bool:
    """True if ``data`` (including its embedded checksum field) sums to 0.

    A correct RFC 1071 checksum makes the one's-complement sum of the
    whole buffer equal 0xFFFF, so the complemented sum is zero.
    """
    return internet_checksum(data) == 0
