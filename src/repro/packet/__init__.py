"""Byte-accurate packet formats: Ethernet (VLAN-aware), IPv4, UDP, TCP.

These are the real wire formats — headers pack to and parse from bytes,
and checksums are genuine Internet checksums — because Beehive's headline
interoperability claim is that unmodified Linux clients talk to it.  Our
protocol tiles parse and construct these exact bytes.
"""

from repro.packet.checksum import internet_checksum, verify_checksum
from repro.packet.ethernet import (
    ETHERTYPE_ARP,
    ETHERTYPE_IPV4,
    ETHERTYPE_VLAN,
    EthernetHeader,
    MacAddress,
)
from repro.packet.ipv4 import (
    IPPROTO_IPIP,
    IPPROTO_TCP,
    IPPROTO_UDP,
    IPv4Address,
    IPv4Header,
)
from repro.packet.tcp import TCP_ACK, TCP_FIN, TCP_PSH, TCP_RST, TCP_SYN, TcpHeader
from repro.packet.udp import UdpHeader
from repro.packet.builder import (
    build_ipv4_udp_frame,
    build_tcp_frame,
    parse_frame,
    ParsedFrame,
)

__all__ = [
    "ETHERTYPE_ARP",
    "ETHERTYPE_IPV4",
    "ETHERTYPE_VLAN",
    "EthernetHeader",
    "IPPROTO_IPIP",
    "IPPROTO_TCP",
    "IPPROTO_UDP",
    "IPv4Address",
    "IPv4Header",
    "MacAddress",
    "ParsedFrame",
    "TCP_ACK",
    "TCP_FIN",
    "TCP_PSH",
    "TCP_RST",
    "TCP_SYN",
    "TcpHeader",
    "UdpHeader",
    "build_ipv4_udp_frame",
    "build_tcp_frame",
    "internet_checksum",
    "parse_frame",
    "verify_checksum",
]
