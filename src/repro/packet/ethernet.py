"""Ethernet II framing, with 802.1Q VLAN tag support.

The Beehive Ethernet receive processor handles VLAN-tagged packets
(section V-B); ours does too.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

ETHERTYPE_IPV4 = 0x0800
ETHERTYPE_ARP = 0x0806
ETHERTYPE_VLAN = 0x8100

_HDR = struct.Struct("!6s6sH")
_VLAN_TCI = struct.Struct("!HH")

# Codec caches: Ethernet headers repeat per flow, so pack() memoises the
# serialised bytes per field tuple and unpack() memoises validated
# header blobs (parsed headers are never mutated in place).  Bounded,
# cleared wholesale when full; hits are behaviour-identical to misses.
_PACK_CACHE: dict[tuple, bytes] = {}
_UNPACK_CACHE: dict[bytes, "EthernetHeader"] = {}
_CACHE_MAX = 4096


class MacAddress:
    """A 48-bit MAC address; hashable, comparable, printable."""

    __slots__ = ("_raw",)

    def __init__(self, value: "bytes | str | int | MacAddress"):
        if isinstance(value, MacAddress):
            self._raw = value._raw
        elif isinstance(value, bytes):
            if len(value) != 6:
                raise ValueError(f"MAC needs 6 bytes, got {len(value)}")
            self._raw = value
        elif isinstance(value, str):
            parts = value.split(":")
            if len(parts) != 6:
                raise ValueError(f"bad MAC string {value!r}")
            self._raw = bytes(int(p, 16) for p in parts)
        elif isinstance(value, int):
            if not 0 <= value < (1 << 48):
                raise ValueError(f"MAC int out of range: {value}")
            self._raw = value.to_bytes(6, "big")
        else:
            raise TypeError(f"cannot make MacAddress from {type(value)}")

    @property
    def packed(self) -> bytes:
        return self._raw

    def __int__(self) -> int:
        return int.from_bytes(self._raw, "big")

    def __eq__(self, other) -> bool:
        return isinstance(other, MacAddress) and self._raw == other._raw

    def __hash__(self) -> int:
        return hash(self._raw)

    def __repr__(self) -> str:
        return ":".join(f"{b:02x}" for b in self._raw)

    @classmethod
    def broadcast(cls) -> MacAddress:
        return cls(b"\xff" * 6)


@dataclass
class EthernetHeader:
    """An Ethernet II header, optionally carrying one 802.1Q tag."""

    dst: MacAddress
    src: MacAddress
    ethertype: int = ETHERTYPE_IPV4
    vlan: int | None = None  # 12-bit VLAN ID if tagged
    vlan_pcp: int = 0  # 3-bit priority code point

    HEADER_LEN = 14
    VLAN_HEADER_LEN = 18

    def __post_init__(self):
        self.dst = MacAddress(self.dst)
        self.src = MacAddress(self.src)
        if self.vlan is not None and not 0 <= self.vlan < 4096:
            raise ValueError(f"VLAN id out of range: {self.vlan}")

    @property
    def header_len(self) -> int:
        return self.VLAN_HEADER_LEN if self.vlan is not None else self.HEADER_LEN

    def pack(self) -> bytes:
        key = (self.dst.packed, self.src.packed, self.ethertype,
               self.vlan, self.vlan_pcp)
        raw = _PACK_CACHE.get(key)
        if raw is not None:
            return raw
        if self.vlan is None:
            raw = _HDR.pack(self.dst.packed, self.src.packed, self.ethertype)
        else:
            tci = (self.vlan_pcp << 13) | self.vlan
            raw = _HDR.pack(self.dst.packed, self.src.packed,
                            ETHERTYPE_VLAN) + \
                _VLAN_TCI.pack(tci, self.ethertype)
        if len(_PACK_CACHE) >= _CACHE_MAX:
            _PACK_CACHE.clear()
        _PACK_CACHE[key] = raw
        return raw

    @classmethod
    def unpack(cls, data: bytes) -> tuple["EthernetHeader", bytes]:
        """Parse a header off the front of ``data``; returns (hdr, rest)."""
        if len(data) < cls.HEADER_LEN:
            raise ValueError(f"frame too short for Ethernet: {len(data)}")
        tagged = data[12:14] == b"\x81\x00"
        offset = cls.VLAN_HEADER_LEN if tagged else cls.HEADER_LEN
        if tagged and len(data) < cls.VLAN_HEADER_LEN:
            raise ValueError("frame too short for 802.1Q tag")
        cacheable = cls is EthernetHeader
        if cacheable:
            cached = _UNPACK_CACHE.get(bytes(data[:offset]))
            if cached is not None:
                return cached, data[offset:]
        dst, src, ethertype = _HDR.unpack_from(data)
        vlan = None
        pcp = 0
        if tagged:
            tci, ethertype = _VLAN_TCI.unpack_from(data, cls.HEADER_LEN)
            vlan = tci & 0x0FFF
            pcp = tci >> 13
        header = cls(
            dst=MacAddress(dst),
            src=MacAddress(src),
            ethertype=ethertype,
            vlan=vlan,
            vlan_pcp=pcp,
        )
        if cacheable:
            if len(_UNPACK_CACHE) >= _CACHE_MAX:
                _UNPACK_CACHE.clear()
            _UNPACK_CACHE[bytes(data[:offset])] = header
        return header, data[offset:]
