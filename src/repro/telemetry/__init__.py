"""Telemetry: tracing, metrics, sampling probes, profiling (sec V-F).

Two planes, two costs:

- The *debug* plane — :class:`Tracer` (cycle-accurate spans, Chrome
  trace export) and the paper's log/replay workflow
  (:class:`FrameTraceRecorder` / :class:`TraceReplayer`): records
  everything, costs accordingly, attach only when investigating.
- The *operational* plane — :class:`~repro.telemetry.metrics.
  MetricsRegistry` (counters, gauges, p50/p99/p999 histograms) fed by
  :func:`~repro.telemetry.probe.attach_probe`'s periodic sampler and
  exported via :mod:`repro.telemetry.export` (Prometheus text,
  replayable snapshot series for ``python -m repro.tools.top``):
  cheap enough to leave on.

Both planes share one null-path contract: not attached means not
wrapped — ``NULL_TRACER``, ``attach_probe(design, None)`` and an
uninstalled :class:`~repro.telemetry.hostprof.HostProfiler` cost
exactly nothing on the hot path.
"""

from repro.telemetry.export import (
    SnapshotSeries,
    parse_prometheus_text,
    prometheus_text,
)
from repro.telemetry.hostprof import HostProfiler, profile_run
from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.telemetry.probe import DEFAULT_INTERVAL, Probe, attach_probe
from repro.telemetry.replay import FrameTraceRecorder, TraceReplayer
from repro.telemetry.stats import (
    design_counters,
    design_report,
    jain_index,
    tcp_flow_counters,
)
from repro.telemetry.trace import (
    NULL_TRACER,
    MetricsWindow,
    NullTracer,
    Tracer,
    attach_tracer,
    chrome_trace_events,
    write_chrome_trace,
)

__all__ = [
    "Counter",
    "DEFAULT_INTERVAL",
    "FrameTraceRecorder",
    "Gauge",
    "Histogram",
    "HostProfiler",
    "MetricsRegistry",
    "MetricsWindow",
    "NULL_TRACER",
    "NullTracer",
    "Probe",
    "SnapshotSeries",
    "Tracer",
    "TraceReplayer",
    "attach_probe",
    "attach_tracer",
    "chrome_trace_events",
    "design_counters",
    "design_report",
    "jain_index",
    "tcp_flow_counters",
    "parse_prometheus_text",
    "profile_run",
    "prometheus_text",
    "write_chrome_trace",
]
