"""Telemetry: cycle-accurate trace capture and replay (section V-F).

The paper's TCP debugging workflow: logging tiles record the exact
timing and sequence of packets entering/leaving an engine; the log is
read back over the network; the run is then replayed cycle-accurately
in simulation by replacing the logging tiles with the replay driver.
:class:`FrameTraceRecorder` and :class:`TraceReplayer` are that
workflow for our simulated designs.
"""

from repro.telemetry.replay import FrameTraceRecorder, TraceReplayer
from repro.telemetry.stats import design_counters, design_report
from repro.telemetry.trace import (
    NULL_TRACER,
    MetricsWindow,
    NullTracer,
    Tracer,
    attach_tracer,
    chrome_trace_events,
    write_chrome_trace,
)

__all__ = [
    "FrameTraceRecorder",
    "MetricsWindow",
    "NULL_TRACER",
    "NullTracer",
    "Tracer",
    "TraceReplayer",
    "attach_tracer",
    "chrome_trace_events",
    "design_counters",
    "design_report",
    "write_chrome_trace",
]
