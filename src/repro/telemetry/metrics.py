"""Design-wide metrics: counters, gauges, and HDR-style histograms.

The PR-1 tracer answers *what happened to one packet*; this module
answers *what is the system doing right now* — the always-on counter
plane a production NIC stack ships next to the datapath (Dagger's
telemetry block, Coyote v2's status registers).  Three instrument
kinds, collected in a :class:`MetricsRegistry`:

- :class:`Counter` — monotonic; ``inc()`` only.  Flit totals, drops,
  fault injections.
- :class:`Gauge` — last-write-wins.  Queue depths, active-set size,
  busy-router population.
- :class:`Histogram` — log-bucketed HDR-style value distribution with
  :meth:`~Histogram.percentile` (p50/p99/p999 and friends).  Latencies,
  sampled depths.

Histogram precision
-------------------

Values are non-negative integers (cycle counts, queue depths).  The
bucket for value ``v`` is unit-width while ``v < 2 * subbuckets`` and
doubles every octave above, HDR-histogram style: with the default
``significant_digits=2`` (``subbuckets=128``), every recorded value is
resolved *exactly* below 256 and with relative error below
``1/subbuckets`` (< 0.8%) above.  Percentiles interpolate nothing —
they return the representative (highest) value of the bucket containing
the requested rank, so ``p50``/``p99``/``p999`` are exact for typical
cycle-latency magnitudes and within the bucket's bounded relative
error beyond.

Everything here is plain state mutation — no clocks, no simulator
coupling — so instruments are safe to update from any component and
cost one dict/att lookup plus integer arithmetic per update.  The
periodic sampler (:mod:`repro.telemetry.probe`) and the exporters
(:mod:`repro.telemetry.export`) are the intended producers/consumers.
"""

from __future__ import annotations

import math
from collections.abc import Iterator

SCHEMA = "repro.telemetry.metrics/1"


def _validate_name(name: str) -> str:
    if not name or any(c.isspace() for c in name):
        raise ValueError(f"bad metric name {name!r}")
    return name


class Counter:
    """A monotonically increasing counter."""

    __slots__ = ("name", "help", "value")

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = _validate_name(name)
        self.help = help
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters are monotonic; inc() takes >= 0")
        self.value += amount

    def to_dict(self) -> dict:
        return {"kind": self.kind, "name": self.name, "value": self.value}

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, value={self.value})"


class Gauge:
    """A last-write-wins instantaneous value."""

    __slots__ = ("name", "help", "value")

    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = _validate_name(name)
        self.help = help
        self.value: float = 0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def dec(self, amount: float = 1) -> None:
        self.value -= amount

    def to_dict(self) -> dict:
        return {"kind": self.kind, "name": self.name, "value": self.value}

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, value={self.value})"


class Histogram:
    """Log-bucketed HDR-style histogram over non-negative integers.

    Bucket layout (``subbuckets = 2 ** ceil(log2(10 ** digits))``):
    index ``v`` directly while ``v < 2 * subbuckets``; above that, each
    octave reuses ``subbuckets`` buckets whose width doubles per
    octave, keeping relative resolution constant (see the module
    docstring for the accuracy contract).  ``record`` is O(1) with two
    integer ops and one list increment; ``percentile`` walks the
    non-empty prefix of the bucket array.
    """

    __slots__ = ("name", "help", "significant_digits", "_subbuckets",
                 "_sub_bits", "_buckets", "count", "total", "min", "max")

    kind = "histogram"

    def __init__(self, name: str, help: str = "",
                 significant_digits: int = 2) -> None:
        if not 1 <= significant_digits <= 5:
            raise ValueError("significant_digits must be in [1, 5]")
        self.name = _validate_name(name)
        self.help = help
        self.significant_digits = significant_digits
        sub = 1
        while sub < 10 ** significant_digits:
            sub <<= 1
        self._subbuckets = sub
        self._sub_bits = sub.bit_length() - 1
        self._buckets: list[int] = []
        self.count = 0
        self.total = 0
        self.min: int | None = None
        self.max: int | None = None

    # -- recording --------------------------------------------------------

    def _index_of(self, value: int) -> int:
        sub = self._subbuckets
        if value < (sub << 1):
            return value
        # Octave = position of the highest bit above the unit horizon;
        # within an octave, values collapse onto ``sub`` buckets.
        octave = value.bit_length() - self._sub_bits - 1
        return (octave << self._sub_bits) + (value >> octave)

    def _value_of(self, index: int) -> int:
        """Highest value mapping to bucket ``index`` (its representative)."""
        sub = self._subbuckets
        if index < (sub << 1):
            return index
        octave = (index >> self._sub_bits) - 1
        base = (index - (octave << self._sub_bits)) << octave
        return base + (1 << octave) - 1

    def record(self, value: int, n: int = 1) -> None:
        value = int(value)
        if value < 0:
            raise ValueError("histograms take non-negative values")
        index = self._index_of(value)
        buckets = self._buckets
        if index >= len(buckets):
            buckets.extend([0] * (index + 1 - len(buckets)))
        buckets[index] += n
        self.count += n
        self.total += value * n
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    # -- reading ----------------------------------------------------------

    def percentile(self, q: float) -> float | None:
        """Nearest-rank percentile (``q`` in [0, 100]), or None if empty."""
        if not self.count:
            return None
        if not 0 <= q <= 100:
            raise ValueError("q must be in [0, 100]")
        rank = max(1, math.ceil(q / 100.0 * self.count))
        seen = 0
        for index, n in enumerate(self._buckets):
            if not n:
                continue
            seen += n
            if seen >= rank:
                return float(self._value_of(index))
        return float(self._value_of(len(self._buckets) - 1))

    @property
    def mean(self) -> float | None:
        return self.total / self.count if self.count else None

    def buckets(self) -> list[tuple[int, int]]:
        """Non-empty (upper_bound_value, count) pairs, ascending."""
        return [(self._value_of(index), n)
                for index, n in enumerate(self._buckets) if n]

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "name": self.name,
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "p50": self.percentile(50),
            "p99": self.percentile(99),
            "p999": self.percentile(99.9),
            "buckets": [[bound, n] for bound, n in self.buckets()],
        }

    def __repr__(self) -> str:
        return (f"Histogram({self.name!r}, count={self.count}, "
                f"p50={self.percentile(50)}, p999={self.percentile(99.9)})")


class MetricsRegistry:
    """A named collection of instruments with get-or-create semantics.

    ``registry.counter("noc.flits")`` returns the existing instrument
    or creates it, so instrumentation sites need no shared setup.
    Asking for an existing name with a different instrument kind is an
    error — one name, one meaning.
    """

    def __init__(self) -> None:
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, cls: type, name: str, help: str,
             **kwargs: object) -> Counter | Gauge | Histogram:
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = cls(name, help, **kwargs)
            self._instruments[name] = instrument
            return instrument
        if not isinstance(instrument, cls):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{instrument.kind}, not {cls.kind}")
        return instrument

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get(Gauge, name, help)

    def histogram(self, name: str, help: str = "",
                  significant_digits: int = 2) -> Histogram:
        return self._get(Histogram, name, help,
                         significant_digits=significant_digits)

    def get(self, name: str) -> Counter | Gauge | Histogram | None:
        """The instrument registered under ``name``, or None."""
        return self._instruments.get(name)

    def __iter__(self) -> Iterator[Counter | Gauge | Histogram]:
        return iter(sorted(self._instruments.values(),
                           key=lambda m: m.name))

    def __len__(self) -> int:
        return len(self._instruments)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def collect(self) -> dict:
        """A versioned, JSON-able snapshot of every instrument."""
        return {
            "schema": SCHEMA,
            "metrics": [instrument.to_dict() for instrument in self],
        }
