"""Periodic operational sampling — the always-on telemetry plane.

A :class:`Probe` is a clocked component that wakes every ``interval``
cycles, reads the design's operational state (it *never* writes any),
and feeds two sinks:

- a :class:`~repro.telemetry.metrics.MetricsRegistry` of counters,
  gauges and p50/p99/p999 histograms — the scrape surface
  (:func:`repro.telemetry.export.prometheus_text` renders it);
- a :class:`~repro.telemetry.export.SnapshotSeries` of per-interval
  snapshots — the recorded-run surface ``python -m repro.tools.top``
  renders live or replays deterministically.

What a sample captures:

- queue depths and high-water marks on every tile's ejection FIFO and
  injection backlog (``StagedFifo.high_water`` /
  ``LocalPort.tx_backlog_high_water``), plus engine/rx occupancy;
- scheduler state from :meth:`CycleSimulator.stats` — active-set size,
  idle cycles skipped, cumulative component steps;
- fabric activity: per-link flit deltas since the previous sample
  (rate = delta / interval), the busy-router population (the flat
  backend's busy-mask popcount, the object backend's non-idle count);
- :class:`~repro.faults.engine.FaultEngine` counters, when a plan is
  attached;
- end-to-end latency, two ways: the cheap
  ``eth_tx.last_transit_cycles`` gauge always, and — when a recording
  :class:`~repro.telemetry.trace.Tracer` is attached — exact
  per-packet latencies extracted *incrementally* from new tile spans
  (O(new spans) per sample, never a whole-trace rescan) and recorded
  into the ``latency.e2e_cycles`` histogram.

Null fast path: the contract mirrors :data:`~repro.telemetry.trace.
NULL_TRACER` and ``attach_faults(design, None)`` — ``attach_probe(
design, interval=None)`` attaches *nothing*: no component is added, no
state is wrapped, and the design's per-cycle cost is exactly what it
was.  An attached probe is read-only and timer-driven, so it never
changes simulated behaviour (the differential equivalence suite pins
this); its only cost is one kernel wake plus the sample walk every
``interval`` cycles.
"""

from __future__ import annotations

from repro.sim.kernel import Wakeable
from repro.telemetry.export import SnapshotSeries
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.trace import percentile

DEFAULT_INTERVAL = 500


def _iter_tiles(design: object) -> list:
    tiles = design.tiles
    if isinstance(tiles, dict):
        return list(tiles.values())
    return list(tiles)


def _link_key(coord: object, port: object) -> str:
    return f"{coord}->{getattr(port, 'value', port)}"


class Probe(Wakeable):
    """The periodic sampler.  Build via :func:`attach_probe`."""

    name = "telemetry.probe"
    #: Samples read the whole design (every router, port and tile), so
    #: a sharded run steps the probe at the coordinator, after the
    #: boundary exchange (see repro.sim.shard).  Read-only, so the
    #: only observable difference is that end-of-cycle FIFO depths
    #: include the exchange's deliveries.
    shard_scope = "global"

    def __init__(self, design: object,
                 interval: int = DEFAULT_INTERVAL,
                 registry: MetricsRegistry | None = None,
                 design_name: str = "") -> None:
        if interval < 1:
            raise ValueError("probe interval must be >= 1 cycle")
        self.design = design
        self.interval = interval
        self.registry = registry if registry is not None \
            else MetricsRegistry()
        self.series = SnapshotSeries(
            interval=interval,
            design=design_name or type(design).__name__,
            meta={
                "kernel": design.sim.kernel,
                "mesh_backend": design.sim.mesh_backend,
                "tile_backend": design.sim.tile_backend,
            },
        )
        self.samples_taken = 0
        self._next = design.sim.cycle + interval
        # Previous-sample state for delta-rate computation.
        self._prev_link_flits: dict[str, int] = {}
        self._prev_totals: dict[str, int] = {}
        # Incremental latency extraction (when a tracer records).
        self._span_index = 0
        self._first_end: dict[int, int] = {}
        self._dropped: set[int] = set()
        self._drop_index = 0

    # -- clocked component --------------------------------------------------

    def step(self, cycle: int) -> None:
        if cycle < self._next:
            return
        self._next = cycle + self.interval
        self.sample(cycle)

    def commit(self) -> None:
        pass

    # -- quiescence contract (see repro.sim.kernel) -------------------------

    def is_idle(self) -> bool:
        """Sampling is purely timer-driven."""
        return True

    def next_event_cycle(self) -> int:
        return self._next

    # -- sampling -----------------------------------------------------------

    def _inc_to(self, counter_name: str, absolute: int, help: str = "") -> int:
        """Advance a monotonic counter to an absolute reading; the delta."""
        prev = self._prev_totals.get(counter_name, 0)
        delta = absolute - prev
        if delta > 0:
            self.registry.counter(counter_name, help).inc(delta)
            self._prev_totals[counter_name] = absolute
        return max(0, delta)

    def _sample_latencies(self) -> list[int]:
        """Latencies of packets that completed since the last sample.

        Mirrors ``Tracer.packet_latencies(complete_only=True)``
        incrementally: a packet completes at its first *terminal* span
        (no outputs) after at least one earlier span, unless dropped.
        """
        tracer = self.design.sim.tracer
        if not tracer.enabled:
            return []
        drops = getattr(tracer, "drops", None)
        if drops is not None:
            for event in drops[self._drop_index:]:
                if event.packet_id is not None:
                    self._dropped.add(event.packet_id)
            self._drop_index = len(drops)
        spans = getattr(tracer, "spans", None)
        if spans is None:
            return []
        new: list[int] = []
        first_end = self._first_end
        for span in spans[self._span_index:]:
            pid = span.packet_id
            if pid is None:
                continue
            start = first_end.get(pid)
            if start is None:
                first_end[pid] = span.end
            elif span.outputs == 0 and pid not in self._dropped:
                new.append(span.end - start)
        self._span_index = len(spans)
        return new

    def sample(self, cycle: int) -> dict:
        """Take one snapshot now; returns the snapshot dict."""
        design = self.design
        registry = self.registry
        sim = design.sim

        kernel = sim.stats()
        registry.gauge("kernel.active_components",
                       "schedule entries in the active set"
                       ).set(kernel["active"])
        registry.gauge("kernel.armed_timers",
                       "timer-wheel entries").set(kernel["armed_timers"])
        self._inc_to("kernel.idle_cycles_skipped",
                     kernel["idle_cycles_skipped"],
                     "cycles skipped by whole-design idle stretches")
        self._inc_to("kernel.component_steps", kernel["component_steps"],
                     "component step() calls executed")

        # Fabric: per-link flit deltas + busy-router population.
        links: dict[str, int] = {}
        prev = self._prev_link_flits
        for coord, router in design.mesh.routers.items():
            for port, flits in router.flits_per_output.items():
                if not flits:
                    continue
                key = _link_key(coord, port)
                delta = flits - prev.get(key, 0)
                if delta:
                    links[key] = delta
                    prev[key] = flits
        total_flits = design.mesh.total_flits_forwarded
        self._inc_to("noc.flits_forwarded", total_flits,
                     "flits moved across all routers")
        core = getattr(design.mesh, "core", None)
        if core is not None:
            busy_routers = core.busy_routers
        else:
            busy_routers = sum(
                1 for router in design.mesh.routers.values()
                if not router.is_idle())
        registry.gauge("noc.busy_routers",
                       "routers with (possible) work this cycle"
                       ).set(busy_routers)

        # Busy-tile population: the flat tile core's busy-mask
        # popcount, or the object backend's non-idle count.
        tile_core = getattr(design, "tile_core", None)
        if tile_core is not None:
            busy_tiles = tile_core.busy_tiles
        else:
            busy_tiles = sum(
                1 for tile in _iter_tiles(design)
                if hasattr(tile, "is_idle") and not tile.is_idle())
        registry.gauge("tiles.busy",
                       "tiles with (possible) work this cycle"
                       ).set(busy_tiles)

        # Tiles: depths, high-water marks, counter deltas.
        tiles: dict[str, dict] = {}
        depth_hist = registry.histogram(
            "queues.eject_depth", "sampled ejection FIFO depths")
        backlog_hist = registry.histogram(
            "queues.tx_backlog", "sampled injection backlogs")
        drops_total = 0
        for tile in _iter_tiles(design):
            port = getattr(tile, "port", None)
            eject = getattr(port, "eject_fifo", None)
            depth = len(eject) if eject is not None else 0
            backlog = port.tx_backlog if port is not None else 0
            depth_hist.record(depth)
            backlog_hist.record(backlog)
            drops_total += getattr(tile, "drops", 0)
            tiles[tile.name] = {
                "coord": list(tile.coord),
                "msgs_in": getattr(tile, "messages_in", 0),
                "msgs_out": getattr(tile, "messages_out", 0),
                "drops": getattr(tile, "drops", 0),
                "rx_ready": len(getattr(tile, "_rx_ready", ())),
                "buffered_flits": getattr(tile, "_buffered_flits", 0),
                "eject_depth": depth,
                "eject_hwm": getattr(eject, "high_water", 0),
                "tx_backlog": backlog,
                "tx_hwm": getattr(port, "tx_backlog_high_water", 0),
            }
        self._inc_to("tiles.drops", drops_total,
                     "packets dropped across all tiles")

        # Faults, when an engine is attached.
        faults = None
        engine = getattr(design, "fault_engine", None)
        if engine is not None:
            faults = dict(sorted(engine.counters.items()))
            for kind, count in faults.items():
                self._inc_to(f"faults.{kind}", count)

        # Latency: exact per-packet (tracer) + last-transit gauge.
        new_latencies = self._sample_latencies()
        latency_hist = registry.histogram(
            "latency.e2e_cycles",
            "end-to-end packet latency (first to last processing-end)")
        for value in new_latencies:
            latency_hist.record(value)
        latency = {
            "completed": len(new_latencies),
            "window_p50": percentile(new_latencies, 50),
            "window_max": max(new_latencies) if new_latencies else None,
            "p50": latency_hist.percentile(50),
            "p99": latency_hist.percentile(99),
            "p999": latency_hist.percentile(99.9),
        }
        transit = getattr(getattr(design, "eth_tx", None),
                          "last_transit_cycles", None)
        if transit is not None:
            registry.gauge("latency.last_transit_cycles",
                           "most recent Ethernet-to-Ethernet transit"
                           ).set(transit)
            latency["last_transit"] = transit

        snapshot = {
            "cycle": cycle,
            "kernel": kernel,
            "links": dict(sorted(links.items())),
            "busy_routers": busy_routers,
            "busy_tiles": busy_tiles,
            "total_flits": total_flits,
            "tiles": tiles,
            "latency": latency,
        }
        if faults:
            snapshot["faults"] = faults
        self.series.append(snapshot)
        self.samples_taken += 1
        return snapshot

    # -- persistence --------------------------------------------------------

    def write(self, path: str) -> dict:
        """Write the recorded snapshot series (replayable by tools/top)."""
        return self.series.write(path)


def attach_probe(design: object,
                 interval: int | None = DEFAULT_INTERVAL,
                 registry: MetricsRegistry | None = None,
                 design_name: str = "") -> Probe | None:
    """Wire a periodic sampler into a design's simulator.

    ``interval=None`` is the null fast path: nothing is attached,
    nothing is wrapped, and ``None`` is returned — the same contract as
    ``attach_faults(design, None)``.  Otherwise the returned
    :class:`Probe` samples every ``interval`` cycles from now on; its
    ``registry`` and ``series`` hold the results.
    """
    if interval is None:
        return None
    probe = Probe(design, interval=interval, registry=registry,
                  design_name=design_name)
    design.sim.add(probe)
    return probe
