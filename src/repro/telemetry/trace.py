"""Cycle-level tracing, per-packet latency spans, and windowed metrics.

The paper's debugging story (section V-F) works because the hardware
exposes *when* things happened, not just how often.  This module is the
equivalent layer for the simulator: a :class:`Tracer` event bus that the
simulation kernel, NoC routers, local ports, and tiles publish into,
plus post-processing that turns the raw events into

- per-packet end-to-end latency spans, correlated across tiles by the
  ``packet_id`` propagated through :class:`repro.noc.message.NocMessage`;
- windowed time-series metrics (:class:`MetricsWindow`): link
  utilization, tile busy fraction, latency percentiles, drop counts
  per ``N``-cycle window;
- a Chrome trace-event JSON export (:func:`write_chrome_trace`)
  loadable in Perfetto / ``chrome://tracing``.

Cost model: every instrumentation site is guarded by
``if self.tracer.enabled:`` and the default tracer is the shared
:data:`NULL_TRACER` singleton, so an untraced run pays one attribute
test per event site and allocates nothing.

Latency definition: a packet's end-to-end latency is measured from the
*processing-end* of its first tile span to the processing-end of its
last — i.e. Ethernet-parse to Ethernet-emit, the same two timestamp
points the paper's section VII-C microbenchmark uses — so the tracer's
numbers agree with ``eth_tx.last_transit_cycles`` exactly.
"""

from __future__ import annotations

import json
import math
from collections import Counter, defaultdict
from dataclasses import dataclass

from repro import params


class NullTracer:
    """The do-nothing tracer wired into every component by default.

    ``enabled`` is False, so instrumented hot paths skip even the hook
    call; the hooks themselves are allocation-free no-ops, which keeps
    behaviour identical whether a component checks ``enabled`` or not.
    """

    __slots__ = ()
    enabled = False

    # -- kernel ----------------------------------------------------------
    def cycle_start(self, cycle: int) -> None:
        pass

    # -- NoC links -------------------------------------------------------
    def flit_forwarded(self, cycle: int, coord: tuple,
                       port: object, flit: object) -> None:
        pass

    def link_stall(self, cycle: int, coord: tuple,
                   port: object, kind: str) -> None:
        pass

    # -- local ports -----------------------------------------------------
    def inject_start(self, cycle: int, coord: tuple,
                     message: object) -> None:
        pass

    def inject_end(self, cycle: int, coord: tuple,
                   message: object) -> None:
        pass

    # -- tiles -----------------------------------------------------------
    def message_received(self, cycle: int, tile: object,
                         message: object) -> None:
        pass

    def processing_start(self, cycle: int, tile: object,
                         message: object) -> None:
        pass

    def processing_end(self, cycle: int, tile: object,
                       message: object,
                       outputs: int = 0) -> None:
        pass

    def buffer_level(self, cycle: int, tile: object,
                     flits: int) -> None:
        pass

    def drop(self, cycle: int, tile: object, message: object,
             reason: str) -> None:
        pass

    # -- fault injection (repro.faults) ----------------------------------
    def fault(self, cycle: int, kind: str,
              target: str | None,
              detail: str | None = None) -> None:
        pass


#: Shared singleton default for every instrumented component.
NULL_TRACER = NullTracer()


@dataclass(slots=True)
class TileSpan:
    """One message's trip through one tile's processing engine."""

    tile: str
    coord: tuple
    msg_id: int
    packet_id: int | None
    received: int | None  # tail-flit arrival (None for MAC-side input)
    start: int            # engine pickup
    end: int              # transformed outputs emitted
    outputs: int = 0      # NoC messages emitted (0 = terminal tile)


@dataclass(slots=True)
class InjectSpan:
    """A message streaming out of a tile's injection port."""

    coord: tuple
    msg_id: int
    packet_id: int | None
    start: int
    end: int | None


@dataclass(slots=True)
class DropEvent:
    """A packet dropped at a tile, with the tile's stated reason."""

    cycle: int | None
    tile: str
    coord: tuple
    packet_id: int | None
    reason: str


@dataclass(slots=True)
class FaultEvent:
    """One injected fault, as published by a ``repro.faults`` engine."""

    cycle: int
    kind: str            # e.g. "wire.drop", "noc.stall", "tile.freeze"
    target: str | None   # tile name, port coord, ... (engine-defined)
    detail: str | None


class Tracer(NullTracer):
    """Records every published event for post-run analysis.

    Attach to a design with :func:`attach_tracer`.  Raw event lists are
    public; :meth:`packet_spans` / :meth:`packet_latencies` reconstruct
    the per-packet view, :class:`MetricsWindow` the windowed one.
    """

    enabled = True

    def __init__(self) -> None:
        self.spans: list[TileSpan] = []
        self.inject_spans: list[InjectSpan] = []
        self.drops: list[DropEvent] = []
        self.link_flits: list[tuple[int, tuple, str]] = []
        self.link_stalls: list[tuple[int, tuple, str, str]] = []
        self.buffer_levels: list[tuple[int, str, int]] = []
        self.faults: list[FaultEvent] = []
        self.last_cycle = 0
        self._rx_pending: dict[tuple, int] = {}
        self._svc_pending: dict[tuple, tuple] = {}
        self._inject_pending: dict[tuple, InjectSpan] = {}

    # -- hooks ------------------------------------------------------------

    def cycle_start(self, cycle: int) -> None:
        self.last_cycle = cycle

    def flit_forwarded(self, cycle: int, coord: tuple,
                       port: object, flit: object) -> None:
        self.link_flits.append((cycle, coord, port))

    def link_stall(self, cycle: int, coord: tuple,
                   port: object, kind: str) -> None:
        self.link_stalls.append((cycle, coord, port, kind))

    def inject_start(self, cycle: int, coord: tuple,
                     message: object) -> None:
        span = InjectSpan(coord=coord, msg_id=message.msg_id,
                          packet_id=message.packet_id, start=cycle,
                          end=None)
        self._inject_pending[(coord, message.msg_id)] = span
        self.inject_spans.append(span)

    def inject_end(self, cycle: int, coord: tuple,
                   message: object) -> None:
        span = self._inject_pending.pop((coord, message.msg_id), None)
        if span is not None:
            span.end = cycle
            span.packet_id = message.packet_id

    def message_received(self, cycle: int, tile: object,
                         message: object) -> None:
        self._rx_pending[(tile.name, message.msg_id)] = cycle

    def processing_start(self, cycle: int, tile: object,
                         message: object) -> None:
        key = (tile.name, message.msg_id)
        self._svc_pending[key] = (self._rx_pending.pop(key, None), cycle)

    def processing_end(self, cycle: int, tile: object,
                       message: object,
                       outputs: int = 0) -> None:
        key = (tile.name, message.msg_id)
        received, start = self._svc_pending.pop(key, (None, cycle))
        self.spans.append(TileSpan(
            tile=tile.name, coord=tile.coord, msg_id=message.msg_id,
            packet_id=message.packet_id, received=received, start=start,
            end=cycle, outputs=outputs,
        ))

    def buffer_level(self, cycle: int, tile: object,
                     flits: int) -> None:
        self.buffer_levels.append((cycle, tile.name, flits))

    def drop(self, cycle: int, tile: object, message: object,
             reason: str) -> None:
        self.drops.append(DropEvent(
            cycle=cycle, tile=tile.name, coord=tile.coord,
            packet_id=getattr(message, "packet_id", None), reason=reason,
        ))

    def fault(self, cycle: int, kind: str,
              target: str | None,
              detail: str | None = None) -> None:
        self.faults.append(FaultEvent(
            cycle=cycle, kind=kind, target=target, detail=detail,
        ))

    # -- per-packet reconstruction ---------------------------------------

    def packet_spans(self) -> dict[int, list[TileSpan]]:
        """Tile spans grouped by packet id, in processing order."""
        by_packet: dict[int, list[TileSpan]] = defaultdict(list)
        for span in self.spans:
            if span.packet_id is not None:
                by_packet[span.packet_id].append(span)
        for spans in by_packet.values():
            spans.sort(key=lambda s: (s.end, s.start))
        return dict(by_packet)

    def packet_latencies(self, complete_only: bool = True) -> dict[int, int]:
        """End-to-end cycles per packet (first to last processing-end).

        A packet needs at least two tile spans for a latency to exist.
        With ``complete_only`` (the default), only packets that finished
        their trip count: the last span must be *terminal* (the tile
        emitted no further NoC message — it consumed the packet or
        handed it to a MAC) and the packet must not have been dropped.
        Pass ``complete_only=False`` to include in-flight/dropped
        packets' partial latencies.
        """
        dropped = ({event.packet_id for event in self.drops}
                   if complete_only else frozenset())
        return {
            packet_id: spans[-1].end - spans[0].end
            for packet_id, spans in self.packet_spans().items()
            if len(spans) >= 2
            and (not complete_only
                 or (spans[-1].outputs == 0 and packet_id not in dropped))
        }

    @property
    def horizon(self) -> int:
        """One past the last cycle any event was recorded on."""
        last = self.last_cycle
        if self.spans:
            last = max(last, max(span.end for span in self.spans))
        if self.link_flits:
            last = max(last, self.link_flits[-1][0])
        return last + 1


def _iter_tiles(design: object) -> list:
    tiles = design.tiles
    if isinstance(tiles, dict):
        return list(tiles.values())
    return list(tiles)


def attach_tracer(design: object,
                  tracer: Tracer | None = None) -> Tracer:
    """Wire ``tracer`` into a design's kernel, routers, ports and tiles.

    Returns the tracer (a fresh :class:`Tracer` if none was given).
    Must be called before the cycles of interest run; attaching
    mid-simulation is allowed and simply starts recording from there.
    """
    if tracer is None:
        tracer = Tracer()
    design.sim.tracer = tracer
    for router in design.mesh.routers.values():
        router.tracer = tracer
    for port in design.mesh.ports.values():
        port.tracer = tracer
    for tile in _iter_tiles(design):
        tile.tracer = tracer
    return tracer


# -- windowed metrics -------------------------------------------------------


def percentile(values: list, q: float) -> float | None:
    """Nearest-rank percentile (q in [0, 100]) of a sequence."""
    if not values:
        return None
    ordered = sorted(values)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return float(ordered[rank - 1])


@dataclass
class WindowSample:
    """Aggregated metrics for one ``[start, end)`` cycle window."""

    start: int
    end: int
    link_util: dict        # (router coord, out port) -> busy fraction
    link_stalls: Counter   # (router coord, out port) -> stalled cycles
    tile_busy: dict        # tile name -> engine busy fraction
    latencies: list        # packets whose egress fell in this window
    p50: float | None
    p99: float | None
    p999: float | None
    drops: Counter         # drop reason -> count

    @property
    def busiest_link(self) -> tuple | None:
        """((coord, port), util) of the hottest link, or None."""
        if not self.link_util:
            return None
        return max(self.link_util.items(), key=lambda item: item[1])

    def to_dict(self) -> dict:
        """The window as a structured, JSON-able dict.

        Link/router keys are rendered ``"(x, y)->port"`` so the dict
        round-trips through JSON; this is the one source the report
        renderer and every exporter consume.
        """
        return {
            "start": self.start,
            "end": self.end,
            "link_util": {f"{coord}->{port}": util
                          for (coord, port), util
                          in sorted(self.link_util.items(),
                                    key=lambda item: repr(item[0]))},
            "link_stalls": {f"{coord}->{port}": count
                            for (coord, port), count
                            in sorted(self.link_stalls.items(),
                                      key=lambda item: repr(item[0]))},
            "tile_busy": dict(sorted(self.tile_busy.items())),
            "packets": len(self.latencies),
            "p50": self.p50,
            "p99": self.p99,
            "p999": self.p999,
            "drops": dict(sorted(self.drops.items())),
        }


class MetricsWindow:
    """Time-series aggregation of a :class:`Tracer`'s raw events.

    Slices the run into ``window_cycles``-sized windows and computes,
    per window: per-link utilization (busy cycles / window), per-tile
    engine busy fraction, the latency distribution of packets that
    *completed* in the window (with p50/p99), and drop counts by
    reason.
    """

    def __init__(self, tracer: Tracer,
                 window_cycles: int = 500) -> None:
        if window_cycles < 1:
            raise ValueError("window_cycles must be >= 1")
        self.tracer = tracer
        self.window_cycles = window_cycles
        self._samples: list[WindowSample] | None = None

    def _window_of(self, cycle: int) -> int:
        return cycle // self.window_cycles

    def samples(self) -> list[WindowSample]:
        """The per-window samples, computed once and cached."""
        if self._samples is not None:
            return self._samples
        w = self.window_cycles
        horizon = self.tracer.horizon
        n_windows = max(1, math.ceil(horizon / w))

        link_busy = [Counter() for _ in range(n_windows)]
        for cycle, coord, port in self.tracer.link_flits:
            link_busy[self._window_of(cycle)][(coord, port)] += 1
        stalls = [Counter() for _ in range(n_windows)]
        for cycle, coord, port, _kind in self.tracer.link_stalls:
            stalls[self._window_of(cycle)][(coord, port)] += 1

        tile_busy = [Counter() for _ in range(n_windows)]
        for span in self.tracer.spans:
            # Clip the engine-busy interval [start, end) to each window.
            for index in range(self._window_of(span.start),
                               min(self._window_of(max(span.start,
                                                       span.end - 1)),
                                   n_windows - 1) + 1):
                lo = max(span.start, index * w)
                hi = min(span.end, (index + 1) * w)
                if hi > lo:
                    tile_busy[index][span.tile] += hi - lo

        latencies: list[list[int]] = [[] for _ in range(n_windows)]
        spans_by_packet = self.tracer.packet_spans()
        for packet_id, latency in self.tracer.packet_latencies().items():
            egress = spans_by_packet[packet_id][-1].end
            index = self._window_of(egress)
            if index < n_windows:
                latencies[index].append(latency)

        drops = [Counter() for _ in range(n_windows)]
        for event in self.tracer.drops:
            if event.cycle is not None:
                index = self._window_of(event.cycle)
                if index < n_windows:
                    drops[index][event.reason] += 1

        self._samples = [
            WindowSample(
                start=index * w,
                end=min((index + 1) * w, horizon),
                link_util={link: count / w
                           for link, count in link_busy[index].items()},
                link_stalls=stalls[index],
                tile_busy={tile: busy / w
                           for tile, busy in tile_busy[index].items()},
                latencies=latencies[index],
                p50=percentile(latencies[index], 50),
                p99=percentile(latencies[index], 99),
                p999=percentile(latencies[index], 99.9),
                drops=drops[index],
            )
            for index in range(n_windows)
        ]
        return self._samples

    def latency_stats(self) -> dict:
        """Whole-run latency distribution: count, min/max, p50/p99/p999."""
        latencies = list(self.tracer.packet_latencies().values())
        return {
            "count": len(latencies),
            "min": min(latencies) if latencies else None,
            "max": max(latencies) if latencies else None,
            "p50": percentile(latencies, 50),
            "p99": percentile(latencies, 99),
            "p999": percentile(latencies, 99.9),
        }

    def to_dict(self) -> dict:
        """Every window plus the whole-run stats, as one structured dict.

        ``design_report`` renders its per-window table from exactly
        this structure, and the exporters serialise it unchanged — one
        source for both the human and the machine view.
        """
        return {
            "window_cycles": self.window_cycles,
            "windows": [sample.to_dict() for sample in self.samples()],
            "latency": self.latency_stats(),
        }


# -- Perfetto / chrome://tracing export -------------------------------------

_TILE_PID = 1
_NOC_PID = 2
_FAULT_PID = 3


def chrome_trace_events(tracer: Tracer,
                        window_cycles: int = 500) -> list[dict]:
    """The trace-event list for a run, sorted by timestamp.

    Timestamps are in cycles (one trace-clock microsecond per cycle, so
    Perfetto's time axis reads directly in cycles); each event's
    ``args`` carries the wall-clock nanoseconds at the modelled
    :data:`repro.params.CYCLE_TIME_S`.  Three-plus track types:

    - ``X`` complete events: one per tile span (per-message engine
      occupancy, labelled with the packet id);
    - ``C`` counter events: per-window link utilization on the NoC
      process, per-tile buffer occupancy on the tile process;
    - ``i`` instant events: drops, labelled with the drop reason.
    """
    cycle_ns = params.CYCLE_TIME_S * 1e9
    tile_tids: dict[str, int] = {}
    events: list[dict] = []

    def tid_for(tile: str, coord: tuple) -> int:
        if tile not in tile_tids:
            tile_tids[tile] = len(tile_tids) + 1
            events.append({
                "name": "thread_name", "ph": "M", "ts": 0,
                "pid": _TILE_PID, "tid": tile_tids[tile],
                "args": {"name": f"{tile} {coord}"},
            })
        return tile_tids[tile]

    events.append({"name": "process_name", "ph": "M", "ts": 0,
                   "pid": _TILE_PID, "tid": 0,
                   "args": {"name": "tiles"}})
    events.append({"name": "process_name", "ph": "M", "ts": 0,
                   "pid": _NOC_PID, "tid": 0,
                   "args": {"name": "noc links"}})
    if tracer.faults:
        events.append({"name": "process_name", "ph": "M", "ts": 0,
                       "pid": _FAULT_PID, "tid": 0,
                       "args": {"name": "faults"}})
        for fault in tracer.faults:
            label = (fault.kind if fault.target is None
                     else f"{fault.kind} @ {fault.target}")
            events.append({
                "name": label, "cat": "fault", "ph": "i",
                "ts": fault.cycle, "pid": _FAULT_PID, "tid": 0,
                "s": "p",
                "args": {"target": fault.target, "detail": fault.detail},
            })

    for span in tracer.spans:
        label = (f"pkt {span.packet_id}" if span.packet_id is not None
                 else f"msg {span.msg_id}")
        events.append({
            "name": label, "cat": "tile", "ph": "X",
            "ts": span.start, "dur": max(1, span.end - span.start),
            "pid": _TILE_PID, "tid": tid_for(span.tile, span.coord),
            "args": {
                "msg_id": span.msg_id,
                "received": span.received,
                "start_ns": span.start * cycle_ns,
            },
        })

    for event in tracer.drops:
        events.append({
            "name": f"drop: {event.reason}", "cat": "drop", "ph": "i",
            "ts": event.cycle if event.cycle is not None else 0,
            "pid": _TILE_PID, "tid": tid_for(event.tile, event.coord),
            "s": "t",
            "args": {"packet_id": event.packet_id},
        })

    for cycle, tile, level in tracer.buffer_levels:
        events.append({
            "name": f"{tile} buffer flits", "cat": "buffer", "ph": "C",
            "ts": cycle, "pid": _TILE_PID, "tid": 0,
            "args": {"flits": level},
        })

    metrics = MetricsWindow(tracer, window_cycles)
    for sample in metrics.samples():
        for (coord, port), util in sorted(sample.link_util.items(),
                                          key=lambda item: repr(item[0])):
            events.append({
                "name": f"link {coord} {port}", "cat": "link",
                "ph": "C", "ts": sample.start,
                "pid": _NOC_PID, "tid": 0,
                "args": {"util_pct": round(util * 100.0, 2)},
            })

    events.sort(key=lambda event: event["ts"])
    return events


def write_chrome_trace(tracer: Tracer, path: str,
                       window_cycles: int = 500) -> dict:
    """Write the Perfetto-loadable JSON for a traced run.

    Returns the document written (``traceEvents`` plus metadata).
    """
    document = {
        "traceEvents": chrome_trace_events(tracer, window_cycles),
        "displayTimeUnit": "ms",
        "otherData": {
            "clock": "cycles (1 trace us = 1 cycle)",
            "cycle_ns": params.CYCLE_TIME_S * 1e9,
            "window_cycles": window_cycles,
        },
    }
    with open(path, "w") as handle:
        json.dump(document, handle)
    return document
